//! Benchmarks of the special-function LUTs: Taylor-series division
//! (§III-C2), piecewise-linear activations (§III-C3) and the composed
//! softmax engine.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pim_lut::{DivLut, PwlFunction, PwlTable, SoftmaxEngine};

fn bench(c: &mut Criterion) {
    let div = DivLut::new(8).unwrap();
    let sigmoid = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 64).unwrap();
    let tanh = PwlTable::new(PwlFunction::Tanh, -4.0, 4.0, 64).unwrap();
    let softmax = SoftmaxEngine::new().unwrap();

    let mut group = c.benchmark_group("division_pwl");

    group.bench_function("div_lut_1000_quotients", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for x in (1u64..1001).step_by(7) {
                for y in (1u64..101).step_by(13) {
                    acc += div.divide(black_box(x), black_box(y)).unwrap().0;
                }
            }
            acc
        })
    });

    group.bench_function("native_division_1000", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for x in (1u64..1001).step_by(7) {
                for y in (1u64..101).step_by(13) {
                    acc += black_box(x) as f64 / black_box(y) as f64;
                }
            }
            acc
        })
    });

    let xs: Vec<f64> = (-400..400).map(|i| i as f64 / 50.0).collect();
    group.bench_function("sigmoid_pwl_800_points", |b| {
        b.iter(|| {
            xs.iter()
                .map(|&x| sigmoid.eval(black_box(x)).0)
                .sum::<f64>()
        })
    });

    group.bench_function("tanh_pwl_800_points", |b| {
        b.iter(|| xs.iter().map(|&x| tanh.eval(black_box(x)).0).sum::<f64>())
    });

    let logits: Vec<f64> = (0..128).map(|i| (i % 17) as f64 / 3.0 - 2.0).collect();
    group.bench_function("softmax_128_logits", |b| {
        b.iter(|| softmax.softmax(black_box(&logits)).unwrap().0)
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
