//! Benchmarks of the systolic substrate: schedule math, the
//! cycle-stepped array simulation, and the systolic-vs-sequential
//! ablation (§III-D).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pim_systolic::{SystolicArraySim, SystolicSchedule};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("systolic");

    group.bench_function("schedule_math_8x40", |b| {
        b.iter(|| {
            let s = SystolicSchedule::new(8, 40, black_box(10_000)).unwrap();
            (
                s.total_steps(),
                s.total_hops(),
                s.efficiency(),
                s.sequential_steps(),
            )
        })
    });

    let weights: Vec<Vec<i32>> = (0..8)
        .map(|r| (0..16).map(|c| (r * 16 + c) - 64).collect())
        .collect();
    let sim = SystolicArraySim::new(weights).unwrap();
    let inputs: Vec<Vec<i32>> = (0..64)
        .map(|t| (0..8).map(|r| (t * 8 + r) % 101 - 50).collect())
        .collect();

    group.bench_function("array_sim_8x16_64_waves", |b| {
        b.iter(|| sim.run(black_box(&inputs)).unwrap().cycles)
    });

    group.bench_function("array_reference_8x16_64_waves", |b| {
        b.iter(|| sim.reference(black_box(&inputs)))
    });

    // Ablation: systolic overlap vs load-then-compute step counts over
    // a sweep of stream lengths.
    group.bench_function("systolic_vs_sequential_sweep", |b| {
        b.iter(|| {
            let mut gain = 0.0f64;
            for waves in [10u64, 100, 1_000, 10_000] {
                let s = SystolicSchedule::new(8, 40, black_box(waves)).unwrap();
                gain += s.sequential_steps() as f64 / s.total_steps() as f64;
            }
            gain
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
