//! Microbenchmarks of the LUT multiply datapath (paper §III-C1):
//! nibble products through the 49-entry table, multi-precision
//! decomposition, dot products, and the hardwired ROM broadcast of
//! Fig. 7 — against native multiplication as the reference point.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pim_bce::MultRom;
use pim_lut::{LutMultiplier, MultLut};

fn bench(c: &mut Criterion) {
    let mul = LutMultiplier::new();
    let lut = MultLut::new();
    let rom = MultRom::new();

    let mut group = c.benchmark_group("lut_multiply");

    group.bench_function("mul_nibble_4x4", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in 0u8..16 {
                for x in 0u8..16 {
                    acc += mul.mul_nibble(black_box(a), black_box(x)).0 as u32;
                }
            }
            acc
        })
    });

    group.bench_function("mul_u8_full_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in (0u16..256).step_by(17) {
                for x in (0u16..256).step_by(13) {
                    acc += mul.mul_u8(black_box(a as u8), black_box(x as u8)).0 as u32;
                }
            }
            acc
        })
    });

    group.bench_function("native_u8_full_sweep", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in (0u16..256).step_by(17) {
                for x in (0u16..256).step_by(13) {
                    acc += (black_box(a) * black_box(x)) as u32;
                }
            }
            acc
        })
    });

    let w: Vec<i8> = (0..256).map(|i| (i * 7 % 255) as i8).collect();
    let x: Vec<i8> = (0..256).map(|i| (i * 13 % 255) as i8).collect();
    group.bench_function("dot_i8_256", |b| {
        b.iter(|| mul.dot_i8(black_box(&w), black_box(&x)).0)
    });

    group.bench_function("mult_lut_lookup", |b| {
        b.iter(|| {
            let mut acc = 0u32;
            for a in [3u8, 5, 7, 9, 11, 13, 15] {
                for v in [3u8, 5, 7, 9, 11, 13, 15] {
                    acc += lut.lookup(black_box(a), black_box(v)) as u32;
                }
            }
            acc
        })
    });

    let register = [0x12u8, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0];
    group.bench_function("rom_broadcast_fig7", |b| {
        b.iter(|| rom.broadcast(black_box(7), black_box(&register)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
