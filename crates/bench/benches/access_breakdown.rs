//! Fig. 2 as a benchmark: slice-access breakdown computation and the
//! address-decomposition path every access model uses.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pim_arch::{CacheAddress, CacheGeometry, EnergyParams, SubarrayId, TimingParams};

fn bench(c: &mut Criterion) {
    let geom = CacheGeometry::xeon_l3_35mb();
    let timing = TimingParams::default();
    let energy = EnergyParams::default();

    let mut group = c.benchmark_group("access_breakdown");

    group.bench_function("fig2_breakdowns", |b| {
        b.iter(|| {
            let lat = black_box(&timing).slice_access_breakdown();
            let en = black_box(&energy).slice_access_breakdown();
            (lat.interconnect_fraction, en.interconnect_fraction)
        })
    });

    group.bench_function("address_decompose_4k_lines", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for line in 0..4096u64 {
                let addr = CacheAddress::decompose(black_box(&geom), line * 64).unwrap();
                acc += addr.subarray.subarray + addr.row;
            }
            acc
        })
    });

    group.bench_function("address_round_trip_4k", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for line in 0..4096u64 {
                let addr = CacheAddress::decompose(&geom, line * 64).unwrap();
                acc += addr.recompose(black_box(&geom));
            }
            acc
        })
    });

    group.bench_function("flat_index_all_4480_subarrays", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for i in 0..geom.total_subarrays() {
                let id = SubarrayId::from_flat_index(black_box(&geom), i).unwrap();
                acc += id.flat_index(&geom);
            }
            acc
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
