//! End-to-end simulator benchmarks: one BFree run per evaluation
//! network (the workloads behind Figs. 12-14 and Table III), plus the
//! Fig. 14 bandwidth/precision sweep.

use bfree::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    let mut group = c.benchmark_group("network_simulation");
    group.sample_size(20);

    for (net, _) in networks::table2_networks() {
        group.bench_function(format!("bfree_{}_b1", net.name()), |b| {
            b.iter(|| sim.run(black_box(&net), 1).total_latency())
        });
    }

    let vgg = networks::vgg16();
    group.bench_function("bfree_VGG-16_b16", |b| {
        b.iter(|| sim.run(black_box(&vgg), 16).total_latency())
    });

    group.bench_function("fig14_full_sweep", |b| {
        b.iter(|| {
            let mut total_ms = 0.0;
            for kind in MemoryTechKind::ALL {
                for batch in [1usize, 16] {
                    let config =
                        BfreeConfig::paper_default().with_memory(MemoryTech::from_kind(kind));
                    let report = BfreeSimulator::new(config).run(black_box(&vgg), batch);
                    total_ms += report.per_inference_latency().milliseconds();
                }
            }
            total_ms
        })
    });

    group.bench_function("network_construction_inception", |b| {
        b.iter(|| networks::inception_v3().total_macs())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
