//! Benchmarks of the BCE execution engine: conv- and matmul-mode
//! kernels at int4/int8 (the mode/precision matrix of §V-B), pooling
//! and requantization.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pim_bce::{Bce, BceMode, Precision};

fn bench(c: &mut Criterion) {
    let conv_bce = Bce::new(BceMode::Conv).unwrap();
    let mm_bce = Bce::new(BceMode::MatMul).unwrap();

    let weights: Vec<i8> = (0..512).map(|i| (i * 31 % 251) as i8).collect();
    let inputs: Vec<i8> = (0..512).map(|i| (i * 17 % 251) as i8).collect();
    let weights4: Vec<i8> = weights.iter().map(|&w| w % 8).collect();
    let inputs4: Vec<i8> = inputs.iter().map(|&x| x % 8).collect();
    let tile: Vec<[i8; 8]> = (0..256)
        .map(|k| std::array::from_fn(|j| ((k * 7 + j * 13) % 251) as i8))
        .collect();
    let stream: Vec<i8> = (0..256).map(|k| (k * 11 % 251) as i8).collect();
    let tile4: Vec<[i8; 8]> = tile
        .iter()
        .map(|row| std::array::from_fn(|j| row[j] % 8))
        .collect();
    let stream4: Vec<i8> = stream.iter().map(|&x| x % 8).collect();

    let mut group = c.benchmark_group("bce_kernels");

    group.bench_function("dot_conv_int8_512", |b| {
        b.iter(|| conv_bce.dot_conv(black_box(&weights), black_box(&inputs), Precision::Int8))
    });

    group.bench_function("dot_conv_int4_512", |b| {
        b.iter(|| conv_bce.dot_conv(black_box(&weights4), black_box(&inputs4), Precision::Int4))
    });

    group.bench_function("matmul_tile_int8_256x8", |b| {
        b.iter(|| mm_bce.matmul_tile(black_box(&stream), black_box(&tile)))
    });

    group.bench_function("matmul_tile_int4_256x8", |b| {
        b.iter(|| mm_bce.matmul_tile_i4(black_box(&stream4), black_box(&tile4)))
    });

    let window: Vec<i8> = (0..64).map(|i| (i * 37 % 255) as i8).collect();
    group.bench_function("max_pool_64", |b| {
        b.iter(|| conv_bce.max_pool(black_box(&window)))
    });
    group.bench_function("avg_pool_64_lut_division", |b| {
        b.iter(|| conv_bce.avg_pool(black_box(&window)))
    });

    let accs: Vec<i32> = (0..1024).map(|i| i * 937 - 400_000).collect();
    let multiplier = (0.7 * (1u64 << 31) as f64) as i32;
    group.bench_function("requantize_1024_accumulators", |b| {
        b.iter(|| conv_bce.requantize(black_box(&accs), multiplier, 9, 3))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
