//! Functional-pipeline benchmarks: quantized conv/matmul through the
//! actual LUT datapath versus the f32 reference — the value-level
//! counterpart of the performance simulator.

use bfree::functional::FunctionalPipeline;
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pim_nn::reference;
use pim_nn::tensor::TensorShape;
use pim_nn::workload::WorkloadGen;

fn bench(c: &mut Criterion) {
    let mut gen = WorkloadGen::new(123);
    let pipeline = FunctionalPipeline::new().unwrap();

    let input = gen.uniform_f32(TensorShape::chw(3, 12, 12), -1.0, 1.0);
    let filters = gen.uniform_f32(TensorShape::new(vec![8, 3, 3, 3]), -0.4, 0.4);
    let a = gen.uniform_f32(TensorShape::new(vec![16, 64]), -1.0, 1.0);
    let b_mat = gen.uniform_f32(TensorShape::new(vec![64, 16]), -0.5, 0.5);

    let mut group = c.benchmark_group("functional_pipeline");
    group.sample_size(30);

    group.bench_function("lut_conv2d_3x12x12_8f", |bch| {
        bch.iter(|| {
            pipeline
                .conv2d(
                    black_box(&input),
                    black_box(&filters),
                    &[0.0; 8],
                    (1, 1),
                    (1, 1),
                )
                .unwrap()
        })
    });

    group.bench_function("reference_conv2d_3x12x12_8f", |bch| {
        bch.iter(|| {
            reference::conv2d(
                black_box(&input),
                black_box(&filters),
                &[0.0; 8],
                (1, 1),
                (1, 1),
            )
            .unwrap()
        })
    });

    group.bench_function("lut_matmul_16x64x16", |bch| {
        bch.iter(|| pipeline.matmul(black_box(&a), black_box(&b_mat)).unwrap())
    });

    group.bench_function("reference_matmul_16x64x16", |bch| {
        bch.iter(|| reference::matmul(black_box(&a), black_box(&b_mat)).unwrap())
    });

    let logits: Vec<f32> = (0..64).map(|i| (i % 13) as f32 / 2.0 - 3.0).collect();
    group.bench_function("lut_softmax_64", |bch| {
        bch.iter(|| pipeline.softmax(black_box(&logits)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
