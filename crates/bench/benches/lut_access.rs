//! The Fig. 4 ablation as a benchmark: pricing one million LUT reads
//! under each of the three LUT-row integration designs, plus LUT image
//! construction (the configuration phase's payload).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use pim_arch::{EnergyParams, LutRowDesign, TimingParams};
use pim_lut::{DivLut, LutImage, MultLut, PwlFunction, PwlTable};

fn bench(c: &mut Criterion) {
    let timing = TimingParams::default();
    let energy = EnergyParams::default();

    let mut group = c.benchmark_group("lut_access");

    for design in LutRowDesign::ALL {
        group.bench_function(
            format!("price_1m_reads_{}", design.name().replace(' ', "_")),
            |b| {
                b.iter(|| {
                    let profile = design.profile(black_box(&timing), black_box(&energy));
                    (
                        profile.read_energy * 1_000_000u64,
                        profile.read_latency * 1_000_000.0,
                    )
                })
            },
        );
    }

    group.bench_function("mult_table_image", |b| {
        b.iter(|| LutImage::from_mult_table(black_box(&MultLut::new())))
    });

    group.bench_function("div_table_image_8_chunks", |b| {
        let div = DivLut::new(8).unwrap();
        b.iter(|| {
            (0..8)
                .map(|seg| {
                    LutImage::from_div_table(black_box(&div), seg, 64)
                        .unwrap()
                        .len()
                })
                .sum::<usize>()
        })
    });

    group.bench_function("pwl_table_build_128_segments", |b| {
        b.iter(|| PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, black_box(128)).unwrap())
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
