//! Benchmarks regenerating the paper's comparison figures: Neural Cache
//! (Fig. 12), iso-area Eyeriss (Fig. 13) and the CPU/GPU Table III
//! points, measuring the cost of each comparison's full evaluation.

use bfree::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("baseline_comparison");
    group.sample_size(20);

    let inception = networks::inception_v3();
    let vgg = networks::vgg16();
    let bert = networks::bert_base();

    group.bench_function("fig12_bfree_vs_neural_cache", |b| {
        let bfree = BfreeSimulator::new(
            BfreeConfig::paper_default().with_conv_dataflow(ConvDataflow::Direct),
        );
        let nc = NeuralCacheModel::paper_default();
        b.iter(|| {
            let ours = bfree.run(black_box(&inception), 1);
            let theirs = nc.run(black_box(&inception), 1);
            (ours.speedup_over(&theirs), ours.energy_gain_over(&theirs))
        })
    });

    group.bench_function("fig13_bfree_vs_eyeriss", |b| {
        let bfree = BfreeSimulator::new(
            BfreeConfig::single_slice().with_conv_dataflow(ConvDataflow::Im2col),
        );
        let eyeriss = EyerissModel::paper_default();
        b.iter(|| {
            let ours = bfree.run(black_box(&vgg), 1);
            let theirs = eyeriss.run(black_box(&vgg), 1);
            theirs
                .latency
                .get(Phase::Compute)
                .ratio(ours.latency.get(Phase::Compute))
        })
    });

    group.bench_function("table3_bert_base_all_devices", |b| {
        let bfree = BfreeSimulator::new(BfreeConfig::paper_default());
        let cpu = CpuModel::paper_xeon();
        let gpu = GpuModel::paper_titan_v();
        b.iter(|| {
            let ours = bfree.run(black_box(&bert), 16);
            (
                ours.speedup_over(&cpu.run(&bert, 16)),
                ours.speedup_over(&gpu.run(&bert, 16)),
            )
        })
    });

    group.bench_function("neural_cache_inception_b1", |b| {
        let nc = NeuralCacheModel::paper_default();
        b.iter(|| nc.run(black_box(&inception), 1).total_latency())
    });

    group.bench_function("eyeriss_vgg_b1", |b| {
        let eyeriss = EyerissModel::paper_default();
        b.iter(|| eyeriss.run(black_box(&vgg), 1).total_latency())
    });

    group.bench_function("fig10_attention_schedule", |b| {
        let config = pim_nn::networks::BertConfig::base();
        b.iter(|| {
            bfree::AttentionSchedule::plan(black_box(&config), 4.0 * 4480.0, 16.0).overlap_gain()
        })
    });

    group.bench_function("weight_store_place_and_verify", |b| {
        use bfree::storage::WeightStore;
        let config = BfreeConfig::paper_default();
        let mapper = Mapper::new(config.geometry.clone());
        let layer_net = networks::vgg16();
        let layer = layer_net.weight_layers().next().unwrap();
        let mapping = mapper
            .map_layer(layer, BceMode::Conv, Precision::Int8)
            .expect("conv1_1 fits");
        let weights: Vec<i8> = (0..layer.params()).map(|i| (i % 251) as i8).collect();
        b.iter(|| {
            let store =
                WeightStore::place(&config.geometry, black_box(&mapping), &weights).unwrap();
            store.verify_lut_integrity().unwrap();
            store.total_row_writes()
        })
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
