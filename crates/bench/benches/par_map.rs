//! Worker-pool benchmarks: `bfree::par` map overhead and the
//! parallel-vs-serial ratio on a real simulator sweep (the Fig. 14
//! bandwidth sweep, the workload `experiments bench` also times).

use bfree::prelude::*;
use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn sweep_once(net: &pim_nn::Network) -> f64 {
    let mut sweep = Vec::new();
    for kind in MemoryTechKind::ALL {
        for batch in [1usize, 16] {
            sweep.push((kind, batch));
        }
    }
    bfree::par::par_map(sweep, |(kind, batch)| {
        let config = BfreeConfig::paper_default().with_memory(MemoryTech::from_kind(kind));
        BfreeSimulator::new(config)
            .run(net, batch)
            .per_inference_latency()
            .milliseconds()
    })
    .into_iter()
    .sum()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_map");
    group.sample_size(20);

    // Pure pool overhead: tiny closures dominated by dispatch cost.
    group.bench_function("overhead_1k_trivial_items", |b| {
        b.iter(|| {
            bfree::par::par_map(black_box((0..1000u64).collect::<Vec<_>>()), |x| x * 3 + 1)
                .iter()
                .sum::<u64>()
        })
    });

    let vgg = networks::vgg16();
    group.bench_function("fig14_sweep_serial", |b| {
        bfree::par::set_max_jobs(1);
        b.iter(|| sweep_once(black_box(&vgg)));
        bfree::par::set_max_jobs(0);
    });
    group.bench_function("fig14_sweep_parallel", |b| {
        bfree::par::set_max_jobs(0);
        b.iter(|| sweep_once(black_box(&vgg)));
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
