//! Bench support crate; the benchmarks live in `benches/`.
#![allow(missing_docs)]
