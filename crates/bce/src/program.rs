//! Kernel programs: sequences of PIM instructions executed by one BCE
//! (paper §IV-C: "Each instruction executes a kernel, thus performing
//! layer by layer execution of the NN workloads").
//!
//! A [`KernelProgram`] is the unit the slice controller writes into a
//! subarray's configuration block region: an ordered list of
//! [`ConfigBlock`]s. This module prices whole programs on the three-stage
//! pipeline model and reports per-instruction timing.

use pim_arch::Cycles;
use serde::{Deserialize, Serialize};

use crate::isa::{ActivationKind, ConfigBlock, PimOp, Precision};
use crate::pipeline::BcePipeline;

/// An ordered list of PIM instructions for one BCE.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct KernelProgram {
    instructions: Vec<ConfigBlock>,
}

/// Per-instruction timing produced by [`KernelProgram::execute`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InstructionTiming {
    /// The instruction.
    pub cb: ConfigBlock,
    /// Cycle the instruction's CB fetch begins.
    pub start: u64,
    /// Cycle the final writeback completes.
    pub end: u64,
}

impl KernelProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        KernelProgram::default()
    }

    /// Appends an instruction; returns `self` for chaining.
    pub fn push(mut self, cb: ConfigBlock) -> Self {
        self.instructions.push(cb);
        self
    }

    /// The instructions in order.
    pub fn instructions(&self) -> &[ConfigBlock] {
        &self.instructions
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// The execute-phase cycles of one instruction at this BCE's
    /// throughput model (conv: 2 cycles per int8 MAC, matmul: 2 cycles
    /// per 8-MAC row, element ops one per cycle).
    pub fn execute_cycles(cb: &ConfigBlock) -> u64 {
        let per_iter = match cb.op {
            PimOp::Conv { length } => {
                let cycles_per_mac = match cb.precision {
                    Precision::Int4 => 1,
                    Precision::Int8 => 2,
                    Precision::Int16 => 8,
                };
                length as u64 * cycles_per_mac
            }
            PimOp::MatMul { rows } => {
                let cycles_per_row = match cb.precision {
                    Precision::Int4 => 1,
                    Precision::Int8 => 2,
                    Precision::Int16 => 8,
                };
                rows as u64 * cycles_per_row
            }
            PimOp::MaxPool { window } | PimOp::AvgPool { window } => window as u64,
            PimOp::Activation { kind, length } => {
                let per_elem = if kind == ActivationKind::Relu { 1 } else { 2 };
                length as u64 * per_elem
            }
            PimOp::Softmax { length } => 6 * length as u64, // exp + reduce + divide
            PimOp::ElementwiseAdd { length } => length as u64,
            PimOp::Requantize { length } => 3 * length as u64,
        };
        per_iter * cb.iterations.max(1) as u64
    }

    /// Executes the whole program back to back on the pipeline model,
    /// returning per-instruction windows and the total cycles.
    pub fn execute(&self) -> (Vec<InstructionTiming>, Cycles) {
        let mut timings = Vec::with_capacity(self.instructions.len());
        let mut clock = 0u64;
        for cb in &self.instructions {
            let body = Self::execute_cycles(cb) / cb.iterations.max(1) as u64;
            let total = BcePipeline::kernel_cycles(cb, body).count();
            timings.push(InstructionTiming {
                cb: *cb,
                start: clock,
                end: clock + total,
            });
            clock += total;
        }
        (timings, Cycles::new(clock))
    }

    /// Total program cycles.
    pub fn total_cycles(&self) -> Cycles {
        self.execute().1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv_cb(length: u32, iterations: u32) -> ConfigBlock {
        ConfigBlock::new(PimOp::Conv { length }, Precision::Int8, iterations, 2, 63)
    }

    #[test]
    fn single_instruction_matches_pipeline_model() {
        let program = KernelProgram::new().push(conv_cb(16, 1));
        let (timings, total) = program.execute();
        assert_eq!(timings.len(), 1);
        // init 2 + (16 MACs x 2 cycles + writeback 1).
        assert_eq!(total.count(), 2 + 32 + 1);
        assert_eq!(timings[0].start, 0);
        assert_eq!(timings[0].end, total.count());
    }

    #[test]
    fn instructions_execute_back_to_back() {
        let program = KernelProgram::new().push(conv_cb(8, 1)).push(conv_cb(4, 1));
        let (timings, total) = program.execute();
        assert_eq!(timings.len(), 2);
        assert_eq!(timings[0].end, timings[1].start);
        assert_eq!(total.count(), timings[1].end);
    }

    #[test]
    fn iterations_amortize_the_cb_decode() {
        let once = KernelProgram::new()
            .push(conv_cb(16, 1))
            .total_cycles()
            .count();
        let hundred = KernelProgram::new()
            .push(conv_cb(16, 100))
            .total_cycles()
            .count();
        // 100 iterations decode the CB once, not 100 times.
        assert!(hundred < once * 100);
        assert_eq!(hundred, 2 + 100 * (32 + 1));
    }

    #[test]
    fn precision_scales_conv_cycles() {
        let int8 = KernelProgram::execute_cycles(&conv_cb(32, 1));
        let int4 = KernelProgram::execute_cycles(&ConfigBlock::new(
            PimOp::Conv { length: 32 },
            Precision::Int4,
            1,
            2,
            63,
        ));
        let int16 = KernelProgram::execute_cycles(&ConfigBlock::new(
            PimOp::Conv { length: 32 },
            Precision::Int16,
            1,
            2,
            63,
        ));
        assert_eq!(int4 * 2, int8);
        assert_eq!(int8 * 4, int16);
    }

    #[test]
    fn layer_style_program_orders_kernels() {
        // conv -> relu -> maxpool -> requantize, the per-layer kernel
        // chain of §IV-C.
        let program = KernelProgram::new()
            .push(conv_cb(64, 8))
            .push(ConfigBlock::new(
                PimOp::Activation {
                    kind: ActivationKind::Relu,
                    length: 64,
                },
                Precision::Int8,
                1,
                2,
                63,
            ))
            .push(ConfigBlock::new(
                PimOp::MaxPool { window: 4 },
                Precision::Int8,
                16,
                2,
                63,
            ))
            .push(ConfigBlock::new(
                PimOp::Requantize { length: 64 },
                Precision::Int8,
                1,
                2,
                63,
            ));
        let (timings, total) = program.execute();
        assert_eq!(timings.len(), 4);
        for pair in timings.windows(2) {
            assert!(pair[0].end <= pair[1].start + 1);
        }
        assert!(total.count() > 0);
        assert!(!program.is_empty());
        assert_eq!(program.len(), 4);
    }

    #[test]
    fn empty_program_takes_no_time() {
        let program = KernelProgram::new();
        assert_eq!(program.total_cycles(), Cycles::ZERO);
    }
}
