//! The BCE's three-stage in-order pipeline (paper §III-A, Fig. 6).
//!
//! Stage 1 reads the configuration block and decodes the PIM
//! instruction; stage 2 generates LUT/subarray addresses from the
//! operands; stage 3 accumulates the looked-up partials into the output
//! registers. Once the pipeline fills, one execute step retires every
//! cycle, so a kernel of `n` execute cycles costs `fill + n + writeback`.

use serde::{Deserialize, Serialize};

use pim_arch::Cycles;

use crate::isa::ConfigBlock;

/// Pipeline depth: CB fetch/decode, address generation, execute.
pub const PIPELINE_STAGES: u64 = 3;

/// Cycles to read the CB and decode before execution starts (Fig. 6
/// cycles 0-1: CB read + first operand fetch).
pub const INIT_CYCLES: u64 = 2;

/// Cycles to drain the result into the output registers / subarray.
pub const WRITEBACK_CYCLES: u64 = 1;

/// Timing model of one BCE instruction execution.
///
/// ```
/// use pim_bce::pipeline::{BcePipeline, INIT_CYCLES, WRITEBACK_CYCLES};
/// let total = BcePipeline::instruction_cycles(100);
/// assert_eq!(total.count(), INIT_CYCLES + 100 + WRITEBACK_CYCLES);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BcePipeline;

impl BcePipeline {
    /// Total cycles for one instruction whose execute phase takes
    /// `execute_cycles` (Fig. 6: initialization happens once, then the
    /// pipeline streams).
    pub fn instruction_cycles(execute_cycles: u64) -> Cycles {
        Cycles::new(INIT_CYCLES + execute_cycles + WRITEBACK_CYCLES)
    }

    /// Total cycles for a kernel of `iterations` repetitions of the same
    /// instruction: the CB is decoded once, iterations stream
    /// back-to-back, one writeback at the end of each iteration.
    pub fn kernel_cycles(cb: &ConfigBlock, execute_cycles_per_iter: u64) -> Cycles {
        let iters = cb.iterations.max(1) as u64;
        Cycles::new(INIT_CYCLES + iters * (execute_cycles_per_iter + WRITEBACK_CYCLES))
    }

    /// Cycles lost to pipeline fill at the start of a burst (latency of
    /// the first result).
    pub fn fill_latency() -> Cycles {
        Cycles::new(PIPELINE_STAGES - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{PimOp, Precision};

    #[test]
    fn instruction_adds_init_and_writeback() {
        assert_eq!(BcePipeline::instruction_cycles(0).count(), 3);
        assert_eq!(BcePipeline::instruction_cycles(10).count(), 13);
    }

    #[test]
    fn kernel_amortizes_init_across_iterations() {
        let cb = ConfigBlock::new(PimOp::Conv { length: 16 }, Precision::Int8, 100, 0, 15);
        let per_iter = 32;
        let total = BcePipeline::kernel_cycles(&cb, per_iter).count();
        assert_eq!(total, 2 + 100 * (32 + 1));
        // Amortized overhead per iteration is close to just the writeback.
        let overhead = total - 100 * per_iter;
        assert!(overhead <= 102);
    }

    #[test]
    fn zero_iterations_treated_as_one() {
        let cb = ConfigBlock::new(PimOp::Conv { length: 4 }, Precision::Int8, 0, 0, 3);
        assert_eq!(BcePipeline::kernel_cycles(&cb, 8).count(), 2 + 9);
    }

    #[test]
    fn fill_latency_is_depth_minus_one() {
        assert_eq!(BcePipeline::fill_latency().count(), 2);
    }

    #[test]
    fn fig6_example_matmul_cycle_count() {
        // Fig. 6: a 1x3 by 3x1 product takes cycles 0..6: CB read +
        // operand fetch (2), three multiply steps (3), writeback (1).
        let total = BcePipeline::instruction_cycles(3).count();
        assert_eq!(total, 6);
    }
}
