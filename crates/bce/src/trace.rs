//! Cycle-by-cycle BCE execution traces (paper Fig. 6).
//!
//! Fig. 6 walks one matrix-vector product through the pipeline: cycle 0
//! reads the configuration block, cycle 1 fetches the first operands,
//! then one multiply step retires per cycle — a LUT fetch when both
//! operands are odd, shifts when a power of two or a two-power sum is
//! involved — and the result writes back at the end. This module
//! reproduces that trace programmatically so the pipeline's behaviour is
//! inspectable (and testable) at the same granularity the paper draws.

use pim_lut::{LutMultiplier, OperandAnalyzer, OperandClass};
use serde::{Deserialize, Serialize};

use crate::isa::ConfigBlock;

/// What the BCE did in one cycle.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceAction {
    /// Stage 1: read the configuration block and decode the instruction.
    DecodeConfig,
    /// Stage 1/2: fetch operands from the subarray / input registers.
    FetchOperands,
    /// A multiply step resolved entirely by shifting (power-of-two or
    /// two-power-sum operand) plus the accumulate.
    ShiftAccumulate {
        /// The multiplicand pair.
        operands: (u8, u8),
        /// Shifter activations this cycle.
        shifts: u8,
    },
    /// A multiply step that fetched the odd x odd product from the LUT.
    LutAccumulate {
        /// The multiplicand pair.
        operands: (u8, u8),
        /// The odd parts looked up.
        lut_index: (u8, u8),
    },
    /// A trivial step (zero or one operand): accumulate only.
    TrivialAccumulate {
        /// The multiplicand pair.
        operands: (u8, u8),
    },
    /// Write the accumulated result to the output registers.
    Writeback,
}

impl TraceAction {
    /// Short mnemonic for rendering.
    pub fn mnemonic(&self) -> &'static str {
        match self {
            TraceAction::DecodeConfig => "decode",
            TraceAction::FetchOperands => "fetch",
            TraceAction::ShiftAccumulate { .. } => "shift+acc",
            TraceAction::LutAccumulate { .. } => "lut+acc",
            TraceAction::TrivialAccumulate { .. } => "acc",
            TraceAction::Writeback => "writeback",
        }
    }
}

/// One trace entry: a cycle number and the action retired in it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceEntry {
    /// The cycle, starting at 0 with the CB read.
    pub cycle: u64,
    /// What happened.
    pub action: TraceAction,
}

/// The full trace of one dot-product instruction, plus its result.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BceTrace {
    /// Per-cycle actions.
    pub entries: Vec<TraceEntry>,
    /// The accumulated dot product.
    pub result: i32,
}

impl BceTrace {
    /// Traces a 4-bit dot product through the pipeline, reproducing the
    /// Fig. 6 schedule: decode (cycle 0), operand fetch (cycle 1), one
    /// multiply step per cycle, writeback last.
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length or operands exceed 4 bits.
    pub fn dot_product(_cb: &ConfigBlock, weights: &[u8], inputs: &[u8]) -> BceTrace {
        assert_eq!(weights.len(), inputs.len(), "operand lengths differ");
        let mul = LutMultiplier::new();
        let mut entries = vec![
            TraceEntry {
                cycle: 0,
                action: TraceAction::DecodeConfig,
            },
            TraceEntry {
                cycle: 1,
                action: TraceAction::FetchOperands,
            },
        ];
        let mut cycle = 2;
        let mut acc: i32 = 0;
        for (&w, &x) in weights.iter().zip(inputs) {
            assert!(w <= 15 && x <= 15, "trace operands must be 4-bit");
            let (product, _) = mul.mul_nibble(w, x);
            acc += product as i32;
            let action = classify_step(w, x);
            entries.push(TraceEntry { cycle, action });
            cycle += 1;
        }
        entries.push(TraceEntry {
            cycle,
            action: TraceAction::Writeback,
        });
        BceTrace {
            entries,
            result: acc,
        }
    }

    /// Total cycles (last cycle index + 1).
    pub fn cycles(&self) -> u64 {
        self.entries.last().map(|e| e.cycle + 1).unwrap_or(0)
    }

    /// Number of LUT-access cycles.
    pub fn lut_accesses(&self) -> usize {
        self.entries
            .iter()
            .filter(|e| matches!(e.action, TraceAction::LutAccumulate { .. }))
            .count()
    }

    /// Renders the trace like the Fig. 6 timeline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for entry in &self.entries {
            let detail = match &entry.action {
                TraceAction::ShiftAccumulate { operands, shifts } => {
                    format!("{} x {} via {} shift(s)", operands.0, operands.1, shifts)
                }
                TraceAction::LutAccumulate {
                    operands,
                    lut_index,
                } => format!(
                    "{} x {} via LUT[{},{}]",
                    operands.0, operands.1, lut_index.0, lut_index.1
                ),
                TraceAction::TrivialAccumulate { operands } => {
                    format!("{} x {} trivial", operands.0, operands.1)
                }
                _ => String::new(),
            };
            out.push_str(&format!(
                "cycle {:>2}: {:<10} {}\n",
                entry.cycle,
                entry.action.mnemonic(),
                detail
            ));
        }
        out.push_str(&format!("result: {}\n", self.result));
        out
    }
}

fn classify_step(w: u8, x: u8) -> TraceAction {
    let cw = OperandAnalyzer::classify(w);
    let cx = OperandAnalyzer::classify(x);
    if matches!(cw, OperandClass::Zero | OperandClass::One)
        || matches!(cx, OperandClass::Zero | OperandClass::One)
    {
        return TraceAction::TrivialAccumulate { operands: (w, x) };
    }
    if matches!(cw, OperandClass::PowerOfTwo { .. })
        || matches!(cx, OperandClass::PowerOfTwo { .. })
    {
        return TraceAction::ShiftAccumulate {
            operands: (w, x),
            shifts: 1,
        };
    }
    if (w.is_multiple_of(2) && OperandAnalyzer::is_two_power_sum(w))
        || (x.is_multiple_of(2) && OperandAnalyzer::is_two_power_sum(x))
    {
        return TraceAction::ShiftAccumulate {
            operands: (w, x),
            shifts: 2,
        };
    }
    TraceAction::LutAccumulate {
        operands: (w, x),
        lut_index: (cw.odd_part(), cx.odd_part()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{PimOp, Precision};

    fn cb(len: u32) -> ConfigBlock {
        ConfigBlock::new(PimOp::Conv { length: len }, Precision::Int4, 1, 0, 0)
    }

    #[test]
    fn fig6_example_trace() {
        // Fig. 6 multiplies M1 row [4, 6, 7] with M2 column [5, 7, 9]:
        //   cycle 0: CB read + decode
        //   cycle 1: operand fetch
        //   cycle 2: 4 x 5  -> power of two, shift (no LUT)
        //   cycle 3: 6 x 7  -> 6 = 4 + 2, two shifts (no LUT)
        //   cycle 4: 7 x 9  -> both odd, LUT access
        //   cycle 5: writeback
        let trace = BceTrace::dot_product(&cb(3), &[4, 6, 7], &[5, 7, 9]);
        assert_eq!(trace.result, 4 * 5 + 6 * 7 + 7 * 9);
        assert_eq!(trace.cycles(), 6);
        assert_eq!(trace.lut_accesses(), 1);
        assert_eq!(trace.entries[0].action, TraceAction::DecodeConfig);
        assert_eq!(trace.entries[1].action, TraceAction::FetchOperands);
        assert!(matches!(
            trace.entries[2].action,
            TraceAction::ShiftAccumulate { shifts: 1, .. }
        ));
        assert!(matches!(
            trace.entries[3].action,
            TraceAction::ShiftAccumulate { shifts: 2, .. }
        ));
        assert!(matches!(
            trace.entries[4].action,
            TraceAction::LutAccumulate {
                lut_index: (7, 9),
                ..
            }
        ));
        assert_eq!(trace.entries[5].action, TraceAction::Writeback);
    }

    #[test]
    fn trace_result_matches_native_dot() {
        let w = [0u8, 1, 2, 3, 8, 12, 15, 9];
        let x = [15u8, 14, 13, 12, 11, 10, 9, 8];
        let trace = BceTrace::dot_product(&cb(8), &w, &x);
        let expected: i32 = w.iter().zip(&x).map(|(&a, &b)| a as i32 * b as i32).sum();
        assert_eq!(trace.result, expected);
        // 2 init + 8 steps + 1 writeback.
        assert_eq!(trace.cycles(), 11);
    }

    #[test]
    fn trivial_operands_never_touch_the_lut() {
        let trace = BceTrace::dot_product(&cb(4), &[0, 1, 2, 4], &[15, 15, 15, 15]);
        assert_eq!(trace.lut_accesses(), 0);
    }

    #[test]
    fn render_mentions_each_cycle() {
        let trace = BceTrace::dot_product(&cb(2), &[7, 4], &[9, 3]);
        let rendered = trace.render();
        assert!(rendered.contains("cycle  0: decode"));
        assert!(rendered.contains("LUT[7,9]"));
        assert!(rendered.contains(&format!("result: {}", 7 * 9 + 4 * 3)));
    }

    #[test]
    #[should_panic]
    fn oversized_operand_panics() {
        let _ = BceTrace::dot_product(&cb(1), &[16], &[1]);
    }
}
