//! Pricing BCE event counts in time and energy (paper §V-B, §V-D).
//!
//! The cost model converts [`OpCost`]/[`BceStats`] event counts into
//! latency (at the 1.5 GHz subarray clock) and energy: hardwired-ROM
//! reads at the paper's 0.5 pJ MAC figure, decoupled-bitline LUT reads at
//! 8.6 pJ / 231, subarray weight-row reads at 8.6 pJ, plus small
//! adder/shifter terms inside the BCE's 0.4 / 1.3 mW power envelope.
//!
//! [`OpCost`]: pim_lut::OpCost

use pim_arch::{Energy, EnergyParams, Latency, LutRowDesign, LutRowProfile, TimingParams};
use pim_lut::OpCost;
use serde::{Deserialize, Serialize};

use crate::engine::{BceMode, BceStats};

/// Dynamic energy of one adder activation, pJ (16-bit adder at 16 nm).
pub const ADD_PJ: f64 = 0.08;

/// Dynamic energy of one shifter activation, pJ.
pub const SHIFT_PJ: f64 = 0.04;

/// Dynamic energy of one hardwired-ROM read, pJ. A ROM-based MAC costs
/// four of these plus fixups, matching the paper's ~0.5 pJ per
/// matmul-mode MAC once the adds/shifts are included; conv-mode MACs
/// share the same datapath.
pub const ROM_READ_PJ: f64 = 0.085;

/// The BCE cost model: architecture parameters plus the LUT-row design.
///
/// ```
/// use pim_bce::{Bce, BceCostModel, BceMode};
/// use pim_bce::isa::Precision;
/// let model = BceCostModel::paper_default();
/// let bce = Bce::new(BceMode::Conv).unwrap();
/// let (_, stats) = bce.dot_conv(&[1, 2, 3, 4], &[5, 6, 7, 8], Precision::Int8);
/// let energy = model.stats_energy(&stats);
/// // Four 8-bit MACs cost a handful of pJ, far below one bitline op each.
/// assert!(energy.picojoules() < 4.0 * 15.4);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BceCostModel {
    timing: TimingParams,
    energy: EnergyParams,
    lut_design: LutRowDesign,
}

impl BceCostModel {
    /// Builds a model from architecture parameters.
    pub fn new(timing: TimingParams, energy: EnergyParams, lut_design: LutRowDesign) -> Self {
        BceCostModel {
            timing,
            energy,
            lut_design,
        }
    }

    /// The paper's default configuration (1.5 GHz, decoupled-bitline LUT
    /// rows).
    pub fn paper_default() -> Self {
        BceCostModel::new(
            TimingParams::default(),
            EnergyParams::default(),
            LutRowDesign::default(),
        )
    }

    /// The timing parameters.
    pub fn timing(&self) -> &TimingParams {
        &self.timing
    }

    /// The energy parameters.
    pub fn energy_params(&self) -> &EnergyParams {
        &self.energy
    }

    /// The active LUT-row profile.
    pub fn lut_profile(&self) -> LutRowProfile {
        self.lut_design.profile(&self.timing, &self.energy)
    }

    /// Wall-clock latency of an event count at the subarray clock.
    pub fn latency(&self, cost: &OpCost) -> Latency {
        self.timing.pim_time(pim_arch::Cycles::new(cost.cycles))
    }

    /// Dynamic energy of an arithmetic event count.
    pub fn op_energy(&self, cost: &OpCost) -> Energy {
        let lut = self.lut_profile().read_energy * cost.lut_reads;
        let rom = Energy::from_pj(ROM_READ_PJ) * cost.rom_reads;
        let adds = Energy::from_pj(ADD_PJ) * cost.adds;
        let shifts = Energy::from_pj(SHIFT_PJ) * cost.shifts;
        lut + rom + adds + shifts
    }

    /// Full energy of a BCE operation: arithmetic events plus subarray
    /// weight reads and reduced-cost-row partial traffic.
    pub fn stats_energy(&self, stats: &BceStats) -> Energy {
        let arithmetic = self.op_energy(&stats.cost);
        let weight_rows = stats.weight_row_reads(8);
        let weights = self.energy.subarray_row_access() * weight_rows;
        let partials = self.lut_profile().read_energy * stats.partial_row_accesses;
        arithmetic + weights + partials
    }

    /// Wall-clock latency of a BCE operation.
    pub fn stats_latency(&self, stats: &BceStats) -> Latency {
        self.latency(&stats.cost)
    }

    /// Average energy per MAC of a stats record (NaN for zero MACs).
    pub fn energy_per_mac(&self, stats: &BceStats) -> Energy {
        Energy::from_pj(self.stats_energy(stats).picojoules() / stats.macs as f64)
    }

    /// Energy of the *bitline computing* alternative for the same MAC
    /// count (Neural-Cache-style bit-serial: `cycles_per_mac` compute
    /// cycles across the bitlines per MAC, at the 15.4 pJ compute-op
    /// energy shared across `lanes` parallel columns).
    pub fn bitline_equivalent_energy(&self, macs: u64, cycles_per_mac: u64, lanes: u64) -> Energy {
        self.energy.bitline_compute_op() * (macs * cycles_per_mac) / lanes as f64
    }

    /// Static BCE energy for a runtime window at the mode power.
    pub fn mode_static_energy(&self, mode: BceMode, runtime: Latency, engines: usize) -> Energy {
        let mw = match mode {
            BceMode::Conv => self.energy.bce_conv_mode_mw,
            BceMode::MatMul => self.energy.bce_matmul_mode_mw,
        };
        self.energy.bce_power_energy(mw, runtime, engines)
    }

    /// The specialized-MAC comparison of §V-B: for the same MAC count, a
    /// specialized MAC unit consumes `bce_vs_mac_energy_gain` times the
    /// BCE energy (48% more in the paper).
    pub fn specialized_mac_energy(&self, stats: &BceStats, gain: f64) -> Energy {
        self.stats_energy(stats) * gain
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Bce;

    #[test]
    fn rom_mac_near_paper_half_picojoule() {
        // 4 ROM reads + 3 adds + 2 shifts ~ 0.66 pJ per 8-bit product;
        // the pure ROM portion is 0.34 pJ. Within the paper's "about
        // 0.5 pJ" MAC figure.
        let model = BceCostModel::paper_default();
        let cost = OpCost {
            rom_reads: 4,
            adds: 4,
            shifts: 2,
            cycles: 2,
            ..OpCost::ZERO
        };
        let e = model.op_energy(&cost).picojoules();
        assert!((0.3..1.0).contains(&e), "per-MAC energy {e} pJ");
    }

    #[test]
    fn lut_read_is_cheap_with_decoupled_bitlines() {
        let model = BceCostModel::paper_default();
        let cost = OpCost {
            lut_reads: 1,
            ..OpCost::ZERO
        };
        let e = model.op_energy(&cost).picojoules();
        assert!((e - 8.6 / 231.0).abs() < 1e-9);
    }

    #[test]
    fn bce_mac_orders_of_magnitude_below_bitline() {
        let model = BceCostModel::paper_default();
        let bce = Bce::new(BceMode::MatMul).unwrap();
        let tile: Vec<[i8; 8]> = vec![[7; 8]; 64];
        let inputs = vec![3i8; 64];
        let (_, stats) = bce.matmul_tile(&inputs, &tile);
        let ours = model.stats_energy(&stats);
        // Neural Cache: 102 bit-serial cycles per 8-bit MAC over 64 lanes.
        let theirs = model.bitline_equivalent_energy(stats.macs, 102, 64);
        assert!(
            theirs.ratio(ours) > 2.0,
            "bitline {} vs lut {}",
            theirs,
            ours
        );
    }

    #[test]
    fn latency_uses_subarray_clock() {
        let model = BceCostModel::paper_default();
        let cost = OpCost {
            cycles: 1500,
            ..OpCost::ZERO
        };
        assert!((model.latency(&cost).microseconds() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weight_reads_priced_at_row_access() {
        let model = BceCostModel::paper_default();
        let stats = BceStats {
            cost: OpCost::ZERO,
            macs: 0,
            weight_bytes_read: 64,
            partial_row_accesses: 0,
        };
        // 64 bytes = 8 row reads at 8.6 pJ.
        assert!((model.stats_energy(&stats).picojoules() - 8.0 * 8.6).abs() < 1e-9);
    }

    #[test]
    fn matmul_static_power_exceeds_conv() {
        let model = BceCostModel::paper_default();
        let t = Latency::from_us(5.0);
        let conv = model.mode_static_energy(BceMode::Conv, t, 320);
        let mm = model.mode_static_energy(BceMode::MatMul, t, 320);
        assert!(mm > conv);
    }

    #[test]
    fn energy_per_mac_is_small_in_matmul_mode() {
        let model = BceCostModel::paper_default();
        let bce = Bce::new(BceMode::MatMul).unwrap();
        let tile: Vec<[i8; 8]> = vec![[5; 8]; 256];
        let inputs = vec![9i8; 256];
        let (_, stats) = bce.matmul_tile(&inputs, &tile);
        let per_mac = model.energy_per_mac(&stats).picojoules();
        // Dominated by ROM reads and the amortized weight row reads.
        assert!(per_mac < 3.0, "per-MAC {per_mac} pJ");
    }

    #[test]
    fn specialized_mac_costs_48_percent_more() {
        let model = BceCostModel::paper_default();
        let stats = BceStats {
            cost: OpCost {
                rom_reads: 4,
                adds: 4,
                shifts: 2,
                cycles: 2,
                ..OpCost::ZERO
            },
            macs: 1,
            weight_bytes_read: 0,
            partial_row_accesses: 0,
        };
        let bce_e = model.stats_energy(&stats);
        let mac_e = model.specialized_mac_energy(&stats, 1.48);
        assert!((mac_e.ratio(bce_e) - 1.48).abs() < 1e-9);
    }
}
