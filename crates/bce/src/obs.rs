//! Observability bridge for the BCE pipeline (paper §III-A, Fig. 6).
//!
//! Exposes pipeline-stage occupancy and execute-path mix as `bfree-obs`
//! events: how many cycles an instruction spent in decode / fetch /
//! execute / writeback, and how the execute cycles split across the LUT,
//! shifter, and trivial paths. The split is exactly the quantity the
//! paper's operand-locality argument (§III-B, Fig. 5) is about: the LUT
//! path is the expensive one, and most cycles avoid it.

use bfree_obs::{Component, Recorder, Subsystem, Unit};

use crate::isa::ConfigBlock;
use crate::pipeline::{BcePipeline, INIT_CYCLES, WRITEBACK_CYCLES};
use crate::trace::{BceTrace, TraceAction};

/// Per-stage cycle counters emitted under these names.
pub const STAGE_EVENTS: [&str; 4] = [
    "stage/decode",
    "stage/fetch",
    "stage/execute",
    "stage/writeback",
];

/// Execute-path mix counters emitted under these names.
pub const PATH_EVENTS: [&str; 3] = ["path/lut", "path/shift", "path/trivial"];

impl BceTrace {
    /// Emits this trace's stage occupancy and execute-path mix.
    ///
    /// Stage counters (`stage/*`, unit count) say how many cycles each
    /// pipeline stage was occupied; path counters (`path/*`) split the
    /// execute cycles by multiply path. LUT-path cycles carry
    /// [`Component::Lut`], everything else [`Component::Bce`], so the
    /// path mix also shows up in component attribution.
    pub fn record_to<R: Recorder>(&self, recorder: &R) {
        if !recorder.is_enabled() {
            return;
        }
        let mut decode = 0u64;
        let mut fetch = 0u64;
        let mut writeback = 0u64;
        let mut lut = 0u64;
        let mut shift = 0u64;
        let mut trivial = 0u64;
        for entry in &self.entries {
            match entry.action {
                TraceAction::DecodeConfig => decode += 1,
                TraceAction::FetchOperands => fetch += 1,
                TraceAction::Writeback => writeback += 1,
                TraceAction::LutAccumulate { .. } => lut += 1,
                TraceAction::ShiftAccumulate { .. } => shift += 1,
                TraceAction::TrivialAccumulate { .. } => trivial += 1,
            }
        }
        let execute = lut + shift + trivial;
        for (name, cycles) in [
            ("stage/decode", decode),
            ("stage/fetch", fetch),
            ("stage/execute", execute),
            ("stage/writeback", writeback),
        ] {
            if cycles > 0 {
                recorder.counter(Subsystem::Bce, name, cycles as f64, Unit::Count);
            }
        }
        for (name, cycles, component) in [
            ("path/lut", lut, Component::Lut),
            ("path/shift", shift, Component::Bce),
            ("path/trivial", trivial, Component::Bce),
        ] {
            if cycles > 0 {
                recorder.record(bfree_obs::Event {
                    subsystem: Subsystem::Bce,
                    kind: bfree_obs::EventKind::Counter,
                    name,
                    detail: None,
                    component: Some(component),
                    time_ns: 0.0,
                    dur_ns: 0.0,
                    value: cycles as f64,
                    unit: Unit::Count,
                });
            }
        }
    }
}

/// Emits the stage occupancy of a whole kernel priced by
/// [`BcePipeline::kernel_cycles`]: one decode burst, the streamed
/// execute cycles, and one writeback per iteration. The counters sum to
/// the kernel's total cycle count, so folding them recovers the
/// aggregate the timing model reports.
pub fn record_kernel_occupancy<R: Recorder>(
    cb: &ConfigBlock,
    execute_cycles_per_iter: u64,
    recorder: &R,
) {
    if !recorder.is_enabled() {
        return;
    }
    let iters = cb.iterations.max(1) as u64;
    recorder.counter(
        Subsystem::Bce,
        "stage/decode",
        INIT_CYCLES as f64,
        Unit::Count,
    );
    recorder.counter(
        Subsystem::Bce,
        "stage/execute",
        (iters * execute_cycles_per_iter) as f64,
        Unit::Count,
    );
    recorder.counter(
        Subsystem::Bce,
        "stage/writeback",
        (iters * WRITEBACK_CYCLES) as f64,
        Unit::Count,
    );
}

/// Checks the invariant [`record_kernel_occupancy`] maintains: the
/// emitted stage counters sum to [`BcePipeline::kernel_cycles`].
pub fn kernel_occupancy_total(cb: &ConfigBlock, execute_cycles_per_iter: u64) -> u64 {
    BcePipeline::kernel_cycles(cb, execute_cycles_per_iter).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::{PimOp, Precision};
    use bfree_obs::AggRecorder;

    fn cb(len: u32, iters: u32) -> ConfigBlock {
        ConfigBlock::new(PimOp::Conv { length: len }, Precision::Int4, iters, 0, 0)
    }

    #[test]
    fn trace_stage_counters_sum_to_cycle_count() {
        let trace = BceTrace::dot_product(&cb(3, 1), &[4, 6, 7], &[5, 7, 9]);
        let rec = AggRecorder::new();
        trace.record_to(&rec);
        let total: f64 = STAGE_EVENTS
            .iter()
            .map(|name| rec.sum(Subsystem::Bce, name))
            .sum();
        assert_eq!(total, trace.cycles() as f64);
    }

    #[test]
    fn path_mix_matches_fig6_example() {
        // Fig. 6: one shift, one double-shift, one LUT access.
        let trace = BceTrace::dot_product(&cb(3, 1), &[4, 6, 7], &[5, 7, 9]);
        let rec = AggRecorder::new();
        trace.record_to(&rec);
        assert_eq!(rec.sum(Subsystem::Bce, "path/lut"), 1.0);
        assert_eq!(rec.sum(Subsystem::Bce, "path/shift"), 2.0);
        assert_eq!(rec.sum(Subsystem::Bce, "path/trivial"), 0.0);
        assert_eq!(trace.lut_accesses(), 1);
    }

    #[test]
    fn kernel_occupancy_sums_to_kernel_cycles() {
        let cb = cb(16, 100);
        let rec = AggRecorder::new();
        record_kernel_occupancy(&cb, 32, &rec);
        let total: f64 = STAGE_EVENTS
            .iter()
            .map(|name| rec.sum(Subsystem::Bce, name))
            .sum();
        assert_eq!(total, kernel_occupancy_total(&cb, 32) as f64);
    }

    #[test]
    fn disabled_recorder_is_a_no_op() {
        let trace = BceTrace::dot_product(&cb(1, 1), &[7], &[9]);
        trace.record_to(&bfree_obs::NullRecorder);
        record_kernel_occupancy(&cb(1, 1), 4, &bfree_obs::NullRecorder);
    }
}
