//! The PIM instruction set and the per-subarray configuration block
//! (paper §III-A, §IV-C).
//!
//! BFree adds in-memory instructions (convolution, matrix multiply,
//! pooling, activations) that the cache controller decodes into kernel
//! executions. Per subarray, a *configuration block* (CB) stored in a
//! reserved row carries the metadata the BCE's fetch/decode stage reads:
//! operation, bit precision, iteration count and the weight address range.

use serde::{Deserialize, Serialize};

/// Operand bit precision supported by the reconfigurable BCE
//  (paper §I and Fig. 14: layer-wise 4-/8-/16-bit execution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Precision {
    /// 4-bit signed operands.
    Int4,
    /// 8-bit signed operands (the default inference precision).
    #[default]
    Int8,
    /// 16-bit signed operands.
    Int16,
}

impl Precision {
    /// Operand width in bits.
    pub fn bits(self) -> u32 {
        match self {
            Precision::Int4 => 4,
            Precision::Int8 => 8,
            Precision::Int16 => 16,
        }
    }

    /// Operand width in bytes (Int4 packs two operands per byte; this is
    /// the storage cost of one operand, in eighths of a byte avoided by
    /// returning a numerator/denominator pair).
    pub fn storage_bytes_per_operand(self) -> f64 {
        self.bits() as f64 / 8.0
    }

    /// Number of 4-bit nibbles per operand.
    pub fn nibbles(self) -> u32 {
        self.bits() / 4
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Precision::Int4 => "int4",
            Precision::Int8 => "int8",
            Precision::Int16 => "int16",
        }
    }
}

/// The non-linear activation kinds the LUT path supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ActivationKind {
    /// Rectified linear unit (comparator only, no LUT needed).
    Relu,
    /// Logistic sigmoid via PWL LUT.
    Sigmoid,
    /// Hyperbolic tangent via PWL LUT.
    Tanh,
    /// Exponent via PWL LUT (softmax numerator).
    Exp,
}

impl ActivationKind {
    /// Whether this activation needs a LUT access per element.
    pub fn needs_lut(self) -> bool {
        !matches!(self, ActivationKind::Relu)
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            ActivationKind::Relu => "relu",
            ActivationKind::Sigmoid => "sigmoid",
            ActivationKind::Tanh => "tanh",
            ActivationKind::Exp => "exp",
        }
    }
}

/// A PIM operation, the payload of one in-memory instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PimOp {
    /// Dot-product / convolution step over `length` weight elements held
    /// in the subarray (conv mode, Fig. 9(b)).
    Conv {
        /// Number of MACs in this step.
        length: u32,
    },
    /// Matrix-multiply step over a `rows x 8` weight tile (matmul mode,
    /// Fig. 7): each input element updates eight output registers.
    MatMul {
        /// Number of input elements streamed through the tile.
        rows: u32,
    },
    /// Max pooling over a window.
    MaxPool {
        /// Window element count.
        window: u32,
    },
    /// Average pooling over a window (accumulate + LUT division).
    AvgPool {
        /// Window element count.
        window: u32,
    },
    /// Element-wise activation over a vector.
    Activation {
        /// Which non-linearity.
        kind: ActivationKind,
        /// Element count.
        length: u32,
    },
    /// Softmax over a vector (exp, cross-subarray reduce, divide).
    Softmax {
        /// Element count.
        length: u32,
    },
    /// Element-wise add of two vectors (residual connections).
    ElementwiseAdd {
        /// Element count.
        length: u32,
    },
    /// gemmlowp-style requantization of accumulators (§V-D).
    Requantize {
        /// Element count.
        length: u32,
    },
}

impl PimOp {
    /// Short mnemonic for traces and experiment tables.
    pub fn mnemonic(self) -> &'static str {
        match self {
            PimOp::Conv { .. } => "conv",
            PimOp::MatMul { .. } => "matmul",
            PimOp::MaxPool { .. } => "maxpool",
            PimOp::AvgPool { .. } => "avgpool",
            PimOp::Activation { .. } => "act",
            PimOp::Softmax { .. } => "softmax",
            PimOp::ElementwiseAdd { .. } => "eltadd",
            PimOp::Requantize { .. } => "requant",
        }
    }
}

/// The configuration block stored in a reserved subarray row.
///
/// ```
/// use pim_bce::{ConfigBlock, PimOp, Precision};
/// let cb = ConfigBlock::new(PimOp::Conv { length: 64 }, Precision::Int8, 10, 0, 63);
/// assert!(cb.encoded_bytes() <= 8, "a CB fits one 8-byte row segment");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigBlock {
    /// The operation this subarray performs.
    pub op: PimOp,
    /// Operand precision.
    pub precision: Precision,
    /// How many times the operation repeats (e.g. output rows).
    pub iterations: u32,
    /// First weight row in the subarray.
    pub start_row: u16,
    /// Last weight row in the subarray (inclusive).
    pub end_row: u16,
}

impl ConfigBlock {
    /// Creates a configuration block.
    ///
    /// # Panics
    ///
    /// Panics if `start_row > end_row`.
    pub fn new(
        op: PimOp,
        precision: Precision,
        iterations: u32,
        start_row: u16,
        end_row: u16,
    ) -> Self {
        assert!(
            start_row <= end_row,
            "CB address range inverted: {start_row}..{end_row}"
        );
        ConfigBlock {
            op,
            precision,
            iterations,
            start_row,
            end_row,
        }
    }

    /// Number of weight rows this CB addresses.
    pub fn row_count(&self) -> u32 {
        (self.end_row - self.start_row) as u32 + 1
    }

    /// Size of the hardware encoding: opcode + precision (1 byte),
    /// iterations (3 bytes), start and end row (2 bytes each) = 8 bytes,
    /// one row segment.
    pub fn encoded_bytes(&self) -> usize {
        8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_widths() {
        assert_eq!(Precision::Int4.bits(), 4);
        assert_eq!(Precision::Int8.bits(), 8);
        assert_eq!(Precision::Int16.bits(), 16);
        assert_eq!(Precision::Int8.nibbles(), 2);
        assert!((Precision::Int4.storage_bytes_per_operand() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn default_precision_is_int8() {
        assert_eq!(Precision::default(), Precision::Int8);
    }

    #[test]
    fn relu_needs_no_lut() {
        assert!(!ActivationKind::Relu.needs_lut());
        assert!(ActivationKind::Sigmoid.needs_lut());
        assert!(ActivationKind::Tanh.needs_lut());
        assert!(ActivationKind::Exp.needs_lut());
    }

    #[test]
    fn config_block_row_count() {
        let cb = ConfigBlock::new(PimOp::Conv { length: 8 }, Precision::Int8, 1, 10, 19);
        assert_eq!(cb.row_count(), 10);
    }

    #[test]
    #[should_panic]
    fn inverted_range_panics() {
        let _ = ConfigBlock::new(PimOp::Conv { length: 8 }, Precision::Int8, 1, 5, 4);
    }

    #[test]
    fn mnemonics_are_distinct() {
        let ops = [
            PimOp::Conv { length: 1 },
            PimOp::MatMul { rows: 1 },
            PimOp::MaxPool { window: 1 },
            PimOp::AvgPool { window: 1 },
            PimOp::Activation {
                kind: ActivationKind::Relu,
                length: 1,
            },
            PimOp::Softmax { length: 1 },
            PimOp::ElementwiseAdd { length: 1 },
            PimOp::Requantize { length: 1 },
        ];
        let mut names: Vec<_> = ops.iter().map(|o| o.mnemonic()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), ops.len());
    }
}
