//! The BCE's hardwired multiply LUT (paper §III-A, Fig. 3/7).
//!
//! Because multiplication dominates DNN kernels, each BCE embeds a small
//! hardwired ROM holding all 256 nibble products, "introduced in the BCE
//! to reduce the number of accesses to sub-array partitions". In matmul
//! mode one nibble of the streamed operand selects a ROM row and the
//! switch MUX applies it to all eight operands in the input register
//! simultaneously (Fig. 7), which is how the BCE reaches eight 8-bit
//! multiplies in two cycles.

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// The 16 x 16 hardwired nibble-product ROM.
///
/// The read counter is atomic so one ROM (and therefore one [`Bce`])
/// can serve concurrent tiles on the `bfree::par` worker pool without
/// losing counts.
///
/// [`Bce`]: crate::Bce
///
/// ```
/// use pim_bce::MultRom;
/// let rom = MultRom::new();
/// assert_eq!(rom.lookup(12, 13), 156);
/// assert_eq!(rom.entry_count(), 256);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct MultRom {
    entries: Vec<u8>,
    reads: AtomicU64,
}

impl Clone for MultRom {
    fn clone(&self) -> Self {
        MultRom {
            entries: self.entries.clone(),
            reads: AtomicU64::new(self.reads.load(Ordering::Relaxed)),
        }
    }
}

// ROM identity is its entries; the read counter is telemetry.
impl PartialEq for MultRom {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for MultRom {}

impl MultRom {
    /// Builds the ROM with all 256 nibble products.
    pub fn new() -> Self {
        let mut entries = Vec::with_capacity(256);
        for a in 0u16..16 {
            for b in 0u16..16 {
                entries.push((a * b) as u8);
            }
        }
        MultRom {
            entries,
            reads: AtomicU64::new(0),
        }
    }

    /// Number of stored products.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// ROM storage in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.entries.len()
    }

    /// Looks up a nibble product.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when either operand exceeds 15.
    pub fn lookup(&self, a: u8, b: u8) -> u8 {
        debug_assert!(
            a <= 15 && b <= 15,
            "rom operands must be nibbles, got {a} x {b}"
        );
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.entries[(a as usize) * 16 + b as usize]
    }

    /// One "broadcast" lookup (Fig. 7): the selected nibble of the
    /// streamed operand is multiplied against all sixteen nibbles of the
    /// eight-byte input register in a single timescale. Returns the
    /// sixteen products, least-significant nibble of register byte 0
    /// first.
    pub fn broadcast(&self, selector: u8, register: &[u8; 8]) -> [u16; 8] {
        debug_assert!(selector <= 15);
        let mut out = [0u16; 8];
        for (i, &byte) in register.iter().enumerate() {
            let lo = self.lookup(selector, byte & 0xf) as u16;
            let hi = self.lookup(selector, byte >> 4) as u16;
            out[i] = lo + (hi << 4);
        }
        out
    }

    /// A datapath product read that does **not** touch the read counter:
    /// the batched kernels resolve every product through this and then
    /// fold the whole tile's traffic into the counter with one
    /// [`MultRom::add_reads`] call.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when either operand exceeds 15.
    pub fn product(&self, a: u8, b: u8) -> u8 {
        debug_assert!(
            a <= 15 && b <= 15,
            "rom operands must be nibbles, got {a} x {b}"
        );
        self.entries[(a as usize) * 16 + b as usize]
    }

    /// Folds a batch of `n` lookups into the read counter with a single
    /// atomic add (the per-tile accounting pattern of the batched BCE
    /// kernels).
    pub fn add_reads(&self, n: u64) {
        self.reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Lookups performed since construction.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Resets the read counter.
    pub fn reset_reads(&self) {
        self.reads.store(0, Ordering::Relaxed)
    }
}

impl Default for MultRom {
    fn default() -> Self {
        MultRom::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_products_correct() {
        let rom = MultRom::new();
        for a in 0u8..16 {
            for b in 0u8..16 {
                assert_eq!(rom.lookup(a, b) as u16, a as u16 * b as u16);
            }
        }
    }

    #[test]
    fn broadcast_multiplies_register_bytes() {
        let rom = MultRom::new();
        let register = [0x12, 0x34, 0xFF, 0x00, 0x9A, 0x01, 0x10, 0x88];
        let sel = 7u8;
        let out = rom.broadcast(sel, &register);
        for (i, &byte) in register.iter().enumerate() {
            let expected =
                sel as u16 * (byte & 0xf) as u16 + ((sel as u16 * (byte >> 4) as u16) << 4);
            assert_eq!(out[i], expected, "byte {i}");
        }
    }

    #[test]
    fn broadcast_counts_sixteen_reads() {
        let rom = MultRom::new();
        rom.broadcast(3, &[0u8; 8]);
        assert_eq!(rom.reads(), 16);
    }

    #[test]
    fn rom_is_256_bytes() {
        let rom = MultRom::new();
        assert_eq!(rom.entry_count(), 256);
        assert_eq!(rom.storage_bytes(), 256);
    }

    #[test]
    fn read_counter_resets() {
        let rom = MultRom::new();
        rom.lookup(1, 1);
        assert_eq!(rom.reads(), 1);
        rom.reset_reads();
        assert_eq!(rom.reads(), 0);
    }
}
