//! The functional BCE execution engine (paper §III-A, §III-C, Fig. 7).
//!
//! A BCE sits at the edge of each subarray and executes PIM kernels:
//! dot products in *conv mode* (one 8:1 mux, one adder, two shifters —
//! half an 8-bit MAC per cycle), tiled matrix multiplication in *matmul
//! mode* (the switch MUX plus all sixteen adders/shifters — four 8-bit
//! MACs per cycle), pooling, activations, softmax and requantization.
//!
//! All operations are **functionally exact** over the integer datapath
//! (products via the nibble ROM or the subarray multiply LUT) and return
//! [`BceStats`] event counts for the cost model.

use pim_lut::{
    BatchedLutMultiplier, DivLut, LutError, OpCost, PwlFunction, PwlTable, SoftmaxEngine,
};
use serde::{Deserialize, Serialize};

use crate::isa::{ActivationKind, Precision};
use crate::mult_rom::MultRom;

/// The two structural configurations of the BCE datapath (paper §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum BceMode {
    /// Convolution mode: 1 x {8:1 MUX}, 1 adder, 2 shifters; 0.5 8-bit
    /// MACs per cycle; 0.4 mW.
    #[default]
    Conv,
    /// Matrix-multiply mode: the switch MUX (8 x {8:1 MUX}), all adders
    /// and shifters; 4 8-bit MACs per cycle; 1.3 mW.
    MatMul,
}

impl BceMode {
    /// Peak 8-bit MACs per cycle in this mode (paper §V-D).
    pub fn macs_per_cycle_int8(self) -> f64 {
        match self {
            BceMode::Conv => 0.5,
            BceMode::MatMul => 4.0,
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            BceMode::Conv => "conv",
            BceMode::MatMul => "matmul",
        }
    }
}

/// Which structure supplies 4-bit products (ablation axis; §III-C1 vs
/// §V-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MulPath {
    /// The hardwired 256-entry nibble ROM inside the BCE (the evaluated
    /// configuration: "MAC operations are performed using the BCE
    /// hardwired-LUT", §V-D).
    #[default]
    HardwiredRom,
    /// The 49-entry odd x odd table in the subarray's reduced-cost LUT
    /// rows (§III-C1), at one decoupled-bitline read per odd x odd
    /// product.
    SubarrayLut,
}

/// Event counts produced by one BCE operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct BceStats {
    /// Fine-grained arithmetic events.
    pub cost: OpCost,
    /// Completed multiply-accumulates.
    pub macs: u64,
    /// Bytes of weights read from the subarray data rows.
    pub weight_bytes_read: u64,
    /// Accesses to the reduced-cost rows for intermediate partial
    /// products (§V-B).
    pub partial_row_accesses: u64,
}

impl BceStats {
    /// Merges another stats record into this one.
    pub fn merge(&mut self, other: BceStats) {
        self.cost += other.cost;
        self.macs += other.macs;
        self.weight_bytes_read += other.weight_bytes_read;
        self.partial_row_accesses += other.partial_row_accesses;
    }

    /// Full 64-bit subarray row reads implied by the weight traffic
    /// (`row_bytes` per read, normally 8).
    pub fn weight_row_reads(&self, row_bytes: u64) -> u64 {
        self.weight_bytes_read.div_ceil(row_bytes)
    }
}

/// The functional BCE.
///
/// ```
/// use pim_bce::{Bce, BceMode};
/// let bce = Bce::new(BceMode::MatMul).unwrap();
/// let weights = [[1i8, -2, 3, -4, 5, -6, 7, -8]; 4];
/// let inputs = [1i8, 2, 3, 4];
/// let (out, stats) = bce.matmul_tile(&inputs, &weights);
/// assert_eq!(out[0], 1 + 2 + 3 + 4); // column 0 of the tile
/// // Four streamed elements at 4 MACs/cycle: 8 cycles, 32 MACs.
/// assert_eq!(stats.cost.cycles, 8);
/// assert_eq!(stats.macs, 32);
/// ```
#[derive(Debug, Clone)]
pub struct Bce {
    mode: BceMode,
    mul_path: MulPath,
    subarray_mul: BatchedLutMultiplier,
    rom: MultRom,
    sigmoid: PwlTable,
    tanh: PwlTable,
    exp: PwlTable,
    div: DivLut,
    softmax: SoftmaxEngine,
}

impl Bce {
    /// Creates a BCE in the given mode with the default LUT tables and
    /// the hardwired-ROM multiply path.
    ///
    /// # Errors
    ///
    /// Propagates LUT construction failures.
    pub fn new(mode: BceMode) -> Result<Self, LutError> {
        Self::with_mul_path(mode, MulPath::default())
    }

    /// Creates a BCE with an explicit multiply path (ablation).
    ///
    /// # Errors
    ///
    /// Propagates LUT construction failures.
    pub fn with_mul_path(mode: BceMode, mul_path: MulPath) -> Result<Self, LutError> {
        Ok(Bce {
            mode,
            mul_path,
            subarray_mul: BatchedLutMultiplier::new(),
            rom: MultRom::new(),
            sigmoid: PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 64)?,
            tanh: PwlTable::new(PwlFunction::Tanh, -4.0, 4.0, 64)?,
            exp: PwlTable::new(PwlFunction::Exp, -16.0, 0.0, 128)?,
            div: DivLut::new(8)?,
            softmax: SoftmaxEngine::new()?,
        })
    }

    /// The configured mode.
    pub fn mode(&self) -> BceMode {
        self.mode
    }

    /// The configured multiply path.
    pub fn mul_path(&self) -> MulPath {
        self.mul_path
    }

    /// Value of one signed 8-bit product through the ROM datapath (four
    /// nibble partials), without touching the read counter — batched
    /// kernels fold their ROM traffic per tile via [`MultRom::add_reads`].
    #[inline]
    fn rom_mul_i8_value(&self, a: i8, b: i8) -> i16 {
        let sign = (a < 0) ^ (b < 0);
        let (ma, mb) = (a.unsigned_abs(), b.unsigned_abs());
        let (a1, a0) = (ma >> 4, ma & 0xf);
        let (b1, b0) = (mb >> 4, mb & 0xf);
        let mag = (self.rom.product(a0, b0) as u32)
            + ((self.rom.product(a0, b1) as u32) << 4)
            + ((self.rom.product(a1, b0) as u32) << 4)
            + ((self.rom.product(a1, b1) as u32) << 8);
        let p = if sign { -(mag as i32) } else { mag as i32 };
        p as i16
    }

    /// Value of one signed 16-bit product through the ROM datapath
    /// (sixteen nibble partials), read counter untouched.
    #[inline]
    fn rom_mul_i16_value(&self, a: i16, b: i16) -> i32 {
        let sign = (a < 0) ^ (b < 0);
        let (ma, mb) = (a.unsigned_abs(), b.unsigned_abs());
        let mut mag: u64 = 0;
        for i in 0..4 {
            let pa = ((ma >> (4 * i)) & 0xf) as u8;
            for j in 0..4 {
                let pb = ((mb >> (4 * j)) & 0xf) as u8;
                mag += (self.rom.product(pa, pb) as u64) << (4 * (i + j));
            }
        }
        let p = if sign { -(mag as i64) } else { mag as i64 };
        p as i32
    }

    /// A conv-mode dot product: weights held in the subarray, inputs
    /// streamed from the systolic registers.
    ///
    /// Throughput follows the paper: 0.5 MAC/cycle at int8 (two cycles
    /// per MAC), 1 MAC/cycle at int4, 0.125 MAC/cycle at int16.
    ///
    /// The whole dot runs batched: products stream through the
    /// direct-indexed tables, the [`OpCost`] is folded per call rather
    /// than per element, and the table read counter advances with one
    /// atomic add for the entire batch.
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length, or when a value is out of
    /// range for the precision.
    pub fn dot_conv(&self, weights: &[i8], inputs: &[i8], precision: Precision) -> (i32, BceStats) {
        assert_eq!(
            weights.len(),
            inputs.len(),
            "dot operands must have equal length"
        );
        let n = weights.len() as u64;
        let mut stats = BceStats::default();
        let acc = match self.mul_path {
            MulPath::SubarrayLut => {
                let (acc, mut c) = match precision {
                    Precision::Int4 => self.subarray_mul.dot_i4(weights, inputs),
                    Precision::Int8 => self.subarray_mul.dot_i8(weights, inputs),
                    Precision::Int16 => {
                        // 16-bit operands arrive as sign-extended pairs
                        // in the full simulator; at the unit level we
                        // model the cost by squaring the nibble count.
                        let (acc, mut c) = self.subarray_mul.dot_i8(weights, inputs);
                        c.cycles *= 4;
                        c.rom_reads *= 4;
                        (acc, c)
                    }
                };
                // The batched kernels account n - 1 accumulate adds;
                // the conv datapath also adds into the parked partial.
                if n > 0 {
                    c.adds += 1;
                }
                stats.cost = c;
                acc
            }
            MulPath::HardwiredRom => {
                let mut acc: i32 = 0;
                let (per_mul, rom_traffic) = match precision {
                    Precision::Int4 => {
                        for (&w, &x) in weights.iter().zip(inputs.iter()) {
                            let sign = (w < 0) ^ (x < 0);
                            let mag = self.rom.product(w.unsigned_abs(), x.unsigned_abs()) as i32;
                            acc += if sign { -mag } else { mag };
                        }
                        (
                            OpCost {
                                rom_reads: 1,
                                cycles: 1,
                                ..OpCost::ZERO
                            },
                            n,
                        )
                    }
                    Precision::Int8 => {
                        for (&w, &x) in weights.iter().zip(inputs.iter()) {
                            acc += self.rom_mul_i8_value(w, x) as i32;
                        }
                        (
                            OpCost {
                                rom_reads: 4,
                                adds: 3,
                                shifts: 2,
                                cycles: 2,
                                ..OpCost::ZERO
                            },
                            4 * n,
                        )
                    }
                    Precision::Int16 => {
                        for (&w, &x) in weights.iter().zip(inputs.iter()) {
                            acc += self.rom_mul_i8_value(w, x) as i32;
                        }
                        (
                            OpCost {
                                rom_reads: 16,
                                adds: 3,
                                shifts: 2,
                                cycles: 8,
                                ..OpCost::ZERO
                            },
                            4 * n,
                        )
                    }
                };
                self.rom.add_reads(rom_traffic);
                stats.cost = per_mul.repeated(n);
                stats.cost.adds += n;
                acc
            }
        };
        stats.macs = n;
        stats.weight_bytes_read = (weights.len() as u64 * precision.bits() as u64).div_ceil(8);
        // The running partial sum is parked in the reduced-cost rows once
        // per dot product (write + later read).
        stats.partial_row_accesses = 2;
        (acc, stats)
    }

    /// A conv-mode dot product over true 16-bit operands: each product
    /// decomposes into sixteen nibble partials (eight cycles at two
    /// partials per cycle), accumulating into a 64-bit register.
    ///
    /// # Panics
    ///
    /// Panics when the slices differ in length.
    pub fn dot_conv_i16(&self, weights: &[i16], inputs: &[i16]) -> (i64, BceStats) {
        assert_eq!(
            weights.len(),
            inputs.len(),
            "dot operands must have equal length"
        );
        let n = weights.len() as u64;
        let mut stats = BceStats::default();
        let acc = match self.mul_path {
            MulPath::SubarrayLut => {
                let (acc, mut c) = self.subarray_mul.dot_i16(weights, inputs);
                if n > 0 {
                    c.adds += 1;
                }
                stats.cost = c;
                acc
            }
            MulPath::HardwiredRom => {
                let mut acc: i64 = 0;
                for (&w, &x) in weights.iter().zip(inputs.iter()) {
                    acc += self.rom_mul_i16_value(w, x) as i64;
                }
                self.rom.add_reads(16 * n);
                stats.cost = OpCost {
                    rom_reads: 16,
                    adds: 15,
                    shifts: 8,
                    cycles: 8,
                    ..OpCost::ZERO
                }
                .repeated(n);
                stats.cost.adds += n;
                acc
            }
        };
        stats.macs = n;
        stats.weight_bytes_read = weights.len() as u64 * 2;
        stats.partial_row_accesses = 2;
        (acc, stats)
    }

    /// A matmul-mode tile step (Fig. 7): `inputs[k]` multiplies row `k`
    /// of the `rows x 8` weight tile, accumulating into eight output
    /// registers. Two cycles per streamed input element, eight MACs each.
    ///
    /// # Panics
    ///
    /// Panics when `inputs.len() != tile.len()`.
    pub fn matmul_tile(&self, inputs: &[i8], tile: &[[i8; 8]]) -> ([i32; 8], BceStats) {
        assert_eq!(
            inputs.len(),
            tile.len(),
            "input stream must match tile rows"
        );
        let n = inputs.len() as u64;
        let mut acc = [0i32; 8];
        match self.mul_path {
            MulPath::HardwiredRom => {
                // LS-4 then MS-4 of the streamed element select ROM rows;
                // the switch MUX applies them to all eight register
                // operands. Eight multiplies of four partials each: the
                // tile's ROM traffic folds into the counter in one add.
                for (&a, row) in inputs.iter().zip(tile.iter()) {
                    for (j, &b) in row.iter().enumerate() {
                        acc[j] += self.rom_mul_i8_value(a, b) as i32;
                    }
                }
                self.rom.add_reads(32 * n);
            }
            MulPath::SubarrayLut => {
                let mut lut_reads = 0u64;
                for (&a, row) in inputs.iter().zip(tile.iter()) {
                    let ma = a.unsigned_abs();
                    for (j, &b) in row.iter().enumerate() {
                        let (mag, pc) = self.subarray_mul.mul_u8_parts(ma, b.unsigned_abs());
                        lut_reads += pc.lut_reads();
                        let sign = (a < 0) ^ (b < 0);
                        acc[j] += if sign { -(mag as i32) } else { mag as i32 };
                    }
                }
                self.subarray_mul.table().add_reads(lut_reads);
            }
        }
        // Cost charged at the architectural granularity, per streamed
        // element: two ROM broadcasts of sixteen lookups, eight
        // accumulating adds and the operand-select shifts, in two cycles.
        let stats = BceStats {
            cost: OpCost {
                rom_reads: 32,
                adds: 16,
                shifts: 16,
                cycles: 2,
                ..OpCost::ZERO
            }
            .repeated(n),
            macs: 8 * n,
            weight_bytes_read: (tile.len() * 8) as u64,
            partial_row_accesses: 2,
        };
        (acc, stats)
    }

    /// Int4 matmul tile step: one ROM broadcast per element (one cycle,
    /// eight MACs), the source of Fig. 14's mixed-precision speedup.
    ///
    /// # Panics
    ///
    /// Panics when `inputs.len() != tile.len()` or operands exceed 4-bit
    /// signed range.
    pub fn matmul_tile_i4(&self, inputs: &[i8], tile: &[[i8; 8]]) -> ([i32; 8], BceStats) {
        assert_eq!(
            inputs.len(),
            tile.len(),
            "input stream must match tile rows"
        );
        let n = inputs.len() as u64;
        let mut acc = [0i32; 8];
        match self.mul_path {
            MulPath::HardwiredRom => {
                for (&a, row) in inputs.iter().zip(tile.iter()) {
                    let ma = a.unsigned_abs();
                    for (j, &b) in row.iter().enumerate() {
                        let mag = self.rom.product(ma, b.unsigned_abs()) as i32;
                        let sign = (a < 0) ^ (b < 0);
                        acc[j] += if sign { -mag } else { mag };
                    }
                }
                self.rom.add_reads(8 * n);
            }
            MulPath::SubarrayLut => {
                let products = self.subarray_mul.products();
                let mut lut_reads = 0u64;
                for (&a, row) in inputs.iter().zip(tile.iter()) {
                    assert!((-8..=7).contains(&a), "operands must be 4-bit signed");
                    let ma = a.unsigned_abs();
                    for (j, &b) in row.iter().enumerate() {
                        assert!((-8..=7).contains(&b), "operands must be 4-bit signed");
                        let mb = b.unsigned_abs();
                        lut_reads += self.subarray_mul.packed_cost(ma, mb).lut_reads();
                        let mag = products[((ma as usize) << 4) | mb as usize] as i32;
                        let sign = (a < 0) ^ (b < 0);
                        acc[j] += if sign { -mag } else { mag };
                    }
                }
                self.subarray_mul.table().add_reads(lut_reads);
            }
        }
        let stats = BceStats {
            cost: OpCost {
                rom_reads: 8,
                adds: 8,
                shifts: 8,
                cycles: 1,
                ..OpCost::ZERO
            }
            .repeated(n),
            macs: 8 * n,
            weight_bytes_read: (tile.len() * 8 / 2) as u64,
            partial_row_accesses: 2,
        };
        (acc, stats)
    }

    /// Max pooling over a window (comparator chain through the adder).
    ///
    /// # Panics
    ///
    /// Panics on an empty window.
    pub fn max_pool(&self, window: &[i8]) -> (i8, BceStats) {
        assert!(!window.is_empty(), "pooling window must be non-empty");
        // Invariant: the assert above guarantees a maximum exists.
        let max = *window.iter().max().expect("non-empty");
        let mut stats = BceStats::default();
        stats.cost.adds = window.len() as u64 - 1;
        stats.cost.cycles = window.len() as u64;
        (max, stats)
    }

    /// Average pooling: accumulate then divide via the Taylor LUT
    /// (§III-C2), rounding to nearest.
    ///
    /// # Panics
    ///
    /// Panics on an empty window.
    pub fn avg_pool(&self, window: &[i8]) -> (i8, BceStats) {
        assert!(!window.is_empty(), "pooling window must be non-empty");
        let sum: i32 = window.iter().map(|&v| v as i32).sum();
        let mut stats = BceStats::default();
        stats.cost.adds = window.len() as u64 - 1;
        stats.cost.cycles = window.len() as u64;
        // Invariant: the assert above makes the divisor window.len() > 0,
        // the only error `divide_round` reports.
        let (mag, div_cost) = self
            .div
            .divide_round(sum.unsigned_abs() as u64, window.len() as u64)
            .expect("window length is non-zero");
        stats.cost += div_cost;
        let avg = if sum < 0 { -(mag as i32) } else { mag as i32 };
        (avg.clamp(i8::MIN as i32, i8::MAX as i32) as i8, stats)
    }

    /// Element-wise activation over real-valued (dequantized) data.
    pub fn activation(&self, kind: ActivationKind, values: &[f64]) -> (Vec<f64>, BceStats) {
        let mut stats = BceStats::default();
        let out = values
            .iter()
            .map(|&x| match kind {
                ActivationKind::Relu => {
                    stats.cost.adds += 1;
                    stats.cost.cycles += 1;
                    x.max(0.0)
                }
                ActivationKind::Sigmoid => {
                    let (y, c) = self.sigmoid.eval(x);
                    stats.cost += c;
                    y
                }
                ActivationKind::Tanh => {
                    let (y, c) = self.tanh.eval(x);
                    stats.cost += c;
                    y
                }
                ActivationKind::Exp => {
                    let (y, c) = self.exp.eval(x.min(0.0));
                    stats.cost += c;
                    y
                }
            })
            .collect();
        (out, stats)
    }

    /// Softmax over real-valued logits via the exp table and division LUT.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::InvalidTable`] for an empty input.
    pub fn softmax(&self, logits: &[f64]) -> Result<(Vec<f64>, BceStats), LutError> {
        let (probs, cost) = self.softmax.softmax(logits)?;
        let stats = BceStats {
            cost,
            ..BceStats::default()
        };
        Ok((probs, stats))
    }

    /// gemmlowp-style requantization (§V-D): multiply by a fixed-point
    /// multiplier, round, shift, add the zero point and saturate to i8.
    ///
    /// `multiplier` is a Q0.31 fixed-point value in `[2^30, 2^31)`;
    /// `shift` is the right shift applied after the high multiply.
    pub fn requantize(
        &self,
        accs: &[i32],
        multiplier: i32,
        shift: i32,
        zero_point: i32,
    ) -> (Vec<i8>, BceStats) {
        let mut stats = BceStats::default();
        let out = accs
            .iter()
            .map(|&acc| {
                // Rounding-doubling high multiply, as in gemmlowp.
                let product = acc as i64 * multiplier as i64;
                let nudge = if product >= 0 {
                    1i64 << 30
                } else {
                    1 - (1i64 << 30)
                };
                let high = ((product + nudge) >> 31) as i32;
                let shifted = rounding_shift_right(high, shift);
                stats.cost.shifts += 2;
                stats.cost.adds += 2;
                stats.cost.rom_reads += 4; // the scale multiply reuses the ROM datapath
                stats.cost.cycles += 3;
                (shifted + zero_point).clamp(i8::MIN as i32, i8::MAX as i32) as i8
            })
            .collect();
        stats.partial_row_accesses = accs.len().div_ceil(8) as u64 * 2;
        (out, stats)
    }

    /// Total subarray-LUT reads performed by this engine so far.
    pub fn subarray_lut_reads(&self) -> u64 {
        self.subarray_mul.table().reads()
    }

    /// Total hardwired-ROM reads performed by this engine so far.
    pub fn rom_reads(&self) -> u64 {
        self.rom.reads()
    }
}

/// Arithmetic right shift with round-to-nearest (ties away from zero),
/// matching gemmlowp's `RoundingDivideByPOT`.
fn rounding_shift_right(value: i32, shift: i32) -> i32 {
    if shift <= 0 {
        return value << (-shift).min(31);
    }
    let mask = (1i64 << shift) - 1;
    let remainder = (value as i64) & mask;
    let threshold = (mask >> 1) + i64::from(value < 0);
    let base = (value as i64) >> shift;
    (base + i64::from(remainder > threshold)) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn bce(mode: BceMode) -> Bce {
        Bce::new(mode).unwrap()
    }

    #[test]
    fn conv_dot_matches_native_int8() {
        let b = bce(BceMode::Conv);
        let w: Vec<i8> = vec![3, -5, 127, -128, 0, 1, -1, 44];
        let x: Vec<i8> = vec![-2, 9, -128, 127, 55, -1, 1, 3];
        let (d, stats) = b.dot_conv(&w, &x, Precision::Int8);
        let expected: i32 = w.iter().zip(&x).map(|(&a, &b)| a as i32 * b as i32).sum();
        assert_eq!(d, expected);
        // 0.5 MAC/cycle: 8 MACs in 16 cycles.
        assert_eq!(stats.cost.cycles, 16);
        assert_eq!(stats.macs, 8);
        assert_eq!(stats.weight_bytes_read, 8);
    }

    #[test]
    fn conv_dot_int4_is_twice_as_fast() {
        let b = bce(BceMode::Conv);
        let w: Vec<i8> = vec![3, -5, 7, -8, 0, 1, -1, 4];
        let x: Vec<i8> = vec![-2, 7, -8, 7, 5, -1, 1, 3];
        let (d, stats) = b.dot_conv(&w, &x, Precision::Int4);
        let expected: i32 = w.iter().zip(&x).map(|(&a, &b)| a as i32 * b as i32).sum();
        assert_eq!(d, expected);
        assert_eq!(stats.cost.cycles, 8); // 1 MAC/cycle
        assert_eq!(stats.weight_bytes_read, 4); // packed nibbles
    }

    #[test]
    fn conv_dot_i16_matches_native() {
        let b = bce(BceMode::Conv);
        let w: Vec<i16> = vec![3, -500, 32767, -32768, 0, 1, -1, 4444];
        let x: Vec<i16> = vec![-2, 900, -32768, 32767, 5500, -1, 1, 333];
        let (d, stats) = b.dot_conv_i16(&w, &x);
        let expected: i64 = w.iter().zip(&x).map(|(&a, &b)| a as i64 * b as i64).sum();
        assert_eq!(d, expected);
        // 0.125 MAC/cycle: 8 MACs in 64 cycles.
        assert_eq!(stats.cost.cycles, 64);
        assert_eq!(stats.weight_bytes_read, 16);
    }

    #[test]
    fn i16_paths_agree_across_rom_and_lut() {
        let rom = Bce::with_mul_path(BceMode::Conv, MulPath::HardwiredRom).unwrap();
        let lut = Bce::with_mul_path(BceMode::Conv, MulPath::SubarrayLut).unwrap();
        let w: Vec<i16> = (0..64).map(|i| (i * 997 - 30_000) as i16).collect();
        let x: Vec<i16> = (0..64).map(|i| (i * 773 - 20_000) as i16).collect();
        let (a, _) = rom.dot_conv_i16(&w, &x);
        let (b, _) = lut.dot_conv_i16(&w, &x);
        assert_eq!(a, b);
    }

    #[test]
    fn matmul_tile_matches_native() {
        let b = bce(BceMode::MatMul);
        let tile: Vec<[i8; 8]> = (0..16)
            .map(|k| std::array::from_fn(|j| ((k * 7 + j * 13) % 251) as i8))
            .collect();
        let inputs: Vec<i8> = (0..16).map(|k| (k * 17 % 127) as i8 - 63).collect();
        let (out, stats) = b.matmul_tile(&inputs, &tile);
        for j in 0..8 {
            let expected: i32 = inputs
                .iter()
                .zip(&tile)
                .map(|(&a, row)| a as i32 * row[j] as i32)
                .sum();
            assert_eq!(out[j], expected, "column {j}");
        }
        // 4 MACs/cycle: 16 elements x 8 MACs = 128 MACs in 32 cycles.
        assert_eq!(stats.macs, 128);
        assert_eq!(stats.cost.cycles, 32);
    }

    #[test]
    fn matmul_int4_doubles_throughput() {
        let b = bce(BceMode::MatMul);
        let tile: Vec<[i8; 8]> = (0..8).map(|k| [k as i8 - 4; 8]).collect();
        let inputs: Vec<i8> = vec![3, -3, 7, -8, 1, 0, -1, 5];
        let (out, stats) = b.matmul_tile_i4(&inputs, &tile);
        for j in 0..8 {
            let expected: i32 = inputs
                .iter()
                .zip(&tile)
                .map(|(&a, row)| a as i32 * row[j] as i32)
                .sum();
            assert_eq!(out[j], expected);
        }
        assert_eq!(stats.cost.cycles, 8); // 8 MACs/cycle
        assert_eq!(stats.macs, 64);
    }

    #[test]
    fn mode_peak_throughputs_match_paper() {
        assert_eq!(BceMode::Conv.macs_per_cycle_int8(), 0.5);
        assert_eq!(BceMode::MatMul.macs_per_cycle_int8(), 4.0);
    }

    #[test]
    fn subarray_lut_path_also_exact() {
        let b = Bce::with_mul_path(BceMode::Conv, MulPath::SubarrayLut).unwrap();
        let w: Vec<i8> = vec![99, -45, 13, 77];
        let x: Vec<i8> = vec![-11, 22, -33, 44];
        let (d, _) = b.dot_conv(&w, &x, Precision::Int8);
        let expected: i32 = w.iter().zip(&x).map(|(&a, &b)| a as i32 * b as i32).sum();
        assert_eq!(d, expected);
        assert!(b.subarray_lut_reads() > 0);
        assert_eq!(b.rom_reads(), 0);
    }

    #[test]
    fn rom_path_counts_rom_reads() {
        let b = bce(BceMode::Conv);
        let _ = b.dot_conv(&[77, -77], &[55, -55], Precision::Int8);
        assert!(b.rom_reads() > 0);
        assert_eq!(b.subarray_lut_reads(), 0);
    }

    #[test]
    fn max_pool_picks_maximum() {
        let b = bce(BceMode::Conv);
        let (m, stats) = b.max_pool(&[-5, 3, 127, -128, 0]);
        assert_eq!(m, 127);
        assert_eq!(stats.cost.adds, 4);
    }

    #[test]
    fn avg_pool_rounds_to_nearest() {
        let b = bce(BceMode::Conv);
        let (a, _) = b.avg_pool(&[10, 20, 30, 40]);
        assert_eq!(a, 25);
        let (a, _) = b.avg_pool(&[-10, -20, -30, -40]);
        assert_eq!(a, -25);
        let (a, _) = b.avg_pool(&[1, 2]);
        assert!((a - 2).abs() <= 1); // 1.5 rounds to 2 (or 1 within LUT error)
    }

    #[test]
    fn relu_activation() {
        let b = bce(BceMode::Conv);
        let (y, stats) = b.activation(ActivationKind::Relu, &[-1.0, 0.0, 2.5]);
        assert_eq!(y, vec![0.0, 0.0, 2.5]);
        assert_eq!(stats.cost.lut_reads, 0);
    }

    #[test]
    fn sigmoid_activation_close_to_exact() {
        let b = bce(BceMode::Conv);
        let xs = [-3.0, -1.0, 0.0, 1.0, 3.0];
        let (y, stats) = b.activation(ActivationKind::Sigmoid, &xs);
        for (i, &x) in xs.iter().enumerate() {
            let exact = 1.0 / (1.0 + (-x).exp());
            assert!((y[i] - exact).abs() < 2e-3, "x={x}");
        }
        assert_eq!(stats.cost.lut_reads, xs.len() as u64);
    }

    #[test]
    fn softmax_through_engine() {
        let b = bce(BceMode::MatMul);
        let (p, stats) = b.softmax(&[0.0, 1.0, 2.0]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 2e-2);
        assert!(stats.cost.lut_reads > 0);
    }

    #[test]
    fn requantize_saturates_and_matches_reference() {
        let b = bce(BceMode::Conv);
        // multiplier ~ 0.75 in Q0.31, shift 8: scale ~ 0.00293.
        let multiplier = (0.75 * (1u64 << 31) as f64) as i32;
        let (q, _) = b.requantize(&[1000, -1000, 1_000_000, -1_000_000, 0], multiplier, 8, 3);
        assert_eq!(q[4], 3);
        assert_eq!(q[2], 127); // saturated high
        assert_eq!(q[3], -128); // saturated low
        let expected = (1000.0f64 * 0.75 / 256.0).round() as i32 + 3;
        assert_eq!(q[0] as i32, expected);
    }

    #[test]
    fn rounding_shift_right_matches_float() {
        for v in [-1000i32, -17, -1, 0, 1, 17, 1000, 123456] {
            for s in 1..10 {
                let got = rounding_shift_right(v, s);
                let exact = (v as f64 / (1i64 << s) as f64).round();
                assert!(
                    (got as f64 - exact).abs() <= 0.5 + 1e-9,
                    "v={v} s={s} got={got}"
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_conv_dot_exact(
            w in proptest::collection::vec(any::<i8>(), 1..64),
        ) {
            let b = bce(BceMode::Conv);
            let x: Vec<i8> = w.iter().map(|&v| v.wrapping_mul(31)).collect();
            let (d, stats) = b.dot_conv(&w, &x, Precision::Int8);
            let expected: i32 = w.iter().zip(&x).map(|(&a, &b)| a as i32 * b as i32).sum();
            prop_assert_eq!(d, expected);
            prop_assert_eq!(stats.cost.cycles, 2 * w.len() as u64);
        }

        #[test]
        fn prop_matmul_tile_exact(
            rows in 1usize..32,
            seed in any::<u64>(),
        ) {
            let b = bce(BceMode::MatMul);
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as i8
            };
            let tile: Vec<[i8; 8]> = (0..rows).map(|_| std::array::from_fn(|_| next())).collect();
            let inputs: Vec<i8> = (0..rows).map(|_| next()).collect();
            let (out, _) = b.matmul_tile(&inputs, &tile);
            for j in 0..8 {
                let expected: i32 = inputs.iter().zip(&tile)
                    .map(|(&a, row)| a as i32 * row[j] as i32).sum();
                prop_assert_eq!(out[j], expected);
            }
        }

        #[test]
        fn prop_batched_rom_dot_stats_equal_summed_scalar_costs(
            w in proptest::collection::vec(any::<i8>(), 0..77),
        ) {
            // 0..77 includes empty, odd and even lengths not a multiple
            // of the SWAR lane width. The ROM path's per-element cost is
            // the architectural constant, so the batched totals must be
            // exactly n of them plus n accumulate adds — and the ROM
            // counter must advance by the same 4n a scalar walk produced.
            let b = Bce::with_mul_path(BceMode::Conv, MulPath::HardwiredRom).unwrap();
            let x: Vec<i8> = w.iter().map(|&v| v.wrapping_mul(113)).collect();
            let (d, stats) = b.dot_conv(&w, &x, Precision::Int8);
            let expected: i32 = w.iter().zip(&x).map(|(&a, &b)| a as i32 * b as i32).sum();
            prop_assert_eq!(d, expected);
            let n = w.len() as u64;
            let mut want = OpCost {
                rom_reads: 4, adds: 3, shifts: 2, cycles: 2, ..OpCost::ZERO
            }.repeated(n);
            want.adds += n;
            prop_assert_eq!(stats.cost, want);
            prop_assert_eq!(b.rom_reads(), 4 * n);
        }

        #[test]
        fn prop_batched_subarray_dot_stats_equal_summed_scalar_costs(
            w in proptest::collection::vec(any::<i8>(), 0..77),
        ) {
            // The subarray path's cost is data-dependent: rebuild the
            // expectation one scalar multiply at a time and require the
            // batched totals (and the LUT read counter) to match it.
            let b = Bce::with_mul_path(BceMode::Conv, MulPath::SubarrayLut).unwrap();
            let x: Vec<i8> = w.iter().map(|&v| v.wrapping_add(59)).collect();
            let (d, stats) = b.dot_conv(&w, &x, Precision::Int8);
            let expected: i32 = w.iter().zip(&x).map(|(&a, &b)| a as i32 * b as i32).sum();
            prop_assert_eq!(d, expected);
            let scalar = pim_lut::LutMultiplier::new();
            let mut want: OpCost = w.iter().zip(&x).map(|(&a, &b)| scalar.mul_i8(a, b).1).sum();
            want.adds += w.len() as u64;
            prop_assert_eq!(stats.cost, want);
            prop_assert_eq!(b.subarray_lut_reads(), scalar.table().reads());
        }

        #[test]
        fn prop_batched_matmul_counters_match_scalar_walk(
            rows in 0usize..24,
            seed in any::<u64>(),
        ) {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (state >> 33) as i8
            };
            let tile: Vec<[i8; 8]> = (0..rows).map(|_| std::array::from_fn(|_| next())).collect();
            let inputs: Vec<i8> = (0..rows).map(|_| next()).collect();

            let rom = Bce::with_mul_path(BceMode::MatMul, MulPath::HardwiredRom).unwrap();
            let (out_rom, stats_rom) = rom.matmul_tile(&inputs, &tile);
            prop_assert_eq!(rom.rom_reads(), 32 * rows as u64);

            let lut = Bce::with_mul_path(BceMode::MatMul, MulPath::SubarrayLut).unwrap();
            let (out_lut, stats_lut) = lut.matmul_tile(&inputs, &tile);
            let scalar = pim_lut::LutMultiplier::new();
            for (&a, row) in inputs.iter().zip(&tile) {
                for &b in row {
                    let _ = scalar.mul_i8(a, b);
                }
            }
            prop_assert_eq!(lut.subarray_lut_reads(), scalar.table().reads());

            // Both paths produce the same values and the same
            // architectural tile cost.
            prop_assert_eq!(out_rom, out_lut);
            prop_assert_eq!(stats_rom, stats_lut);
            for j in 0..8 {
                let expected: i32 = inputs.iter().zip(&tile)
                    .map(|(&a, row)| a as i32 * row[j] as i32).sum();
                prop_assert_eq!(out_rom[j], expected);
            }
        }

        #[test]
        fn prop_batched_i16_dot_stats_equal_summed_scalar_costs(
            w in proptest::collection::vec(any::<i16>(), 0..41),
        ) {
            let x: Vec<i16> = w.iter().map(|&v| v.wrapping_mul(331)).collect();
            let expected: i64 = w.iter().zip(&x).map(|(&a, &b)| a as i64 * b as i64).sum();
            let n = w.len() as u64;

            let rom = Bce::with_mul_path(BceMode::Conv, MulPath::HardwiredRom).unwrap();
            let (d, stats) = rom.dot_conv_i16(&w, &x);
            prop_assert_eq!(d, expected);
            let mut want = OpCost {
                rom_reads: 16, adds: 15, shifts: 8, cycles: 8, ..OpCost::ZERO
            }.repeated(n);
            want.adds += n;
            prop_assert_eq!(stats.cost, want);
            prop_assert_eq!(rom.rom_reads(), 16 * n);

            let lut = Bce::with_mul_path(BceMode::Conv, MulPath::SubarrayLut).unwrap();
            let (d, stats) = lut.dot_conv_i16(&w, &x);
            prop_assert_eq!(d, expected);
            let scalar = pim_lut::LutMultiplier::new();
            let mut want: OpCost = w.iter().zip(&x).map(|(&a, &b)| scalar.mul_i16(a, b).1).sum();
            want.adds += n;
            prop_assert_eq!(stats.cost, want);
            prop_assert_eq!(lut.subarray_lut_reads(), scalar.table().reads());
        }

        #[test]
        fn prop_avg_pool_close(window in proptest::collection::vec(any::<i8>(), 1..64)) {
            let b = bce(BceMode::Conv);
            let (avg, _) = b.avg_pool(&window);
            let exact: f64 = window.iter().map(|&v| v as f64).sum::<f64>() / window.len() as f64;
            prop_assert!((avg as f64 - exact).abs() <= 1.0 + exact.abs() * 1e-3);
        }
    }
}
