//! # pim-bce
//!
//! The BFree Compute Engine (BCE) of Ramanathan et al., MICRO 2020: the
//! tiny PIM controller at the edge of every cache subarray that
//! orchestrates LUT lookups, accumulates partial products and
//! participates in the systolic dataflow.
//!
//! The crate provides:
//!
//! * the PIM instruction set and per-subarray configuration blocks
//!   ([`PimOp`], [`ConfigBlock`], [`Precision`]);
//! * the hardwired 256-entry multiply ROM ([`MultRom`]) that matmul mode
//!   broadcasts through the switch MUX (paper Fig. 7);
//! * the functional execution engine ([`Bce`]) with conv mode
//!   (0.5 8-bit MAC/cycle) and matmul mode (4 8-bit MACs/cycle), pooling,
//!   activations, softmax and gemmlowp requantization — all bit-exact
//!   over the integer datapath;
//! * the three-stage pipeline timing model ([`pipeline::BcePipeline`]);
//! * the cost model pricing event counts in time and energy
//!   ([`BceCostModel`]).
//!
//! ```
//! use pim_bce::{Bce, BceCostModel, BceMode};
//! use pim_bce::isa::Precision;
//!
//! let bce = Bce::new(BceMode::Conv)?;
//! let (dot, stats) = bce.dot_conv(&[1, -2, 3], &[4, 5, -6], Precision::Int8);
//! assert_eq!(dot, 1 * 4 + (-2) * 5 + 3 * (-6));
//!
//! let model = BceCostModel::paper_default();
//! let energy = model.stats_energy(&stats);
//! assert!(energy.picojoules() > 0.0);
//! # Ok::<(), pim_lut::LutError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine;
pub mod isa;
pub mod mult_rom;
pub mod obs;
pub mod pipeline;
pub mod power;
pub mod program;
pub mod trace;

pub use engine::{Bce, BceMode, BceStats, MulPath};
pub use isa::{ActivationKind, ConfigBlock, PimOp, Precision};
pub use mult_rom::MultRom;
pub use obs::record_kernel_occupancy;
pub use power::BceCostModel;
pub use program::{InstructionTiming, KernelProgram};
pub use trace::{BceTrace, TraceAction, TraceEntry};
