//! Closed-form systolic schedule timing (paper §III-D, §IV-A).
//!
//! With weights stationary in the subarrays, the schedule streams `n`
//! input waves through an `r x c` grid: inputs skew across the streaming
//! dimension while partial sums skew down the reduction dimension. The
//! pipeline fills in `r + c - 2` steps and then retires one wave per
//! step, so the whole kernel takes `n + r + c - 2` steps — this overlap
//! of input load with compute is where BFree's advantage over
//! load-then-compute architectures (Fig. 12(c)) comes from.

use pim_arch::Cycles;
use serde::{Deserialize, Serialize};

use crate::error::SystolicError;

/// A weight-stationary systolic schedule over an `r x c` grid streaming
/// `n` input waves.
///
/// ```
/// use pim_systolic::SystolicSchedule;
/// let s = SystolicSchedule::new(4, 4, 10).unwrap();
/// assert_eq!(s.fill_steps(), 6);
/// assert_eq!(s.total_steps(), 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystolicSchedule {
    rows: usize,
    cols: usize,
    waves: u64,
}

impl SystolicSchedule {
    /// Creates a schedule.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::EmptyDimension`] when any dimension is
    /// zero.
    pub fn new(rows: usize, cols: usize, waves: u64) -> Result<Self, SystolicError> {
        if rows == 0 {
            return Err(SystolicError::EmptyDimension { dimension: "rows" });
        }
        if cols == 0 {
            return Err(SystolicError::EmptyDimension { dimension: "cols" });
        }
        if waves == 0 {
            return Err(SystolicError::EmptyDimension { dimension: "waves" });
        }
        Ok(SystolicSchedule { rows, cols, waves })
    }

    /// Grid rows (reduction dimension).
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns (streaming dimension).
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Streamed input waves.
    pub fn waves(&self) -> u64 {
        self.waves
    }

    /// Steps before the first result emerges (pipeline fill).
    pub fn fill_steps(&self) -> u64 {
        (self.rows + self.cols - 2) as u64
    }

    /// Total schedule steps: fill plus one step per wave.
    pub fn total_steps(&self) -> u64 {
        self.waves + self.fill_steps()
    }

    /// Total steps when each wave occupies a node for
    /// `cycles_per_wave` BCE cycles (e.g. two cycles for an int8 matmul
    /// tile step): the pipeline initiation interval stretches
    /// accordingly.
    pub fn total_cycles(&self, cycles_per_wave: u64) -> Cycles {
        Cycles::new(self.total_steps() * cycles_per_wave.max(1))
    }

    /// Efficiency: useful waves over total steps — approaches 1 as the
    /// stream gets long relative to the grid.
    pub fn efficiency(&self) -> f64 {
        self.waves as f64 / self.total_steps() as f64
    }

    /// Router hops per wave: each wave crosses `cols - 1` streaming links
    /// and its partials cross `rows - 1` reduction links.
    pub fn hops_per_wave(&self) -> u64 {
        (self.rows - 1) as u64 + (self.cols - 1) as u64
    }

    /// Total router hops over the schedule.
    pub fn total_hops(&self) -> u64 {
        self.hops_per_wave() * self.waves
    }

    /// The sequential (non-systolic) step count for the same work:
    /// load every wave to every column, compute, then reduce serially.
    /// Used by the ablation bench to quantify the systolic gain.
    pub fn sequential_steps(&self) -> u64 {
        // Per wave: broadcast to c columns + r reduction steps.
        self.waves * (self.cols as u64 + self.rows as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn fill_is_manhattan_distance() {
        let s = SystolicSchedule::new(8, 40, 1000).unwrap();
        assert_eq!(s.fill_steps(), 46);
        assert_eq!(s.total_steps(), 1046);
    }

    #[test]
    fn one_by_one_grid_has_no_fill() {
        let s = SystolicSchedule::new(1, 1, 5).unwrap();
        assert_eq!(s.fill_steps(), 0);
        assert_eq!(s.total_steps(), 5);
    }

    #[test]
    fn zero_dimensions_rejected() {
        assert!(SystolicSchedule::new(0, 4, 1).is_err());
        assert!(SystolicSchedule::new(4, 0, 1).is_err());
        assert!(SystolicSchedule::new(4, 4, 0).is_err());
    }

    #[test]
    fn efficiency_approaches_one_for_long_streams() {
        let short = SystolicSchedule::new(8, 40, 10).unwrap();
        let long = SystolicSchedule::new(8, 40, 100_000).unwrap();
        assert!(long.efficiency() > short.efficiency());
        assert!(long.efficiency() > 0.999);
    }

    #[test]
    fn total_cycles_scales_with_initiation_interval() {
        let s = SystolicSchedule::new(4, 4, 100).unwrap();
        assert_eq!(s.total_cycles(1).count(), 106);
        assert_eq!(s.total_cycles(2).count(), 212);
    }

    #[test]
    fn systolic_beats_sequential() {
        let s = SystolicSchedule::new(8, 40, 1000).unwrap();
        assert!(s.total_steps() < s.sequential_steps());
        // For long streams the gain approaches rows + cols.
        let gain = s.sequential_steps() as f64 / s.total_steps() as f64;
        assert!(gain > 40.0, "gain {gain}");
    }

    #[test]
    fn hops_accounting() {
        let s = SystolicSchedule::new(3, 5, 10).unwrap();
        assert_eq!(s.hops_per_wave(), 2 + 4);
        assert_eq!(s.total_hops(), 60);
    }

    proptest! {
        #[test]
        fn prop_total_steps_formula(
            rows in 1usize..64, cols in 1usize..64, waves in 1u64..10_000
        ) {
            let s = SystolicSchedule::new(rows, cols, waves).unwrap();
            prop_assert_eq!(s.total_steps(), waves + (rows + cols) as u64 - 2);
        }

        #[test]
        fn prop_efficiency_bounded(
            rows in 1usize..64, cols in 1usize..64, waves in 1u64..10_000
        ) {
            let s = SystolicSchedule::new(rows, cols, waves).unwrap();
            prop_assert!(s.efficiency() > 0.0 && s.efficiency() <= 1.0);
        }
    }
}
