//! # pim-systolic
//!
//! The systolic dataflow substrate of BFree (Ramanathan et al., MICRO
//! 2020, §III-D, Fig. 8/9): simple routers added to the conventional
//! cache interconnect give each subarray a unidirectional link to its
//! neighbour, so inputs stream *across* sub-banks while partial products
//! reduce *along* the subarrays of each sub-bank.
//!
//! The crate provides the router cost model ([`Router`]), the logical
//! grid of subarrays a slice exposes to the mapper ([`SubarrayGrid`]),
//! closed-form schedule timing ([`SystolicSchedule`]) and a cycle-stepped
//! functional simulation of the skewed dataflow
//! ([`SystolicArraySim`]) used to validate both values and timing.
//!
//! ```
//! use pim_systolic::SystolicSchedule;
//!
//! // An 8 x 10 grid streaming 100 input vectors.
//! let s = SystolicSchedule::new(8, 10, 100).unwrap();
//! // Pipelined: fill + stream, far below 100 * 8 * 10 sequential steps.
//! assert_eq!(s.total_steps(), 100 + 8 + 10 - 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod grid;
pub mod router;
pub mod schedule;
pub mod sim;

pub use error::SystolicError;
pub use grid::SubarrayGrid;
pub use router::Router;
pub use schedule::SystolicSchedule;
pub use sim::SystolicArraySim;
