//! Cycle-stepped functional simulation of the skewed systolic dataflow.
//!
//! This is the executable specification of §III-D: weights stay
//! stationary in the grid, input wave `t` for row `r` is injected at the
//! west edge at cycle `t + r`, values hop one link per cycle eastward,
//! and partial sums hop one link per cycle down the reduction dimension.
//! The simulation advances register state cycle by cycle, so it validates
//! both the *values* (outputs equal the matrix product) and the *timing*
//! (the last output emerges exactly when [`SystolicSchedule`] predicts).
//!
//! [`SystolicSchedule`]: crate::schedule::SystolicSchedule

use serde::{Deserialize, Serialize};

use crate::error::SystolicError;
use crate::schedule::SystolicSchedule;

/// A weight-stationary systolic array simulation.
///
/// ```
/// use pim_systolic::SystolicArraySim;
/// // 2x2 grid: output[t][c] = sum_r input[t][r] * w[r][c].
/// let sim = SystolicArraySim::new(vec![vec![1, 2], vec![3, 4]]).unwrap();
/// let result = sim.run(&[vec![1, 0], vec![0, 1], vec![1, 1]]).unwrap();
/// assert_eq!(result.outputs, vec![vec![1, 2], vec![3, 4], vec![4, 6]]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystolicArraySim {
    weights: Vec<Vec<i32>>, // rows x cols
    rows: usize,
    cols: usize,
}

/// Output of one simulation run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SimResult {
    /// `outputs[t][c]` is the reduction of wave `t` down column `c`.
    pub outputs: Vec<Vec<i32>>,
    /// Cycles until the last output emerged.
    pub cycles: u64,
    /// Total register-to-register link transfers performed.
    pub hops: u64,
}

impl SystolicArraySim {
    /// Creates a simulation with stationary `weights[r][c]`.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::EmptyDimension`] for an empty grid and
    /// [`SystolicError::ShapeMismatch`] for ragged rows.
    pub fn new(weights: Vec<Vec<i32>>) -> Result<Self, SystolicError> {
        if weights.is_empty() {
            return Err(SystolicError::EmptyDimension { dimension: "rows" });
        }
        let cols = weights[0].len();
        if cols == 0 {
            return Err(SystolicError::EmptyDimension { dimension: "cols" });
        }
        if weights.iter().any(|row| row.len() != cols) {
            return Err(SystolicError::ShapeMismatch {
                reason: "weight rows have differing lengths".to_string(),
            });
        }
        let rows = weights.len();
        Ok(SystolicArraySim {
            weights,
            rows,
            cols,
        })
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Streams `inputs[t][r]` through the array, one wave per cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::ShapeMismatch`] when any wave does not
    /// have exactly one element per grid row, or
    /// [`SystolicError::EmptyDimension`] for an empty stream.
    pub fn run(&self, inputs: &[Vec<i32>]) -> Result<SimResult, SystolicError> {
        if inputs.is_empty() {
            return Err(SystolicError::EmptyDimension { dimension: "waves" });
        }
        if inputs.iter().any(|wave| wave.len() != self.rows) {
            return Err(SystolicError::ShapeMismatch {
                reason: format!("each wave must have {} elements", self.rows),
            });
        }
        let n = inputs.len();
        let schedule = SystolicSchedule::new(self.rows, self.cols, n as u64)
            .expect("dimensions validated above");
        let total_cycles = schedule.total_steps();

        // Register state: the input value sitting at each node and the
        // partial sum flowing out of each node, from the previous cycle.
        let mut in_reg = vec![vec![0i32; self.cols]; self.rows];
        let mut in_valid = vec![vec![false; self.cols]; self.rows];
        let mut psum_reg = vec![vec![0i32; self.cols]; self.rows];
        let mut outputs = vec![vec![0i32; self.cols]; n];
        let mut hops: u64 = 0;

        for cycle in 0..total_cycles {
            // Next state computed from current registers: classic
            // two-phase update so the order of node evaluation does not
            // matter.
            let mut next_in = vec![vec![0i32; self.cols]; self.rows];
            let mut next_in_valid = vec![vec![false; self.cols]; self.rows];
            let mut next_psum = vec![vec![0i32; self.cols]; self.rows];

            for r in 0..self.rows {
                for c in 0..self.cols {
                    // Input arriving from the west (or injected at the
                    // edge with the row skew).
                    let (input, valid) = if c == 0 {
                        let t = cycle as i64 - r as i64;
                        if t >= 0 && (t as usize) < n {
                            (inputs[t as usize][r], true)
                        } else {
                            (0, false)
                        }
                    } else {
                        (in_reg[r][c - 1], in_valid[r][c - 1])
                    };
                    if valid && c > 0 {
                        hops += 1;
                    }
                    // Partial sum arriving from the north.
                    let north = if r == 0 { 0 } else { psum_reg[r - 1][c] };
                    if r > 0 {
                        hops += u64::from(valid);
                    }
                    let mac = if valid { self.weights[r][c] * input } else { 0 };
                    next_psum[r][c] = north + mac;
                    next_in[r][c] = input;
                    next_in_valid[r][c] = valid;

                    // The bottom row emits one finished output per wave.
                    if r == self.rows - 1 && valid {
                        let t = cycle as i64 - r as i64 - c as i64;
                        debug_assert!(t >= 0 && (t as usize) < n, "skew bookkeeping broke");
                        outputs[t as usize][c] = north + mac;
                    }
                }
            }
            in_reg = next_in;
            in_valid = next_in_valid;
            psum_reg = next_psum;
        }

        Ok(SimResult {
            outputs,
            cycles: total_cycles,
            hops,
        })
    }

    /// Reference matrix product for validation:
    /// `out[t][c] = sum_r inputs[t][r] * w[r][c]`.
    pub fn reference(&self, inputs: &[Vec<i32>]) -> Vec<Vec<i32>> {
        inputs
            .iter()
            .map(|wave| {
                (0..self.cols)
                    .map(|c| (0..self.rows).map(|r| wave[r] * self.weights[r][c]).sum())
                    .collect()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identity_weights_pass_inputs_through() {
        let sim = SystolicArraySim::new(vec![vec![1, 0], vec![0, 1]]).unwrap();
        let result = sim.run(&[vec![7, -3]]).unwrap();
        assert_eq!(result.outputs, vec![vec![7, -3]]);
    }

    #[test]
    fn matches_reference_matmul() {
        let weights = vec![
            vec![2, -1, 3],
            vec![0, 4, -2],
            vec![1, 1, 1],
            vec![-3, 2, 0],
        ];
        let sim = SystolicArraySim::new(weights).unwrap();
        let inputs: Vec<Vec<i32>> = (0..6)
            .map(|t| (0..4).map(|r| (t * 7 + r * 3) - 10).collect())
            .collect();
        let result = sim.run(&inputs).unwrap();
        assert_eq!(result.outputs, sim.reference(&inputs));
    }

    #[test]
    fn cycle_count_matches_schedule_formula() {
        let sim = SystolicArraySim::new(vec![vec![1; 5]; 3]).unwrap();
        let inputs = vec![vec![1; 3]; 10];
        let result = sim.run(&inputs).unwrap();
        // n + r + c - 2 = 10 + 3 + 5 - 2.
        assert_eq!(result.cycles, 16);
    }

    #[test]
    fn hops_are_counted() {
        let sim = SystolicArraySim::new(vec![vec![1, 1], vec![1, 1]]).unwrap();
        let result = sim.run(&[vec![1, 1]]).unwrap();
        assert!(result.hops > 0);
    }

    #[test]
    fn ragged_weights_rejected() {
        assert!(SystolicArraySim::new(vec![vec![1, 2], vec![3]]).is_err());
        assert!(SystolicArraySim::new(vec![]).is_err());
        assert!(SystolicArraySim::new(vec![vec![]]).is_err());
    }

    #[test]
    fn wrong_wave_width_rejected() {
        let sim = SystolicArraySim::new(vec![vec![1, 2], vec![3, 4]]).unwrap();
        assert!(sim.run(&[vec![1]]).is_err());
        assert!(sim.run(&[]).is_err());
    }

    #[test]
    fn single_node_grid() {
        let sim = SystolicArraySim::new(vec![vec![5]]).unwrap();
        let result = sim.run(&[vec![3], vec![-2]]).unwrap();
        assert_eq!(result.outputs, vec![vec![15], vec![-10]]);
        assert_eq!(result.cycles, 2);
    }

    proptest! {
        #[test]
        fn prop_sim_equals_reference(
            rows in 1usize..6,
            cols in 1usize..6,
            waves in 1usize..12,
            seed in any::<u64>(),
        ) {
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                ((state >> 48) as i32 % 100) - 50
            };
            let weights: Vec<Vec<i32>> =
                (0..rows).map(|_| (0..cols).map(|_| next()).collect()).collect();
            let inputs: Vec<Vec<i32>> =
                (0..waves).map(|_| (0..rows).map(|_| next()).collect()).collect();
            let sim = SystolicArraySim::new(weights).unwrap();
            let result = sim.run(&inputs).unwrap();
            prop_assert_eq!(&result.outputs, &sim.reference(&inputs));
            prop_assert_eq!(result.cycles, (waves + rows + cols - 2) as u64);
        }
    }
}
