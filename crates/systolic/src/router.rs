//! The sub-bank routers (paper §III-D, Fig. 8).
//!
//! The conventional interconnect already connects subarrays in the same
//! *column* across sub-banks (the shared data bus); BFree adds one tiny
//! router per subarray to connect neighbours *within* a sub-bank. Links
//! are unidirectional — a router connects the data-in of one subarray to
//! the data-out of its neighbour — so partial-product reduction flows one
//! way down the sub-bank while inputs stream one way across sub-banks.

use pim_arch::{Cycles, Energy, EnergyParams, Latency, TimingParams};
use serde::{Deserialize, Serialize};

/// Cost model of one router and its link.
///
/// ```
/// use pim_systolic::Router;
/// let r = Router::paper_default();
/// // Moving one 8-byte register to a neighbour takes one subarray cycle.
/// assert_eq!(r.transfer_cycles(8).count(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Router {
    /// Link width in bytes moved per cycle (the subarray data bus is
    /// 64 bits wide).
    pub link_bytes_per_cycle: u32,
    /// Energy per byte per hop, pJ.
    pub pj_per_byte: f64,
    /// Subarray clock the link runs at, GHz.
    pub clock_ghz: f64,
}

impl Router {
    /// Builds the router model from the architecture parameters.
    pub fn new(timing: &TimingParams, energy: &EnergyParams) -> Self {
        Router {
            link_bytes_per_cycle: 8,
            pj_per_byte: energy.router_hop_pj_per_byte,
            clock_ghz: timing.subarray_clock_ghz,
        }
    }

    /// The paper's default configuration.
    pub fn paper_default() -> Self {
        Router::new(&TimingParams::default(), &EnergyParams::default())
    }

    /// Cycles to move `bytes` across one hop.
    pub fn transfer_cycles(&self, bytes: u64) -> Cycles {
        Cycles::new(bytes.div_ceil(self.link_bytes_per_cycle as u64).max(1))
    }

    /// Wall-clock time to move `bytes` across one hop.
    pub fn transfer_time(&self, bytes: u64) -> Latency {
        self.transfer_cycles(bytes).at_ghz(self.clock_ghz)
    }

    /// Energy to move `bytes` across `hops` hops.
    pub fn transfer_energy(&self, bytes: u64, hops: u64) -> Energy {
        Energy::from_pj(self.pj_per_byte * bytes as f64 * hops as f64)
    }
}

impl Default for Router {
    fn default() -> Self {
        Router::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eight_byte_hop_is_one_cycle() {
        let r = Router::paper_default();
        assert_eq!(r.transfer_cycles(8).count(), 1);
        assert_eq!(r.transfer_cycles(1).count(), 1);
        assert_eq!(r.transfer_cycles(9).count(), 2);
        assert_eq!(r.transfer_cycles(64).count(), 8);
    }

    #[test]
    fn transfer_time_uses_subarray_clock() {
        let r = Router::paper_default();
        let t = r.transfer_time(8);
        assert!((t.nanoseconds() - 1.0 / 1.5).abs() < 1e-9);
    }

    #[test]
    fn energy_linear_in_bytes_and_hops() {
        let r = Router::paper_default();
        let one = r.transfer_energy(8, 1);
        assert!((r.transfer_energy(8, 5).ratio(one) - 5.0).abs() < 1e-12);
        assert!((r.transfer_energy(40, 1).ratio(one) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn router_hop_is_far_cheaper_than_slice_interconnect() {
        let r = Router::paper_default();
        let energy = EnergyParams::default();
        let hop = r.transfer_energy(8, 1);
        let slice = energy.slice_access();
        // The whole point of the systolic flow: >50x cheaper per 8 bytes.
        assert!(slice.ratio(hop) > 50.0);
    }
}
