//! Error type for systolic schedule and grid construction.

use std::error::Error;
use std::fmt;

/// Errors produced by the systolic dataflow substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SystolicError {
    /// A grid or schedule dimension was zero.
    EmptyDimension {
        /// Which dimension.
        dimension: &'static str,
    },
    /// A mapping would not fit the grid.
    GridOverflow {
        /// Rows required.
        rows: usize,
        /// Columns required.
        cols: usize,
        /// Rows available.
        grid_rows: usize,
        /// Columns available.
        grid_cols: usize,
    },
    /// Simulation input dimensions were inconsistent.
    ShapeMismatch {
        /// Explanation of the mismatch.
        reason: String,
    },
}

impl fmt::Display for SystolicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystolicError::EmptyDimension { dimension } => {
                write!(f, "systolic {dimension} must be non-zero")
            }
            SystolicError::GridOverflow {
                rows,
                cols,
                grid_rows,
                grid_cols,
            } => {
                write!(
                    f,
                    "mapping of {rows}x{cols} does not fit the {grid_rows}x{grid_cols} grid"
                )
            }
            SystolicError::ShapeMismatch { reason } => write!(f, "shape mismatch: {reason}"),
        }
    }
}

impl Error for SystolicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = SystolicError::GridOverflow {
            rows: 9,
            cols: 11,
            grid_rows: 8,
            grid_cols: 10,
        };
        let s = e.to_string();
        assert!(s.contains("9x11") && s.contains("8x10"));
    }
}
