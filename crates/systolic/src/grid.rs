//! The logical subarray grid a slice exposes to the mapper (Fig. 8/9).
//!
//! Within a slice, the mapper sees the subarrays as a 2-D grid:
//! *rows* are the subarray positions within a sub-bank (the reduction
//! direction — partial sums accumulate down a column of the figure), and
//! *columns* are the sub-banks (the streaming direction — inputs flow
//! across). For the paper's slice this is an 8 x 40 grid of subarrays.

use pim_arch::{CacheGeometry, SubarrayId};
use serde::{Deserialize, Serialize};

use crate::error::SystolicError;

/// A logical grid of subarrays within one slice.
///
/// ```
/// use pim_arch::CacheGeometry;
/// use pim_systolic::SubarrayGrid;
/// let grid = SubarrayGrid::from_slice_geometry(&CacheGeometry::xeon_l3_35mb(), 0).unwrap();
/// assert_eq!(grid.reduction_rows(), 8);   // subarrays per sub-bank
/// assert_eq!(grid.streaming_cols(), 40);  // sub-banks per slice
/// assert_eq!(grid.len(), 320);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubarrayGrid {
    slice: usize,
    rows: usize,
    cols: usize,
    subbanks_per_bank: usize,
}

impl SubarrayGrid {
    /// Builds the grid for slice `slice` of a cache geometry.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::EmptyDimension`] when the geometry has no
    /// subarrays (cannot happen for validated geometries) and
    /// [`SystolicError::ShapeMismatch`] when the slice index is out of
    /// range.
    pub fn from_slice_geometry(geom: &CacheGeometry, slice: usize) -> Result<Self, SystolicError> {
        if slice >= geom.slices() {
            return Err(SystolicError::ShapeMismatch {
                reason: format!("slice {slice} out of {}", geom.slices()),
            });
        }
        let rows = geom.subarrays_per_subbank();
        let cols = geom.subbanks_per_slice();
        if rows == 0 || cols == 0 {
            return Err(SystolicError::EmptyDimension { dimension: "grid" });
        }
        Ok(SubarrayGrid {
            slice,
            rows,
            cols,
            subbanks_per_bank: geom.subbanks_per_bank(),
        })
    }

    /// The slice this grid describes.
    pub fn slice(&self) -> usize {
        self.slice
    }

    /// Subarrays per sub-bank: the reduction dimension.
    pub fn reduction_rows(&self) -> usize {
        self.rows
    }

    /// Sub-banks per slice: the streaming dimension.
    pub fn streaming_cols(&self) -> usize {
        self.cols
    }

    /// Total subarrays in the grid.
    pub fn len(&self) -> usize {
        self.rows * self.cols
    }

    /// Whether the grid is empty (never true for validated geometries).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The subarray at grid position `(row, col)`.
    ///
    /// # Errors
    ///
    /// Returns [`SystolicError::GridOverflow`] when the position is out
    /// of range.
    pub fn subarray_at(&self, row: usize, col: usize) -> Result<SubarrayId, SystolicError> {
        if row >= self.rows || col >= self.cols {
            return Err(SystolicError::GridOverflow {
                rows: row + 1,
                cols: col + 1,
                grid_rows: self.rows,
                grid_cols: self.cols,
            });
        }
        Ok(SubarrayId {
            slice: self.slice,
            bank: col / self.subbanks_per_bank,
            subbank: col % self.subbanks_per_bank,
            subarray: row,
        })
    }

    /// The downstream reduction neighbour of `(row, col)` — the next
    /// subarray in the same sub-bank — or `None` at the end of the chain
    /// (where the final accumulation lands, §IV-C).
    pub fn reduction_neighbor(&self, row: usize, col: usize) -> Option<(usize, usize)> {
        (row + 1 < self.rows && col < self.cols).then_some((row + 1, col))
    }

    /// The downstream streaming neighbour of `(row, col)` — the same
    /// position in the next sub-bank — or `None` at the last sub-bank.
    pub fn streaming_neighbor(&self, row: usize, col: usize) -> Option<(usize, usize)> {
        (col + 1 < self.cols && row < self.rows).then_some((row, col + 1))
    }

    /// Iterates over all grid positions in row-major order.
    pub fn positions(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        let cols = self.cols;
        (0..self.rows).flat_map(move |r| (0..cols).map(move |c| (r, c)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> SubarrayGrid {
        SubarrayGrid::from_slice_geometry(&CacheGeometry::xeon_l3_35mb(), 0).unwrap()
    }

    #[test]
    fn paper_slice_is_8_by_40() {
        let g = grid();
        assert_eq!(g.reduction_rows(), 8);
        assert_eq!(g.streaming_cols(), 40);
        assert_eq!(g.len(), 320);
        assert!(!g.is_empty());
    }

    #[test]
    fn subarray_ids_cover_the_slice_uniquely() {
        let g = grid();
        let geom = CacheGeometry::xeon_l3_35mb();
        let mut seen = std::collections::HashSet::new();
        for (r, c) in g.positions() {
            let id = g.subarray_at(r, c).unwrap();
            assert_eq!(id.slice, 0);
            assert!(seen.insert(id.flat_index(&geom)), "duplicate at ({r},{c})");
        }
        assert_eq!(seen.len(), 320);
    }

    #[test]
    fn out_of_range_position_rejected() {
        let g = grid();
        assert!(g.subarray_at(8, 0).is_err());
        assert!(g.subarray_at(0, 40).is_err());
    }

    #[test]
    fn out_of_range_slice_rejected() {
        let geom = CacheGeometry::xeon_l3_35mb();
        assert!(SubarrayGrid::from_slice_geometry(&geom, 14).is_err());
    }

    #[test]
    fn neighbors_walk_the_grid() {
        let g = grid();
        assert_eq!(g.reduction_neighbor(0, 0), Some((1, 0)));
        assert_eq!(g.reduction_neighbor(7, 0), None);
        assert_eq!(g.streaming_neighbor(0, 0), Some((0, 1)));
        assert_eq!(g.streaming_neighbor(0, 39), None);
    }

    #[test]
    fn reduction_chain_length_equals_rows() {
        let g = grid();
        let mut hops = 0;
        let mut pos = (0usize, 3usize);
        while let Some(next) = g.reduction_neighbor(pos.0, pos.1) {
            pos = next;
            hops += 1;
        }
        assert_eq!(hops, g.reduction_rows() - 1);
    }
}
