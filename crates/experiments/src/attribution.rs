//! Energy and latency attribution cross-check: the observability layer
//! against the aggregate cost models.
//!
//! [`bfree::BfreeSimulator::run_recorded`] promises that folding its
//! event stream in an [`AggRecorder`] reproduces the run report's
//! breakdowns. This experiment holds it to that: it reruns the
//! Fig. 12-style Inception-v3 and Fig. 13-style VGG-16 configurations
//! with a live recorder and compares every per-component energy sum and
//! per-phase latency sum against the [`RunReport`] aggregates. Any
//! relative error above [`TOLERANCE`] fails the experiment — in
//! practice the two paths agree bit for bit, because events are emitted
//! in the exact order the report merges its breakdowns.
//!
//! The recorder is a [`TeeRecorder`]: the aggregate fold rides the
//! first arm while a bounded [`RingRecorder`] rides the second, and the
//! ring's drop counter is exported into the aggregate summary
//! (`obs/ring_dropped`) and *gated* — a cross-check that silently lost
//! events would be vacuous, so any nonzero drop count fails the
//! experiment outright.

use bfree::prelude::*;
use bfree_obs::{RingRecorder, TeeRecorder};
use pim_arch::obs::{obs_component, phase_event_name};
use pim_baselines::RunReport;

use crate::error::ExperimentError;

/// Ring capacity for the drop-accounting arm: ample for one recorded
/// run (the deepest network emits well under half this).
const RING_CAPACITY: usize = 65_536;

/// Largest tolerated |folded/reported - 1| (the ISSUE's 1% bound; the
/// implementation achieves 0).
pub const TOLERANCE: f64 = 0.01;

/// One attributed quantity compared across the two accounting paths.
#[derive(Debug, Clone)]
pub struct AttributionRow {
    /// The network the row belongs to.
    pub network: String,
    /// `energy/<component>` or `latency/<phase>`.
    pub metric: String,
    /// The aggregate model's value (pJ or ns).
    pub reported: f64,
    /// The recorder's folded value (pJ or ns).
    pub folded: f64,
}

impl AttributionRow {
    /// |folded/reported - 1|; 0 when both are 0.
    pub fn relative_error(&self) -> f64 {
        if self.reported == 0.0 {
            if self.folded == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.folded / self.reported - 1.0).abs()
        }
    }
}

/// The cross-check result for every network.
#[derive(Debug, Clone)]
pub struct AttributionResult {
    /// One row per (network, component|phase) with non-trivial value.
    pub rows: Vec<AttributionRow>,
    /// Events the ring arm dropped across every recorded run (must be
    /// zero for the cross-check to be trustworthy).
    pub ring_dropped: u64,
}

impl AttributionResult {
    /// The worst relative error across every row.
    pub fn max_relative_error(&self) -> f64 {
        self.rows
            .iter()
            .map(AttributionRow::relative_error)
            .fold(0.0, f64::max)
    }
}

fn check_network(name: &str, report: &RunReport, recorder: &AggRecorder) -> Vec<AttributionRow> {
    let mut rows = Vec::new();
    let by_component = recorder.energy_by_component();
    for component in EnergyComponent::ALL {
        let reported = report.energy.get(component).picojoules();
        let folded = by_component
            .get(&obs_component(component))
            .copied()
            .unwrap_or(0.0);
        if reported == 0.0 && folded == 0.0 {
            continue;
        }
        rows.push(AttributionRow {
            network: name.to_string(),
            metric: format!("energy/{}", component.label()),
            reported,
            folded,
        });
    }
    for phase in Phase::ALL {
        let reported = report.latency.get(phase).nanoseconds();
        // `+ 0.0` normalizes the empty-sum identity -0.0.
        let folded = recorder.sum(Subsystem::Exec, phase_event_name(phase)) + 0.0;
        if reported == 0.0 && folded == 0.0 {
            continue;
        }
        rows.push(AttributionRow {
            network: name.to_string(),
            metric: format!("latency/{}", phase.label()),
            reported,
            folded,
        });
    }
    rows
}

/// Runs the cross-check on the paper's two headline CNN configurations.
///
/// # Errors
///
/// [`ExperimentError::MissingData`] if either accounting path produced
/// nothing to compare (which would make the check vacuous).
pub fn run() -> Result<AttributionResult, ExperimentError> {
    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    let mut rows = Vec::new();
    let mut ring_dropped = 0u64;
    for (name, network) in [
        ("inception_v3", networks::inception_v3()),
        ("vgg16", networks::vgg16()),
    ] {
        let recorder = TeeRecorder::new(AggRecorder::new(), RingRecorder::new(RING_CAPACITY));
        let report = sim.run_recorded(&network, 1, &recorder);
        let (agg, ring) = (recorder.first(), recorder.second());
        // Surface the drop counter in the aggregate summary (and its
        // Prometheus exposition) before gating on it.
        ring.export_drop_counter(agg);
        let dropped = ring.dropped();
        ring_dropped += dropped;
        if dropped > 0 {
            return Err(ExperimentError::MissingData(format!(
                "attribution ring dropped {dropped} events for {name}: \
                 the cross-check would be vacuous (raise RING_CAPACITY)"
            )));
        }
        let network_rows = check_network(name, &report, agg);
        if network_rows.is_empty() {
            return Err(ExperimentError::MissingData(format!(
                "attribution produced no rows for {name}"
            )));
        }
        rows.extend(network_rows);
    }
    Ok(AttributionResult { rows, ring_dropped })
}

/// Header for [`csv_rows`].
pub const CSV_HEADER: [&str; 5] = ["network", "metric", "reported", "folded", "relative_error"];

/// The result as CSV rows matching [`CSV_HEADER`].
pub fn csv_rows(result: &AttributionResult) -> Vec<Vec<String>> {
    result
        .rows
        .iter()
        .map(|r| {
            vec![
                r.network.clone(),
                r.metric.clone(),
                format!("{:.6}", r.reported),
                format!("{:.6}", r.folded),
                format!("{:.2e}", r.relative_error()),
            ]
        })
        .collect()
}

/// Prints the cross-check and fails if any row exceeds [`TOLERANCE`].
///
/// # Errors
///
/// [`ExperimentError::MissingData`] when a row diverges beyond the
/// tolerance (the invariant the obs layer is built on is broken).
pub fn print() -> Result<(), ExperimentError> {
    let result = run()?;
    println!("\n== attribution: event stream vs aggregate models ==");
    println!(
        "{:<14} {:<26} {:>16} {:>16} {:>10}",
        "network", "metric", "reported", "folded", "rel_err"
    );
    for row in &result.rows {
        println!(
            "{:<14} {:<26} {:>16.3} {:>16.3} {:>10.2e}",
            row.network,
            row.metric,
            row.reported,
            row.folded,
            row.relative_error()
        );
    }
    let worst = result.max_relative_error();
    println!("worst relative error: {worst:.2e} (tolerance {TOLERANCE})");
    if worst > TOLERANCE {
        return Err(ExperimentError::MissingData(format!(
            "attribution divergence {worst:.2e} exceeds tolerance {TOLERANCE}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribution_agrees_exactly() {
        let result = run().unwrap();
        assert!(result.rows.len() >= 10, "rows {}", result.rows.len());
        assert_eq!(result.max_relative_error(), 0.0);
    }

    #[test]
    fn csv_rows_match_header_width() {
        let result = run().unwrap();
        for row in csv_rows(&result) {
            assert_eq!(row.len(), CSV_HEADER.len());
        }
    }
}
