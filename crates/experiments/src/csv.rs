//! CSV emission: every figure's data series written to disk for
//! re-plotting (`experiments all --csv <dir>`).

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use pim_arch::MemoryTechKind;

use crate::error::ExperimentError;

/// Writes one CSV file with a header row.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_rows(path: &Path, header: &[&str], rows: &[Vec<String>]) -> io::Result<()> {
    if let Some(parent) = path.parent() {
        fs::create_dir_all(parent)?;
    }
    let mut file = fs::File::create(path)?;
    writeln!(file, "{}", header.join(","))?;
    for row in rows {
        writeln!(file, "{}", row.join(","))?;
    }
    Ok(())
}

/// Writes every experiment's data series into `dir`.
///
/// # Errors
///
/// Propagates filesystem errors and experiment failures.
pub fn write_all(dir: &Path) -> Result<Vec<String>, ExperimentError> {
    let mut written = Vec::new();
    let mut emit = |name: &str, header: &[&str], rows: Vec<Vec<String>>| -> io::Result<()> {
        let path = dir.join(name);
        write_rows(&path, header, &rows)?;
        written.push(name.to_string());
        Ok(())
    };

    // Fig. 12(a): module runtimes.
    let fig12 = crate::fig12::run();
    emit(
        "fig12a_module_runtimes.csv",
        &["module", "bfree_us", "neural_cache_us"],
        fig12
            .module_runtimes
            .iter()
            .map(|(m, a, b)| vec![m.clone(), format!("{a:.3}"), format!("{b:.3}")])
            .collect(),
    )?;

    // Fig. 12(b/c): phase breakdowns.
    let phases = |report: &pim_baselines::RunReport| {
        pim_arch::Phase::ALL
            .iter()
            .map(|&p| {
                vec![
                    p.label().to_string(),
                    format!("{:.3}", report.latency.get(p).microseconds()),
                    format!("{:.4}", report.latency.fraction(p)),
                ]
            })
            .collect::<Vec<_>>()
    };
    emit(
        "fig12b_bfree_phases.csv",
        &["phase", "us", "fraction"],
        phases(&fig12.bfree),
    )?;
    emit(
        "fig12c_neural_cache_phases.csv",
        &["phase", "us", "fraction"],
        phases(&fig12.neural_cache),
    )?;

    // Fig. 12(d): cache energy by component, DRAM excluded.
    emit(
        "fig12d_cache_energy.csv",
        &["component", "fraction_of_cache_energy"],
        pim_arch::EnergyComponent::ALL
            .iter()
            .filter(|&&c| c != pim_arch::EnergyComponent::Dram)
            .map(|&c| {
                vec![
                    c.label().to_string(),
                    format!(
                        "{:.4}",
                        fig12
                            .bfree
                            .energy
                            .fraction_excluding(c, pim_arch::EnergyComponent::Dram)
                    ),
                ]
            })
            .collect(),
    )?;

    // Fig. 13: per-layer compute.
    let fig13 = crate::fig13::run();
    emit(
        "fig13_layer_compute.csv",
        &["layer", "bfree_us", "eyeriss_us"],
        fig13
            .layer_compute
            .iter()
            .map(|(l, a, b)| vec![l.clone(), format!("{a:.3}"), format!("{b:.3}")])
            .collect(),
    )?;

    // Fig. 14: the sweep.
    let fig14 = crate::fig14::run();
    emit(
        "fig14_bandwidth_sweep.csv",
        &[
            "memory",
            "batch",
            "precision",
            "ms_per_inference",
            "load_fraction",
        ],
        fig14
            .points
            .iter()
            .map(|p| {
                vec![
                    p.memory.name().to_string(),
                    p.batch.to_string(),
                    if p.mixed { "mixed4_8" } else { "int8" }.to_string(),
                    format!("{:.4}", p.latency_ms),
                    format!("{:.4}", p.load_fraction),
                ]
            })
            .collect(),
    )?;
    let _ = MemoryTechKind::ALL; // sweep order documented by the type

    // Table III.
    let table3 = crate::table3::run()?;
    emit(
        "table3_runtime_energy.csv",
        &[
            "network", "batch", "cpu_ms", "gpu_ms", "bfree_ms", "cpu_j", "gpu_j", "bfree_j",
        ],
        table3
            .iter()
            .map(|r| {
                vec![
                    r.network.clone(),
                    r.batch.to_string(),
                    format!("{:.3}", r.latency_ms.0),
                    format!("{:.3}", r.latency_ms.1),
                    format!("{:.4}", r.latency_ms.2),
                    format!("{:.4}", r.energy_j.0),
                    format!("{:.4}", r.energy_j.1),
                    format!("{:.5}", r.energy_j.2),
                ]
            })
            .collect(),
    )?;

    // Ablation: batch sweep.
    emit(
        "ablation_batch_sweep.csv",
        &["batch", "ms_per_inference"],
        crate::ablations::batch_sweep()
            .iter()
            .map(|(b, ms)| vec![b.to_string(), format!("{ms:.4}")])
            .collect(),
    )?;

    // Serving: the multi-tenant load sweep.
    let serving = crate::serving::run()?;
    emit(
        "serving_load_sweep.csv",
        &crate::serving::CSV_HEADER,
        crate::serving::csv_rows(&serving),
    )?;

    // Mixed-version serving: the model hot-swap sweep.
    let swap = crate::model_swap::run()?;
    emit(
        "model_swap.csv",
        &crate::model_swap::CSV_HEADER,
        crate::model_swap::csv_rows(&swap),
    )?;

    // Chaos: serving under injected faults, at the default seed so the
    // emitted file matches the checked-in golden.
    let chaos = crate::chaos::run(crate::chaos::DEFAULT_SEED)?;
    emit(
        "chaos.csv",
        &crate::chaos::CSV_HEADER,
        crate::chaos::csv_rows(&chaos),
    )?;

    // SDC: bit flips vs LUT protection scheme, at the default seed so
    // the emitted file matches the checked-in golden.
    let sdc = crate::sdc::run(crate::sdc::DEFAULT_SEED)?;
    emit(
        "sdc.csv",
        &crate::sdc::CSV_HEADER,
        crate::sdc::csv_rows(&sdc),
    )?;

    // Attribution: event-stream vs aggregate-model cross-check.
    let attribution = crate::attribution::run()?;
    emit(
        "attribution.csv",
        &crate::attribution::CSV_HEADER,
        crate::attribution::csv_rows(&attribution),
    )?;

    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_rows_produces_header_and_data() {
        let dir = std::env::temp_dir().join("bfree_csv_test");
        let path = dir.join("test.csv");
        write_rows(&path, &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        let _ = fs::remove_dir_all(&dir);
    }
}
