//! Fig. 14: VGG-16 latency versus main-memory bandwidth (DRAM 20 GB/s,
//! eDRAM 64 GB/s, HBM 100 GB/s), batch sizes 1 and 16, uniform 8-bit
//! versus learned mixed 4/8-bit precision.

use bfree::prelude::*;

use crate::error::ExperimentError;
use crate::Comparison;

/// One sweep point.
#[derive(Debug, Clone)]
pub struct Fig14Point {
    /// Memory technology.
    pub memory: MemoryTechKind,
    /// Batch size.
    pub batch: usize,
    /// Mixed precision?
    pub mixed: bool,
    /// Per-inference latency, ms.
    pub latency_ms: f64,
    /// Load-phase (weight + input + writeback) share of the runtime.
    pub load_fraction: f64,
}

/// Result of the Fig. 14 experiment.
#[derive(Debug, Clone)]
pub struct Fig14 {
    /// All sweep points.
    pub points: Vec<Fig14Point>,
}

impl Fig14 {
    /// Finds a sweep point.
    ///
    /// # Errors
    ///
    /// Returns [`ExperimentError::MissingData`] when the sweep does not
    /// contain the requested combination (a partial sweep, for
    /// instance), instead of panicking.
    pub fn point(
        &self,
        memory: MemoryTechKind,
        batch: usize,
        mixed: bool,
    ) -> Result<&Fig14Point, ExperimentError> {
        self.points
            .iter()
            .find(|p| p.memory == memory && p.batch == batch && p.mixed == mixed)
            .ok_or_else(|| {
                ExperimentError::MissingData(format!(
                    "fig14 sweep point ({}, batch {batch}, mixed {mixed})",
                    memory.name()
                ))
            })
    }
}

/// Runs the sweep. The twelve (memory, batch, precision) points are
/// independent simulations, so they fan out on the `bfree::par` pool;
/// results land in sweep order regardless of scheduling.
pub fn run() -> Fig14 {
    let net = networks::vgg16();
    let mut sweep = Vec::new();
    for memory in MemoryTechKind::ALL {
        for batch in [1usize, 16] {
            for mixed in [false, true] {
                sweep.push((memory, batch, mixed));
            }
        }
    }
    let points = bfree::par::par_map(sweep, |(memory, batch, mixed)| {
        let mut config = BfreeConfig::paper_default().with_memory(MemoryTech::from_kind(memory));
        if mixed {
            config = config.with_precision(PrecisionPolicy::mixed());
        }
        let report = BfreeSimulator::new(config).run(&net, batch);
        let load = report.latency.fraction(Phase::WeightLoad)
            + report.latency.fraction(Phase::InputLoad)
            + report.latency.fraction(Phase::Writeback);
        Fig14Point {
            memory,
            batch,
            mixed,
            latency_ms: report.per_inference_latency().milliseconds(),
            load_fraction: load,
        }
    });
    Fig14 { points }
}

/// Comparison rows for the paper's qualitative claims.
///
/// # Errors
///
/// Returns [`ExperimentError::MissingData`] if `result` lacks a sweep
/// point the claims reference.
pub fn comparisons(result: &Fig14) -> Result<Vec<Comparison>, ExperimentError> {
    let dram8 = result.point(MemoryTechKind::Dram, 1, false)?.latency_ms;
    let dram4 = result.point(MemoryTechKind::Dram, 1, true)?.latency_ms;
    let hbm16 = result.point(MemoryTechKind::Hbm, 16, false)?;
    Ok(vec![
        // "Varied bit-precision ... reduces the 50% of execution time
        // compared to the 8-bit precision."
        Comparison::new(
            "mixed-precision time saving (batch 1)",
            0.50,
            1.0 - dram4 / dram8,
            "frac",
        ),
        // "with HBM the BFree is highly efficient without much loading
        // overheads" — read as a load share well below 10%.
        Comparison::new(
            "HBM batch-16 load share (paper: 'without much loading overheads')",
            0.05,
            hbm16.load_fraction,
            "frac",
        ),
    ])
}

/// Prints the experiment.
///
/// # Errors
///
/// Propagates [`comparisons`]' errors.
pub fn print() -> Result<(), ExperimentError> {
    let result = run();
    println!("\n== Fig. 14: VGG-16 latency vs memory bandwidth ==");
    println!(
        "{:<8} {:>6} {:>10} {:>14} {:>12}",
        "memory", "batch", "precision", "ms/inference", "load share"
    );
    for p in &result.points {
        println!(
            "{:<8} {:>6} {:>10} {:>14.3} {:>11.1}%",
            p.memory.name(),
            p.batch,
            if p.mixed { "mixed 4/8" } else { "int8" },
            p.latency_ms,
            p.load_fraction * 100.0
        );
    }
    crate::print_comparisons("Fig. 14 vs paper", &comparisons(&result)?);
    let hbm = result.point(MemoryTechKind::Hbm, 16, false)?;
    let dram = result.point(MemoryTechKind::Dram, 16, false)?;
    println!(
        "  batch-16 load share: DRAM {:.0}% vs HBM {:.0}% (paper: eDRAM still \
         load-bound, HBM 'highly efficient')",
        dram.load_fraction * 100.0,
        hbm.load_fraction * 100.0
    );
    Ok(())
}
