//! Fig. 2: latency and energy breakdown of one slice data access —
//! the interconnect dominates (> 90%), the subarray itself is 6% of
//! latency and 9% of energy. This motivates keeping PIM traffic inside
//! the subarray.

use pim_arch::{EnergyParams, TimingParams};

use crate::error::ExperimentError;
use crate::Comparison;

/// Result of the Fig. 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// Interconnect / subarray / peripheral latency fractions.
    pub latency_fractions: (f64, f64, f64),
    /// Interconnect / subarray / peripheral energy fractions.
    pub energy_fractions: (f64, f64, f64),
    /// Total slice access latency, ns.
    pub slice_access_ns: f64,
    /// Total slice access energy, pJ.
    pub slice_access_pj: f64,
}

/// Runs the experiment.
pub fn run() -> Fig2 {
    let timing = TimingParams::default();
    let energy = EnergyParams::default();
    let lat = timing.slice_access_breakdown();
    let en = energy.slice_access_breakdown();
    Fig2 {
        latency_fractions: (
            lat.interconnect_fraction,
            lat.subarray_fraction,
            lat.peripheral_fraction,
        ),
        energy_fractions: (
            en.interconnect_fraction,
            en.subarray_fraction,
            en.peripheral_fraction,
        ),
        slice_access_ns: timing.slice_access().nanoseconds(),
        slice_access_pj: energy.slice_access().picojoules(),
    }
}

/// Comparison rows against the paper's figures.
pub fn comparisons(result: &Fig2) -> Vec<Comparison> {
    vec![
        Comparison::new(
            "interconnect share of access latency",
            0.90,
            result.latency_fractions.0,
            "frac",
        ),
        Comparison::new(
            "subarray share of access latency",
            0.06,
            result.latency_fractions.1,
            "frac",
        ),
        Comparison::new(
            "interconnect share of access energy",
            0.90,
            result.energy_fractions.0,
            "frac",
        ),
        Comparison::new(
            "subarray share of access energy",
            0.09,
            result.energy_fractions.1,
            "frac",
        ),
    ]
}

/// Prints the experiment.
pub fn print() -> Result<(), ExperimentError> {
    let result = run();
    crate::print_comparisons("Fig. 2: slice access breakdown", &comparisons(&result));
    println!(
        "  one slice access: {:.2} ns, {:.1} pJ (subarray alone: {:.2} ns, 8.6 pJ)",
        result.slice_access_ns,
        result.slice_access_pj,
        result.slice_access_ns * result.latency_fractions.1
    );
    Ok(())
}
