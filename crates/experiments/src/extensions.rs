//! Extension workloads beyond the paper's Table II: ResNet-18 (residual
//! CNN) and the GRU variant of the TIMIT acoustic model, run across
//! every device model — demonstrating the §I claim that the
//! reconfigurable LUT engines support arbitrary network families.

use bfree::prelude::*;
use pim_nn::Network;

use crate::error::ExperimentError;

/// One extension row: per-inference latency on every device.
#[derive(Debug, Clone)]
pub struct ExtensionRow {
    /// Network name.
    pub network: String,
    /// Batch size.
    pub batch: usize,
    /// (bfree, neural cache, eyeriss, cpu, gpu) per-inference ms.
    pub latency_ms: (f64, f64, f64, f64, f64),
}

impl ExtensionRow {
    /// BFree speedup over Neural Cache.
    pub fn vs_neural_cache(&self) -> f64 {
        self.latency_ms.1 / self.latency_ms.0
    }
}

/// Runs the extension networks across all device models. The four
/// (network, batch) rows are independent, so they fan out on the
/// `bfree::par` pool; row order matches the serial nesting.
pub fn run() -> Vec<ExtensionRow> {
    let bfree = BfreeSimulator::new(BfreeConfig::paper_default());
    let nc = NeuralCacheModel::paper_default();
    let eyeriss = EyerissModel::paper_default();
    let cpu = CpuModel::paper_xeon();
    let gpu = GpuModel::paper_titan_v();
    let nets: [Network; 2] = [networks::resnet18(), networks::gru_timit()];

    let mut sweep = Vec::new();
    for net in &nets {
        for batch in [1usize, 16] {
            sweep.push((net, batch));
        }
    }
    bfree::par::par_map(sweep, |(net, batch)| ExtensionRow {
        network: net.name().to_string(),
        batch,
        latency_ms: (
            bfree.run(net, batch).per_inference_latency().milliseconds(),
            nc.run(net, batch).per_inference_latency().milliseconds(),
            eyeriss
                .run(net, batch)
                .per_inference_latency()
                .milliseconds(),
            cpu.run(net, batch).per_inference_latency().milliseconds(),
            gpu.run(net, batch).per_inference_latency().milliseconds(),
        ),
    })
}

/// Prints the experiment.
///
/// # Errors
///
/// Returns [`ExperimentError::MissingData`] if the sweep lacks the
/// batch-1 rows the closing line quotes.
pub fn print() -> Result<(), ExperimentError> {
    let rows = run();
    println!("\n== Extension workloads (per-inference ms) ==");
    println!(
        "{:<12} {:>6} {:>10} {:>13} {:>10} {:>10} {:>10}",
        "network", "batch", "BFree", "NeuralCache", "Eyeriss", "CPU", "GPU"
    );
    for row in &rows {
        println!(
            "{:<12} {:>6} {:>10.3} {:>13.3} {:>10.3} {:>10.1} {:>10.2}",
            row.network,
            row.batch,
            row.latency_ms.0,
            row.latency_ms.1,
            row.latency_ms.2,
            row.latency_ms.3,
            row.latency_ms.4
        );
    }
    let batch1 = |name: &str| {
        rows.iter()
            .find(|r| r.network == name && r.batch == 1)
            .ok_or_else(|| ExperimentError::MissingData(format!("extension row {name} batch 1")))
    };
    println!(
        "  BFree keeps its Neural Cache advantage off the paper's workload set: \
         {:.2}x (ResNet-18 b1), {:.2}x (GRU b1)",
        batch1("ResNet-18")?.vs_neural_cache(),
        batch1("GRU")?.vs_neural_cache()
    );
    Ok(())
}
