//! Fig. 4(c): latency and energy of the three LUT-row design points.
//! The decoupled-bitline design reads 3x faster and 231x more
//! efficiently than sharing the partition bitline, for 0.5% subarray
//! area.

use pim_arch::{EnergyParams, LutRowDesign, LutRowProfile, TimingParams};

use crate::error::ExperimentError;
use crate::Comparison;

/// Result of the Fig. 4 experiment.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Profile of each design point.
    pub profiles: Vec<LutRowProfile>,
    /// Decoupled-vs-shared speedup.
    pub speedup: f64,
    /// Decoupled-vs-shared energy gain.
    pub energy_gain: f64,
}

/// Runs the experiment.
pub fn run() -> Fig4 {
    let timing = TimingParams::default();
    let energy = EnergyParams::default();
    let profiles: Vec<LutRowProfile> = LutRowDesign::ALL
        .iter()
        .map(|d| d.profile(&timing, &energy))
        .collect();
    let shared = LutRowDesign::SharedBitline.profile(&timing, &energy);
    let decoupled = LutRowDesign::DecoupledBitline.profile(&timing, &energy);
    Fig4 {
        profiles,
        speedup: decoupled.speedup_over(&shared),
        energy_gain: decoupled.energy_gain_over(&shared),
    }
}

/// Comparison rows against the paper's figures.
pub fn comparisons(result: &Fig4) -> Vec<Comparison> {
    vec![
        Comparison::new(
            "decoupled-bitline LUT read speedup",
            3.0,
            result.speedup,
            "x",
        ),
        Comparison::new(
            "decoupled-bitline LUT energy gain",
            231.0,
            result.energy_gain,
            "x",
        ),
        Comparison::new(
            "decoupled-bitline subarray area overhead",
            0.005,
            result
                .profiles
                .iter()
                .find(|p| p.design == LutRowDesign::DecoupledBitline)
                .map(|p| p.subarray_area_overhead)
                .unwrap_or(0.0),
            "frac",
        ),
    ]
}

/// Prints the experiment.
pub fn print() -> Result<(), ExperimentError> {
    let result = run();
    println!("\n== Fig. 4(c): LUT-row design space ==");
    println!(
        "{:<22} {:>12} {:>12} {:>10}",
        "design", "read ns", "read pJ", "area ovh"
    );
    for p in &result.profiles {
        println!(
            "{:<22} {:>12.3} {:>12.4} {:>9.1}%",
            p.design.name(),
            p.read_latency.nanoseconds(),
            p.read_energy.picojoules(),
            p.subarray_area_overhead * 100.0
        );
    }
    crate::print_comparisons("Fig. 4(c) vs paper", &comparisons(&result));
    Ok(())
}
