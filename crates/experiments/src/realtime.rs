//! `experiments serving --realtime`: the wall-clock serving load sweep,
//! plus the `--conformance` gate that replays one trace through both
//! the virtual-clock oracle and the realtime engine and reconciles
//! them.
//!
//! Unlike every other experiment in this crate, the realtime sweep
//! measures *wall-clock* behaviour of a real worker pool: its latency
//! numbers vary run to run with the host. Its CSV is therefore written
//! as an *untracked* artifact (`results/serving_realtime.csv` is not
//! part of the golden set, and `csv::write_all` does not emit it) —
//! what CI gates is the conformance replay, whose work counters are
//! exact by construction.

use bfree_fault::FaultInjector;
use bfree_serve::realtime::run_conformance;
use bfree_serve::{
    Frontend, OpenLoopDriver, RealtimeConfig, RequestTrace, ServeConfig, ServingSummary, TenantSpec,
};
use pim_nn::request::NetworkKind;

use crate::error::ExperimentError;

/// Seed for the sweep's arrival process (same as the virtual-clock
/// serving sweep, so the offered traces match point for point).
const SEED: u64 = 0xBF_EE;
/// Virtual trace horizon per load point. Shorter than the virtual-clock
/// sweep's: every request here costs real wall time.
const HORIZON_NS: u64 = 50_000_000;
/// LSTM-TIMIT arrival rate at load 1.0 (requests/s).
const LSTM_BASE_RPS: f64 = 2_000.0;
/// BERT-base arrival rate at load 1.0 (requests/s).
const BERT_BASE_RPS: f64 = 50.0;

/// One measured wall-clock load point.
#[derive(Debug, Clone)]
pub struct RealtimePoint {
    /// Load multiplier applied to both base rates.
    pub load: f64,
    /// Requests the trace offered.
    pub offered: u64,
    /// The run's telemetry summary (latencies are virtual lane time;
    /// completion accounting is exact).
    pub summary: ServingSummary,
    /// Concurrency counters from the run.
    pub stats: bfree_serve::RealtimeStats,
    /// Wall-clock throughput: completed requests per wall second.
    pub wall_throughput_rps: f64,
    /// The engine's final live-telemetry snapshot.
    pub snapshot: std::sync::Arc<bfree_obs::TelemetrySnapshot>,
}

/// The wall-clock sweep result.
#[derive(Debug, Clone)]
pub struct RealtimeSweep {
    /// The engine configuration every point ran under.
    pub config: RealtimeConfig,
    /// Measured points, in ascending load order.
    pub points: Vec<RealtimePoint>,
}

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lstm-timit", NetworkKind::LstmTimit),
        TenantSpec::new("bert-base", NetworkKind::BertBase),
    ]
}

fn config() -> Result<RealtimeConfig, ExperimentError> {
    Ok(RealtimeConfig::builder()
        .workers(4)
        .queue_shards(4)
        .serve(
            ServeConfig::builder()
                .max_batch(8)
                .batch_window_ns(100_000)
                .queue_capacity(512)
                .timeout_ns(Some(50_000_000))
                .build()?,
        )
        .build()?)
}

/// Builds the open-loop trace for one load point. Seeded, so the same
/// load always offers the same trace — to this sweep, to the oracle,
/// and to the conformance harness.
fn trace_for(load: f64, horizon_ns: u64) -> RequestTrace {
    let mut driver = OpenLoopDriver::new(SEED, vec![LSTM_BASE_RPS * load, BERT_BASE_RPS * load]);
    let mut trace = RequestTrace::new();
    for (at_ns, tenant) in driver.arrivals(horizon_ns) {
        trace.submit(at_ns, tenant);
    }
    trace
}

/// Runs the wall-clock sweep over explicit load multipliers. Points run
/// serially — each one spawns its own worker pool, and overlapping
/// pools would contend for the same cores and corrupt each other's
/// latency numbers. Points are sorted by load before return.
///
/// # Errors
///
/// Propagates engine construction and drive failures.
pub fn run_with_loads(loads: Vec<f64>) -> Result<RealtimeSweep, ExperimentError> {
    let config = config()?;
    let mut points = Vec::with_capacity(loads.len());
    for load in loads {
        let trace = trace_for(load, HORIZON_NS);
        let mut engine = bfree_serve::RealtimeEngine::new(config.clone(), tenants())?;
        let offered = engine.submit_trace(&trace)?;
        engine.drive_to_idle()?;
        let summary = engine.serving_telemetry().summary();
        let stats = engine.stats();
        let wall_throughput_rps = if stats.wall_ns > 0 {
            summary.completed as f64 / (stats.wall_ns as f64 * 1e-9)
        } else {
            0.0
        };
        points.push(RealtimePoint {
            load,
            offered,
            summary,
            stats,
            wall_throughput_rps,
            snapshot: engine.live_snapshot(),
        });
    }
    points.sort_by(|a, b| a.load.total_cmp(&b.load));
    Ok(RealtimeSweep { config, points })
}

/// Runs the sweep over the canonical load multipliers.
///
/// # Errors
///
/// Same as [`run_with_loads`].
pub fn run() -> Result<RealtimeSweep, ExperimentError> {
    run_with_loads(vec![0.25, 0.5, 1.0, 2.0])
}

/// CSV header for [`csv_rows`].
pub const CSV_HEADER: [&str; 12] = [
    "load",
    "offered",
    "completed",
    "rejected",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "wall_throughput_rps",
    "wall_ms",
    "steals",
    "batches",
    "joins",
];

/// The sweep as CSV rows matching [`CSV_HEADER`].
pub fn csv_rows(sweep: &RealtimeSweep) -> Vec<Vec<String>> {
    sweep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.load),
                p.offered.to_string(),
                p.summary.completed.to_string(),
                p.summary.rejected.to_string(),
                format!("{:.4}", p.summary.p50_latency_ns as f64 * 1e-6),
                format!("{:.4}", p.summary.p95_latency_ns as f64 * 1e-6),
                format!("{:.4}", p.summary.p99_latency_ns as f64 * 1e-6),
                format!("{:.1}", p.wall_throughput_rps),
                format!("{:.3}", p.stats.wall_ns as f64 * 1e-6),
                p.stats.steals.to_string(),
                p.stats.batches.to_string(),
                p.stats.joins.to_string(),
            ]
        })
        .collect()
}

/// Prints the sweep and writes the (untracked, machine-dependent)
/// `results/serving_realtime.csv`.
///
/// # Errors
///
/// Propagates [`run`]'s errors and CSV write failures.
pub fn print() -> Result<(), ExperimentError> {
    print_with_metrics(false)
}

/// [`print()`], optionally followed by the final load point's live
/// snapshot rendered as OpenMetrics exposition text (`--metrics`).
///
/// # Errors
///
/// Same as [`print()`].
pub fn print_with_metrics(metrics: bool) -> Result<(), ExperimentError> {
    let sweep = run()?;
    println!(
        "\n== Realtime serving: wall-clock load sweep ({} workers, {} queue shards) ==",
        sweep.config.workers, sweep.config.queue_shards
    );
    println!(
        "{:>5} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9} {:>7} {:>7} {:>6}",
        "load",
        "offered",
        "complete",
        "rejected",
        "p50 ms",
        "p95 ms",
        "p99 ms",
        "wall req/s",
        "wall ms",
        "steals",
        "batches",
        "joins"
    );
    for p in &sweep.points {
        println!(
            "{:>5.2} {:>8} {:>9} {:>9} {:>9.3} {:>9.3} {:>9.3} {:>11.1} {:>9.2} {:>7} {:>7} {:>6}",
            p.load,
            p.offered,
            p.summary.completed,
            p.summary.rejected,
            p.summary.p50_latency_ns as f64 * 1e-6,
            p.summary.p95_latency_ns as f64 * 1e-6,
            p.summary.p99_latency_ns as f64 * 1e-6,
            p.wall_throughput_rps,
            p.stats.wall_ns as f64 * 1e-6,
            p.stats.steals,
            p.stats.batches,
            p.stats.joins,
        );
    }
    let path = std::path::Path::new("results").join("serving_realtime.csv");
    crate::csv::write_rows(&path, &CSV_HEADER, &csv_rows(&sweep))?;
    println!(
        "\nwrote {} (untracked: wall-clock numbers are machine-dependent)",
        path.display()
    );
    if metrics {
        if let Some(last) = sweep.points.last() {
            println!(
                "\n== Live metrics: final snapshot at load {:.2} (OpenMetrics) ==",
                last.load
            );
            print!("{}", last.snapshot.to_openmetrics());
        }
    }
    Ok(())
}

/// Runs the conformance gate: replay one seeded open-loop trace through
/// both engines, print the reconciliation, and fail on any mismatch.
/// This is what the `realtime-smoke` CI job runs.
///
/// # Errors
///
/// Engine construction/drive failures, and
/// [`ExperimentError::MissingData`] when the replay does not conform.
pub fn conformance_print() -> Result<(), ExperimentError> {
    // The gate's trace is deliberately light and timeout-free: the two
    // engines model queueing differently (the oracle dispatches
    // concurrently across the slice pool; realtime lanes serialize per
    // tenant), so a saturating trace would diverge in latency — and a
    // timeout would turn that legitimate divergence into divergent
    // outcomes. At light load both engines are near-uncontended and
    // the telemetry bound is meaningful; the work-counter check is
    // exact regardless.
    let config = RealtimeConfig::builder()
        .workers(4)
        .queue_shards(4)
        .serve(
            ServeConfig::builder()
                .max_batch(8)
                .batch_window_ns(100_000)
                .queue_capacity(4096)
                .build()?,
        )
        .build()?;
    // Tolerance 1.0: the full-speed feeder front-loads every arrival,
    // so realtime batches run deeper than the oracle's and mean latency
    // sits tens of percent high, varying with thread scheduling. The
    // bound catches order-of-magnitude breakage; correctness rides on
    // the exact checks above it.
    let trace = trace_for(0.25, HORIZON_NS);
    let injector = FaultInjector::none(config.serve.base.geometry.slices());
    let report = run_conformance(&config, &tenants(), &trace, &injector, 1.0)?;
    println!("\n== Realtime conformance: virtual-clock oracle vs wall-clock engine ==");
    println!("submitted            {:>12}", report.submitted);
    println!(
        "work counters        {:>12}  ({} ops, {} LUT reads, {} bytes)",
        if report.work_exact {
            "exact"
        } else {
            "MISMATCH"
        },
        report.total_work.ops,
        report.total_work.lut_reads,
        report.total_work.bytes
    );
    println!(
        "terminal outcomes    {:>12}",
        if report.outcomes_exact {
            "exact"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "live snapshots       {:>12}",
        if report.snapshots_exact {
            "reconciled"
        } else {
            "MISMATCH"
        }
    );
    println!(
        "mean latency         {:>9.3} ms oracle vs {:.3} ms realtime ({:+.1}%)",
        report.mean_latency_ns.oracle * 1e-6,
        report.mean_latency_ns.realtime * 1e-6,
        report.mean_latency_ns.divergence * 100.0
    );
    println!(
        "mean energy          {:>9.3} uJ oracle vs {:.3} uJ realtime ({:+.1}%)",
        report.mean_energy_pj.oracle * 1e-6,
        report.mean_energy_pj.realtime * 1e-6,
        report.mean_energy_pj.divergence * 100.0
    );
    if report.passed() {
        println!(
            "conformance: PASS (telemetry tolerance {:.0}%)",
            report.tolerance * 100.0
        );
        Ok(())
    } else {
        for m in &report.mismatches {
            println!("conformance mismatch: {m}");
        }
        Err(ExperimentError::MissingData(format!(
            "realtime conformance failed: {} mismatch(es)",
            report.mismatches.len()
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_seed_deterministic_per_load() {
        let a = trace_for(1.0, 5_000_000);
        let b = trace_for(1.0, 5_000_000);
        assert_eq!(a.events().len(), b.events().len());
        assert!(!a.is_empty());
        for (x, y) in a.events().iter().zip(b.events()) {
            assert_eq!(x.at_ns, y.at_ns);
        }
    }

    #[test]
    fn sweep_points_are_sorted_and_accounted() {
        let sweep = run_with_loads(vec![0.5, 0.25]).unwrap();
        let loads: Vec<f64> = sweep.points.iter().map(|p| p.load).collect();
        assert_eq!(loads, vec![0.25, 0.5]);
        for p in &sweep.points {
            assert_eq!(
                p.summary.completed + p.summary.rejected,
                p.offered,
                "every offered request must terminate"
            );
            assert!(p.stats.wall_ns > 0);
        }
        assert_eq!(csv_rows(&sweep).len(), 2);
    }

    #[test]
    fn conformance_gate_passes_on_the_ci_trace() {
        conformance_print().unwrap();
    }
}
