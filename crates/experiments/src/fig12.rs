//! Fig. 12 and the §V-D headline: Inception-v3 on BFree versus Neural
//! Cache over the same 35 MB L3 — layer-wise runtimes (a), runtime
//! breakdowns (b, c) and BFree's cache-energy distribution (d).
//!
//! As in the paper, BFree runs in conv mode (0.5 MAC/cycle/subarray) for
//! this comparison.

use bfree::prelude::*;
use pim_arch::EnergyComponent;
use pim_baselines::RunReport;

use crate::error::ExperimentError;
use crate::Comparison;

/// Result of the Fig. 12 experiments.
#[derive(Debug, Clone)]
pub struct Fig12 {
    /// BFree report (conv mode, batch 1).
    pub bfree: RunReport,
    /// Neural Cache report (batch 1).
    pub neural_cache: RunReport,
    /// Overall speedup (paper: 1.72x).
    pub speedup: f64,
    /// Overall energy gain (paper: 3.14x).
    pub energy_gain: f64,
    /// Per-module runtimes `(module, bfree_us, neural_cache_us)` for
    /// Fig. 12(a).
    pub module_runtimes: Vec<(String, f64, f64)>,
    /// DRAM share of BFree's total energy (§V-D: ~80%).
    pub bfree_dram_energy_fraction: f64,
    /// SA-access + BCE share of BFree's cache energy (Fig. 12(d): ~85%).
    pub bfree_sa_bce_cache_fraction: f64,
    /// Input-load + reduction share of Neural Cache runtime (~30%).
    pub neural_cache_overhead_fraction: f64,
}

/// The Fig. 12(a) modules the paper plots.
const MODULES: [&str; 8] = [
    "Conv2d", "Mixed_5b", "Mixed_5d", "Mixed_6a", "Mixed_6c", "Mixed_6e", "Mixed_7a", "Mixed_7c",
];

/// Runs the experiment.
pub fn run() -> Fig12 {
    let net = networks::inception_v3();
    let bfree_sim =
        BfreeSimulator::new(BfreeConfig::paper_default().with_conv_dataflow(ConvDataflow::Direct));
    let nc = NeuralCacheModel::paper_default();
    // The two device models are independent; run them side by side.
    let (bfree, neural_cache) = bfree::par::join(|| bfree_sim.run(&net, 1), || nc.run(&net, 1));

    let module_time = |report: &RunReport, module: &str| -> f64 {
        report
            .per_layer
            .iter()
            .filter(|l| l.name.starts_with(module))
            .map(|l| l.latency.microseconds())
            .sum()
    };
    let module_runtimes = MODULES
        .iter()
        .map(|m| {
            (
                m.to_string(),
                module_time(&bfree, m),
                module_time(&neural_cache, m),
            )
        })
        .collect();

    let nc_exec = neural_cache.latency.get(Phase::Compute)
        + neural_cache.latency.get(Phase::InputLoad)
        + neural_cache.latency.get(Phase::Reduction)
        + neural_cache.latency.get(Phase::WeightLoad);
    let nc_overhead =
        neural_cache.latency.get(Phase::InputLoad) + neural_cache.latency.get(Phase::Reduction);

    Fig12 {
        speedup: bfree.speedup_over(&neural_cache),
        energy_gain: bfree.energy_gain_over(&neural_cache),
        bfree_dram_energy_fraction: bfree.energy.fraction(EnergyComponent::Dram),
        bfree_sa_bce_cache_fraction: bfree
            .energy
            .fraction_excluding(EnergyComponent::SubarrayAccess, EnergyComponent::Dram)
            + bfree
                .energy
                .fraction_excluding(EnergyComponent::Bce, EnergyComponent::Dram),
        neural_cache_overhead_fraction: nc_overhead.nanoseconds() / nc_exec.nanoseconds(),
        module_runtimes,
        bfree,
        neural_cache,
    }
}

/// Comparison rows against the paper's headline numbers.
// The paper's headline energy gain happens to be 3.14x — a coincidence
// clippy's approx-PI lint cannot know about.
#[allow(clippy::approx_constant)]
pub fn comparisons(result: &Fig12) -> Vec<Comparison> {
    vec![
        Comparison::new("speedup over Neural Cache", 1.72, result.speedup, "x"),
        Comparison::new(
            "energy gain over Neural Cache",
            3.14,
            result.energy_gain,
            "x",
        ),
        Comparison::new(
            "BFree DRAM energy share",
            0.80,
            result.bfree_dram_energy_fraction,
            "frac",
        ),
        Comparison::new(
            "BFree SA+BCE share of cache energy",
            0.85,
            result.bfree_sa_bce_cache_fraction,
            "frac",
        ),
        Comparison::new(
            "Neural Cache input-load+reduction share",
            0.30,
            result.neural_cache_overhead_fraction,
            "frac",
        ),
    ]
}

/// Prints the experiment.
pub fn print() -> Result<(), ExperimentError> {
    let result = run();
    println!("\n== Fig. 12(a): Inception-v3 layer-wise runtime (us) ==");
    println!(
        "{:<12} {:>12} {:>14} {:>8}",
        "module", "BFree", "Neural Cache", "ratio"
    );
    for (module, ours, theirs) in &result.module_runtimes {
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>7.2}x",
            module,
            ours,
            theirs,
            theirs / ours
        );
    }
    println!("\n== Fig. 12(b): BFree runtime breakdown ==");
    for (phase, lat) in result.bfree.latency.iter() {
        println!(
            "  {:>12}: {:>12}  ({:.1}%)",
            phase.label(),
            lat.to_string(),
            result.bfree.latency.fraction(phase) * 100.0
        );
    }
    println!("\n== Fig. 12(c): Neural Cache runtime breakdown ==");
    for (phase, lat) in result.neural_cache.latency.iter() {
        println!(
            "  {:>12}: {:>12}  ({:.1}%)",
            phase.label(),
            lat.to_string(),
            result.neural_cache.latency.fraction(phase) * 100.0
        );
    }
    println!("\n== Fig. 12(d): BFree cache energy (DRAM excluded) ==");
    for component in EnergyComponent::ALL {
        let frac = result
            .bfree
            .energy
            .fraction_excluding(component, EnergyComponent::Dram);
        if frac > 0.0 && component != EnergyComponent::Dram {
            println!("  {:>12}: {:.1}%", component.label(), frac * 100.0);
        }
    }
    crate::print_comparisons("Fig. 12 headline vs paper", &comparisons(&result));
    Ok(())
}
