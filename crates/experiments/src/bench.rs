//! `experiments bench`: wall-clock timing of the swept experiments,
//! serial (`jobs = 1`) versus parallel (all detected cores), written as
//! `BENCH_experiments.json`.
//!
//! The sweeps are milliseconds long, so each unit is timed over many
//! iterations and the *best* per-iteration time is reported — the
//! standard defense against scheduler noise on shared machines. The
//! JSON is hand-rolled (the vendored serde is a no-op stub) and carries
//! no timestamps, so reruns on the same machine diff cleanly.

use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

use crate::error::ExperimentError;

/// One timed experiment unit.
#[derive(Debug, Clone)]
pub struct BenchRow {
    /// Unit name (CLI subcommand it corresponds to).
    pub name: &'static str,
    /// Iterations timed per configuration.
    pub iters: u32,
    /// Best per-iteration wall-clock, serial path, milliseconds.
    pub serial_ms: f64,
    /// Best per-iteration wall-clock, parallel path, milliseconds.
    pub parallel_ms: f64,
}

impl BenchRow {
    /// serial / parallel.
    pub fn speedup(&self) -> f64 {
        self.serial_ms / self.parallel_ms
    }
}

/// Best-of-`iters` wall-clock for one closure, in milliseconds.
fn best_ms<F: FnMut()>(iters: u32, mut f: F) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
    }
    best
}

/// Times one unit under `jobs = 1` and `jobs = cores`, restoring the
/// caller's override afterwards.
fn time_unit<F: FnMut()>(name: &'static str, iters: u32, jobs: usize, mut f: F) -> BenchRow {
    bfree::par::set_max_jobs(1);
    let serial_ms = best_ms(iters, &mut f);
    bfree::par::set_max_jobs(jobs);
    let parallel_ms = best_ms(iters, &mut f);
    BenchRow {
        name,
        iters,
        serial_ms,
        parallel_ms,
    }
}

/// Runs the benchmark and writes `path`.
///
/// `quick` trims the iteration counts for CI; the unit set is the same.
///
/// # Errors
///
/// Propagates experiment failures and the final file write.
pub fn run(path: &Path, quick: bool) -> Result<(), ExperimentError> {
    let saved = bfree::par::max_jobs();
    let jobs = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let iters: u32 = if quick { 3 } else { 10 };

    // Probe the fallible sweeps once up front so a failure surfaces as
    // an ExperimentError before any timing runs.
    crate::table3::run()?;
    crate::serving::run()?;

    let rows = vec![
        time_unit("fig12", iters, jobs, || {
            crate::fig12::run();
        }),
        time_unit("fig13", iters, jobs, || {
            crate::fig13::run();
        }),
        time_unit("fig14", iters, jobs, || {
            crate::fig14::run();
        }),
        time_unit("table3", iters, jobs, || {
            let _ = crate::table3::run();
        }),
        time_unit("headline", iters, jobs, || {
            crate::headline::run();
        }),
        time_unit("ablations_lut_rows", iters, jobs, || {
            crate::ablations::lut_rows();
        }),
        time_unit("ablations_batch_sweep", iters, jobs, || {
            crate::ablations::batch_sweep();
        }),
        time_unit("extensions", iters, jobs, || {
            crate::extensions::run();
        }),
        time_unit("serving", iters, jobs, || {
            let _ = crate::serving::run();
        }),
    ];
    bfree::par::set_max_jobs(saved);

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"jobs\": {jobs},");
    let _ = writeln!(json, "  \"iters_per_unit\": {iters},");
    json.push_str("  \"units\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"serial_ms\": {:.4}, \"parallel_ms\": {:.4}, \
             \"speedup\": {:.3}}}",
            row.name,
            row.serial_ms,
            row.parallel_ms,
            row.speedup()
        );
        json.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]\n}\n");
    std::fs::write(path, &json)?;

    println!("== experiments bench: serial vs parallel ({jobs} jobs) ==");
    println!(
        "{:<24} {:>12} {:>12} {:>9}",
        "unit", "serial ms", "parallel ms", "speedup"
    );
    for row in &rows {
        println!(
            "{:<24} {:>12.3} {:>12.3} {:>8.2}x",
            row.name,
            row.serial_ms,
            row.parallel_ms,
            row.speedup()
        );
    }
    println!("wrote {}", path.display());
    Ok(())
}
