//! §V-B design-analysis numbers: area overheads, controller and BCE
//! power, and the BCE-versus-specialized-MAC comparison.

use pim_arch::area::AreaReport;
use pim_arch::{AreaModel, CacheGeometry, EnergyParams};
use pim_bce::power::{ADD_PJ, ROM_READ_PJ, SHIFT_PJ};

use crate::error::ExperimentError;
use crate::Comparison;

/// Runs the area model over the paper geometry.
pub fn run_area() -> AreaReport {
    AreaModel::default().report(&CacheGeometry::xeon_l3_35mb())
}

/// Comparison rows for §V-B.
pub fn comparisons() -> Vec<Comparison> {
    let report = run_area();
    let model = AreaModel::default();
    let energy = EnergyParams::default();
    vec![
        Comparison::new(
            "total cache area overhead",
            0.056,
            report.total_overhead_fraction,
            "frac",
        ),
        Comparison::new(
            "LUT circuitry / subarray",
            0.005,
            report.lut_subarray_overhead,
            "frac",
        ),
        Comparison::new(
            "controllers / cache",
            0.001,
            report.controller_cache_overhead,
            "frac",
        ),
        Comparison::new("BCE conv-mode power", 0.4, energy.bce_conv_mode_mw, "mW"),
        Comparison::new(
            "BCE matmul-mode power",
            1.3,
            energy.bce_matmul_mode_mw,
            "mW",
        ),
        Comparison::new(
            "cache controller power",
            0.8,
            energy.cache_controller_mw,
            "mW",
        ),
        Comparison::new(
            "slice controller power",
            1.4,
            energy.slice_controller_mw,
            "mW",
        ),
        Comparison::new(
            "specialized MAC relative area",
            1.03,
            model.specialized_mac_area_ratio(),
            "x",
        ),
        Comparison::new(
            "BCE vs MAC energy efficiency",
            1.48,
            model.bce_vs_mac_energy_gain(),
            "x",
        ),
    ]
}

/// Prints the experiment.
pub fn print() -> Result<(), ExperimentError> {
    crate::print_comparisons("§V-B: area and power overheads", &comparisons());
    let interference = bfree::InterferenceModel::paper_default();
    println!(
        "  conventional-access slowdown under full PIM load: conv {:.3}%, matmul {:.3}% \
         (§III-A: 'minimal impact on conventional memory performance')",
        (interference.slowdown(pim_bce::BceMode::Conv, 1.0) - 1.0) * 100.0,
        (interference.slowdown(pim_bce::BceMode::MatMul, 1.0) - 1.0) * 100.0
    );
    let report = run_area();
    println!(
        "  conventional cache {:.1} mm^2 -> BFree {:.1} mm^2",
        report.conventional_cache_mm2, report.bfree_cache_mm2
    );
    // The 0.5 pJ ROM-MAC decomposition of §V-D.
    let mac_pj = 4.0 * ROM_READ_PJ + 4.0 * ADD_PJ + 2.0 * SHIFT_PJ;
    println!(
        "  BCE int8 MAC energy: {mac_pj:.2} pJ (4 ROM reads + fixups; paper: ~0.5 pJ ROM term)"
    );
    Ok(())
}
