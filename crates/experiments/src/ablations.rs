//! Ablations of the design choices DESIGN.md §5 calls out: multiply
//! path, multiply-LUT sizing, systolic versus load-then-compute
//! dataflow, conv- versus matmul-mode convolution, LUT-row design under
//! a real workload, batch scaling, and the LSTM/GRU pair.

use bfree::prelude::*;
use pim_arch::EnergyComponent;
use pim_bce::{Bce, BceCostModel, MulPath};
use pim_lut::LutMultiplier;
use pim_systolic::SystolicSchedule;

use crate::error::ExperimentError;

/// Result of the multiply-path ablation: energy per int8 MAC through
/// each datapath.
#[derive(Debug, Clone)]
pub struct MulPathAblation {
    /// pJ per MAC via the in-subarray 49-entry LUT.
    pub subarray_lut_pj: f64,
    /// pJ per MAC via the BCE's hardwired nibble ROM.
    pub hardwired_rom_pj: f64,
    /// pJ per MAC for the Neural-Cache-style bitline equivalent.
    pub bitline_pj: f64,
}

/// Prices 4096 pseudo-random int8 MACs through both multiply paths.
pub fn mul_path() -> MulPathAblation {
    let model = BceCostModel::paper_default();
    let mut state = 0xD1B54A32D192ED03u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((state >> 33) & 0xFF) as i8
    };
    let w: Vec<i8> = (0..4096).map(|_| next()).collect();
    let x: Vec<i8> = (0..4096).map(|_| next()).collect();

    let price = |path: MulPath| {
        // Invariant: `Bce::with_mul_path` only fails on a malformed LUT
        // image, and both paths here use the built-in default tables.
        let bce = Bce::with_mul_path(BceMode::Conv, path).expect("default tables valid");
        let (_, stats) = bce.dot_conv(&w, &x, Precision::Int8);
        model.stats_energy(&stats).picojoules() / stats.macs as f64
    };
    let rom = price(MulPath::HardwiredRom);
    let lut = price(MulPath::SubarrayLut);
    let bitline = model.bitline_equivalent_energy(1, 120, 64).picojoules();
    MulPathAblation {
        subarray_lut_pj: lut,
        hardwired_rom_pj: rom,
        bitline_pj: bitline,
    }
}

/// Result of the LUT-sizing ablation.
#[derive(Debug, Clone)]
pub struct LutSizeAblation {
    /// 49-entry table: storage bytes.
    pub reduced_bytes: usize,
    /// 49-entry table: mean events per nibble product (reads + shifts +
    /// adds).
    pub reduced_events_per_product: f64,
    /// 49-entry table: mean table reads per nibble product.
    pub reduced_reads_per_product: f64,
    /// Full 256-entry table: storage bytes (one read, no fixups).
    pub full_bytes: usize,
}

/// Measures the paper's 49-entry optimization against a naive 256-entry
/// table over the full 4-bit operand space.
pub fn lut_size() -> LutSizeAblation {
    let mul = LutMultiplier::new();
    let mut events = 0u64;
    let mut reads = 0u64;
    for a in 0u8..16 {
        for b in 0u8..16 {
            let (_, c) = mul.mul_nibble(a, b);
            events += c.lut_reads + c.shifts + c.adds;
            reads += c.lut_reads;
        }
    }
    LutSizeAblation {
        reduced_bytes: mul.table().storage_bytes(),
        reduced_events_per_product: events as f64 / 256.0,
        reduced_reads_per_product: reads as f64 / 256.0,
        full_bytes: 256,
    }
}

/// Result of the systolic-dataflow ablation.
#[derive(Debug, Clone)]
pub struct DataflowAblation {
    /// Stream length swept.
    pub waves: Vec<u64>,
    /// Systolic step counts.
    pub systolic_steps: Vec<u64>,
    /// Load-then-compute step counts.
    pub sequential_steps: Vec<u64>,
}

/// Compares the systolic schedule against load-then-compute on the
/// paper's 8 x 40 slice grid.
pub fn dataflow() -> DataflowAblation {
    let waves = vec![10u64, 100, 1_000, 10_000, 100_000];
    let mut systolic = Vec::new();
    let mut sequential = Vec::new();
    for &w in &waves {
        // Invariant: `SystolicSchedule::new` only rejects zero
        // dimensions; the 8 x 40 grid here is a compile-time constant.
        let s = SystolicSchedule::new(8, 40, w).expect("non-zero dims");
        systolic.push(s.total_steps());
        sequential.push(s.sequential_steps());
    }
    DataflowAblation {
        waves,
        systolic_steps: systolic,
        sequential_steps: sequential,
    }
}

/// Result of a two-configuration network ablation.
#[derive(Debug, Clone)]
pub struct PairAblation {
    /// Label and per-inference milliseconds for the first configuration.
    pub first: (String, f64),
    /// Label and per-inference milliseconds for the second.
    pub second: (String, f64),
}

/// Direct-conv versus im2col-matmul on Inception-v3 (total latency,
/// batch 1).
pub fn conv_dataflow() -> PairAblation {
    let net = networks::inception_v3();
    let run = |dataflow: ConvDataflow| {
        BfreeSimulator::new(BfreeConfig::paper_default().with_conv_dataflow(dataflow))
            .run(&net, 1)
            .total_latency()
            .milliseconds()
    };
    let (direct, im2col) =
        bfree::par::join(|| run(ConvDataflow::Direct), || run(ConvDataflow::Im2col));
    PairAblation {
        first: ("direct conv".to_string(), direct),
        second: ("im2col matmul".to_string(), im2col),
    }
}

/// LSTM versus its GRU variant on BFree (per-inference latency).
pub fn lstm_vs_gru() -> PairAblation {
    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    let (lstm, gru) = bfree::par::join(
        || {
            sim.run(&networks::lstm_timit(), 1)
                .total_latency()
                .milliseconds()
        },
        || {
            sim.run(&networks::gru_timit(), 1)
                .total_latency()
                .milliseconds()
        },
    );
    PairAblation {
        first: ("LSTM-1024".to_string(), lstm),
        second: ("GRU-1024".to_string(), gru),
    }
}

/// LUT-row design applied to Inception-v3: total and LUT-access energy
/// per design.
#[derive(Debug, Clone)]
pub struct LutRowAblation {
    /// Per design: (name, total mJ, lut-access mJ).
    pub rows: Vec<(String, f64, f64)>,
}

/// Runs Inception-v3 in conv mode under each LUT-row design. The three
/// designs are independent simulations, so they fan out on the
/// `bfree::par` pool; row order matches `LutRowDesign::ALL`.
pub fn lut_rows() -> LutRowAblation {
    let net = networks::inception_v3();
    let rows = bfree::par::par_map(pim_arch::LutRowDesign::ALL.to_vec(), |design| {
        let config = BfreeConfig {
            lut_design: design,
            ..BfreeConfig::paper_default().with_conv_dataflow(ConvDataflow::Direct)
        };
        let report = BfreeSimulator::new(config).run(&net, 1);
        (
            design.name().to_string(),
            report.total_energy().millijoules(),
            report.energy.get(EnergyComponent::LutAccess).millijoules(),
        )
    });
    LutRowAblation { rows }
}

/// Batch-scaling curve for BERT-base: per-inference latency. The six
/// batch points fan out on the `bfree::par` pool in ascending order.
pub fn batch_sweep() -> Vec<(usize, f64)> {
    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    let net = networks::bert_base();
    bfree::par::par_map(vec![1usize, 2, 4, 8, 16, 32], |b| {
        (b, sim.run(&net, b).per_inference_latency().milliseconds())
    })
}

/// Prints all ablations.
pub fn print() -> Result<(), ExperimentError> {
    let mp = mul_path();
    println!("\n== Ablation: multiply path (pJ per int8 MAC, incl. weight reads) ==");
    println!(
        "  hardwired ROM (evaluated design): {:>8.2} pJ",
        mp.hardwired_rom_pj
    );
    println!(
        "  subarray 49-entry LUT (§III-C1) : {:>8.2} pJ",
        mp.subarray_lut_pj
    );
    println!(
        "  bitline computing equivalent    : {:>8.2} pJ",
        mp.bitline_pj
    );

    let ls = lut_size();
    println!("\n== Ablation: multiply-LUT sizing ==");
    println!(
        "  49-entry table: {:>4} bytes, {:.2} events/product ({:.2} table reads)",
        ls.reduced_bytes, ls.reduced_events_per_product, ls.reduced_reads_per_product
    );
    println!(
        "  256-entry table: {:>3} bytes, 1.00 events/product (1.00 table reads)",
        ls.full_bytes
    );
    println!(
        "  -> {:.1}x storage saved for {:.2} extra events/product",
        ls.full_bytes as f64 / ls.reduced_bytes as f64,
        ls.reduced_events_per_product - 1.0
    );

    let df = dataflow();
    println!("\n== Ablation: systolic vs load-then-compute (8 x 40 grid) ==");
    println!(
        "{:>10} {:>12} {:>12} {:>8}",
        "waves", "systolic", "sequential", "gain"
    );
    for i in 0..df.waves.len() {
        println!(
            "{:>10} {:>12} {:>12} {:>7.1}x",
            df.waves[i],
            df.systolic_steps[i],
            df.sequential_steps[i],
            df.sequential_steps[i] as f64 / df.systolic_steps[i] as f64
        );
    }

    let cd = conv_dataflow();
    println!("\n== Ablation: convolution dataflow (Inception-v3, batch 1) ==");
    println!("  {:<16} {:>10.3} ms", cd.first.0, cd.first.1);
    println!("  {:<16} {:>10.3} ms", cd.second.0, cd.second.1);

    let lr = lut_rows();
    println!("\n== Ablation: LUT-row design under Inception-v3 ==");
    println!(
        "{:<22} {:>12} {:>14}",
        "design", "total mJ", "lut-access mJ"
    );
    for (name, total, lut) in &lr.rows {
        println!("{:<22} {:>12.2} {:>14.4}", name, total, lut);
    }

    let rnn = lstm_vs_gru();
    println!("\n== Ablation: LSTM vs GRU (TIMIT acoustic model) ==");
    println!("  {:<12} {:>10.3} ms", rnn.first.0, rnn.first.1);
    println!("  {:<12} {:>10.3} ms", rnn.second.0, rnn.second.1);

    let attn =
        bfree::AttentionSchedule::plan(&pim_nn::networks::BertConfig::base(), 4.0 * 4480.0, 16.0);
    println!("\n== Fig. 10: attention kernel scheduling (§IV-B2) ==");
    println!(
        "  serial {} cycles -> overlapped {} cycles ({:.2}x from overlapping V with P')",
        attn.serial_cycles,
        attn.overlapped_cycles,
        attn.overlap_gain()
    );

    println!("\n== Ablation: BERT-base batch scaling ==");
    println!("{:>7} {:>16}", "batch", "ms/inference");
    for (b, ms) in batch_sweep() {
        println!("{:>7} {:>16.3}", b, ms);
    }
    Ok(())
}
