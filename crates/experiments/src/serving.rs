//! Multi-tenant serving load sweep: LSTM-TIMIT and BERT-base sharing
//! one BFree cache under mixed open-loop traffic.
//!
//! This is the ROADMAP's production-scale question rather than a paper
//! figure: the paper (§V, Table III) prices one network at a time on a
//! dedicated cache; here both request streams contend for the slice
//! pool, DRAM streaming bandwidth and the conventional-traffic budget.
//! The sweep scales both arrival rates together and reports tail
//! latency, throughput, energy per request and shed traffic at each
//! load point. Everything is virtual-clock and seeded: the CSV is
//! bit-identical across runs.

use bfree_serve::{OpenLoopDriver, ServeConfig, ServingSim, ServingSummary, TenantSpec};
use pim_nn::request::NetworkKind;

use crate::error::ExperimentError;

/// Seed for the sweep's arrival process.
const SEED: u64 = 0xBF_EE;
/// Virtual time simulated per load point.
const HORIZON_NS: u64 = 200_000_000;
/// LSTM-TIMIT arrival rate at load 1.0 (requests/s).
const LSTM_BASE_RPS: f64 = 2_000.0;
/// BERT-base arrival rate at load 1.0 (requests/s).
const BERT_BASE_RPS: f64 = 50.0;

/// One measured load point.
#[derive(Debug, Clone)]
pub struct LoadPoint {
    /// Load multiplier applied to both base rates.
    pub load: f64,
    /// Offered LSTM-TIMIT rate (requests/s).
    pub lstm_rps: f64,
    /// Offered BERT-base rate (requests/s).
    pub bert_rps: f64,
    /// The run's telemetry summary.
    pub summary: ServingSummary,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct ServingSweep {
    /// Slices each tenant occupies per dispatch: (lstm, bert).
    pub demand_slices: (usize, usize),
    /// Measured points, in ascending load order.
    pub points: Vec<LoadPoint>,
}

fn config() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        batch_window_ns: 100_000,
        queue_capacity: 512,
        timeout_ns: Some(50_000_000),
        ..ServeConfig::default()
    }
}

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lstm-timit", NetworkKind::LstmTimit),
        TenantSpec::new("bert-base", NetworkKind::BertBase),
    ]
}

/// Runs the sweep over the canonical load multipliers.
///
/// # Errors
///
/// Propagates [`ExperimentError::Serve`] if the serving configuration
/// is rejected (cannot happen for the constants above).
pub fn run() -> Result<ServingSweep, ExperimentError> {
    run_with_loads(vec![0.25, 0.5, 1.0, 2.0, 4.0])
}

/// Runs the sweep over explicit load multipliers. Each load point is an
/// independently seeded virtual-clock simulation, so the points fan out
/// on the `bfree::par` pool; the result is explicitly sorted by load
/// before any CSV emission, so row order never depends on the pool's
/// collection order (or on the order the caller listed the loads).
///
/// # Errors
///
/// Propagates [`ExperimentError::Serve`] if the serving configuration
/// is rejected (cannot happen for the constants above).
pub fn run_with_loads(loads: Vec<f64>) -> Result<ServingSweep, ExperimentError> {
    let mut points =
        bfree::par::try_par_map(loads, |load| -> Result<LoadPoint, ExperimentError> {
            let mut sim = ServingSim::new(config(), tenants())?;
            let mut driver =
                OpenLoopDriver::new(SEED, vec![LSTM_BASE_RPS * load, BERT_BASE_RPS * load]);
            driver.drive(&mut sim, HORIZON_NS);
            let summary = sim.run_to_idle().summary();
            debug_assert_eq!(sim.work_conservation_violations(), 0);
            Ok(LoadPoint {
                load,
                lstm_rps: LSTM_BASE_RPS * load,
                bert_rps: BERT_BASE_RPS * load,
                summary,
            })
        })?;
    points.sort_by(|a, b| a.load.total_cmp(&b.load));
    let probe = ServingSim::new(config(), tenants())?;
    let demand_slices = (
        probe.tenants()[0].demand_slices(),
        probe.tenants()[1].demand_slices(),
    );
    Ok(ServingSweep {
        demand_slices,
        points,
    })
}

/// CSV header for [`csv_rows`].
pub const CSV_HEADER: [&str; 12] = [
    "load",
    "lstm_rps",
    "bert_rps",
    "submitted",
    "completed",
    "rejected",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "throughput_rps",
    "energy_per_request_uj",
    "pool_utilization",
];

/// The sweep as CSV rows matching [`CSV_HEADER`].
pub fn csv_rows(sweep: &ServingSweep) -> Vec<Vec<String>> {
    sweep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.load),
                format!("{:.0}", p.lstm_rps),
                format!("{:.0}", p.bert_rps),
                p.summary.submitted.to_string(),
                p.summary.completed.to_string(),
                p.summary.rejected.to_string(),
                format!("{:.4}", p.summary.p50_latency_ns as f64 * 1e-6),
                format!("{:.4}", p.summary.p95_latency_ns as f64 * 1e-6),
                format!("{:.4}", p.summary.p99_latency_ns as f64 * 1e-6),
                format!("{:.1}", p.summary.throughput_rps),
                format!("{:.3}", p.summary.energy_per_request.picojoules() * 1e-6),
                format!("{:.4}", p.summary.pool_utilization),
            ]
        })
        .collect()
}

/// Prints the sweep and writes `results/serving_load_sweep.csv`.
///
/// # Errors
///
/// Propagates [`run`]'s errors and CSV write failures.
pub fn print() -> Result<(), ExperimentError> {
    let sweep = run()?;
    println!("\n== Serving: LSTM-TIMIT + BERT-base mixed-traffic load sweep ==");
    println!(
        "tenants: lstm-timit ({} slices/dispatch), bert-base ({} slices/dispatch), \
         14-slice pool, fifo, max batch 8, 100 us window, 50 ms timeout",
        sweep.demand_slices.0, sweep.demand_slices.1
    );
    println!(
        "{:>5} {:>10} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11} {:>9}",
        "load", "submitted", "rejected", "p50 ms", "p95 ms", "p99 ms", "req/s", "uJ/req", "util"
    );
    for p in &sweep.points {
        println!(
            "{:>5.2} {:>10} {:>9} {:>9.3} {:>9.3} {:>9.3} {:>9.1} {:>11.2} {:>8.1}%",
            p.load,
            p.summary.submitted,
            p.summary.rejected,
            p.summary.p50_latency_ns as f64 * 1e-6,
            p.summary.p95_latency_ns as f64 * 1e-6,
            p.summary.p99_latency_ns as f64 * 1e-6,
            p.summary.throughput_rps,
            p.summary.energy_per_request.picojoules() * 1e-6,
            p.summary.pool_utilization * 100.0,
        );
    }
    let path = std::path::Path::new("results").join("serving_load_sweep.csv");
    crate::csv::write_rows(&path, &CSV_HEADER, &csv_rows(&sweep))?;
    println!("\nwrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_monotone_in_offered_load() {
        let a = run().unwrap();
        let b = run().unwrap();
        assert_eq!(csv_rows(&a), csv_rows(&b), "sweep must be bit-identical");
        for pair in a.points.windows(2) {
            assert!(pair[1].summary.submitted >= pair[0].summary.submitted);
        }
        // Every request is accounted for at every load point.
        for p in &a.points {
            assert_eq!(
                p.summary.completed + p.summary.rejected,
                p.summary.submitted
            );
        }
    }

    #[test]
    fn rows_are_sorted_by_load_regardless_of_input_order() {
        // Regression: row order used to be whatever order the parallel
        // map returned, which happened to match the (sorted) input list.
        // A shuffled load list must still emit ascending-load rows
        // identical to the canonical sweep's.
        let shuffled = run_with_loads(vec![4.0, 0.25, 2.0, 0.5, 1.0]).unwrap();
        let canonical = run().unwrap();
        let loads: Vec<f64> = shuffled.points.iter().map(|p| p.load).collect();
        assert_eq!(loads, vec![0.25, 0.5, 1.0, 2.0, 4.0]);
        assert_eq!(csv_rows(&shuffled), csv_rows(&canonical));
    }

    #[test]
    fn heavy_load_degrades_tails_or_sheds() {
        let sweep = run().unwrap();
        let light = &sweep.points.first().unwrap().summary;
        let heavy = &sweep.points.last().unwrap().summary;
        assert!(
            heavy.p99_latency_ns > light.p99_latency_ns || heavy.rejected > light.rejected,
            "4x load must visibly stress the pool"
        );
    }
}
