//! The §V-D CPU/GPU comparisons for the CNNs, plus the abstract's
//! headline numbers collected in one place.

use bfree::prelude::*;

use crate::Comparison;

/// Result of the CNN CPU/GPU comparison.
#[derive(Debug, Clone)]
pub struct CnnComparison {
    /// Network name.
    pub network: String,
    /// Batch size (the paper quotes batch 16).
    pub batch: usize,
    /// (cpu speedup, gpu speedup, cpu energy gain, gpu energy gain).
    pub gains: (f64, f64, f64, f64),
}

/// Runs Inception-v3 and VGG-16 at batch 16 against CPU and GPU. The
/// two networks are independent, so they fan out on the `bfree::par`
/// pool; the result order matches the input order.
pub fn run() -> Vec<CnnComparison> {
    let bfree = BfreeSimulator::new(BfreeConfig::paper_default());
    let cpu = CpuModel::paper_xeon();
    let gpu = GpuModel::paper_titan_v();
    bfree::par::par_map(vec![networks::inception_v3(), networks::vgg16()], |net| {
        let b = bfree.run(&net, 16);
        let c = cpu.run(&net, 16);
        let g = gpu.run(&net, 16);
        CnnComparison {
            network: net.name().to_string(),
            batch: 16,
            gains: (
                b.speedup_over(&c),
                b.speedup_over(&g),
                b.energy_gain_over(&c),
                b.energy_gain_over(&g),
            ),
        }
    })
}

/// Comparison rows against §V-D.
pub fn comparisons(rows: &[CnnComparison]) -> Vec<Comparison> {
    let paper: &[(&str, f64, f64, f64, f64)] = &[
        ("Inception-v3", 259.0, 5.5, 307.0, 11.8),
        ("VGG-16", 193.0, 3.0, 253.0, 7.0),
    ];
    let mut out = Vec::new();
    for (row, &(_, pc, pg, pce, pge)) in rows.iter().zip(paper) {
        out.push(Comparison::new(
            format!("{} b16 speedup vs CPU", row.network),
            pc,
            row.gains.0,
            "x",
        ));
        out.push(Comparison::new(
            format!("{} b16 speedup vs GPU", row.network),
            pg,
            row.gains.1,
            "x",
        ));
        out.push(Comparison::new(
            format!("{} b16 energy vs CPU", row.network),
            pce,
            row.gains.2,
            "x",
        ));
        out.push(Comparison::new(
            format!("{} b16 energy vs GPU", row.network),
            pge,
            row.gains.3,
            "x",
        ));
    }
    out
}

/// Prints the CNN comparison and the collected headlines.
///
/// # Errors
///
/// Propagates Table III's errors.
pub fn print() -> Result<(), crate::ExperimentError> {
    let rows = run();
    crate::print_comparisons(
        "§V-D: CNN comparison vs CPU/GPU (batch 16)",
        &comparisons(&rows),
    );

    println!("\n== Collected headline numbers ==");
    let fig12 = crate::fig12::run();
    println!(
        "  vs Neural Cache (Inception-v3): {:.2}x speed, {:.2}x energy (paper 1.72x / 3.14x)",
        fig12.speedup, fig12.energy_gain
    );
    let fig13 = crate::fig13::run();
    println!(
        "  vs iso-area Eyeriss (VGG-16 compute): {:.2}x (paper 3.97x)",
        fig13.compute_speedup
    );
    let table3 = crate::table3::run()?;
    let bert16 = table3
        .iter()
        .find(|r| r.network == "BERT-base" && r.batch == 16)
        .ok_or_else(|| {
            crate::ExperimentError::MissingData("table3 row BERT-base batch 16".to_string())
        })?;
    println!(
        "  BERT-base b16: {:.0}x / {:.1}x faster, {:.0}x / {:.1}x less energy than CPU / GPU \
         (paper 101x / 3x, 91x / 11x)",
        bert16.cpu_speedup(),
        bert16.gpu_speedup(),
        bert16.cpu_energy_gain(),
        bert16.gpu_energy_gain()
    );
    let area = crate::overheads::run_area();
    println!(
        "  cache area overhead: {:.1}% (paper 5.6%)",
        area.total_overhead_fraction * 100.0
    );
    Ok(())
}
