//! `experiments slo`: deterministic SLO burn-rate tracking over the
//! virtual-clock serving sweep.
//!
//! Each load point replays the same seeded open-loop trace as the
//! serving sweep through the virtual-clock oracle, derives the live
//! telemetry snapshot sequence ([`bfree_serve::snapshot_series`]) at a
//! fixed virtual cadence, and folds a [`SloTracker`] over it. The
//! entire pipeline is virtual-clock integer arithmetic: the emitted
//! `results/slo.csv` is bit-identical across runs and at any `--jobs`
//! setting, which is what the `slo-smoke` CI golden gate pins.

use bfree_obs::{LogHistogram, SloStatus, SloTracker, TelemetrySnapshot};
use bfree_serve::{
    snapshot_series, OpenLoopDriver, ServeConfig, ServingSim, TelemetryConfig, TenantSpec,
};
use pim_nn::request::NetworkKind;

use crate::error::ExperimentError;

/// Seed for the sweep's arrival process (matches the serving sweep).
const SEED: u64 = 0xBF_EE;
/// Virtual time simulated per load point.
const HORIZON_NS: u64 = 200_000_000;
/// LSTM-TIMIT arrival rate at load 1.0 (requests/s).
const LSTM_BASE_RPS: f64 = 2_000.0;
/// BERT-base arrival rate at load 1.0 (requests/s).
const BERT_BASE_RPS: f64 = 50.0;

/// One snapshot row of one load point's run.
#[derive(Debug, Clone)]
pub struct SloRow {
    /// Load multiplier applied to both base rates.
    pub load: f64,
    /// The cumulative snapshot at this cadence cut.
    pub snapshot: TelemetrySnapshot,
    /// The tracker's multi-window verdict at this cut.
    pub status: SloStatus,
}

/// The full SLO sweep: snapshot sequences with burn rates per load.
#[derive(Debug, Clone)]
pub struct SloSweep {
    /// The telemetry knobs the snapshots were cut with.
    pub telemetry: TelemetryConfig,
    /// Rows ordered by (load, snapshot sequence).
    pub rows: Vec<SloRow>,
}

fn config() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        batch_window_ns: 100_000,
        queue_capacity: 512,
        timeout_ns: Some(50_000_000),
        ..ServeConfig::default()
    }
}

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lstm-timit", NetworkKind::LstmTimit),
        TenantSpec::new("bert-base", NetworkKind::BertBase),
    ]
}

/// The telemetry knobs the sweep snapshots under: 25 ms virtual
/// cadence, a 20 ms latency objective with a 90% target, and burn
/// thresholds low enough that the saturated load points alert while
/// the light ones stay green.
pub fn telemetry_config() -> TelemetryConfig {
    TelemetryConfig {
        snapshot_cadence_ns: 25_000_000,
        latency_objective_ns: 20_000_000,
        latency_target: 0.90,
        availability_target: 0.999,
        short_window_ns: 50_000_000,
        long_window_ns: 250_000_000,
        fast_burn: 2.0,
        slow_burn: 1.0,
        ..TelemetryConfig::default()
    }
}

/// Runs the sweep over explicit load multipliers. Load points fan out
/// on the `bfree::par` pool; each point is an independent seeded
/// virtual-clock run, and rows are sorted by (load, seq) before
/// return, so the output is identical at any `--jobs` setting.
///
/// # Errors
///
/// Propagates serving configuration and snapshot-derivation failures.
pub fn run_with_loads(loads: Vec<f64>) -> Result<SloSweep, ExperimentError> {
    let telemetry = telemetry_config();
    telemetry.validate()?;
    let names: Vec<String> = tenants().iter().map(|t| t.name.clone()).collect();
    let mut per_load = bfree::par::try_par_map(loads, |load| -> Result<_, ExperimentError> {
        let mut sim = ServingSim::new(config(), tenants())?;
        let mut driver =
            OpenLoopDriver::new(SEED, vec![LSTM_BASE_RPS * load, BERT_BASE_RPS * load]);
        driver.drive(&mut sim, HORIZON_NS);
        let records = sim.run_to_idle();
        let series = snapshot_series(records, &names, &telemetry_config())?;
        Ok((load, series))
    })?;
    per_load.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut rows = Vec::new();
    for (load, series) in per_load {
        let mut tracker = SloTracker::new(telemetry.slo_spec());
        for snapshot in series {
            let status = tracker.observe(&snapshot);
            rows.push(SloRow {
                load,
                snapshot,
                status,
            });
        }
    }
    Ok(SloSweep { telemetry, rows })
}

/// Runs the sweep over the canonical load multipliers.
///
/// # Errors
///
/// Same as [`run_with_loads`].
pub fn run() -> Result<SloSweep, ExperimentError> {
    run_with_loads(vec![0.25, 0.5, 1.0, 2.0, 4.0])
}

/// Merged-histogram percentile across every tenant in a snapshot, in
/// milliseconds (exercises [`LogHistogram::merge`]'s exactness).
fn global_percentile_ms(snapshot: &TelemetrySnapshot, p: f64) -> Result<f64, ExperimentError> {
    let mut merged: Option<LogHistogram> = None;
    for tenant in &snapshot.tenants {
        match &mut merged {
            None => merged = Some(tenant.latency.clone()),
            Some(h) => h
                .merge(&tenant.latency)
                .map_err(|e| ExperimentError::MissingData(e.to_string()))?,
        }
    }
    Ok(merged.map_or(0.0, |h| h.percentile(p) as f64 * 1e-6))
}

/// Mean energy per completed request across tenants, in microjoules.
fn mean_energy_uj(snapshot: &TelemetrySnapshot) -> f64 {
    let total_pj: f64 = snapshot
        .tenants
        .iter()
        .map(|t| t.mean_energy_pj * t.completed as f64)
        .sum();
    let completed = snapshot.completed();
    if completed == 0 {
        0.0
    } else {
        total_pj / completed as f64 * 1e-6
    }
}

/// CSV header for [`csv_rows`].
pub const CSV_HEADER: [&str; 17] = [
    "load",
    "seq",
    "up_to_ms",
    "completed",
    "rejected",
    "shed",
    "good",
    "retries",
    "dropped",
    "p50_ms",
    "p95_ms",
    "p99_ms",
    "energy_per_request_uj",
    "latency_burn_short",
    "latency_burn_long",
    "latency_alert",
    "availability_alert",
];

/// The sweep as CSV rows matching [`CSV_HEADER`].
///
/// # Errors
///
/// [`ExperimentError::MissingData`] if per-tenant histograms refuse to
/// merge (bounds always match here by construction).
pub fn csv_rows(sweep: &SloSweep) -> Result<Vec<Vec<String>>, ExperimentError> {
    let good_total = |s: &TelemetrySnapshot| s.tenants.iter().map(|t| t.good).sum::<u64>();
    sweep
        .rows
        .iter()
        .map(|row| {
            let s = &row.snapshot;
            Ok(vec![
                format!("{:.2}", row.load),
                s.seq.to_string(),
                format!("{:.1}", s.up_to_ns as f64 * 1e-6),
                s.completed().to_string(),
                s.rejected().to_string(),
                s.tenants.iter().map(|t| t.shed).sum::<u64>().to_string(),
                good_total(s).to_string(),
                s.retries.to_string(),
                s.dropped.to_string(),
                format!("{:.4}", global_percentile_ms(s, 50.0)?),
                format!("{:.4}", global_percentile_ms(s, 95.0)?),
                format!("{:.4}", global_percentile_ms(s, 99.0)?),
                format!("{:.3}", mean_energy_uj(s)),
                format!("{:.3}", row.status.latency.short),
                format!("{:.3}", row.status.latency.long),
                u8::from(row.status.latency.alert).to_string(),
                u8::from(row.status.availability.alert).to_string(),
            ])
        })
        .collect()
}

/// Prints the sweep and writes the golden-gated `results/slo.csv`.
///
/// # Errors
///
/// Propagates [`run`]'s errors and CSV write failures.
pub fn print() -> Result<(), ExperimentError> {
    let sweep = run()?;
    let rows = csv_rows(&sweep)?;
    println!("\n== SLO burn rates: virtual-clock snapshot sequences per load ==");
    println!(
        "objective: p(latency <= {} ms) >= {:.0}%, availability >= {:.1}%, \
         windows {} ms / {} ms, burn thresholds {}x fast / {}x slow",
        sweep.telemetry.latency_objective_ns / 1_000_000,
        sweep.telemetry.latency_target * 100.0,
        sweep.telemetry.availability_target * 100.0,
        sweep.telemetry.short_window_ns / 1_000_000,
        sweep.telemetry.long_window_ns / 1_000_000,
        sweep.telemetry.fast_burn,
        sweep.telemetry.slow_burn,
    );
    println!(
        "{:>5} {:>4} {:>9} {:>9} {:>9} {:>9} {:>9} {:>11} {:>11} {:>6}",
        "load",
        "seq",
        "up_to ms",
        "complete",
        "rejected",
        "good",
        "p99 ms",
        "lat burn s",
        "lat burn l",
        "alert"
    );
    // One line per load: the final snapshot (cumulative totals).
    for row in &sweep.rows {
        let is_final = !sweep
            .rows
            .iter()
            .any(|r| r.load == row.load && r.snapshot.seq > row.snapshot.seq);
        if !is_final {
            continue;
        }
        let s = &row.snapshot;
        println!(
            "{:>5.2} {:>4} {:>9.1} {:>9} {:>9} {:>9} {:>9.3} {:>11.3} {:>11.3} {:>6}",
            row.load,
            s.seq,
            s.up_to_ns as f64 * 1e-6,
            s.completed(),
            s.rejected(),
            s.tenants.iter().map(|t| t.good).sum::<u64>(),
            global_percentile_ms(s, 99.0)?,
            row.status.latency.short,
            row.status.latency.long,
            if row.status.latency.alert || row.status.availability.alert {
                "FIRE"
            } else {
                "ok"
            },
        );
    }
    let path = std::path::Path::new("results").join("slo.csv");
    crate::csv::write_rows(&path, &CSV_HEADER, &rows)?;
    println!("\nwrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_sorted() {
        let a = csv_rows(&run().unwrap()).unwrap();
        let b = csv_rows(&run().unwrap()).unwrap();
        assert_eq!(a, b, "slo sweep must be bit-identical");
        assert!(!a.is_empty());
        // Rows sorted by (load, seq), seq dense per load.
        let mut prev: Option<(f64, u64)> = None;
        for row in &a {
            let load: f64 = row[0].parse().unwrap();
            let seq: u64 = row[1].parse().unwrap();
            if let Some((pl, ps)) = prev {
                if load == pl {
                    assert_eq!(seq, ps + 1);
                } else {
                    assert!(load > pl);
                    assert_eq!(seq, 0);
                }
            } else {
                assert_eq!(seq, 0);
            }
            prev = Some((load, seq));
        }
    }

    #[test]
    fn snapshots_are_lossless_and_cumulative() {
        let sweep = run().unwrap();
        for row in &sweep.rows {
            assert_eq!(row.snapshot.dropped, 0);
        }
        // Within one load, completed counts never decrease.
        for pair in sweep.rows.windows(2) {
            if pair[0].load == pair[1].load {
                assert!(pair[1].snapshot.completed() >= pair[0].snapshot.completed());
            }
        }
    }

    #[test]
    fn saturated_load_burns_hotter_than_light_load() {
        let sweep = run().unwrap();
        let final_status = |load: f64| {
            sweep
                .rows
                .iter()
                .rev()
                .find(|r| r.load == load)
                .map(|r| r.status)
                .unwrap()
        };
        let light = final_status(0.25);
        let heavy = final_status(4.0);
        assert!(
            heavy.latency.long > light.latency.long,
            "4x load must burn more latency budget than 0.25x \
             (light {:?}, heavy {:?})",
            light.latency,
            heavy.latency
        );
    }
}
