//! Table III: LSTM, BERT-base and BERT-large runtime and energy on
//! BFree versus the calibrated CPU (Xeon E5-2697) and GPU (Titan V)
//! models, batches 1 and 16.

use bfree::prelude::*;
use pim_nn::request::NetworkKind;
use pim_nn::Network;

use crate::error::ExperimentError;
use crate::Comparison;

/// One Table III row.
#[derive(Debug, Clone)]
pub struct Table3Row {
    /// Network name.
    pub network: String,
    /// Batch size.
    pub batch: usize,
    /// Per-inference latency, ms: (cpu, gpu, bfree).
    pub latency_ms: (f64, f64, f64),
    /// Per-inference energy, J: (cpu, gpu, bfree).
    pub energy_j: (f64, f64, f64),
}

impl Table3Row {
    /// BFree speedup over the CPU.
    pub fn cpu_speedup(&self) -> f64 {
        self.latency_ms.0 / self.latency_ms.2
    }

    /// BFree speedup over the GPU.
    pub fn gpu_speedup(&self) -> f64 {
        self.latency_ms.1 / self.latency_ms.2
    }

    /// BFree energy gain over the CPU.
    pub fn cpu_energy_gain(&self) -> f64 {
        self.energy_j.0 / self.energy_j.2
    }

    /// BFree energy gain over the GPU.
    pub fn gpu_energy_gain(&self) -> f64 {
        self.energy_j.1 / self.energy_j.2
    }
}

/// One paper Table III row: (network, batch, cpu ms, gpu ms, bfree ms,
/// cpu J, gpu J, bfree J).
pub type PaperRow = (&'static str, usize, f64, f64, f64, f64, f64, f64);

/// Paper Table III values, per inference.
pub const PAPER_ROWS: [PaperRow; 5] = [
    ("LSTM", 1, 888.3, 96.2, 0.43, 31.09, 4.33, 0.01),
    ("BERT-base", 1, 1160.0, 47.3, 5.3, 34.80, 1.67, 0.12),
    ("BERT-base", 16, 121.3, 3.8, 1.2, 3.64, 0.45, 0.04),
    ("BERT-large", 1, 2910.0, 89.7, 35.6, 87.3, 4.5, 0.39),
    ("BERT-large", 16, 453.1, 11.1, 6.7, 13.6, 1.7, 0.12),
];

fn network_by_name(name: &str) -> Result<Network, ExperimentError> {
    Ok(NetworkKind::parse(name)?.instantiate())
}

/// Runs the experiment. The five table rows are independent, so they
/// fan out on the `bfree::par` pool; row order (and, on failure, which
/// row's error is reported) matches the serial path.
///
/// # Errors
///
/// Returns [`ExperimentError::UnknownNetwork`] if a row names a network
/// outside the evaluation set.
pub fn run() -> Result<Vec<Table3Row>, ExperimentError> {
    let bfree = BfreeSimulator::new(BfreeConfig::paper_default());
    let cpu = CpuModel::paper_xeon();
    let gpu = GpuModel::paper_titan_v();
    bfree::par::try_par_map(PAPER_ROWS.to_vec(), |(name, batch, ..)| {
        let net = network_by_name(name)?;
        let c = cpu.run(&net, batch);
        let g = gpu.run(&net, batch);
        let b = bfree.run(&net, batch);
        Ok(Table3Row {
            network: name.to_string(),
            batch,
            latency_ms: (
                c.per_inference_latency().milliseconds(),
                g.per_inference_latency().milliseconds(),
                b.per_inference_latency().milliseconds(),
            ),
            energy_j: (
                c.per_inference_energy().joules(),
                g.per_inference_energy().joules(),
                b.per_inference_energy().joules(),
            ),
        })
    })
}

/// Comparison rows against the paper's BFree columns and ratios.
pub fn comparisons(rows: &[Table3Row]) -> Vec<Comparison> {
    let mut out = Vec::new();
    for (row, paper) in rows.iter().zip(PAPER_ROWS.iter()) {
        out.push(Comparison::new(
            format!("{} b{} BFree latency", row.network, row.batch),
            paper.4,
            row.latency_ms.2,
            "ms",
        ));
        out.push(Comparison::new(
            format!("{} b{} BFree vs CPU speedup", row.network, row.batch),
            paper.2 / paper.4,
            row.cpu_speedup(),
            "x",
        ));
        out.push(Comparison::new(
            format!("{} b{} BFree vs GPU speedup", row.network, row.batch),
            paper.3 / paper.4,
            row.gpu_speedup(),
            "x",
        ));
    }
    out
}

/// Prints the experiment.
///
/// # Errors
///
/// Propagates [`run`]'s errors.
pub fn print() -> Result<(), ExperimentError> {
    let rows = run()?;
    println!("\n== Table III: runtime & energy per inference ==");
    println!(
        "{:<12} {:>5} | {:>10} {:>10} {:>10} | {:>9} {:>9} {:>9}",
        "network", "batch", "CPU ms", "GPU ms", "BFree ms", "CPU J", "GPU J", "BFree J"
    );
    for row in &rows {
        println!(
            "{:<12} {:>5} | {:>10.1} {:>10.1} {:>10.3} | {:>9.2} {:>9.2} {:>9.4}",
            row.network,
            row.batch,
            row.latency_ms.0,
            row.latency_ms.1,
            row.latency_ms.2,
            row.energy_j.0,
            row.energy_j.1,
            row.energy_j.2
        );
    }
    println!(
        "\nBFree gains (paper's abstract quotes BERT-base b16: 101x/3x speed, 91x/11x energy):"
    );
    for row in &rows {
        println!(
            "  {:<12} b{:<3} {:>7.0}x CPU, {:>6.1}x GPU speed; {:>7.0}x CPU, {:>6.1}x GPU energy",
            row.network,
            row.batch,
            row.cpu_speedup(),
            row.gpu_speedup(),
            row.cpu_energy_gain(),
            row.gpu_energy_gain()
        );
    }
    crate::print_comparisons("Table III vs paper", &comparisons(&rows));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rows_all_resolve_to_networks() {
        for (name, ..) in PAPER_ROWS {
            assert!(network_by_name(name).is_ok(), "row {name} must resolve");
        }
    }

    #[test]
    fn unknown_network_is_an_error_not_a_panic() {
        let err = network_by_name("AlexNet").unwrap_err();
        assert!(matches!(err, ExperimentError::UnknownNetwork(_)));
        assert!(err.to_string().contains("AlexNet"));
    }
}
