//! Silent-data-corruption sweep: soft-error bit flips versus LUT
//! protection scheme, severity × protection.
//!
//! Every multiply in the BFree fabric indexes a 6T-SRAM LUT row, so a
//! single flipped bit corrupts millions of products with no
//! architectural symptom — the one fault class the chaos sweep (which
//! only perturbs *timing* and *availability*) cannot see. This sweep
//! injects deterministic bit flips into every subarray's LUT rows, the
//! resident model artifact, and the in-flight nibble operands, then
//! measures what each protection scheme (bare rows, per-row parity,
//! Hamming SECDED(72,64)) detects, corrects, or silently misses over a
//! scrub-epoch horizon, with the ECC energy/latency/area overheads
//! priced through `pim-arch`'s [`EccModel`].
//!
//! Determinism contract: the flip *decision* streams are independent of
//! the protection scheme (only the landing bit position is drawn mod
//! the scheme's word width), so all three protection columns at one
//! severity face the same error process; every decision is
//! counter-based, so `sdc.csv` is bit-identical at any `--jobs`.

use bfree::BfreeConfig;
use bfree_fault::rng::mix64;
use bfree_fault::{FaultInjector, FaultPlan};
use bfree_model::{encode_kind, ArtifactSpec, ModelArtifact, OwnedArtifact};
use bfree_obs::{NullRecorder, Recorder, Subsystem, Unit};
use bfree_serve::{ArtifactIntegrity, ModelRegistry, TenantSpec};
use pim_arch::{CacheGeometry, EccModel, EccScheme, EnergyParams, TimingParams};
use pim_lut::{LutImage, MultLut, ProtectedLut, Protection};
use pim_nn::request::NetworkKind;

use crate::error::ExperimentError;

/// Default sweep seed (`experiments sdc --seed N` overrides).
pub const DEFAULT_SEED: u64 = 42;
/// Scrub epochs simulated per cell.
const EPOCHS: u64 = 8;
/// Virtual-clock scrub cadence (one pass every 10 ms).
const SCRUB_PERIOD_NS: u64 = 10_000_000;
/// Nibble operands in flight per epoch (datapath exposure).
const OPERANDS_PER_EPOCH: u64 = 2_000;
/// Severity multipliers on [`base_plan`]; 0.0 is the zero-corruption
/// anchor that must perturb nothing.
const SEVERITIES: [f64; 4] = [0.0, 0.5, 1.0, 2.0];

/// The bit-flip plan at severity 1.0: per-(row, epoch) LUT flip draws,
/// per-byte resident-weight flips, per-operand datapath flips.
fn base_plan() -> FaultPlan {
    FaultPlan::none().with_bit_flips(0.02, 0.001, 0.001)
}

fn scheme_of(protection: Protection) -> EccScheme {
    match protection {
        Protection::None => EccScheme::None,
        Protection::Parity => EccScheme::Parity,
        Protection::Secded => EccScheme::Secded,
    }
}

/// One measured (severity, protection) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct SdcCell {
    /// Severity multiplier for this row.
    pub severity: f64,
    /// LUT-row protection scheme under test.
    pub protection: Protection,
    /// Row-check visits the scrubber made (rows × epochs).
    pub rows_scanned: u64,
    /// Bit flips injected into LUT rows.
    pub flips: u64,
    /// (row, epoch) events with exactly one flip.
    pub singles: u64,
    /// (row, epoch) events with two flips.
    pub doubles: u64,
    /// Rows corrected in place by SECDED.
    pub corrected: u64,
    /// Rows detected-uncorrectable and seed-regenerated.
    pub repaired: u64,
    /// Corrupted-row × epoch exposure the scheme never noticed.
    pub silent: u64,
    /// In-flight operand flips — datapath SDC no storage scheme sees.
    pub operand_sdc: u64,
    /// Bit flips injected into the resident model artifact.
    pub weight_flips: u64,
    /// Of those, flips the checksummed re-verification caught.
    pub weight_detected: u64,
    /// Scrub + correction-writeback energy over the horizon, µJ.
    pub scrub_energy_uj: f64,
    /// Per-read energy overhead of the checked LUT read, percent.
    pub read_overhead_pct: f64,
    /// ECC logic + check-bit cells per subarray, percent.
    pub area_overhead_pct: f64,
    /// Latency the check adds to each LUT read, ns.
    pub check_latency_ns: f64,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct SdcSweep {
    /// Seed the sweep ran under.
    pub seed: u64,
    /// Cells, severity-major, protections in [`Protection::ALL`] order.
    pub cells: Vec<SdcCell>,
}

/// Runs one (severity, protection) cell, emitting
/// [`Subsystem::Integrity`] events to `rec`. The fault realization
/// depends only on `(seed, severity)`, never on the protection scheme.
fn run_cell<R: Recorder>(
    seed: u64,
    sev_idx: usize,
    severity: f64,
    protection: Protection,
    rec: &R,
) -> Result<SdcCell, ExperimentError> {
    let geometry = CacheGeometry::xeon_l3_35mb();
    let slices = geometry.slices();
    let subarrays = geometry.subarrays_per_slice();
    let fault_seed = mix64(seed ^ ((sev_idx as u64) << 32));
    let word_bits = protection.word_bits();
    let image = LutImage::from_mult_table(&MultLut::new());
    let rows_per_lut = image.row_writes(pim_lut::scrub::ROW_BYTES) as u32;
    let injector = FaultInjector::new(
        base_plan().scaled(severity),
        fault_seed,
        slices,
        subarrays as u32 * rows_per_lut,
    )?;

    // Every subarray boots the same golden multiply image under this
    // cell's encoding.
    let mut luts: Vec<ProtectedLut> = (0..slices * subarrays)
        .map(|_| ProtectedLut::from_image(&image, protection))
        .collect();

    // The registry retains the artifact it published, re-verified each
    // epoch against its embedded checksums.
    let config = BfreeConfig::paper_default();
    let artifact_bytes = encode_kind(NetworkKind::LstmTimit, &config, &ArtifactSpec::default());
    let golden_artifact = std::sync::Arc::new(OwnedArtifact::new(artifact_bytes)?);
    let registry =
        ModelRegistry::from_specs(vec![TenantSpec::new("lstm-timit", NetworkKind::LstmTimit)]);
    registry.publish_artifact(
        0,
        2,
        ModelRegistry::spec_from_artifact("lstm-timit", &golden_artifact.artifact())?,
        std::sync::Arc::clone(&golden_artifact),
    );
    let artifact_len = golden_artifact.as_bytes().len() as u64;

    let mut cell = SdcCell {
        severity,
        protection,
        rows_scanned: 0,
        flips: 0,
        singles: 0,
        doubles: 0,
        corrected: 0,
        repaired: 0,
        silent: 0,
        operand_sdc: 0,
        weight_flips: 0,
        weight_detected: 0,
        scrub_energy_uj: 0.0,
        read_overhead_pct: 0.0,
        area_overhead_pct: 0.0,
        check_latency_ns: 0.0,
    };

    let energy = EnergyParams::paper_default();
    let timing = TimingParams::paper_default();
    let ecc = EccModel::paper_default(scheme_of(protection));
    let ecc_report = ecc.report(&energy, &timing);
    cell.read_overhead_pct = ecc_report.energy_overhead_fraction * 100.0;
    cell.area_overhead_pct = ecc_report.subarray_area_overhead * 100.0;
    cell.check_latency_ns = ecc_report.check_latency_ns;

    let mut scrub_energy_pj = 0.0;
    for epoch in 0..EPOCHS {
        let now_ns = (epoch + 1) * SCRUB_PERIOD_NS;
        // Upsets land on the stored rows...
        for slice in 0..slices {
            for sub in 0..subarrays {
                let lut = &mut luts[slice * subarrays + sub];
                for row in 0..rows_per_lut {
                    let global_row = sub as u32 * rows_per_lut + row;
                    let hits = injector.lut_row_flips(slice, global_row, epoch, word_bits);
                    match hits {
                        [Some(_), Some(_)] => cell.doubles += 1,
                        [Some(_), None] | [None, Some(_)] => cell.singles += 1,
                        [None, None] => {}
                    }
                    for bit in hits.into_iter().flatten() {
                        lut.inject(row as usize, bit);
                        cell.flips += 1;
                    }
                }
            }
        }
        // ...and the scrubber sweeps them on its cadence.
        let mut pass_corrected = 0u64;
        let mut pass_repaired = 0u64;
        let mut pass_silent = 0u64;
        for lut in &mut luts {
            let report = lut.scrub_pass();
            cell.rows_scanned += u64::from(report.rows);
            pass_corrected += u64::from(report.corrected);
            pass_repaired += u64::from(report.repaired);
            pass_silent += u64::from(report.silent);
            if protection != Protection::None {
                scrub_energy_pj += f64::from(report.rows) * ecc.scrub_row(&energy).picojoules()
                    + f64::from(report.corrected + report.repaired)
                        * energy.subarray_row_access().picojoules();
            }
        }
        cell.corrected += pass_corrected;
        cell.repaired += pass_repaired;
        cell.silent += pass_silent;
        rec.instant(Subsystem::Integrity, "scrub/pass", now_ns as f64, || {
            format!(
                "epoch={epoch} corrected={pass_corrected} uncorrectable={pass_repaired} \
                 silent={pass_silent}"
            )
        });
        if pass_corrected > 0 {
            rec.counter(
                Subsystem::Integrity,
                "flip/corrected",
                pass_corrected as f64,
                Unit::Count,
            );
        }
        if pass_repaired > 0 {
            rec.counter(
                Subsystem::Integrity,
                "flip/uncorrectable",
                pass_repaired as f64,
                Unit::Count,
            );
        }

        // Datapath exposure: a flipped in-flight operand indexes a
        // valid-but-wrong row; no storage scheme can see it.
        for op in 0..OPERANDS_PER_EPOCH {
            if injector
                .operand_flip(epoch * OPERANDS_PER_EPOCH + op, op % 16)
                .is_some()
            {
                cell.operand_sdc += 1;
            }
        }

        // Resident artifact: apply this epoch's byte flips to a copy
        // and let the registry's checksummed re-verification judge it.
        let epoch_flips: Vec<(u64, u32)> = (0..artifact_len)
            .filter_map(|b| {
                injector
                    .weight_byte_flip((epoch << 32) | b)
                    .map(|bit| (b, bit))
            })
            .collect();
        cell.weight_flips += epoch_flips.len() as u64;
        if !epoch_flips.is_empty() {
            let mut resident = golden_artifact.as_bytes().to_vec();
            for &(byte, bit) in &epoch_flips {
                resident[byte as usize] ^= 1u8 << bit;
            }
            if ModelArtifact::parse(&resident).is_err() {
                cell.weight_detected += epoch_flips.len() as u64;
                rec.instant(
                    Subsystem::Integrity,
                    "artifact/corrupted",
                    now_ns as f64,
                    || format!("epoch={epoch} flips={} refetched", epoch_flips.len()),
                );
            }
        }
        // The registry's own resident copy stays intact and verifies.
        debug_assert_eq!(registry.reverify(0).integrity, ArtifactIntegrity::Verified);
    }
    cell.scrub_energy_uj = scrub_energy_pj * 1e-6;
    rec.instant(
        Subsystem::Integrity,
        "artifact/reverify",
        (EPOCHS * SCRUB_PERIOD_NS) as f64,
        || {
            format!(
                "tenant=0 version=2 outcome={:?}",
                registry.reverify(0).integrity
            )
        },
    );
    Ok(cell)
}

/// Runs the sweep under `seed`. Cells fan out on the `bfree::par`
/// pool; collection order is the grid order, so the CSV is
/// bit-identical at any `--jobs`.
///
/// # Errors
///
/// Propagates [`ExperimentError::Fault`] / [`ExperimentError::Serve`]
/// on invalid parameters (cannot happen for the constants above).
pub fn run(seed: u64) -> Result<SdcSweep, ExperimentError> {
    let mut grid = Vec::new();
    for (sev_idx, &severity) in SEVERITIES.iter().enumerate() {
        for protection in Protection::ALL {
            grid.push((sev_idx, severity, protection));
        }
    }
    let cells = bfree::par::try_par_map(grid, |(sev_idx, severity, protection)| {
        run_cell(seed, sev_idx, severity, protection, &NullRecorder)
    })?;
    Ok(SdcSweep { seed, cells })
}

/// CSV header for [`csv_rows`].
pub const CSV_HEADER: [&str; 16] = [
    "severity",
    "protection",
    "rows_scanned",
    "flips",
    "singles",
    "doubles",
    "corrected",
    "repaired",
    "silent",
    "operand_sdc",
    "weight_flips",
    "weight_detected",
    "scrub_energy_uj",
    "read_overhead_pct",
    "area_overhead_pct",
    "check_latency_ns",
];

/// The sweep as CSV rows matching [`CSV_HEADER`].
pub fn csv_rows(sweep: &SdcSweep) -> Vec<Vec<String>> {
    sweep
        .cells
        .iter()
        .map(|c| {
            vec![
                format!("{:.2}", c.severity),
                c.protection.label().to_string(),
                c.rows_scanned.to_string(),
                c.flips.to_string(),
                c.singles.to_string(),
                c.doubles.to_string(),
                c.corrected.to_string(),
                c.repaired.to_string(),
                c.silent.to_string(),
                c.operand_sdc.to_string(),
                c.weight_flips.to_string(),
                c.weight_detected.to_string(),
                format!("{:.3}", c.scrub_energy_uj),
                format!("{:.1}", c.read_overhead_pct),
                format!("{:.2}", c.area_overhead_pct),
                format!("{:.3}", c.check_latency_ns),
            ]
        })
        .collect()
}

/// Prints the sweep and writes `results/sdc.csv`.
///
/// # Errors
///
/// Propagates [`run`]'s errors and CSV write failures.
pub fn print(seed: u64) -> Result<(), ExperimentError> {
    let sweep = run(seed)?;
    println!("\n== SDC: bit flips vs LUT protection (seed {seed}) ==");
    println!(
        "{} scrub epochs x {} ns; plan at severity 1.0: 2% LUT-row flip draws/epoch, \
         0.1% weight bytes, 0.1% operands",
        EPOCHS, SCRUB_PERIOD_NS
    );
    println!(
        "{:>8} {:>10} {:>7} {:>8} {:>8} {:>9} {:>8} {:>7} {:>8} {:>8} {:>9} {:>8} {:>8}",
        "severity",
        "protect",
        "flips",
        "singles",
        "doubles",
        "corrected",
        "repaired",
        "silent",
        "op_sdc",
        "wt_flip",
        "scrub_uJ",
        "read+%",
        "area+%"
    );
    for c in &sweep.cells {
        println!(
            "{:>8.2} {:>10} {:>7} {:>8} {:>8} {:>9} {:>8} {:>7} {:>8} {:>8} {:>9.3} {:>8.1} {:>8.2}",
            c.severity,
            c.protection.label(),
            c.flips,
            c.singles,
            c.doubles,
            c.corrected,
            c.repaired,
            c.silent,
            c.operand_sdc,
            c.weight_flips,
            c.scrub_energy_uj,
            c.read_overhead_pct,
            c.area_overhead_pct,
        );
    }
    let path = std::path::Path::new("results").join("sdc.csv");
    crate::csv::write_rows(&path, &CSV_HEADER, &csv_rows(&sweep))?;
    println!("\nwrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use bfree_obs::RingRecorder;

    #[test]
    fn sweep_is_seed_deterministic() {
        let a = run(DEFAULT_SEED).unwrap();
        let b = run(DEFAULT_SEED).unwrap();
        assert_eq!(csv_rows(&a), csv_rows(&b), "sweep must be bit-identical");
        let c = run(7).unwrap();
        assert_ne!(csv_rows(&a), csv_rows(&c));
    }

    #[test]
    fn zero_severity_cells_are_pristine() {
        let sweep = run(DEFAULT_SEED).unwrap();
        for c in sweep.cells.iter().filter(|c| c.severity == 0.0) {
            assert_eq!(c.flips, 0);
            assert_eq!(c.silent, 0);
            assert_eq!(c.operand_sdc, 0);
            assert_eq!(c.weight_flips, 0);
        }
    }

    #[test]
    fn flip_process_is_identical_across_protections() {
        // The error process must not depend on the scheme judging it.
        let sweep = run(DEFAULT_SEED).unwrap();
        for &severity in &SEVERITIES {
            let at: Vec<&SdcCell> = sweep
                .cells
                .iter()
                .filter(|c| c.severity == severity)
                .collect();
            assert_eq!(at.len(), Protection::ALL.len());
            for c in &at[1..] {
                assert_eq!(c.flips, at[0].flips);
                assert_eq!(c.singles, at[0].singles);
                assert_eq!(c.doubles, at[0].doubles);
                assert_eq!(c.operand_sdc, at[0].operand_sdc);
                assert_eq!(c.weight_flips, at[0].weight_flips);
            }
        }
    }

    #[test]
    fn secded_corrects_all_singles_with_zero_silent_at_max_severity() {
        // The acceptance criterion: 100% single-flip correction, no
        // silent corruption, at the highest severity tier.
        let sweep = run(DEFAULT_SEED).unwrap();
        let cell = sweep
            .cells
            .iter()
            .find(|c| {
                c.severity == *SEVERITIES.last().unwrap() && c.protection == Protection::Secded
            })
            .unwrap();
        assert!(cell.singles > 0, "the tier must actually inject singles");
        assert!(cell.doubles > 0, "the tier must actually inject doubles");
        assert_eq!(cell.corrected, cell.singles, "every single flip corrected");
        assert_eq!(cell.silent, 0, "no silent corruption under SECDED");
        assert_eq!(
            cell.weight_detected, cell.weight_flips,
            "every resident-artifact flip caught by the checksum"
        );
        assert!(cell.scrub_energy_uj > 0.0, "protection is not free");
        assert!(cell.area_overhead_pct > 0.0);
    }

    #[test]
    fn unprotected_rows_accumulate_silent_corruption_parity_leaks_doubles() {
        let sweep = run(DEFAULT_SEED).unwrap();
        let cell = |p: Protection| {
            sweep
                .cells
                .iter()
                .find(|c| c.severity == 2.0 && c.protection == p)
                .unwrap()
        };
        let none = cell(Protection::None);
        let parity = cell(Protection::Parity);
        let secded = cell(Protection::Secded);
        assert!(none.silent > 0, "bare rows must corrupt silently");
        assert_eq!(none.corrected + none.repaired, 0);
        assert!(parity.silent < none.silent, "parity detects the odd flips");
        assert!(parity.repaired > 0);
        assert_eq!(secded.silent, 0);
        // Cost ordering mirrors coverage ordering.
        assert!(none.scrub_energy_uj < parity.scrub_energy_uj);
        assert!(parity.scrub_energy_uj < secded.scrub_energy_uj);
    }

    #[test]
    fn integrity_events_surface_through_obs() {
        let rec = RingRecorder::new(65536);
        let cell = run_cell(DEFAULT_SEED, 3, 2.0, Protection::Secded, &rec).unwrap();
        assert!(cell.corrected > 0);
        let events = rec.events();
        assert!(events.iter().all(|e| e.subsystem == Subsystem::Integrity));
        assert!(events.iter().any(|e| e.name == "scrub/pass"));
        assert!(events.iter().any(|e| e.name == "flip/corrected"));
        assert!(events.iter().any(|e| e.name == "artifact/reverify"));
    }
}
