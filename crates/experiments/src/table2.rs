//! Table II: the evaluation workloads — layers, parameters and
//! multiplies — recomputed from our layer-by-layer transcriptions.

use pim_nn::networks::{self, PaperStats};
use pim_nn::Network;

use crate::error::ExperimentError;
use crate::Comparison;

/// One recomputed Table II row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Network name.
    pub network: String,
    /// What the paper reports.
    pub paper: PaperStats,
    /// Our computed parameter count.
    pub params: u64,
    /// Our computed multiply count (per timestep for the LSTM, to match
    /// the paper's convention).
    pub mults: u64,
    /// Our weight-layer count.
    pub weight_layers: usize,
}

/// Runs the experiment.
pub fn run() -> Vec<Table2Row> {
    networks::table2_networks()
        .into_iter()
        .map(|(net, paper)| {
            let mults = normalized_mults(&net);
            Table2Row {
                network: net.name().to_string(),
                paper,
                params: net.total_params(),
                mults,
                weight_layers: net.weight_layer_count(),
            }
        })
        .collect()
}

/// The paper quotes LSTM multiplies per timestep; everything else is
/// per inference.
fn normalized_mults(net: &Network) -> u64 {
    if net.name() == "LSTM" {
        let lstm_macs = net.layers()[0].macs();
        lstm_macs / networks::LSTM_TIMIT_SEQ_LEN as u64
    } else {
        net.total_macs()
    }
}

/// Comparison rows (params and mults per network).
pub fn comparisons(rows: &[Table2Row]) -> Vec<Comparison> {
    let mut out = Vec::new();
    for row in rows {
        out.push(Comparison::new(
            format!("{} params", row.network),
            row.paper.params / 1e6,
            row.params as f64 / 1e6,
            "M",
        ));
        out.push(Comparison::new(
            format!("{} mults", row.network),
            row.paper.mults / 1e6,
            row.mults as f64 / 1e6,
            "M",
        ));
    }
    out
}

/// Prints the experiment.
pub fn print() -> Result<(), ExperimentError> {
    let rows = run();
    println!("\n== Table II: workload summary ==");
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12} {:>10}",
        "network", "w-layers", "params", "paper", "mults", "paper", "dataset"
    );
    for row in &rows {
        println!(
            "{:<14} {:>8} {:>11.2}M {:>11.1}M {:>11.2}M {:>11.1}M {:>10}",
            row.network,
            row.weight_layers,
            row.params as f64 / 1e6,
            row.paper.params / 1e6,
            row.mults as f64 / 1e6,
            row.paper.mults / 1e6,
            row.paper.dataset
        );
    }
    println!(
        "  note: Inception-v3 mults follow the original paper's 5.72G multiply-add \
         count;\n  BFree's Table II quotes 4.7G (-18%), recorded in EXPERIMENTS.md."
    );
    Ok(())
}
