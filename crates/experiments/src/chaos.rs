//! Chaos harness: the serving stack under injected faults, swept over
//! fault severity × resilience policy.
//!
//! The paper's evaluation assumes a fault-free cache; a deployed
//! processing-in-cache part sees weak LUT cells, slice-level failures
//! and voltage/thermal stragglers. This sweep drives the mixed-traffic
//! serving workload (`experiments serving`) through a seeded
//! [`FaultInjector`] at increasing severities, once per resilience
//! policy, and reports the availability/goodput/tail-latency frontier.
//! Every cell is virtual-clock and counter-seeded, so `chaos.csv` is
//! bit-identical across runs and `--jobs` settings; the arrival process
//! and the fault realization at a given severity are shared by all
//! policies, so policy columns differ only by how they *respond*.

use bfree_fault::rng::mix64;
use bfree_fault::{FaultInjector, FaultPlan, RetryPolicy};
use bfree_serve::realtime::run_conformance;
use bfree_serve::{
    OpenLoopDriver, RealtimeConfig, RequestTrace, SchedPolicy, ServeConfig, ServingSim,
    ServingSummary, TenantSpec,
};
use pim_nn::request::NetworkKind;

use crate::error::ExperimentError;

/// Default chaos seed (`experiments chaos --seed N` overrides).
pub const DEFAULT_SEED: u64 = 42;
/// Virtual time simulated per cell.
const HORIZON_NS: u64 = 200_000_000;
/// LSTM-TIMIT arrival rate (requests/s).
const LSTM_RPS: f64 = 2_000.0;
/// BERT-base arrival rate (requests/s).
const BERT_RPS: f64 = 50.0;
/// Fault-severity multipliers applied to [`base_plan`]'s rates.
/// Severity 0.0 is the zero-fault anchor: it must reproduce the plain
/// engine exactly.
const SEVERITIES: [f64; 4] = [0.0, 0.5, 1.0, 2.0];

/// A resilience policy: which degradation mechanisms the serving stack
/// is allowed to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// No resilience: faults fail requests, capacity loss backs up the
    /// queue until admission rejects.
    Baseline,
    /// Transient failures retried with capped exponential backoff.
    Retry,
    /// Retry plus load shedding: lowest-priority tenants shed when
    /// healthy capacity drops below the watermark.
    RetryShed,
    /// Retry, shedding and per-request end-to-end deadlines.
    Full,
}

impl Policy {
    /// Every policy, in sweep order.
    pub const ALL: [Policy; 4] = [
        Policy::Baseline,
        Policy::Retry,
        Policy::RetryShed,
        Policy::Full,
    ];

    /// Stable label used in the CSV and the obs trace.
    pub fn label(self) -> &'static str {
        match self {
            Policy::Baseline => "baseline",
            Policy::Retry => "retry",
            Policy::RetryShed => "retry+shed",
            Policy::Full => "full",
        }
    }

    fn config(self) -> Result<ServeConfig, ExperimentError> {
        let base = ServeConfig::builder()
            .policy(SchedPolicy::Priority)
            .max_batch(8)
            .batch_window_ns(100_000)
            .queue_capacity(512)
            .timeout_ns(Some(50_000_000));
        let cfg = match self {
            Policy::Baseline => base,
            Policy::Retry => base.retry(RetryPolicy::standard()),
            Policy::RetryShed => base.retry(RetryPolicy::standard()).shed_watermark(0.8),
            Policy::Full => base
                .retry(RetryPolicy::standard())
                .shed_watermark(0.8)
                .deadline_ns(Some(40_000_000)),
        };
        Ok(cfg.build()?)
    }
}

/// The fault plan at severity 1.0; [`FaultPlan::scaled`] stretches its
/// rates per sweep row. Rates are chosen so severity 2.0 visibly hurts
/// a 14-slice pool without collapsing it: ~20% of slices fail
/// mid-horizon (recovering after a quarter of it), ~15% straggle at 3x
/// latency, 3% of service attempts hit transient errors, and a sprinkle
/// of LUT rows boot corrupted and pay a repair before first dispatch.
fn base_plan() -> FaultPlan {
    FaultPlan::none()
        .with_lut_corruption(0.001, 50)
        .with_slice_failures(0.2, HORIZON_NS, Some(HORIZON_NS / 4))
        .with_stragglers(0.15, 3.0)
        .with_transient_errors(0.03)
}

/// The chaos plan the wall-clock engine can replay. The realtime pool
/// has no virtual clock to schedule slice failures on
/// ([`bfree_serve::RealtimeEngine`] rejects such plans), so the
/// realtime leg drops them and keeps the per-request fault classes:
/// boot-time LUT corruption, stragglers, transient errors.
fn realtime_plan() -> FaultPlan {
    FaultPlan::none()
        .with_lut_corruption(0.001, 50)
        .with_stragglers(0.15, 3.0)
        .with_transient_errors(0.03)
}

fn tenants() -> Vec<TenantSpec> {
    // Distinct priority classes so load shedding has a floor to raise:
    // BERT is the latency-critical tenant, LSTM the bulk one.
    vec![
        TenantSpec::new("lstm-timit", NetworkKind::LstmTimit).with_priority(0),
        TenantSpec::new("bert-base", NetworkKind::BertBase).with_priority(5),
    ]
}

/// One measured (severity, policy) cell.
#[derive(Debug, Clone)]
pub struct ChaosCell {
    /// Fault-severity multiplier for this row.
    pub severity: f64,
    /// The resilience policy under test.
    pub policy: Policy,
    /// The run's telemetry summary.
    pub summary: ServingSummary,
}

/// The chaos sweep result.
#[derive(Debug, Clone)]
pub struct ChaosSweep {
    /// Seed the sweep ran under.
    pub seed: u64,
    /// Measured cells, severity-major, policies in [`Policy::ALL`]
    /// order within a severity.
    pub cells: Vec<ChaosCell>,
}

/// Runs the sweep under `seed`. Cells fan out on the `bfree::par` pool;
/// each is an independent virtual-clock simulation whose fault
/// realization depends only on `(seed, severity)` — all four policies at
/// a severity face the same failures, stragglers and corrupted rows, and
/// the arrival process is identical everywhere. Results are collected in
/// sweep order, so the CSV is bit-identical at any `--jobs`.
///
/// # Errors
///
/// Propagates [`ExperimentError::Serve`] or [`ExperimentError::Fault`]
/// if a configuration is rejected (cannot happen for the constants
/// above).
pub fn run(seed: u64) -> Result<ChaosSweep, ExperimentError> {
    let mut grid = Vec::new();
    for (sev_idx, &severity) in SEVERITIES.iter().enumerate() {
        for policy in Policy::ALL {
            grid.push((sev_idx, severity, policy));
        }
    }
    let cells = bfree::par::try_par_map(
        grid,
        |(sev_idx, severity, policy)| -> Result<ChaosCell, ExperimentError> {
            let config = policy.config()?;
            let geometry = &config.base.geometry;
            let lut_rows_per_slice = (geometry.subarrays_per_slice()
                * geometry.partitions_per_subarray()
                * geometry.lut_rows_per_partition()) as u32;
            // Fault realization is per-severity, not per-cell: policies
            // at one severity see the same fault trace.
            let fault_seed = mix64(seed ^ ((sev_idx as u64) << 32));
            let injector = FaultInjector::new(
                base_plan().scaled(severity),
                fault_seed,
                geometry.slices(),
                lut_rows_per_slice,
            )?;
            let mut sim = ServingSim::with_faults(config, tenants(), injector)?;
            let mut driver = OpenLoopDriver::new(seed, vec![LSTM_RPS, BERT_RPS]);
            driver.drive(&mut sim, HORIZON_NS);
            let summary = sim.run_to_idle().summary();
            debug_assert_eq!(sim.work_conservation_violations(), 0);
            debug_assert_eq!(sim.pending_retries(), 0);
            Ok(ChaosCell {
                severity,
                policy,
                summary,
            })
        },
    )?;
    Ok(ChaosSweep { seed, cells })
}

/// CSV header for [`csv_rows`].
pub const CSV_HEADER: [&str; 13] = [
    "severity",
    "policy",
    "submitted",
    "completed",
    "rejected",
    "retries",
    "shed",
    "deadline_expired",
    "retries_exhausted",
    "deadline_violations",
    "availability",
    "goodput_rps",
    "p99_ms",
];

/// The sweep as CSV rows matching [`CSV_HEADER`].
pub fn csv_rows(sweep: &ChaosSweep) -> Vec<Vec<String>> {
    sweep
        .cells
        .iter()
        .map(|c| {
            vec![
                format!("{:.2}", c.severity),
                c.policy.label().to_string(),
                c.summary.submitted.to_string(),
                c.summary.completed.to_string(),
                c.summary.rejected.to_string(),
                c.summary.retries.to_string(),
                c.summary.shed.to_string(),
                c.summary.deadline_expired.to_string(),
                c.summary.retries_exhausted.to_string(),
                c.summary.deadline_violations.to_string(),
                format!("{:.4}", c.summary.availability),
                format!("{:.1}", c.summary.goodput_rps),
                format!("{:.4}", c.summary.p99_latency_ns as f64 * 1e-6),
            ]
        })
        .collect()
}

/// Prints the sweep and writes `results/chaos.csv`.
///
/// # Errors
///
/// Propagates [`run`]'s errors and CSV write failures.
pub fn print(seed: u64) -> Result<(), ExperimentError> {
    let sweep = run(seed)?;
    println!("\n== Chaos: serving under injected faults (seed {seed}) ==");
    println!(
        "plan at severity 1.0: 20% slice failures (recover after {} ms), 15% stragglers x3.0, \
         3% transient errors, 0.1% LUT rows corrupted",
        HORIZON_NS / 4_000_000
    );
    println!(
        "{:>8} {:>10} {:>9} {:>9} {:>8} {:>7} {:>6} {:>8} {:>9} {:>9} {:>9}",
        "severity",
        "policy",
        "submitted",
        "completed",
        "retries",
        "shed",
        "ddl",
        "avail",
        "goodput/s",
        "p99 ms",
        "violated"
    );
    for c in &sweep.cells {
        println!(
            "{:>8.2} {:>10} {:>9} {:>9} {:>8} {:>7} {:>6} {:>7.1}% {:>9.1} {:>9.3} {:>9}",
            c.severity,
            c.policy.label(),
            c.summary.submitted,
            c.summary.completed,
            c.summary.retries,
            c.summary.shed,
            c.summary.deadline_expired,
            c.summary.availability * 100.0,
            c.summary.goodput_rps,
            c.summary.p99_latency_ns as f64 * 1e-6,
            c.summary.deadline_violations,
        );
    }
    let path = std::path::Path::new("results").join("chaos.csv");
    crate::csv::write_rows(&path, &CSV_HEADER, &csv_rows(&sweep))?;
    println!("\nwrote {}", path.display());
    Ok(())
}

/// `experiments chaos --realtime`: replays the chaos fault plan (sans
/// slice failures) through the wall-clock [`bfree_serve::RealtimeEngine`]
/// at every severity and gates each replay against the virtual-clock
/// oracle. Work counters and terminal outcomes must agree exactly;
/// telemetry rides a loose bound because stragglers distort the two
/// engines' queueing differently.
///
/// # Errors
///
/// Engine construction/drive failures, and
/// [`ExperimentError::MissingData`] on any conformance mismatch.
pub fn realtime_print(seed: u64) -> Result<(), ExperimentError> {
    // Timeout- and deadline-free: the engines model queueing
    // differently, and a timeout would turn legitimate latency
    // divergence under stragglers into divergent outcomes. Retries stay
    // on so transient errors exercise the exact retry-count check.
    let config = RealtimeConfig::builder()
        .workers(4)
        .queue_shards(4)
        .serve(
            ServeConfig::builder()
                .policy(SchedPolicy::Priority)
                .max_batch(8)
                .batch_window_ns(100_000)
                .queue_capacity(4096)
                .retry(RetryPolicy::standard())
                .build()?,
        )
        .build()?;
    let geometry = &config.serve.base.geometry;
    let lut_rows_per_slice = (geometry.subarrays_per_slice()
        * geometry.partitions_per_subarray()
        * geometry.lut_rows_per_partition()) as u32;
    // A light trace: every request costs real wall time, and the gate's
    // value is agreement, not load.
    let horizon_ns = HORIZON_NS / 4;
    let mut driver = OpenLoopDriver::new(seed, vec![LSTM_RPS / 4.0, BERT_RPS / 4.0]);
    let mut trace = RequestTrace::new();
    for (at_ns, tenant) in driver.arrivals(horizon_ns) {
        trace.submit(at_ns, tenant);
    }

    println!("\n== Chaos realtime: wall-clock engine vs oracle under faults (seed {seed}) ==");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>12} {:>14}",
        "severity", "submitted", "work", "outcomes", "latency div", "energy div"
    );
    let mut failures = Vec::new();
    for (sev_idx, &severity) in SEVERITIES.iter().enumerate() {
        let fault_seed = mix64(seed ^ ((sev_idx as u64) << 32));
        let injector = FaultInjector::new(
            realtime_plan().scaled(severity),
            fault_seed,
            geometry.slices(),
            lut_rows_per_slice,
        )?;
        let report = run_conformance(&config, &tenants(), &trace, &injector, 1.0)?;
        println!(
            "{:>8.2} {:>9} {:>12} {:>12} {:>11.1}% {:>13.1}%",
            severity,
            report.submitted,
            if report.work_exact {
                "exact"
            } else {
                "MISMATCH"
            },
            if report.outcomes_exact {
                "exact"
            } else {
                "MISMATCH"
            },
            report.mean_latency_ns.divergence * 100.0,
            report.mean_energy_pj.divergence * 100.0,
        );
        if !report.passed() {
            for m in &report.mismatches {
                println!("  severity {severity}: {m}");
            }
            failures.push(severity);
        }
    }
    if failures.is_empty() {
        println!("conformance: PASS at every severity");
        Ok(())
    } else {
        Err(ExperimentError::MissingData(format!(
            "chaos realtime conformance failed at severities {failures:?}"
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_seed_deterministic() {
        let a = run(DEFAULT_SEED).unwrap();
        let b = run(DEFAULT_SEED).unwrap();
        assert_eq!(csv_rows(&a), csv_rows(&b), "sweep must be bit-identical");
        let c = run(7).unwrap();
        assert_ne!(
            csv_rows(&a),
            csv_rows(&c),
            "a different seed must produce a different fault trace"
        );
    }

    #[test]
    fn every_cell_conserves_requests() {
        let sweep = run(DEFAULT_SEED).unwrap();
        assert_eq!(sweep.cells.len(), SEVERITIES.len() * Policy::ALL.len());
        for c in &sweep.cells {
            assert_eq!(
                c.summary.completed + c.summary.rejected,
                c.summary.submitted,
                "severity {} policy {} leaks requests",
                c.severity,
                c.policy.label()
            );
        }
    }

    #[test]
    fn zero_severity_cells_are_fault_free() {
        let sweep = run(DEFAULT_SEED).unwrap();
        for c in sweep.cells.iter().filter(|c| c.severity == 0.0) {
            assert_eq!(c.summary.retries, 0, "no faults, nothing to retry");
            assert_eq!(c.summary.shed, 0, "full capacity, nothing to shed");
            assert_eq!(c.summary.retries_exhausted, 0);
        }
    }

    #[test]
    fn realtime_chaos_gate_agrees_with_the_oracle() {
        realtime_print(DEFAULT_SEED).unwrap();
    }

    #[test]
    fn faults_degrade_the_baseline_and_policies_respond() {
        let sweep = run(DEFAULT_SEED).unwrap();
        let cell = |sev: f64, policy: Policy| {
            sweep
                .cells
                .iter()
                .find(|c| c.severity == sev && c.policy == policy)
                .unwrap()
        };
        let calm = cell(0.0, Policy::Baseline);
        let storm = cell(2.0, Policy::Baseline);
        assert!(
            storm.summary.availability < calm.summary.availability,
            "severity 2.0 must cost the baseline availability"
        );
        let retry = cell(2.0, Policy::Retry);
        assert!(
            retry.summary.retries > 0,
            "transient errors must trigger retries under the retry policy"
        );
        assert!(
            retry.summary.availability > storm.summary.availability,
            "retries must recover availability the baseline loses"
        );
    }
}
