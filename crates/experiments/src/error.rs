//! The experiments error path.
//!
//! Experiment code used to panic on bad inputs (an unknown network name
//! in a paper table, for instance). Reproduction runs are batch jobs —
//! a bad row should surface as an error with context and a non-zero
//! exit, not a backtrace — so every fallible experiment returns
//! [`ExperimentError`].

use std::error::Error;
use std::fmt;
use std::io;

use bfree_fault::FaultError;
use bfree_model::ModelError;
use bfree_obs::ObsError;
use bfree_serve::ServeError;
use pim_arch::ArchError;
use pim_nn::request::UnknownNetworkError;

/// Any failure while running or exporting an experiment.
#[derive(Debug)]
#[non_exhaustive]
pub enum ExperimentError {
    /// A network name did not match any evaluation network.
    UnknownNetwork(UnknownNetworkError),
    /// A serving-simulation configuration was rejected.
    Serve(ServeError),
    /// A fault plan or injector was rejected.
    Fault(FaultError),
    /// The architecture model rejected a configuration.
    Arch(ArchError),
    /// An observability export or config (de)serialization failed.
    Obs(ObsError),
    /// A model artifact failed to parse or verify.
    Model(ModelError),
    /// A filesystem error while writing results.
    Io(io::Error),
    /// An experiment's own sweep output lacked a row it promised
    /// (internal inconsistency surfaced as an error, not a panic).
    MissingData(String),
}

impl fmt::Display for ExperimentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExperimentError::UnknownNetwork(e) => write!(f, "{e}"),
            ExperimentError::Serve(e) => write!(f, "serving experiment: {e}"),
            ExperimentError::Fault(e) => write!(f, "fault injection: {e}"),
            ExperimentError::Arch(e) => write!(f, "architecture model: {e}"),
            ExperimentError::Obs(e) => write!(f, "observability: {e}"),
            ExperimentError::Model(e) => write!(f, "model artifact: {e}"),
            ExperimentError::Io(e) => write!(f, "writing results: {e}"),
            ExperimentError::MissingData(what) => write!(f, "missing experiment data: {what}"),
        }
    }
}

impl Error for ExperimentError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExperimentError::UnknownNetwork(e) => Some(e),
            ExperimentError::Serve(e) => Some(e),
            ExperimentError::Fault(e) => Some(e),
            ExperimentError::Arch(e) => Some(e),
            ExperimentError::Obs(e) => Some(e),
            ExperimentError::Model(e) => Some(e),
            ExperimentError::Io(e) => Some(e),
            ExperimentError::MissingData(_) => None,
        }
    }
}

impl From<UnknownNetworkError> for ExperimentError {
    fn from(e: UnknownNetworkError) -> Self {
        ExperimentError::UnknownNetwork(e)
    }
}

impl From<ServeError> for ExperimentError {
    fn from(e: ServeError) -> Self {
        ExperimentError::Serve(e)
    }
}

impl From<FaultError> for ExperimentError {
    fn from(e: FaultError) -> Self {
        ExperimentError::Fault(e)
    }
}

impl From<ArchError> for ExperimentError {
    fn from(e: ArchError) -> Self {
        ExperimentError::Arch(e)
    }
}

impl From<ObsError> for ExperimentError {
    fn from(e: ObsError) -> Self {
        ExperimentError::Obs(e)
    }
}

impl From<ModelError> for ExperimentError {
    fn from(e: ModelError) -> Self {
        ExperimentError::Model(e)
    }
}

impl From<io::Error> for ExperimentError {
    fn from(e: io::Error) -> Self {
        ExperimentError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_nn::request::NetworkKind;

    #[test]
    fn unknown_network_keeps_context() {
        let err: ExperimentError = NetworkKind::parse("alexnet").unwrap_err().into();
        let text = err.to_string();
        assert!(text.contains("alexnet"));
        assert!(text.contains("BERT-base"));
    }
}
