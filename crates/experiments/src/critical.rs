//! Critical-path attribution: span trees reconstructed from recorded
//! runs, cross-checked against the aggregate run reports.
//!
//! Two accounting paths exist for every simulated run: the
//! [`RunReport`] breakdowns the cost models maintain, and the event
//! stream a [`bfree_obs::Recorder`] captures. `experiments
//! attribution` already proves the *flat* sums agree; this experiment
//! goes one level deeper and holds the *reconstructed trace tree* to
//! the same standard:
//!
//! - folding the per-phase latency and per-component energy counters
//!   out of the [`TraceForest`]'s event ordering must reproduce the
//!   report breakdowns with **zero** divergence (the gate is `0.0`,
//!   not a tolerance band);
//! - the root `run` span's duration must equal the report's total
//!   latency bit for bit;
//! - per-request critical paths rebuilt from the serving trace must
//!   match the engine's own telemetry records exactly.
//!
//! On top of the gates it prints what the tree is *for*: the dominant
//! chain through each network's trace and p50/p95/p99 exemplar request
//! paths broken into queue-wait / retry-backoff / service stages.

use bfree::prelude::*;
use bfree_obs::{fold_stage_energy, fold_stage_latency, RequestPath, RequestPaths, TraceForest};
use bfree_serve::{OpenLoopDriver, Outcome, ServeConfig, ServingSim, TenantSpec};
use pim_arch::obs::{obs_component, phase_event_name};
use pim_baselines::RunReport;
use pim_nn::request::NetworkKind;

use crate::error::ExperimentError;

/// Largest tolerated |folded/reported - 1|. Zero: the trace tree folds
/// counters in emission order, which reproduces the report's own merge
/// order exactly, so anything above 0.0 is a real accounting bug.
pub const TOLERANCE: f64 = 0.0;
/// Events kept per recorded exec run.
const EXEC_TRACE_CAPACITY: usize = 65_536;
/// Events kept for the recorded serving run.
const SERVE_TRACE_CAPACITY: usize = 1 << 17;
/// Seed for the serving arrival process (same as `experiments serving`).
const SERVE_SEED: u64 = 0xBF_EE;
/// Virtual time driven through the serving engine.
const SERVE_HORIZON_NS: u64 = 200_000_000;
/// Exemplar percentiles reported for request paths.
const EXEMPLAR_PERCENTILES: [f64; 3] = [50.0, 95.0, 99.0];

/// One stage compared across the two accounting paths.
#[derive(Debug, Clone)]
pub struct StageRow {
    /// The network the row belongs to.
    pub network: String,
    /// `latency/<phase>` or `energy/<component>`.
    pub stage: String,
    /// The run report's value (ns or pJ).
    pub reported: f64,
    /// The value folded out of the reconstructed trace (ns or pJ).
    pub folded: f64,
}

impl StageRow {
    /// |folded/reported - 1|; 0 when both are 0.
    pub fn relative_error(&self) -> f64 {
        if self.reported == 0.0 {
            if self.folded == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (self.folded / self.reported - 1.0).abs()
        }
    }
}

/// One segment of the dominant chain through a trace tree.
#[derive(Debug, Clone)]
pub struct ChainSegment {
    /// Span label (detail when present, name otherwise).
    pub label: String,
    /// Span duration (ns).
    pub dur_ns: f64,
    /// Time not covered by the span's children (ns).
    pub self_ns: f64,
}

/// Shape and balance facts about one network's reconstructed tree.
#[derive(Debug, Clone)]
pub struct TreeCheck {
    /// The network the tree belongs to.
    pub network: String,
    /// Spans reconstructed into the tree.
    pub spans: usize,
    /// Deepest nesting level.
    pub depth: usize,
    /// Root `run` span duration (ns).
    pub root_dur_ns: f64,
    /// The report's total latency (ns); bit-identical to the root.
    pub report_total_ns: f64,
    /// The dominant chain: from the root, the longest child at every
    /// level.
    pub chain: Vec<ChainSegment>,
    /// Top spans by accumulated self time, `(label, self_ns)`.
    pub hot: Vec<(String, f64)>,
}

/// The serving-side cross-check: request paths from the trace versus
/// the engine's telemetry.
#[derive(Debug, Clone)]
pub struct ServeCheck {
    /// Requests the telemetry saw complete.
    pub completed: usize,
    /// Paths reconstructed from the event stream.
    pub reconstructed: usize,
    /// Worst |trace - telemetry| over every compared field (ns).
    pub max_abs_error_ns: f64,
    /// `(percentile, exemplar path)` for the p50/p95/p99 exemplar percentiles.
    pub exemplars: Vec<(f64, RequestPath)>,
}

/// The full critical-path cross-check result.
#[derive(Debug, Clone)]
pub struct CriticalResult {
    /// Per-(network, stage) latency and energy comparisons.
    pub stage_rows: Vec<StageRow>,
    /// Per-network tree facts.
    pub trees: Vec<TreeCheck>,
    /// The serving-side reconstruction check.
    pub serve: ServeCheck,
}

impl CriticalResult {
    /// The worst relative error across every stage row.
    pub fn max_relative_error(&self) -> f64 {
        self.stage_rows
            .iter()
            .map(StageRow::relative_error)
            .fold(0.0, f64::max)
    }
}

fn span_label(node: &bfree_obs::SpanNode) -> String {
    node.event
        .detail
        .clone()
        .unwrap_or_else(|| node.event.name.to_string())
}

/// Walks the longest-child chain from `root`.
fn dominant_chain(root: &bfree_obs::SpanNode) -> Vec<ChainSegment> {
    let mut chain = Vec::new();
    let mut node = root;
    loop {
        chain.push(ChainSegment {
            label: span_label(node),
            dur_ns: node.dur_ns(),
            self_ns: node.self_ns(),
        });
        match node
            .children
            .iter()
            .max_by(|a, b| a.dur_ns().total_cmp(&b.dur_ns()))
        {
            Some(child) => node = child,
            None => return chain,
        }
    }
}

/// Top-`k` labels by accumulated self time across the forest.
fn hot_spans(forest: &TraceForest, k: usize) -> Vec<(String, f64)> {
    let mut order: Vec<String> = Vec::new();
    let mut totals: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    forest.visit(&mut |node, _| {
        let label = span_label(node);
        if !totals.contains_key(&label) {
            order.push(label.clone());
        }
        *totals.entry(label).or_insert(0.0) += node.self_ns();
    });
    let mut rows: Vec<(String, f64)> = order
        .into_iter()
        .map(|label| {
            let total = totals[&label];
            (label, total)
        })
        .collect();
    rows.sort_by(|a, b| b.1.total_cmp(&a.1));
    rows.truncate(k);
    rows
}

fn check_exec_network(
    name: &str,
    report: &RunReport,
    forest: &TraceForest,
) -> Result<(Vec<StageRow>, TreeCheck), ExperimentError> {
    if !forest.is_balanced() {
        return Err(ExperimentError::MissingData(format!(
            "{name} trace reconstruction reported issues: {:?}",
            forest.issues
        )));
    }
    let [root] = forest.roots.as_slice() else {
        return Err(ExperimentError::MissingData(format!(
            "{name} trace has {} roots, expected the single `run` span",
            forest.roots.len()
        )));
    };
    if root.event.name != "run" {
        return Err(ExperimentError::MissingData(format!(
            "{name} trace root is `{}`, expected `run`",
            root.event.name
        )));
    }
    let report_total_ns = report.total_latency().nanoseconds();
    if root.dur_ns().to_bits() != report_total_ns.to_bits() {
        return Err(ExperimentError::MissingData(format!(
            "{name} root span is {} ns but the report totals {} ns (must be bit-identical)",
            root.dur_ns(),
            report_total_ns
        )));
    }

    let mut rows = Vec::new();
    let latency = fold_stage_latency(forest.events_in_order());
    for phase in Phase::ALL {
        let reported = report.latency.get(phase).nanoseconds();
        // Entry order is first-emission order; `+ 0.0` normalizes the
        // empty-sum identity -0.0.
        let folded = latency
            .iter()
            .filter(|s| s.subsystem == Subsystem::Exec && s.name == phase_event_name(phase))
            .map(|s| s.total)
            .sum::<f64>()
            + 0.0;
        if reported == 0.0 && folded == 0.0 {
            continue;
        }
        rows.push(StageRow {
            network: name.to_string(),
            stage: format!("latency/{}", phase.label()),
            reported,
            folded,
        });
    }
    let energy = fold_stage_energy(forest.events_in_order());
    for component in EnergyComponent::ALL {
        let reported = report.energy.get(component).picojoules();
        let folded = energy
            .iter()
            .filter(|s| s.component == Some(obs_component(component)))
            .map(|s| s.total)
            .sum::<f64>()
            + 0.0;
        if reported == 0.0 && folded == 0.0 {
            continue;
        }
        rows.push(StageRow {
            network: name.to_string(),
            stage: format!("energy/{}", component.label()),
            reported,
            folded,
        });
    }
    if rows.is_empty() {
        return Err(ExperimentError::MissingData(format!(
            "critical-path fold produced no stages for {name}"
        )));
    }

    let tree = TreeCheck {
        network: name.to_string(),
        spans: forest.span_count(),
        depth: forest.roots.iter().map(|r| r.depth()).max().unwrap_or(0),
        root_dur_ns: root.dur_ns(),
        report_total_ns,
        chain: dominant_chain(root),
        hot: hot_spans(forest, 5),
    };
    Ok((rows, tree))
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        batch_window_ns: 100_000,
        queue_capacity: 512,
        timeout_ns: Some(50_000_000),
        ..ServeConfig::default()
    }
}

fn serve_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lstm-timit", NetworkKind::LstmTimit),
        TenantSpec::new("bert-base", NetworkKind::BertBase),
    ]
}

fn check_serving() -> Result<ServeCheck, ExperimentError> {
    let recorder = RingRecorder::new(SERVE_TRACE_CAPACITY);
    let mut sim = ServingSim::with_recorder(serve_config(), serve_tenants(), recorder)?;
    let mut driver = OpenLoopDriver::new(SERVE_SEED, vec![2_000.0, 50.0]);
    driver.drive(&mut sim, SERVE_HORIZON_NS);
    sim.run_to_idle();
    if sim.recorder().dropped() > 0 {
        return Err(ExperimentError::MissingData(format!(
            "serving trace dropped {} events; raise SERVE_TRACE_CAPACITY",
            sim.recorder().dropped()
        )));
    }
    let events = sim.recorder().events();
    let paths = RequestPaths::from_events(&events);
    let completed: Vec<_> = sim
        .telemetry()
        .records()
        .iter()
        .filter(|r| r.outcome == Outcome::Completed)
        .collect();
    if paths.len() != completed.len() {
        return Err(ExperimentError::MissingData(format!(
            "trace reconstructed {} request paths but telemetry completed {}",
            paths.len(),
            completed.len()
        )));
    }
    let mut max_abs_error_ns: f64 = 0.0;
    for record in &completed {
        let Some(path) = paths
            .paths()
            .iter()
            .find(|p| p.request_id == record.request_id)
        else {
            return Err(ExperimentError::MissingData(format!(
                "request {} completed but has no reconstructed path",
                record.request_id
            )));
        };
        let total = (record.complete_ns - record.submit_ns) as f64;
        let queue = record.queue_ns() as f64;
        max_abs_error_ns = max_abs_error_ns
            .max((path.total_ns - total).abs())
            .max((path.queue_ns - queue).abs());
    }
    let exemplars = EXEMPLAR_PERCENTILES
        .iter()
        .filter_map(|&p| paths.exemplar(p).map(|path| (p, path.clone())))
        .collect();
    Ok(ServeCheck {
        completed: completed.len(),
        reconstructed: paths.len(),
        max_abs_error_ns,
        exemplars,
    })
}

/// Runs the cross-check: the two headline CNN traces plus the
/// mixed-traffic serving trace.
///
/// # Errors
///
/// [`ExperimentError::MissingData`] on any structural failure: an
/// unbalanced forest, a missing/renamed root span, a root duration that
/// is not bit-identical to the report total, dropped events, or a
/// request-path count that disagrees with telemetry.
pub fn run() -> Result<CriticalResult, ExperimentError> {
    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    let mut stage_rows = Vec::new();
    let mut trees = Vec::new();
    for (name, network) in [
        ("inception_v3", networks::inception_v3()),
        ("vgg16", networks::vgg16()),
    ] {
        let recorder = RingRecorder::new(EXEC_TRACE_CAPACITY);
        let report = sim.run_recorded(&network, 1, &recorder);
        if recorder.dropped() > 0 {
            return Err(ExperimentError::MissingData(format!(
                "{name} trace dropped {} events; raise EXEC_TRACE_CAPACITY",
                recorder.dropped()
            )));
        }
        let forest = TraceForest::from_ring(&recorder);
        let (rows, tree) = check_exec_network(name, &report, &forest)?;
        stage_rows.extend(rows);
        trees.push(tree);
    }
    let serve = check_serving()?;
    Ok(CriticalResult {
        stage_rows,
        trees,
        serve,
    })
}

/// Prints the cross-check and fails on any divergence above
/// [`TOLERANCE`] (i.e. any divergence at all).
///
/// # Errors
///
/// Everything [`run`] returns, plus [`ExperimentError::MissingData`]
/// when a stage sum or a reconstructed request path diverges.
pub fn print() -> Result<(), ExperimentError> {
    let result = run()?;

    println!("\n== critical path: trace trees vs run reports ==");
    for tree in &result.trees {
        println!(
            "\n{}: {} spans, depth {}, root {:.0} ns (bit-identical to report total)",
            tree.network, tree.spans, tree.depth, tree.root_dur_ns
        );
        println!("  dominant chain:");
        for seg in &tree.chain {
            println!(
                "    {:<32} {:>14.0} ns  ({:>5.1}% of run, self {:.0} ns)",
                seg.label,
                seg.dur_ns,
                100.0 * seg.dur_ns / tree.root_dur_ns,
                seg.self_ns
            );
        }
        println!("  hottest spans by self time:");
        for (label, self_ns) in &tree.hot {
            println!(
                "    {:<32} {:>14.0} ns  ({:>5.1}% of run)",
                label,
                self_ns,
                100.0 * self_ns / tree.root_dur_ns
            );
        }
    }

    println!(
        "\n{:<14} {:<26} {:>16} {:>16} {:>10}",
        "network", "stage", "reported", "folded", "rel_err"
    );
    for row in &result.stage_rows {
        println!(
            "{:<14} {:<26} {:>16.3} {:>16.3} {:>10.2e}",
            row.network,
            row.stage,
            row.reported,
            row.folded,
            row.relative_error()
        );
    }
    let worst = result.max_relative_error();
    println!("worst stage divergence: {worst:.2e} (gate {TOLERANCE})");

    println!(
        "\n== serving request paths (seed {SERVE_SEED:#x}, {} completed) ==",
        result.serve.completed
    );
    println!(
        "reconstructed {} paths from the trace, worst |trace - telemetry| = {} ns",
        result.serve.reconstructed, result.serve.max_abs_error_ns
    );
    for (p, path) in &result.serve.exemplars {
        let stages = path.stages();
        println!(
            "p{:<4} request {:>5} ({:<10}) total {:>8.3} ms = queue {:.3} + backoff {:.3} + \
             service {:.3} ms, dominated by {}",
            p,
            path.request_id,
            path.tenant.as_deref().unwrap_or("?"),
            path.total_ns * 1e-6,
            stages[0].1 * 1e-6,
            stages[1].1 * 1e-6,
            stages[2].1 * 1e-6,
            path.dominant_stage()
        );
    }

    if worst > TOLERANCE {
        return Err(ExperimentError::MissingData(format!(
            "critical-path stage divergence {worst:.2e} exceeds the {TOLERANCE} gate"
        )));
    }
    if result.serve.max_abs_error_ns > 0.0 {
        return Err(ExperimentError::MissingData(format!(
            "request paths diverge from telemetry by {} ns",
            result.serve.max_abs_error_ns
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_sums_from_the_trace_tree_are_exact() {
        let result = run().unwrap();
        assert!(
            result.stage_rows.len() >= 10,
            "rows {}",
            result.stage_rows.len()
        );
        assert_eq!(result.max_relative_error(), 0.0);
    }

    #[test]
    fn trees_and_request_paths_reconcile() {
        let result = run().unwrap();
        for tree in &result.trees {
            assert_eq!(
                tree.root_dur_ns.to_bits(),
                tree.report_total_ns.to_bits(),
                "{} root must be bit-identical to the report total",
                tree.network
            );
            assert!(tree.depth >= 2, "{} depth {}", tree.network, tree.depth);
            assert!(tree.spans > 10, "{} spans {}", tree.network, tree.spans);
            assert!(!tree.chain.is_empty() && !tree.hot.is_empty());
        }
        assert!(result.serve.completed > 0);
        assert_eq!(result.serve.max_abs_error_ns, 0.0);
        assert_eq!(result.serve.exemplars.len(), EXEMPLAR_PERCENTILES.len());
    }
}
