//! `experiments perf`: the wall-clock perf sentinel — a calibrated
//! benchmark of the workspace's hot kernels, diffed against a committed
//! baseline.
//!
//! Raw wall-clock numbers are machine-dependent, so every kernel is
//! reported as a *normalized* time: its best-of-N wall-clock divided by
//! the best-of-N of a fixed integer-arithmetic calibration loop run on
//! the same machine in the same process. Normalized times cancel CPU
//! speed and survive a move between CI runners; `--check` compares
//! them against the committed `BENCH_bfree.json` and fails on any
//! kernel more than `--threshold` (default
//! [`DEFAULT_THRESHOLD`] = 25%) slower than the baseline.
//!
//! The kernels are measured with jobs pinned to 1 (the normalization
//! contract breaks if a kernel's wall-clock depends on core count), the
//! timers are [`WallTimer`]s feeding an [`AggRecorder`], and the run
//! ends with a Prometheus-style text exposition of every timer — the
//! same machinery `bfree::par::par_map_profiled` uses, exercised
//! end-to-end.

use std::fmt::Write as _;
use std::hint::black_box;
use std::path::Path;

use bfree::prelude::*;
use bfree_fault::{FaultInjector, FaultPlan, RetryPolicy};
use bfree_model::{encode_kind, ArtifactSpec, ModelArtifact, WeightPayload};
use bfree_obs::{prometheus_text, JsonValue, WallTimer};
use bfree_serve::{OpenLoopDriver, SchedPolicy, ServeConfig, ServingSim, TenantSpec};
use pim_bce::{Bce, MultRom};
use pim_lut::{BatchedLutMultiplier, LutImage, MultLut, ProtectedLut, Protection};
use pim_nn::request::NetworkKind;

use crate::error::ExperimentError;

/// Default regression threshold for `--check`: a kernel may be at most
/// 25% slower (normalized) than the committed baseline.
pub const DEFAULT_THRESHOLD: f64 = 0.25;
/// The calibration kernel's name; its normalized time is 1.0 by
/// definition and it is exempt from the regression gate.
pub const CALIBRATION: &str = "calibration";
/// Virtual horizon for the serving and chaos kernels; long enough that
/// one run costs ~ms of host time even in release builds, keeping
/// best-of-N comfortably inside the regression threshold's noise
/// budget.
const SERVE_HORIZON_NS: u64 = 400_000_000;

/// One measured kernel.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Kernel name.
    pub name: &'static str,
    /// Best-of-N wall-clock (ns).
    pub best_ns: f64,
    /// `best_ns / calibration_best_ns` — the machine-portable number.
    pub normalized: f64,
}

/// The full measurement: calibration first, then every kernel.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Iterations each kernel was timed over.
    pub iters: u32,
    /// Rows in measurement order; `rows[0]` is [`CALIBRATION`].
    pub rows: Vec<PerfRow>,
}

/// Best-of-`iters` wall-clock of `f`, each iteration under a
/// [`WallTimer`] so the aggregate snapshot carries the distribution.
fn best_ns<R: Recorder>(recorder: &R, name: &'static str, iters: u32, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let timer = WallTimer::start(recorder, Subsystem::Par, name);
        f();
        if let Some(ns) = timer.stop() {
            best = best.min(ns);
        }
    }
    best
}

/// The calibration loop: a fixed amount of integer mixing no optimizer
/// can fold away. Everything else is reported relative to this.
fn calibration_kernel() -> u64 {
    let mut acc = 0x9E37_79B9_7F4A_7C15u64;
    for i in 0..2_000_000u64 {
        acc = black_box(acc ^ i).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        acc ^= acc >> 27;
    }
    black_box(acc)
}

/// The LUT multiply datapath: nibble products, full u8 sweep, an int8
/// dot product and the Fig. 7 ROM broadcast — the sweep and dots run
/// through the SWAR-batched multiplier, the same entry points the BCE
/// hot path uses.
fn lut_multiply_kernel(
    mul: &BatchedLutMultiplier,
    lut: &MultLut,
    rom: &MultRom,
    w: &[i8],
    x: &[i8],
) {
    let mut acc = 0u64;
    for a in (0u16..256).step_by(3) {
        for v in (0u16..256).step_by(5) {
            acc += u64::from(mul.mul_u8(black_box(a as u8), black_box(v as u8)).0);
        }
    }
    for _ in 0..64 {
        acc = acc.wrapping_add(mul.dot_i8(black_box(w), black_box(x)).0 as u64);
    }
    // The 49-entry table only holds odd operands in 3..=15.
    for a in 1u8..8 {
        for v in 1u8..8 {
            acc += u64::from(lut.lookup(black_box(a * 2 + 1), black_box(v * 2 + 1)));
        }
    }
    let register = [0x12u8, 0x34, 0x56, 0x78, 0x9A, 0xBC, 0xDE, 0xF0];
    for nibble in 0u8..16 {
        acc = acc.wrapping_add(u64::from(rom.broadcast(black_box(nibble), &register)[0]));
    }
    black_box(acc);
}

/// Operand set for [`bce_pipeline_kernel`], built once outside the
/// timed region.
struct BceOperands {
    weights: Vec<i8>,
    inputs: Vec<i8>,
    stream: Vec<i8>,
    tile: Vec<[i8; 8]>,
    window: Vec<i8>,
    accs: Vec<i32>,
}

/// The BCE pipeline: conv dot products, matmul tiles, pooling and
/// requantization.
fn bce_pipeline_kernel(conv: &Bce, mm: &Bce, ops: &BceOperands) {
    let BceOperands {
        weights,
        inputs,
        stream,
        tile,
        window,
        accs,
    } = ops;
    for _ in 0..64 {
        black_box(conv.dot_conv(black_box(weights), black_box(inputs), Precision::Int8));
    }
    for _ in 0..32 {
        black_box(mm.matmul_tile(black_box(stream), black_box(tile)));
    }
    for _ in 0..32 {
        black_box(conv.max_pool(black_box(window)));
        black_box(conv.avg_pool(black_box(window)));
    }
    let multiplier = (0.7 * (1u64 << 31) as f64) as i32;
    black_box(conv.requantize(black_box(accs), multiplier, 9, 3));
}

/// One full artifact load: zero-copy parse (bounds + footer checksum
/// over the whole buffer), a walk of every layer record and an inline
/// weight-byte reduction. The encode happens once outside the timer;
/// the checksum pass over the multi-megabyte inline payload dominates.
/// Exactly one load per iteration — earlier revisions repeated the
/// parse four times inside the timed region, quadrupling the reported
/// time without measuring anything new.
fn model_load_kernel(bytes: &[u8]) {
    let artifact = ModelArtifact::parse(black_box(bytes)).expect("artifact is valid");
    let mut acc = 0u64;
    for layer in artifact.layers() {
        acc = acc.wrapping_add(layer.macs()).wrapping_add(layer.params());
        if let Some(weights) = layer.weights() {
            let sum = weights
                .iter()
                .fold(0u64, |a, &w| a.wrapping_add(w as i64 as u64));
            acc = acc.wrapping_add(sum);
        }
    }
    for segment in artifact.lut_segments() {
        acc = acc.wrapping_add(segment.bytes().len() as u64);
    }
    black_box(acc ^ artifact.checksum());
}

/// Seeded weight regeneration, split out of [`model_load_kernel`] so
/// load-parse and weight synthesis are gated independently: parse a
/// seeded (weightless-on-disk) artifact and materialize every layer's
/// payload from the weight seed.
fn model_weights_kernel(bytes: &[u8]) {
    let artifact = ModelArtifact::parse(black_box(bytes)).expect("artifact is valid");
    let mut acc = 0u64;
    for layer in artifact.layers() {
        if let Some(weights) = layer.materialize_weights() {
            acc = acc.wrapping_add(weights.len() as u64);
            acc = acc.wrapping_add(weights.iter().fold(0u64, |a, &w| a.wrapping_add(w as u64)));
        }
    }
    black_box(acc);
}

/// The LUT scrub datapath: deterministic bit flips landing on
/// SECDED-coded rows, then the scrubber's check/correct/regenerate
/// sweep — the sdc sweep's hot loop. Each pass restores every LUT to
/// its golden image, so iterations are idempotent and best-of-N stays
/// meaningful.
fn lut_scrub_kernel(injector: &FaultInjector, luts: &mut [ProtectedLut]) {
    let mut handled = 0u64;
    for epoch in 0..4u64 {
        for (i, lut) in luts.iter_mut().enumerate() {
            let rows = lut.rows() as u32;
            for row in 0..rows {
                let global_row = (i as u32 / 14) * rows + row;
                let hits = injector.lut_row_flips(i % 14, global_row, epoch, lut.word_bits());
                for bit in hits.into_iter().flatten() {
                    lut.inject(row as usize, bit);
                }
            }
            let report = lut.scrub_pass();
            handled += u64::from(report.corrected + report.repaired);
        }
    }
    black_box(handled);
}

fn serve_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lstm-timit", NetworkKind::LstmTimit),
        TenantSpec::new("bert-base", NetworkKind::BertBase).with_priority(5),
    ]
}

/// One full serving run: mixed open-loop traffic driven to idle.
fn serving_kernel() {
    let config = ServeConfig {
        max_batch: 8,
        batch_window_ns: 100_000,
        queue_capacity: 512,
        timeout_ns: Some(50_000_000),
        ..ServeConfig::default()
    };
    let mut sim = ServingSim::new(config, serve_tenants()).expect("constants are valid");
    let mut driver = OpenLoopDriver::new(0xBF_EE, vec![2_000.0, 50.0]);
    driver.drive(&mut sim, SERVE_HORIZON_NS);
    black_box(sim.run_to_idle().summary());
}

/// One wall-clock realtime serving run: a fixed seeded open-loop trace
/// driven through the concurrent engine. Workers are pinned to 2 in the
/// config — the realtime pool is its own thread scope, not subject to
/// the jobs=1 pin, and the kernel must time the same pool shape on
/// every machine. The trace spans 16x the serving horizon (several
/// thousand requests, milliseconds of wall time) so the engine's fixed
/// per-drive costs — thread spawns, ring allocation — amortize the way
/// they do in a real serving run. `telemetry` toggles the live plane:
/// the two kernels (`serving_realtime` off, `serving_realtime_live` on)
/// differ only in that flag, so their baseline ratio *is* the recorder
/// overhead the issue budget caps at 5%.
fn serving_realtime_run(telemetry: bool) {
    let config = bfree_serve::RealtimeConfig::builder()
        .workers(2)
        .queue_shards(4)
        .serve(
            ServeConfig::builder()
                .max_batch(8)
                .batch_window_ns(100_000)
                .queue_capacity(512)
                .timeout_ns(Some(50_000_000))
                .build()
                .expect("constants are valid"),
        )
        .telemetry(bfree_serve::TelemetryConfig {
            enabled: telemetry,
            // The aggregator drains continuously while events flow, so
            // a few thousand slots of headroom per producer is plenty
            // here — and the rings stay cheap to allocate per drive.
            ring_capacity: 2048,
            ..bfree_serve::TelemetryConfig::default()
        })
        .build()
        .expect("constants are valid");
    let mut driver = OpenLoopDriver::new(0xBF_EE, vec![2_000.0, 50.0]);
    let mut trace = bfree_serve::RequestTrace::new();
    for (at_ns, tenant) in driver.arrivals(SERVE_HORIZON_NS * 16) {
        trace.submit(at_ns, tenant);
    }
    let mut engine =
        bfree_serve::RealtimeEngine::new(config, serve_tenants()).expect("constants are valid");
    use bfree_serve::Frontend;
    engine
        .submit_trace(&trace)
        .expect("trace tenants are valid");
    engine.drive_to_idle().expect("drive cannot fail");
    black_box(engine.serving_telemetry().summary());
    black_box(engine.stats());
    if telemetry {
        black_box(engine.live_snapshot());
    }
}

/// The realtime engine with the live telemetry plane off (baseline).
fn serving_realtime_kernel() {
    serving_realtime_run(false);
}

/// The realtime engine with per-worker rings, the aggregator thread,
/// and snapshot publishing live. Gated against `serving_realtime` to
/// keep the recorder overhead within the issue's 5% budget.
fn serving_realtime_live_kernel() {
    serving_realtime_run(true);
}

/// One severity-1.0 chaos cell under the full resilience policy.
fn chaos_cell_kernel() {
    let config = ServeConfig::builder()
        .policy(SchedPolicy::Priority)
        .max_batch(8)
        .batch_window_ns(100_000)
        .queue_capacity(512)
        .timeout_ns(Some(50_000_000))
        .retry(RetryPolicy::standard())
        .shed_watermark(0.8)
        .deadline_ns(Some(40_000_000))
        .build()
        .expect("constants are valid");
    let plan = FaultPlan::none()
        .with_lut_corruption(0.001, 50)
        .with_slice_failures(0.2, SERVE_HORIZON_NS, Some(SERVE_HORIZON_NS / 4))
        .with_stragglers(0.15, 3.0)
        .with_transient_errors(0.03);
    let slices = config.base.geometry.slices();
    let injector = FaultInjector::new(plan, 42, slices, 512).expect("plan in range");
    let mut sim =
        ServingSim::with_faults(config, serve_tenants(), injector).expect("constants are valid");
    let mut driver = OpenLoopDriver::new(42, vec![2_000.0, 50.0]);
    driver.drive(&mut sim, SERVE_HORIZON_NS);
    black_box(sim.run_to_idle().summary());
}

/// Measures every kernel, jobs pinned to 1 for the duration.
pub fn measure(quick: bool) -> (PerfReport, Vec<bfree_obs::AggEntry>) {
    let saved = bfree::par::max_jobs();
    bfree::par::set_max_jobs(1);
    let iters: u32 = if quick { 3 } else { 10 };
    let agg = AggRecorder::new();

    let mut rows = Vec::new();
    let calibration_best = best_ns(&agg, "wall/calibration", iters, || {
        black_box(calibration_kernel());
    });
    rows.push(PerfRow {
        name: CALIBRATION,
        best_ns: calibration_best,
        normalized: 1.0,
    });

    let mul = BatchedLutMultiplier::new();
    let lut = MultLut::new();
    let rom = MultRom::new();
    let w: Vec<i8> = (0..256).map(|i| (i * 7 % 255) as i8).collect();
    let x: Vec<i8> = (0..256).map(|i| (i * 13 % 255) as i8).collect();
    let best = best_ns(&agg, "wall/lut_multiply", iters, || {
        lut_multiply_kernel(&mul, &lut, &rom, &w, &x);
    });
    rows.push(PerfRow {
        name: "lut_multiply",
        best_ns: best,
        normalized: best / calibration_best,
    });

    let conv = Bce::new(BceMode::Conv).expect("conv mode is valid");
    let mm = Bce::new(BceMode::MatMul).expect("matmul mode is valid");
    let ops = BceOperands {
        weights: (0..512).map(|i| (i * 31 % 251) as i8).collect(),
        inputs: (0..512).map(|i| (i * 17 % 251) as i8).collect(),
        tile: (0..256)
            .map(|k| std::array::from_fn(|j| ((k * 7 + j * 13) % 251) as i8))
            .collect(),
        stream: (0..256).map(|k| (k * 11 % 251) as i8).collect(),
        window: (0..64).map(|i| (i * 37 % 255) as i8).collect(),
        accs: (0..1024).map(|i| i * 937 - 400_000).collect(),
    };
    let best = best_ns(&agg, "wall/bce_pipeline", iters, || {
        bce_pipeline_kernel(&conv, &mm, &ops);
    });
    rows.push(PerfRow {
        name: "bce_pipeline",
        best_ns: best,
        normalized: best / calibration_best,
    });

    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    let network = networks::inception_v3();
    let best = best_ns(&agg, "wall/exec_network", iters, || {
        // Heavy enough (~ms) that best-of-N stays inside the noise
        // threshold; LSTM alone is ~10 us and jitters past the gate.
        for _ in 0..16 {
            black_box(sim.run(&network, 1));
        }
    });
    rows.push(PerfRow {
        name: "exec_network",
        best_ns: best,
        normalized: best / calibration_best,
    });

    let artifact_bytes = encode_kind(
        NetworkKind::LstmTimit,
        &BfreeConfig::paper_default(),
        &ArtifactSpec {
            payload: WeightPayload::Inline,
            ..ArtifactSpec::default()
        },
    );
    let best = best_ns(&agg, "wall/model_load", iters, || {
        model_load_kernel(&artifact_bytes);
    });
    rows.push(PerfRow {
        name: "model_load",
        best_ns: best,
        normalized: best / calibration_best,
    });

    let seeded_bytes = encode_kind(
        NetworkKind::LstmTimit,
        &BfreeConfig::paper_default(),
        &ArtifactSpec {
            payload: WeightPayload::Seeded,
            ..ArtifactSpec::default()
        },
    );
    let best = best_ns(&agg, "wall/model_weights", iters, || {
        model_weights_kernel(&seeded_bytes);
    });
    rows.push(PerfRow {
        name: "model_weights",
        best_ns: best,
        normalized: best / calibration_best,
    });

    let best = best_ns(&agg, "wall/serving_engine", iters, serving_kernel);
    rows.push(PerfRow {
        name: "serving_engine",
        best_ns: best,
        normalized: best / calibration_best,
    });

    let best = best_ns(&agg, "wall/chaos_cell", iters, chaos_cell_kernel);
    rows.push(PerfRow {
        name: "chaos_cell",
        best_ns: best,
        normalized: best / calibration_best,
    });

    let best = best_ns(
        &agg,
        "wall/serving_realtime",
        iters,
        serving_realtime_kernel,
    );
    rows.push(PerfRow {
        name: "serving_realtime",
        best_ns: best,
        normalized: best / calibration_best,
    });

    let best = best_ns(
        &agg,
        "wall/serving_realtime_live",
        iters,
        serving_realtime_live_kernel,
    );
    rows.push(PerfRow {
        name: "serving_realtime_live",
        best_ns: best,
        normalized: best / calibration_best,
    });

    let scrub_injector = FaultInjector::new(
        FaultPlan::none().with_bit_flips(0.05, 0.0, 0.0),
        42,
        14,
        4096,
    )
    .expect("plan in range");
    let image = LutImage::from_mult_table(&MultLut::new());
    let mut scrub_luts: Vec<ProtectedLut> = (0..512)
        .map(|_| ProtectedLut::from_image(&image, Protection::Secded))
        .collect();
    let best = best_ns(&agg, "wall/lut_scrub", iters, || {
        lut_scrub_kernel(&scrub_injector, &mut scrub_luts);
    });
    rows.push(PerfRow {
        name: "lut_scrub",
        best_ns: best,
        normalized: best / calibration_best,
    });

    bfree::par::set_max_jobs(saved);
    (PerfReport { iters, rows }, agg.snapshot())
}

/// Renders the report as the `BENCH_bfree.json` document. Hand-rolled
/// (the vendored serde is a no-op stub) and timestamp-free.
pub fn render_json(report: &PerfReport) -> String {
    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"iters_per_kernel\": {},", report.iters);
    json.push_str("  \"kernels\": [\n");
    for (i, row) in report.rows.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"best_ns\": {:.0}, \"normalized\": {:.4}}}",
            row.name, row.best_ns, row.normalized
        );
        json.push_str(if i + 1 < report.rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("  ]\n}\n");
    json
}

/// Parses a baseline document into `(name, normalized)` pairs.
///
/// # Errors
///
/// [`ExperimentError::Obs`] when the document is not the shape
/// [`render_json`] writes.
pub fn parse_baseline(text: &str) -> Result<Vec<(String, f64)>, ExperimentError> {
    let value = JsonValue::parse(text)?;
    let kernels = value
        .get("kernels")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| {
            ExperimentError::MissingData("baseline has no `kernels` array".to_string())
        })?;
    let mut pairs = Vec::new();
    for kernel in kernels {
        pairs.push((
            kernel.require_str("name")?.to_string(),
            kernel.require_f64("normalized")?,
        ));
    }
    Ok(pairs)
}

/// Compares a measurement against a baseline. Returns one message per
/// kernel whose normalized time regressed past `threshold`; the
/// calibration row and kernels absent from the baseline never fail.
pub fn regressions(baseline: &[(String, f64)], rows: &[PerfRow], threshold: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for row in rows {
        if row.name == CALIBRATION {
            continue;
        }
        let Some((_, base)) = baseline.iter().find(|(name, _)| name == row.name) else {
            continue;
        };
        if *base > 0.0 && row.normalized > base * (1.0 + threshold) {
            failures.push(format!(
                "{}: normalized {:.4} vs baseline {:.4} (+{:.0}%, threshold {:.0}%)",
                row.name,
                row.normalized,
                base,
                100.0 * (row.normalized / base - 1.0),
                100.0 * threshold
            ));
        }
    }
    failures
}

/// Kernels present in the measurement but absent from the baseline —
/// added since the baseline was committed. These are additive: the gate
/// warns and keeps going, and the rewritten baseline adopts them.
pub fn additions<'a>(baseline: &[(String, f64)], rows: &'a [PerfRow]) -> Vec<&'a str> {
    rows.iter()
        .filter(|row| row.name != CALIBRATION)
        .filter(|row| !baseline.iter().any(|(name, _)| name == row.name))
        .map(|row| row.name)
        .collect()
}

/// Baseline kernels absent from the measurement — a kernel that stopped
/// being measured, or a typo'd rename. Unlike [`additions`], these are
/// **failures** under `--check`: a silently dropped kernel would
/// otherwise pass the gate forever while its coverage is gone.
pub fn stale<'a>(baseline: &'a [(String, f64)], rows: &[PerfRow]) -> Vec<&'a str> {
    baseline
        .iter()
        .filter(|(name, _)| name != CALIBRATION)
        .filter(|(name, _)| !rows.iter().any(|row| row.name == name))
        .map(|(name, _)| name.as_str())
        .collect()
}

/// Runs the sentinel: measure, print, diff against the baseline at
/// `path`, rewrite `path`, and — under `check` — fail on regression.
///
/// # Errors
///
/// [`ExperimentError::Io`] on a failed write;
/// [`ExperimentError::MissingData`] under `check` when the baseline is
/// missing/unreadable or any kernel regressed past `threshold`.
pub fn run(path: &Path, quick: bool, check: bool, threshold: f64) -> Result<(), ExperimentError> {
    let baseline = match std::fs::read_to_string(path) {
        Ok(text) => Some(parse_baseline(&text)?),
        Err(_) => None,
    };

    let (report, entries) = measure(quick);

    println!(
        "== experiments perf: calibrated kernel sentinel ({} iters, jobs=1) ==",
        report.iters
    );
    println!("{:<18} {:>14} {:>12}", "kernel", "best ms", "normalized");
    for row in &report.rows {
        println!(
            "{:<18} {:>14.4} {:>12.4}",
            row.name,
            row.best_ns * 1e-6,
            row.normalized
        );
    }

    println!("\n-- wall-clock timers (Prometheus exposition) --");
    print!("{}", prometheus_text(&entries));

    let failures = match &baseline {
        Some(pairs) => {
            for name in additions(pairs, &report.rows) {
                println!(
                    "\nwarning: kernel `{name}` has no entry in baseline {} \
                     (baseline-additive: measured but not gated; the rewritten \
                     baseline adopts it)",
                    path.display()
                );
            }
            let mut failures = regressions(pairs, &report.rows, threshold);
            for name in stale(pairs, &report.rows) {
                let message = format!(
                    "{name}: present in baseline {} but not measured \
                     (removed or renamed kernel — stale baseline entry)",
                    path.display()
                );
                if check {
                    failures.push(message);
                } else {
                    println!("\nwarning: {message}");
                }
            }
            if failures.is_empty() {
                println!(
                    "\nbaseline {}: every kernel within {:.0}% of its normalized time",
                    path.display(),
                    100.0 * threshold
                );
            } else {
                for failure in &failures {
                    println!("\nfailure: {failure}");
                }
            }
            failures
        }
        None => {
            println!("\nno baseline at {}; writing one", path.display());
            Vec::new()
        }
    };

    std::fs::write(path, render_json(&report))?;
    println!("wrote {}", path.display());

    if check {
        if baseline.is_none() {
            return Err(ExperimentError::MissingData(format!(
                "--check requires a committed baseline at {}",
                path.display()
            )));
        }
        if !failures.is_empty() {
            return Err(ExperimentError::MissingData(format!(
                "perf sentinel: {} kernel(s) failed the gate: {}",
                failures.len(),
                failures.join("; ")
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Wall-clock probe of the live-telemetry overhead on the realtime
    /// kernel. Ignored by default (wall-clock assertions are
    /// machine-dependent); run explicitly with
    /// `cargo test -p bfree-experiments --release -- --ignored overhead`.
    #[test]
    #[ignore = "wall-clock measurement; run explicitly on a quiet machine"]
    fn live_telemetry_overhead_is_within_budget() {
        let best = |telemetry: bool| {
            (0..7)
                .map(|_| {
                    let start = std::time::Instant::now();
                    serving_realtime_run(telemetry);
                    start.elapsed().as_nanos() as f64
                })
                .fold(f64::INFINITY, f64::min)
        };
        serving_realtime_run(true); // warm up both paths once
        let off = best(false);
        let on = best(true);
        let overhead = on / off - 1.0;
        println!(
            "baseline {off:.0} ns, live {on:.0} ns, overhead {:.2}%",
            overhead * 100.0
        );
        assert!(
            overhead <= 0.05,
            "live telemetry overhead {:.2}% exceeds the 5% budget \
             (baseline {off:.0} ns, live {on:.0} ns)",
            overhead * 100.0
        );
    }

    fn synthetic_report() -> PerfReport {
        PerfReport {
            iters: 3,
            rows: vec![
                PerfRow {
                    name: CALIBRATION,
                    best_ns: 1_000_000.0,
                    normalized: 1.0,
                },
                PerfRow {
                    name: "lut_multiply",
                    best_ns: 2_500_000.0,
                    normalized: 2.5,
                },
                PerfRow {
                    name: "bce_pipeline",
                    best_ns: 4_000_000.0,
                    normalized: 4.0,
                },
            ],
        }
    }

    #[test]
    fn json_round_trips_through_the_baseline_parser() {
        let report = synthetic_report();
        let pairs = parse_baseline(&render_json(&report)).unwrap();
        assert_eq!(pairs.len(), report.rows.len());
        for (row, (name, normalized)) in report.rows.iter().zip(&pairs) {
            assert_eq!(row.name, name);
            assert!((row.normalized - normalized).abs() < 1e-9);
        }
    }

    #[test]
    fn regression_gate_trips_only_past_the_threshold() {
        let report = synthetic_report();
        // Identical baseline: clean.
        let same: Vec<(String, f64)> = report
            .rows
            .iter()
            .map(|r| (r.name.to_string(), r.normalized))
            .collect();
        assert!(regressions(&same, &report.rows, 0.25).is_empty());
        // 20% slower than baseline: inside a 25% threshold, outside 10%.
        let tighter: Vec<(String, f64)> = report
            .rows
            .iter()
            .map(|r| (r.name.to_string(), r.normalized / 1.2))
            .collect();
        assert!(regressions(&tighter, &report.rows, 0.25).is_empty());
        let tripped = regressions(&tighter, &report.rows, 0.10);
        assert_eq!(tripped.len(), 2, "calibration is exempt: {tripped:?}");
        // Kernels missing from the baseline never fail.
        assert!(regressions(&[], &report.rows, 0.0).is_empty());
    }

    #[test]
    fn new_kernels_surface_as_additions_not_regressions() {
        let report = synthetic_report();
        // A baseline committed before `bce_pipeline` existed.
        let old: Vec<(String, f64)> = vec![("lut_multiply".to_string(), 2.5)];
        assert_eq!(additions(&old, &report.rows), vec!["bce_pipeline"]);
        assert!(regressions(&old, &report.rows, 0.0).is_empty());
        // Calibration is never reported as an addition.
        assert!(additions(&[], &report.rows)
            .iter()
            .all(|name| *name != CALIBRATION));
    }

    #[test]
    fn stale_baseline_entries_are_detected() {
        let report = synthetic_report();
        // A baseline with a kernel that is no longer measured (removed
        // or typo-renamed): surfaced by stale(), ignored by the
        // regression scan.
        let old: Vec<(String, f64)> = vec![
            ("lut_multiply".to_string(), 2.5),
            ("ghost_kernel".to_string(), 0.9),
        ];
        assert_eq!(stale(&old, &report.rows), vec!["ghost_kernel"]);
        assert!(regressions(&old, &report.rows, 0.0).is_empty());
        // A baseline fully covered by the measurement has no stale rows,
        // and the calibration row is never stale.
        let same: Vec<(String, f64)> = report
            .rows
            .iter()
            .map(|r| (r.name.to_string(), r.normalized))
            .collect();
        assert!(stale(&same, &report.rows).is_empty());
        assert!(stale(&[(CALIBRATION.to_string(), 1.0)], &[]).is_empty());
    }

    #[test]
    fn quick_measurement_covers_every_kernel_and_feeds_the_timers() {
        let (report, entries) = measure(true);
        assert!(report.rows.len() >= 5, "rows {}", report.rows.len());
        assert!(
            report.rows.iter().any(|r| r.name == "model_weights"),
            "seeded weight-regen kernel missing"
        );
        assert_eq!(report.rows[0].name, CALIBRATION);
        assert_eq!(report.rows[0].normalized, 1.0);
        for row in &report.rows {
            assert!(
                row.best_ns.is_finite() && row.best_ns > 0.0,
                "{} best {}",
                row.name,
                row.best_ns
            );
            assert!(row.normalized > 0.0);
        }
        let exposition = prometheus_text(&entries);
        for name in [
            "bfree_par_wall_calibration",
            "bfree_par_wall_lut_multiply",
            "bfree_par_wall_chaos_cell",
        ] {
            assert!(
                exposition.contains(name),
                "missing {name} in:\n{exposition}"
            );
        }
    }
}
