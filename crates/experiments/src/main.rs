//! The experiments CLI: `experiments <name>` regenerates one table or
//! figure of the BFree paper; `experiments all` regenerates everything.

use bfree_experiments as exp;

const USAGE: &str = "\
usage: experiments <name>

  fig2       slice access latency/energy breakdown
  fig4       LUT-row design space (standalone / shared / decoupled)
  table2     workload summary (layers, params, mults)
  fig12      Inception-v3 vs Neural Cache (a: layers, b/c: phases, d: energy)
  fig13      VGG-16 vs iso-area Eyeriss (compute cycles)
  fig14      VGG-16 vs memory bandwidth, batch, precision
  table3     LSTM / BERT vs CPU and GPU
  cpu_gpu    CNN comparisons vs CPU and GPU (batch 16)
  overheads  area and power overheads (§V-B)
  headline   all headline numbers in one block
  ablations  design-choice ablations (DESIGN.md §5)
  extensions extension workloads (ResNet-18, GRU) on every device
  serving    multi-tenant serving load sweep (writes results/serving_load_sweep.csv)
  all        everything above, in paper order
  csv [dir]  write every figure's data series as CSV (default: results/)
";

/// Unwraps an experiment result, exiting with context on failure.
fn check(result: Result<(), exp::ExperimentError>) {
    if let Err(e) = result {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "fig2" => exp::fig2::print(),
        "fig4" => exp::fig4::print(),
        "table2" => exp::table2::print(),
        "fig12" | "fig12a" | "fig12bc" | "fig12d" => exp::fig12::print(),
        "fig13" => exp::fig13::print(),
        "fig14" => exp::fig14::print(),
        "table3" => check(exp::table3::print()),
        "cpu_gpu" | "headline" => check(exp::headline::print()),
        "overheads" | "area" | "bce_power" => exp::overheads::print(),
        "ablations" => exp::ablations::print(),
        "extensions" => exp::extensions::print(),
        "serving" => check(exp::serving::print()),
        "csv" => {
            let dir = std::env::args()
                .nth(2)
                .unwrap_or_else(|| "results".to_string());
            match exp::csv::write_all(std::path::Path::new(&dir)) {
                Ok(files) => {
                    for f in files {
                        println!("wrote {dir}/{f}");
                    }
                }
                Err(e) => {
                    eprintln!("csv export failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "all" => {
            exp::fig2::print();
            exp::fig4::print();
            exp::table2::print();
            exp::fig12::print();
            exp::fig13::print();
            exp::fig14::print();
            check(exp::table3::print());
            check(exp::headline::print());
            exp::overheads::print();
            exp::ablations::print();
            exp::extensions::print();
            check(exp::serving::print());
        }
        "-h" | "--help" | "help" => print!("{USAGE}"),
        other => {
            eprintln!("unknown experiment: {other}\n{USAGE}");
            std::process::exit(2);
        }
    }
}
