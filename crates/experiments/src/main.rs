//! The experiments CLI: `experiments <name>` regenerates one table or
//! figure of the BFree paper; `experiments all` regenerates everything.

use bfree_experiments as exp;

const USAGE: &str = "\
usage: experiments [--jobs N] <name>

  fig2       slice access latency/energy breakdown
  fig4       LUT-row design space (standalone / shared / decoupled)
  table2     workload summary (layers, params, mults)
  fig12      Inception-v3 vs Neural Cache (a: layers, b/c: phases, d: energy)
  fig13      VGG-16 vs iso-area Eyeriss (compute cycles)
  fig14      VGG-16 vs memory bandwidth, batch, precision
  table3     LSTM / BERT vs CPU and GPU
  cpu_gpu    CNN comparisons vs CPU and GPU (batch 16)
  overheads  area and power overheads (§V-B)
  headline   all headline numbers in one block
  ablations  design-choice ablations (DESIGN.md §5)
  extensions extension workloads (ResNet-18, GRU) on every device
  serving [--realtime [--metrics]|--conformance]
             multi-tenant serving load sweep (writes results/serving_load_sweep.csv);
             --realtime runs the wall-clock engine instead (throughput/
             latency curves; writes the untracked results/serving_realtime.csv),
             with --metrics also printing the final live-telemetry
             snapshot as OpenMetrics text;
             --conformance replays one trace through both engines and
             fails on any work-counter, outcome, or live-snapshot mismatch
  slo        deterministic SLO burn-rate tracking: virtual-clock
             snapshot sequences per load with multi-window burn rates
             and alert flags (writes the golden results/slo.csv)
  model_swap mixed-version serving: hot-swap the LSTM tenant from an
             int8 to an int4 model artifact mid-run without draining
             the pool (writes results/model_swap.csv)
  models [export|inspect|verify|all] [dir]
             export every Table II workload as a .bfrm model artifact,
             print header/section/LUT summaries and verify checksums +
             byte-for-byte catalog equality (default: all, target/models)
  chaos [--seed N] [--realtime]
             serving under injected faults: severity x resilience-policy
             sweep (default seed 42; writes results/chaos.csv);
             --realtime replays the chaos plan through the wall-clock
             RealtimeEngine and gates it against the virtual-clock
             oracle (no CSV; conformance must agree)
  sdc [--seed N]
             silent-data-corruption sweep: deterministic bit flips in
             LUT rows / resident weights / in-flight operands versus
             protection scheme (none, parity, SECDED), with scrub,
             repair and ECC cost accounting (default seed 42; writes
             results/sdc.csv)
  attribution
             cross-check the observability event stream against the
             aggregate energy/latency models (Fig. 2 / Fig. 13 style)
  critical   reconstruct span trees from recorded runs, print the
             dominant chains and p50/p95/p99 request paths, and gate
             the critical-path stage sums against the run reports
             (zero divergence)
  all        everything above, in paper order
  obs [--format json|csv|chrome|tree] [--tree] [network] [batch]
             run one network with a live recorder and print the event
             trace (default: json, inception-v3, batch 1); the chrome
             format loads in chrome://tracing / Perfetto, and tree
             renders the reconstructed span forest
  csv [dir]  write every figure's data series as CSV (default: results/)
  bench [--quick] [path]
             time the swept experiments serial vs parallel and write
             BENCH_experiments.json (default path)
  perf [--quick] [--check] [--threshold X] [path]
             calibrated wall-clock benchmark of the hot kernels;
             writes BENCH_bfree.json (default path) and diffs
             normalized times against the committed baseline
             (--check fails on any kernel >X slower, default 0.25)

  --jobs N   cap the worker pool (default: BFREE_JOBS or all cores;
             1 forces the serial path — output is identical either way)
";

/// Unwraps an experiment result, exiting with context on failure.
fn check(result: Result<(), exp::ExperimentError>) {
    if let Err(e) = result {
        eprintln!("experiment failed: {e}");
        std::process::exit(1);
    }
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    // `--jobs N` may appear anywhere; strip it before dispatch.
    if let Some(i) = args.iter().position(|a| a == "--jobs" || a == "-j") {
        if i + 1 >= args.len() {
            eprintln!("--jobs requires a value\n{USAGE}");
            std::process::exit(2);
        }
        match args[i + 1].parse::<usize>() {
            Ok(n) if n >= 1 => bfree::par::set_max_jobs(n),
            _ => {
                eprintln!("--jobs expects a positive integer, got '{}'", args[i + 1]);
                std::process::exit(2);
            }
        }
        args.drain(i..=i + 1);
    }
    let arg = args.first().cloned().unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "fig2" => check(exp::fig2::print()),
        "fig4" => check(exp::fig4::print()),
        "table2" => check(exp::table2::print()),
        "fig12" | "fig12a" | "fig12bc" | "fig12d" => check(exp::fig12::print()),
        "fig13" => check(exp::fig13::print()),
        "fig14" => check(exp::fig14::print()),
        "table3" => check(exp::table3::print()),
        "cpu_gpu" | "headline" => check(exp::headline::print()),
        "overheads" | "area" | "bce_power" => check(exp::overheads::print()),
        "ablations" => check(exp::ablations::print()),
        "extensions" => check(exp::extensions::print()),
        "serving" => match args.get(1).map(String::as_str) {
            None => check(exp::serving::print()),
            Some("--realtime") => {
                let metrics = match args.get(2).map(String::as_str) {
                    None => false,
                    Some("--metrics") => true,
                    Some(other) => {
                        eprintln!("unknown serving --realtime argument: {other}\n{USAGE}");
                        std::process::exit(2);
                    }
                };
                check(exp::realtime::print_with_metrics(metrics));
            }
            Some("--conformance") => check(exp::realtime::conformance_print()),
            Some(other) => {
                eprintln!("unknown serving argument: {other}\n{USAGE}");
                std::process::exit(2);
            }
        },
        "slo" => check(exp::slo::print()),
        "model_swap" => check(exp::model_swap::print()),
        "models" => {
            let actions = ["export", "inspect", "verify", "all"];
            let mut rest = args[1..].iter();
            let mut action = "all".to_string();
            let mut dir = exp::models::DEFAULT_DIR.to_string();
            match rest.next() {
                Some(a) if actions.contains(&a.as_str()) => {
                    action = a.clone();
                    if let Some(d) = rest.next() {
                        dir = d.clone();
                    }
                }
                Some(d) if !d.starts_with('-') => dir = d.clone(),
                Some(a) => {
                    eprintln!("unknown models argument: {a}\n{USAGE}");
                    std::process::exit(2);
                }
                None => {}
            }
            if let Some(extra) = rest.next() {
                eprintln!("unexpected models argument: {extra}\n{USAGE}");
                std::process::exit(2);
            }
            check(exp::models::print(&action, std::path::Path::new(&dir)));
        }
        "chaos" => {
            let mut seed = exp::chaos::DEFAULT_SEED;
            let mut realtime = false;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                if a == "--seed" || a == "-s" {
                    match rest.next().map(|v| v.parse::<u64>()) {
                        Some(Ok(n)) => seed = n,
                        _ => {
                            eprintln!("--seed expects an unsigned integer\n{USAGE}");
                            std::process::exit(2);
                        }
                    }
                } else if a == "--realtime" {
                    realtime = true;
                } else {
                    eprintln!("unknown chaos argument: {a}\n{USAGE}");
                    std::process::exit(2);
                }
            }
            if realtime {
                check(exp::chaos::realtime_print(seed));
            } else {
                check(exp::chaos::print(seed));
            }
        }
        "sdc" => {
            let mut seed = exp::sdc::DEFAULT_SEED;
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                if a == "--seed" || a == "-s" {
                    match rest.next().map(|v| v.parse::<u64>()) {
                        Some(Ok(n)) => seed = n,
                        _ => {
                            eprintln!("--seed expects an unsigned integer\n{USAGE}");
                            std::process::exit(2);
                        }
                    }
                } else {
                    eprintln!("unknown sdc argument: {a}\n{USAGE}");
                    std::process::exit(2);
                }
            }
            check(exp::sdc::print(seed));
        }
        "attribution" => check(exp::attribution::print()),
        "critical" => check(exp::critical::print()),
        "obs" => {
            let mut format = "json".to_string();
            let mut positional: Vec<String> = Vec::new();
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                if a == "--format" || a == "-f" {
                    match rest.next() {
                        Some(v) => format = v.clone(),
                        None => {
                            eprintln!("--format requires a value\n{USAGE}");
                            std::process::exit(2);
                        }
                    }
                } else if a == "--tree" {
                    format = "tree".to_string();
                } else {
                    positional.push(a.clone());
                }
            }
            let network = positional
                .first()
                .cloned()
                .unwrap_or_else(|| "inception-v3".to_string());
            let batch = match positional.get(1).map(|b| b.parse::<usize>()) {
                None => 1,
                Some(Ok(n)) if n >= 1 => n,
                Some(_) => {
                    eprintln!("batch expects a positive integer\n{USAGE}");
                    std::process::exit(2);
                }
            };
            check(exp::obs_export::print(&format, &network, batch));
        }
        "csv" => {
            let dir = args
                .get(1)
                .cloned()
                .unwrap_or_else(|| "results".to_string());
            match exp::csv::write_all(std::path::Path::new(&dir)) {
                Ok(files) => {
                    for f in files {
                        println!("wrote {dir}/{f}");
                    }
                }
                Err(e) => {
                    eprintln!("csv export failed: {e}");
                    std::process::exit(1);
                }
            }
        }
        "bench" => {
            let quick = args.iter().any(|a| a == "--quick");
            let path = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with('-'))
                .cloned()
                .unwrap_or_else(|| "BENCH_experiments.json".to_string());
            check(exp::bench::run(std::path::Path::new(&path), quick));
        }
        "perf" => {
            let mut quick = false;
            let mut gate = false;
            let mut threshold = exp::perf::DEFAULT_THRESHOLD;
            let mut path = "BENCH_bfree.json".to_string();
            let mut rest = args[1..].iter();
            while let Some(a) = rest.next() {
                match a.as_str() {
                    "--quick" => quick = true,
                    "--check" => gate = true,
                    "--threshold" | "-t" => match rest.next().map(|v| v.parse::<f64>()) {
                        Some(Ok(x)) if x >= 0.0 => threshold = x,
                        _ => {
                            eprintln!("--threshold expects a non-negative number\n{USAGE}");
                            std::process::exit(2);
                        }
                    },
                    other if !other.starts_with('-') => path = other.to_string(),
                    other => {
                        eprintln!("unknown perf argument: {other}\n{USAGE}");
                        std::process::exit(2);
                    }
                }
            }
            check(exp::perf::run(
                std::path::Path::new(&path),
                quick,
                gate,
                threshold,
            ));
        }
        "all" => {
            check(exp::fig2::print());
            check(exp::fig4::print());
            check(exp::table2::print());
            check(exp::fig12::print());
            check(exp::fig13::print());
            check(exp::fig14::print());
            check(exp::table3::print());
            check(exp::headline::print());
            check(exp::overheads::print());
            check(exp::ablations::print());
            check(exp::extensions::print());
            check(exp::serving::print());
            check(exp::slo::print());
            check(exp::model_swap::print());
            check(exp::models::print(
                "all",
                std::path::Path::new(exp::models::DEFAULT_DIR),
            ));
            check(exp::chaos::print(exp::chaos::DEFAULT_SEED));
            check(exp::sdc::print(exp::sdc::DEFAULT_SEED));
            check(exp::attribution::print());
            check(exp::critical::print());
        }
        "-h" | "--help" | "help" => print!("{USAGE}"),
        other => {
            eprintln!("unknown experiment: {other}\n{USAGE}");
            std::process::exit(2);
        }
    }
}
