//! Fig. 13: layer-wise VGG-16 computation cycles, BFree (one 2.5 MB
//! slice, matmul mode) versus the iso-area Eyeriss configuration
//! (12 x 12 PEs at the same frequency). The paper reports BFree 3.97x
//! faster in computation cycles.

use bfree::prelude::*;
use pim_baselines::RunReport;

use crate::error::ExperimentError;
use crate::Comparison;

/// Result of the Fig. 13 experiment.
#[derive(Debug, Clone)]
pub struct Fig13 {
    /// BFree single-slice report.
    pub bfree: RunReport,
    /// Eyeriss report.
    pub eyeriss: RunReport,
    /// Compute-cycle speedup over all conv layers (paper: 3.97x).
    pub compute_speedup: f64,
    /// Per-layer compute microseconds `(layer, bfree, eyeriss)`.
    pub layer_compute: Vec<(String, f64, f64)>,
}

/// Runs the experiment.
pub fn run() -> Fig13 {
    let net = networks::vgg16();
    let bfree_sim =
        BfreeSimulator::new(BfreeConfig::single_slice().with_conv_dataflow(ConvDataflow::Im2col));
    let eyeriss = EyerissModel::paper_default();
    // The two device models are independent; run them side by side.
    let (ours, theirs) = bfree::par::join(|| bfree_sim.run(&net, 1), || eyeriss.run(&net, 1));

    // Fig. 13 compares computation cycles, so strip the memory phases:
    // take per-layer times minus each model's weight/input shares by
    // using the Compute phase ratio as the global scale and per-layer
    // MACs for the distribution.
    let ours_compute = ours.latency.get(Phase::Compute);
    let theirs_compute = theirs.latency.get(Phase::Compute);

    let per_layer = |report: &RunReport, compute_total: pim_arch::Latency| {
        let total_macs: u64 = report.per_layer.iter().map(|l| l.macs).sum();
        report
            .per_layer
            .iter()
            .filter(|l| l.macs > 0)
            .map(|l| {
                (
                    l.name.clone(),
                    compute_total.microseconds() * l.macs as f64 / total_macs as f64,
                )
            })
            .collect::<Vec<_>>()
    };
    let ours_layers = per_layer(&ours, ours_compute);
    let theirs_layers = per_layer(&theirs, theirs_compute);
    let layer_compute = ours_layers
        .into_iter()
        .zip(theirs_layers)
        .map(|((name, a), (_, b))| (name, a, b))
        .collect();

    Fig13 {
        compute_speedup: theirs_compute.ratio(ours_compute),
        layer_compute,
        bfree: ours,
        eyeriss: theirs,
    }
}

/// Comparison rows against the paper.
pub fn comparisons(result: &Fig13) -> Vec<Comparison> {
    vec![Comparison::new(
        "VGG-16 compute speedup vs iso-area Eyeriss",
        3.97,
        result.compute_speedup,
        "x",
    )]
}

/// Prints the experiment.
pub fn print() -> Result<(), ExperimentError> {
    let result = run();
    println!("\n== Fig. 13: VGG-16 computation time per layer (us, one slice) ==");
    println!(
        "{:<12} {:>12} {:>12} {:>8}",
        "layer", "BFree", "Eyeriss", "ratio"
    );
    for (name, ours, theirs) in result.layer_compute.iter().take(16) {
        println!(
            "{:<12} {:>12.1} {:>12.1} {:>7.2}x",
            name,
            ours,
            theirs,
            theirs / ours
        );
    }
    println!(
        "  execution share of BFree layer time: ~{:.0}% (paper: ~10%, loads dominate)",
        result.bfree.latency.fraction(Phase::Compute) * 100.0
    );
    crate::print_comparisons("Fig. 13 vs paper", &comparisons(&result));
    Ok(())
}
