//! Model artifact tooling: export, inspect and verify `bfree-model`
//! artifacts for every Table II workload.
//!
//! `experiments models export` writes one `.bfrm` artifact per
//! evaluation network (seeded weight payloads, so even the 324M-param
//! BERT-large artifact stays in the kilobytes); `inspect` prints each
//! artifact's header, section sizes and LUT inventory; `verify`
//! re-parses every file (magic, bounds, footer checksum), re-encodes the
//! workload from the in-repo catalog and demands byte equality — any
//! drift between the checked-in catalog and an exported artifact fails
//! loudly, as does any corrupted byte.

use std::fs;
use std::path::{Path, PathBuf};

use bfree::BfreeConfig;
use bfree_model::{encode_kind, ArtifactSpec, ModelArtifact};
use pim_lut::LutKind;
use pim_nn::networks::CATALOG;
use pim_nn::request::NetworkKind;

use crate::error::ExperimentError;

/// Default artifact directory (build output, not checked in).
pub const DEFAULT_DIR: &str = "target/models";

/// The Table II workloads, in the paper's row order.
pub fn table2_kinds() -> Vec<NetworkKind> {
    CATALOG
        .iter()
        .filter(|e| e.paper.is_some())
        .map(|e| e.kind)
        .collect()
}

/// The artifact file name for a workload (e.g. `bert-base.bfrm`).
pub fn artifact_file_name(kind: NetworkKind) -> String {
    let slug: String = kind
        .label()
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() {
                c.to_ascii_lowercase()
            } else {
                '-'
            }
        })
        .collect();
    format!("{slug}.bfrm")
}

fn artifact_path(dir: &Path, kind: NetworkKind) -> PathBuf {
    dir.join(artifact_file_name(kind))
}

/// Exports every Table II workload into `dir` and returns
/// `(file name, bytes written)` per artifact.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn export(dir: &Path) -> Result<Vec<(String, usize)>, ExperimentError> {
    fs::create_dir_all(dir)?;
    let config = BfreeConfig::paper_default();
    let mut written = Vec::new();
    for kind in table2_kinds() {
        let bytes = encode_kind(kind, &config, &ArtifactSpec::default());
        fs::write(artifact_path(dir, kind), &bytes)?;
        written.push((artifact_file_name(kind), bytes.len()));
    }
    Ok(written)
}

/// One inspected artifact's summary.
#[derive(Debug, Clone)]
pub struct ArtifactSummary {
    /// Artifact file name.
    pub file: String,
    /// The network name stored in the header.
    pub network: String,
    /// Registry model version.
    pub model_version: u64,
    /// Layer record count.
    pub layers: usize,
    /// Total quantized weight bytes (inline or seed-regenerated).
    pub weight_bytes: u64,
    /// LUT segments as (multiply, divide, activation) counts.
    pub lut_segments: (usize, usize, usize),
    /// Artifact file size in bytes.
    pub file_bytes: usize,
    /// The FNV-1a 64 footer checksum.
    pub checksum: u64,
}

/// Parses every exported artifact in `dir` into a summary row.
///
/// # Errors
///
/// Filesystem errors, and [`ExperimentError::Model`] if any artifact
/// fails validation.
pub fn inspect(dir: &Path) -> Result<Vec<ArtifactSummary>, ExperimentError> {
    let mut rows = Vec::new();
    for kind in table2_kinds() {
        let bytes = fs::read(artifact_path(dir, kind))?;
        let artifact = ModelArtifact::parse(&bytes)?;
        let mut mult = 0usize;
        let mut div = 0usize;
        let mut act = 0usize;
        for segment in artifact.lut_segments() {
            match segment.kind() {
                LutKind::Multiply => mult += 1,
                LutKind::Divide => div += 1,
                LutKind::Activation => act += 1,
            }
        }
        rows.push(ArtifactSummary {
            file: artifact_file_name(kind),
            network: artifact.network_name().to_string(),
            model_version: artifact.model_version(),
            layers: artifact.layer_count(),
            weight_bytes: artifact.total_weight_bytes(),
            lut_segments: (mult, div, act),
            file_bytes: bytes.len(),
            checksum: artifact.checksum(),
        });
    }
    Ok(rows)
}

/// Verifies every exported artifact in `dir`: full parse (bounds +
/// checksum), then byte-for-byte equality against a fresh encode of the
/// same catalog workload.
///
/// # Errors
///
/// Filesystem errors, [`ExperimentError::Model`] on validation failure,
/// and [`ExperimentError::MissingData`] when an artifact does not match
/// its re-encode.
pub fn verify(dir: &Path) -> Result<(), ExperimentError> {
    let config = BfreeConfig::paper_default();
    for kind in table2_kinds() {
        let bytes = fs::read(artifact_path(dir, kind))?;
        ModelArtifact::parse(&bytes)?;
        let expected = encode_kind(kind, &config, &ArtifactSpec::default());
        if bytes != expected {
            return Err(ExperimentError::MissingData(format!(
                "{} drifted from the catalog: {} bytes on disk vs {} re-encoded",
                artifact_file_name(kind),
                bytes.len(),
                expected.len()
            )));
        }
    }
    Ok(())
}

/// Runs `export`, `inspect`, `verify` or (default) all three, printing
/// a summary table.
///
/// # Errors
///
/// Propagates each stage's errors.
pub fn print(action: &str, dir: &Path) -> Result<(), ExperimentError> {
    let all = action == "all";
    println!("\n== Model artifacts ({}) ==", dir.display());
    if all || action == "export" {
        for (file, size) in export(dir)? {
            println!("exported {file} ({size} bytes)");
        }
    }
    if all || action == "inspect" {
        println!(
            "{:<20} {:<14} {:>3} {:>7} {:>13} {:>12} {:>10} {:>18}",
            "file",
            "network",
            "ver",
            "layers",
            "weight bytes",
            "luts m/d/a",
            "file size",
            "checksum"
        );
        for row in inspect(dir)? {
            println!(
                "{:<20} {:<14} {:>3} {:>7} {:>13} {:>5}/{}/{} {:>12} {:>#18x}",
                row.file,
                row.network,
                row.model_version,
                row.layers,
                row.weight_bytes,
                row.lut_segments.0,
                row.lut_segments.1,
                row.lut_segments.2,
                row.file_bytes,
                row.checksum,
            );
        }
    }
    if all || action == "verify" {
        verify(dir)?;
        println!(
            "verified: all {} artifacts parse, checksum and match a fresh encode",
            table2_kinds().len()
        );
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("bfree_models_{tag}"))
    }

    #[test]
    fn export_inspect_verify_round_trip() {
        let dir = tmp_dir("roundtrip");
        let written = export(&dir).unwrap();
        assert_eq!(written.len(), 5);
        let rows = inspect(&dir).unwrap();
        assert_eq!(rows.len(), 5);
        // Table II order and per-network sanity.
        assert_eq!(rows[0].network, "Inception-v3");
        assert_eq!(rows[4].network, "BERT-large");
        for row in &rows {
            assert!(row.weight_bytes > 0, "{}", row.file);
            assert!(row.lut_segments.0 >= 1, "{}: multiply ROM", row.file);
        }
        verify(&dir).unwrap();
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn verify_rejects_a_corrupted_artifact() {
        let dir = tmp_dir("corrupt");
        export(&dir).unwrap();
        let path = dir.join(artifact_file_name(NetworkKind::Vgg16));
        let mut bytes = fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(
            verify(&dir).unwrap_err(),
            ExperimentError::Model(_)
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn file_names_are_stable_slugs() {
        assert_eq!(artifact_file_name(NetworkKind::BertBase), "bert-base.bfrm");
        assert_eq!(artifact_file_name(NetworkKind::Vgg16), "vgg-16.bfrm");
    }
}
