//! # bfree-experiments
//!
//! The reproduction harness: one function per table and figure of the
//! BFree paper's evaluation (§V). Each experiment returns a structured
//! result (so the integration suite can assert the paper's shape holds)
//! and knows how to print itself as a paper-vs-measured table.
//!
//! Run everything with `cargo run -p bfree-experiments --release -- all`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod attribution;
pub mod bench;
pub mod chaos;
pub mod critical;
pub mod csv;
pub mod error;
pub mod extensions;
pub mod fig12;
pub mod fig13;
pub mod fig14;
pub mod fig2;
pub mod fig4;
pub mod headline;
pub mod model_swap;
pub mod models;
pub mod obs_export;
pub mod overheads;
pub mod perf;
pub mod realtime;
pub mod sdc;
pub mod serving;
pub mod slo;
pub mod table2;
pub mod table3;

pub use error::ExperimentError;

/// A paper-reported value next to our measured value.
#[derive(Debug, Clone)]
pub struct Comparison {
    /// What this row measures.
    pub label: String,
    /// The paper's value (in `unit`).
    pub paper: f64,
    /// Our measured value.
    pub measured: f64,
    /// Unit string for display.
    pub unit: &'static str,
}

impl Comparison {
    /// Creates a comparison row.
    pub fn new(label: impl Into<String>, paper: f64, measured: f64, unit: &'static str) -> Self {
        Comparison {
            label: label.into(),
            paper,
            measured,
            unit,
        }
    }

    /// measured / paper.
    pub fn ratio(&self) -> f64 {
        self.measured / self.paper
    }

    /// Whether the measured value is within `band` (multiplicative) of
    /// the paper's.
    pub fn within(&self, band: f64) -> bool {
        let r = self.ratio();
        r >= 1.0 / band && r <= band
    }
}

/// Prints a block of comparisons as an aligned table.
pub fn print_comparisons(title: &str, rows: &[Comparison]) {
    println!("\n== {title} ==");
    println!(
        "{:<44} {:>12} {:>12} {:>8}",
        "metric", "paper", "measured", "x/paper"
    );
    for row in rows {
        println!(
            "{:<44} {:>9.3} {} {:>9.3} {} {:>7.2}x",
            row.label,
            row.paper,
            row.unit,
            row.measured,
            row.unit,
            row.ratio()
        );
    }
}
