//! Mixed-version serving: an atomic model hot-swap under live traffic.
//!
//! The LSTM-TIMIT tenant starts at version 1 (uniform int8) and is
//! hot-swapped mid-horizon to version 2 — an int4 quantization of the
//! same network, lowered from a real `bfree-model` artifact through
//! [`bfree_serve::ModelRegistry::spec_from_artifact`] — while BERT-base
//! traffic keeps flowing and the slice pool is never drained. In-flight
//! dispatches retire under the version that launched them; everything
//! queued or arriving after the swap point dispatches under v2, whose
//! halved weight footprint shrinks the tenant's slice demand. The sweep
//! is virtual-clock and seeded: `results/model_swap.csv` is
//! bit-identical across runs and at any `--jobs`.

use bfree::{BfreeConfig, PrecisionPolicy};
use bfree_model::{encode_kind, ArtifactSpec, ModelArtifact};
use bfree_serve::{
    ModelRegistry, OpenLoopDriver, ServeConfig, ServingSim, ServingSummary, TenantSpec,
};
use pim_bce::Precision;
use pim_nn::request::NetworkKind;

use crate::error::ExperimentError;

/// Seed for the sweep's arrival process (matches the serving sweep).
const SEED: u64 = 0xBF_EE;
/// Virtual time simulated per load point.
const HORIZON_NS: u64 = 200_000_000;
/// The deterministic swap point: mid-horizon.
const SWAP_NS: u64 = HORIZON_NS / 2;
/// LSTM-TIMIT arrival rate at load 1.0 (requests/s).
const LSTM_BASE_RPS: f64 = 2_000.0;
/// BERT-base arrival rate at load 1.0 (requests/s).
const BERT_BASE_RPS: f64 = 50.0;

/// One measured load point of the mixed-version sweep.
#[derive(Debug, Clone)]
pub struct SwapPoint {
    /// Load multiplier applied to both base rates.
    pub load: f64,
    /// Offered LSTM-TIMIT rate (requests/s).
    pub lstm_rps: f64,
    /// Offered BERT-base rate (requests/s).
    pub bert_rps: f64,
    /// LSTM slice demand before the swap (version 1, int8).
    pub v1_demand_slices: usize,
    /// LSTM slice demand after the swap (version 2, int4).
    pub v2_demand_slices: usize,
    /// The registry's final version for the LSTM slot.
    pub final_version: u64,
    /// The run's telemetry summary.
    pub summary: ServingSummary,
}

/// The sweep result.
#[derive(Debug, Clone)]
pub struct SwapSweep {
    /// The version-2 artifact's size in bytes.
    pub artifact_bytes: usize,
    /// Measured points, in ascending load order.
    pub points: Vec<SwapPoint>,
}

fn config() -> ServeConfig {
    ServeConfig {
        max_batch: 8,
        batch_window_ns: 100_000,
        queue_capacity: 512,
        timeout_ns: Some(50_000_000),
        ..ServeConfig::default()
    }
}

fn tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec::new("lstm-timit", NetworkKind::LstmTimit),
        TenantSpec::new("bert-base", NetworkKind::BertBase),
    ]
}

/// Encodes the version-2 model artifact: the same LSTM quantized to
/// uniform int4.
pub fn v2_artifact() -> Vec<u8> {
    encode_kind(
        NetworkKind::LstmTimit,
        &BfreeConfig::paper_default(),
        &ArtifactSpec {
            model_version: 2,
            precision: PrecisionPolicy::Uniform(Precision::Int4),
            ..ArtifactSpec::default()
        },
    )
}

/// Runs the mixed-version sweep. Load points fan out on the
/// `bfree::par` pool and collect in load order, so the CSV matches the
/// serial path byte-for-byte.
///
/// # Errors
///
/// Propagates [`ExperimentError::Serve`] and artifact parse failures
/// (neither can happen for the constants above).
pub fn run() -> Result<SwapSweep, ExperimentError> {
    let artifact_bytes = v2_artifact();
    let loads = vec![0.5, 1.0, 2.0];
    let points = {
        let artifact_bytes = &artifact_bytes;
        bfree::par::try_par_map(loads, move |load| -> Result<SwapPoint, ExperimentError> {
            let artifact = ModelArtifact::parse(artifact_bytes)?;
            let v2_spec = ModelRegistry::spec_from_artifact("lstm-timit", &artifact)?;
            let mut sim = ServingSim::new(config(), tenants())?;
            let v1_demand_slices = sim.tenants()[0].demand_slices();
            sim.schedule_model_swap(0, SWAP_NS, artifact.model_version(), v2_spec)?;
            let mut driver =
                OpenLoopDriver::new(SEED, vec![LSTM_BASE_RPS * load, BERT_BASE_RPS * load]);
            driver.drive(&mut sim, HORIZON_NS);
            let summary = sim.run_to_idle().summary();
            debug_assert_eq!(sim.work_conservation_violations(), 0);
            Ok(SwapPoint {
                load,
                lstm_rps: LSTM_BASE_RPS * load,
                bert_rps: BERT_BASE_RPS * load,
                v1_demand_slices,
                v2_demand_slices: sim.tenants()[0].demand_slices(),
                final_version: sim.registry().current(0).version,
                summary,
            })
        })?
    };
    Ok(SwapSweep {
        artifact_bytes: artifact_bytes.len(),
        points,
    })
}

/// CSV header for [`csv_rows`].
pub const CSV_HEADER: [&str; 13] = [
    "load",
    "lstm_rps",
    "bert_rps",
    "swap_ms",
    "v1_demand_slices",
    "v2_demand_slices",
    "final_version",
    "submitted",
    "completed",
    "rejected",
    "p50_ms",
    "p99_ms",
    "throughput_rps",
];

/// The sweep as CSV rows matching [`CSV_HEADER`].
pub fn csv_rows(sweep: &SwapSweep) -> Vec<Vec<String>> {
    sweep
        .points
        .iter()
        .map(|p| {
            vec![
                format!("{:.2}", p.load),
                format!("{:.0}", p.lstm_rps),
                format!("{:.0}", p.bert_rps),
                format!("{:.1}", SWAP_NS as f64 * 1e-6),
                p.v1_demand_slices.to_string(),
                p.v2_demand_slices.to_string(),
                p.final_version.to_string(),
                p.summary.submitted.to_string(),
                p.summary.completed.to_string(),
                p.summary.rejected.to_string(),
                format!("{:.4}", p.summary.p50_latency_ns as f64 * 1e-6),
                format!("{:.4}", p.summary.p99_latency_ns as f64 * 1e-6),
                format!("{:.1}", p.summary.throughput_rps),
            ]
        })
        .collect()
}

/// Prints the sweep and writes `results/model_swap.csv`.
///
/// # Errors
///
/// Propagates [`run`]'s errors and CSV write failures.
pub fn print() -> Result<(), ExperimentError> {
    let sweep = run()?;
    println!("\n== Mixed-version serving: LSTM int8 -> int4 hot-swap at 100 ms ==");
    println!(
        "v2 artifact: {} bytes (seeded payload), published through the registry mid-run",
        sweep.artifact_bytes
    );
    println!(
        "{:>5} {:>10} {:>11} {:>11} {:>9} {:>9} {:>9} {:>9}",
        "load", "submitted", "v1 slices", "v2 slices", "rejected", "p50 ms", "p99 ms", "req/s"
    );
    for p in &sweep.points {
        println!(
            "{:>5.2} {:>10} {:>11} {:>11} {:>9} {:>9.3} {:>9.3} {:>9.1}",
            p.load,
            p.summary.submitted,
            p.v1_demand_slices,
            p.v2_demand_slices,
            p.summary.rejected,
            p.summary.p50_latency_ns as f64 * 1e-6,
            p.summary.p99_latency_ns as f64 * 1e-6,
            p.summary.throughput_rps,
        );
    }
    let path = std::path::Path::new("results").join("model_swap.csv");
    crate::csv::write_rows(&path, &CSV_HEADER, &csv_rows(&sweep))?;
    println!("\nwrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_deterministic_and_every_swap_lands() {
        let a = run().unwrap();
        let b = run().unwrap();
        assert_eq!(csv_rows(&a), csv_rows(&b), "sweep must be bit-identical");
        for p in &a.points {
            assert_eq!(p.final_version, 2, "the swap must publish v2");
            assert!(
                p.v2_demand_slices <= p.v1_demand_slices,
                "int4 weights must not grow the slice footprint"
            );
            assert_eq!(
                p.summary.completed + p.summary.rejected,
                p.summary.submitted
            );
        }
    }

    #[test]
    fn serial_and_parallel_paths_agree() {
        // The golden is gated at any --jobs; force the serial path and
        // compare against the pool's default fan-out. Narrowing the
        // global job cap is safe to race with other tests — it only
        // makes their fan-out serial, never changes results.
        let parallel = csv_rows(&run().unwrap());
        bfree::par::set_max_jobs(1);
        let serial = csv_rows(&run().unwrap());
        bfree::par::set_max_jobs(0);
        assert_eq!(parallel, serial);
    }
}
