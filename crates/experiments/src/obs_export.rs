//! Event-trace export: run one network with a live [`RingRecorder`] and
//! render the captured stream as JSON, CSV, a Chrome `trace_event` file
//! loadable in `chrome://tracing` / Perfetto, or an indented span tree
//! reconstructed by [`TraceForest`].

use bfree::prelude::*;
use bfree_obs::{to_chrome_trace, to_csv, to_json, ExportFormat, RingRecorder, TraceForest};
use pim_nn::request::NetworkKind;

use crate::error::ExperimentError;

/// Events kept per trace; enough for every evaluation network at batch
/// 1 (Inception-v3 emits ~2k events).
const TRACE_CAPACITY: usize = 65_536;
/// Children rendered per node in the `tree` format before eliding.
const TREE_MAX_CHILDREN: usize = 16;

/// Runs `network` at `batch` under a fresh ring recorder.
fn record(network: &str, batch: usize) -> Result<RingRecorder, ExperimentError> {
    let kind = NetworkKind::parse(network)?;
    let recorder = RingRecorder::new(TRACE_CAPACITY);
    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    sim.run_recorded(&kind.instantiate(), batch, &recorder);
    if recorder.events().is_empty() {
        return Err(ExperimentError::MissingData(format!(
            "no events recorded for {network}"
        )));
    }
    Ok(recorder)
}

/// Warns on stderr when the ring evicted events, so the warning never
/// corrupts a trace being piped from stdout into a file.
fn warn_dropped(recorder: &RingRecorder) {
    let dropped = recorder.dropped();
    if dropped > 0 {
        eprintln!(
            "warning: ring capacity {TRACE_CAPACITY} exceeded, {dropped} events dropped; \
             the exported trace is truncated"
        );
    }
}

/// Runs `network` at `batch` under a ring recorder and renders the
/// event stream in `format`.
///
/// # Errors
///
/// [`ExperimentError::UnknownNetwork`] for an unrecognized network
/// name; [`ExperimentError::MissingData`] if the run emitted no events
/// (instrumentation regression).
pub fn run(format: ExportFormat, network: &str, batch: usize) -> Result<String, ExperimentError> {
    let recorder = record(network, batch)?;
    let events = recorder.events();
    Ok(match format {
        ExportFormat::Json => to_json(&events).to_string(),
        ExportFormat::Csv => to_csv(&events),
        ExportFormat::Chrome => to_chrome_trace(&events).to_string(),
    })
}

/// Runs `network` at `batch` and renders the reconstructed span forest
/// as an indented tree with per-span extent and self-time shares.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_tree(network: &str, batch: usize) -> Result<String, ExperimentError> {
    let recorder = record(network, batch)?;
    Ok(TraceForest::from_ring(&recorder).render_text(TREE_MAX_CHILDREN))
}

/// CLI entry: parses the format label (`json`, `csv`, `chrome` or
/// `tree`) and prints the rendered trace to stdout; a truncated ring
/// adds a warning on stderr.
///
/// # Errors
///
/// [`ExperimentError::Obs`] for an unknown format label, plus
/// everything [`run`] returns.
pub fn print(format_label: &str, network: &str, batch: usize) -> Result<(), ExperimentError> {
    if format_label == "tree" {
        let recorder = record(network, batch)?;
        warn_dropped(&recorder);
        println!(
            "{}",
            TraceForest::from_ring(&recorder).render_text(TREE_MAX_CHILDREN)
        );
        return Ok(());
    }
    let format: ExportFormat = format_label.parse()?;
    let recorder = record(network, batch)?;
    warn_dropped(&recorder);
    let events = recorder.events();
    let rendered = match format {
        ExportFormat::Json => to_json(&events).to_string(),
        ExportFormat::Csv => to_csv(&events),
        ExportFormat::Chrome => to_chrome_trace(&events).to_string(),
    };
    println!("{rendered}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_export_contains_layer_spans() {
        let text = run(ExportFormat::Json, "lstm-timit", 1).unwrap();
        assert!(text.contains("\"name\":\"layer\""));
        assert!(text.contains("\"subsystem\":\"exec\""));
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let text = run(ExportFormat::Csv, "lstm-timit", 1).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "subsystem,kind,name,detail,component,time_ns,dur_ns,value,unit"
        );
        assert!(lines.count() > 10);
    }

    #[test]
    fn chrome_export_is_loadable_shape() {
        let text = run(ExportFormat::Chrome, "lstm-timit", 1).unwrap();
        let value = bfree_obs::JsonValue::parse(&text).unwrap();
        let events = value
            .get("traceEvents")
            .and_then(bfree_obs::JsonValue::as_array)
            .unwrap();
        assert!(!events.is_empty());
    }

    #[test]
    fn tree_export_renders_a_balanced_run_tree() {
        let text = run_tree("lstm-timit", 1).unwrap();
        assert!(text.contains("run"), "missing root span:\n{text}");
        assert!(
            text.contains("configure"),
            "missing configure child:\n{text}"
        );
        assert!(
            !text.contains("warning:"),
            "a healthy trace must reconstruct without issues:\n{text}"
        );
    }

    #[test]
    fn unknown_format_is_a_typed_error() {
        let err = print("yaml", "lstm-timit", 1).unwrap_err();
        assert!(matches!(err, ExperimentError::Obs(_)), "got {err:?}");
    }

    #[test]
    fn unknown_network_is_a_typed_error() {
        let err = run(ExportFormat::Json, "alexnet", 1).unwrap_err();
        assert!(matches!(err, ExperimentError::UnknownNetwork(_)));
    }
}
