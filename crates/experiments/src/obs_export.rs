//! Event-trace export: run one network with a live [`RingRecorder`] and
//! render the captured stream as JSON, CSV, or a Chrome `trace_event`
//! file loadable in `chrome://tracing` / Perfetto.

use bfree::prelude::*;
use bfree_obs::{to_chrome_trace, to_csv, to_json, ExportFormat, RingRecorder};
use pim_nn::request::NetworkKind;

use crate::error::ExperimentError;

/// Events kept per trace; enough for every evaluation network at batch
/// 1 (Inception-v3 emits ~2k events).
const TRACE_CAPACITY: usize = 65_536;

/// Runs `network` at `batch` under a ring recorder and renders the
/// event stream in `format`.
///
/// # Errors
///
/// [`ExperimentError::UnknownNetwork`] for an unrecognized network
/// name; [`ExperimentError::MissingData`] if the run emitted no events
/// (instrumentation regression).
pub fn run(format: ExportFormat, network: &str, batch: usize) -> Result<String, ExperimentError> {
    let kind = NetworkKind::parse(network)?;
    let recorder = RingRecorder::new(TRACE_CAPACITY);
    let sim = BfreeSimulator::new(BfreeConfig::paper_default());
    sim.run_recorded(&kind.instantiate(), batch, &recorder);
    let events = recorder.events();
    if events.is_empty() {
        return Err(ExperimentError::MissingData(format!(
            "no events recorded for {network}"
        )));
    }
    Ok(match format {
        ExportFormat::Json => to_json(&events).to_string(),
        ExportFormat::Csv => to_csv(&events),
        ExportFormat::Chrome => to_chrome_trace(&events).to_string(),
    })
}

/// CLI entry: parses the format label and prints the rendered trace to
/// stdout.
///
/// # Errors
///
/// [`ExperimentError::Obs`] for an unknown format label, plus
/// everything [`run`] returns.
pub fn print(format_label: &str, network: &str, batch: usize) -> Result<(), ExperimentError> {
    let format: ExportFormat = format_label.parse()?;
    println!("{}", run(format, network, batch)?);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_export_contains_layer_spans() {
        let text = run(ExportFormat::Json, "lstm-timit", 1).unwrap();
        assert!(text.contains("\"name\":\"layer\""));
        assert!(text.contains("\"subsystem\":\"exec\""));
    }

    #[test]
    fn csv_export_has_header_and_rows() {
        let text = run(ExportFormat::Csv, "lstm-timit", 1).unwrap();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            "subsystem,kind,name,detail,component,time_ns,dur_ns,value,unit"
        );
        assert!(lines.count() > 10);
    }

    #[test]
    fn chrome_export_is_loadable_shape() {
        let text = run(ExportFormat::Chrome, "lstm-timit", 1).unwrap();
        let value = bfree_obs::JsonValue::parse(&text).unwrap();
        let events = value
            .get("traceEvents")
            .and_then(bfree_obs::JsonValue::as_array)
            .unwrap();
        assert!(!events.is_empty());
    }

    #[test]
    fn unknown_format_is_a_typed_error() {
        let err = print("yaml", "lstm-timit", 1).unwrap_err();
        assert!(matches!(err, ExperimentError::Obs(_)), "got {err:?}");
    }

    #[test]
    fn unknown_network_is_a_typed_error() {
        let err = run(ExportFormat::Json, "alexnet", 1).unwrap_err();
        assert!(matches!(err, ExperimentError::UnknownNetwork(_)));
    }
}
