//! Service-level-objective evaluation with multi-window burn rates.
//!
//! A burn rate is the ratio between the error-budget consumption rate
//! and the rate that would exhaust the budget exactly at the end of
//! the compliance period: `burn = bad_fraction / (1 - target)`. Burn
//! 1.0 spends the budget on schedule; burn 14.4 exhausts a 30-day
//! budget in ~2 days. Alerting on a *pair* of windows — a short one
//! for responsiveness and a long one to reject blips — is the
//! standard multi-window construction: the alert fires only when both
//! windows burn hot, so a one-batch latency spike does not page while
//! a sustained regression pages quickly.
//!
//! [`SloTracker`] consumes the cumulative [`TelemetrySnapshot`]
//! sequence the live plane publishes and evaluates two objectives:
//!
//! * **Latency** — the fraction of completions meeting the latency
//!   objective (the snapshot's exact `good` counters) must stay above
//!   `latency_target`.
//! * **Availability** — the fraction of terminally-settled requests
//!   that completed (vs. rejected/shed) must stay above
//!   `availability_target`.
//!
//! Everything is integer-counter arithmetic over snapshot deltas, so
//! the tracker is deterministic: the virtual-clock oracle's golden
//! snapshot sequence yields a golden alert sequence.

use std::collections::VecDeque;

use crate::live::TelemetrySnapshot;

/// The objectives and alert windows an [`SloTracker`] evaluates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSpec {
    /// Fraction of completions that must meet the latency objective
    /// (e.g. 0.99). The objective itself is baked into the snapshots'
    /// `good` counters.
    pub latency_target: f64,
    /// Fraction of settled requests that must complete (e.g. 0.999).
    pub availability_target: f64,
    /// Short (fast-burn) alert window, in snapshot-clock nanoseconds.
    pub short_window_ns: u64,
    /// Long (slow-burn) alert window, in snapshot-clock nanoseconds.
    pub long_window_ns: u64,
    /// Burn-rate threshold the short window must exceed to alert
    /// (14.4 is the classic 2%-of-budget-in-an-hour pace).
    pub fast_burn: f64,
    /// Burn-rate threshold the long window must exceed to alert.
    pub slow_burn: f64,
}

impl Default for SloSpec {
    fn default() -> Self {
        SloSpec {
            latency_target: 0.99,
            availability_target: 0.999,
            short_window_ns: 50_000_000,
            long_window_ns: 250_000_000,
            fast_burn: 14.4,
            slow_burn: 6.0,
        }
    }
}

/// Cumulative counters distilled from one snapshot, kept as window
/// anchors.
#[derive(Debug, Clone, Copy)]
struct Point {
    up_to_ns: u64,
    completed: u64,
    good: u64,
    rejected: u64,
}

/// One objective's evaluation at one snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurnRates {
    /// Burn rate over the short window.
    pub short: f64,
    /// Burn rate over the long window.
    pub long: f64,
    /// Whether both windows exceed their thresholds.
    pub alert: bool,
}

/// The tracker's verdict for one snapshot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloStatus {
    /// Snapshot clock this status evaluates.
    pub up_to_ns: u64,
    /// Latency-objective burn rates (good-latency fraction).
    pub latency: BurnRates,
    /// Availability-objective burn rates (completion fraction).
    pub availability: BurnRates,
}

/// Evaluates multi-window burn-rate alerts over a cumulative snapshot
/// sequence.
///
/// ```
/// use bfree_obs::{SloSpec, SloTracker, TelemetrySnapshot};
///
/// let mut tracker = SloTracker::new(SloSpec::default());
/// let status = tracker.observe(&TelemetrySnapshot::empty());
/// assert!(!status.latency.alert);
/// ```
#[derive(Debug, Clone)]
pub struct SloTracker {
    spec: SloSpec,
    history: VecDeque<Point>,
}

impl SloTracker {
    /// A tracker with no history yet.
    pub fn new(spec: SloSpec) -> Self {
        SloTracker {
            spec,
            history: VecDeque::new(),
        }
    }

    /// The spec this tracker evaluates.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// Folds the next cumulative snapshot and returns the current
    /// status. Snapshots must arrive in non-decreasing `up_to_ns`
    /// order (they do: both engines publish monotonically).
    pub fn observe(&mut self, snapshot: &TelemetrySnapshot) -> SloStatus {
        let point = Point {
            up_to_ns: snapshot.up_to_ns,
            completed: snapshot.completed(),
            good: snapshot.good(),
            rejected: snapshot.rejected(),
        };
        self.history.push_back(point);
        // Keep one anchor at or beyond the long window so deltas can
        // always span it; everything older is unreachable.
        let horizon = point.up_to_ns.saturating_sub(self.spec.long_window_ns);
        while self
            .history
            .get(1)
            .is_some_and(|second| second.up_to_ns <= horizon)
        {
            self.history.pop_front();
        }

        let latency = self.burn(point, self.spec.latency_target, |delta| {
            (
                delta.completed,
                delta.completed - delta.good.min(delta.completed),
            )
        });
        let availability = self.burn(point, self.spec.availability_target, |delta| {
            (delta.completed + delta.rejected, delta.rejected)
        });
        SloStatus {
            up_to_ns: point.up_to_ns,
            latency,
            availability,
        }
    }

    /// Burn rates for one objective: `split` maps a counter delta to
    /// `(events, bad_events)`.
    fn burn(&self, now: Point, target: f64, split: impl Fn(Point) -> (u64, u64)) -> BurnRates {
        let short = self.window_burn(now, self.spec.short_window_ns, target, &split);
        let long = self.window_burn(now, self.spec.long_window_ns, target, &split);
        BurnRates {
            short,
            long,
            alert: short >= self.spec.fast_burn && long >= self.spec.slow_burn,
        }
    }

    fn window_burn(
        &self,
        now: Point,
        window_ns: u64,
        target: f64,
        split: &impl Fn(Point) -> (u64, u64),
    ) -> f64 {
        let start_ns = now.up_to_ns.saturating_sub(window_ns);
        // The anchor is the newest point at or before the window start:
        // the delta from it covers at least the whole window.
        let anchor = self
            .history
            .iter()
            .rev()
            .find(|p| p.up_to_ns <= start_ns)
            .copied()
            .unwrap_or(Point {
                up_to_ns: 0,
                completed: 0,
                good: 0,
                rejected: 0,
            });
        let delta = Point {
            up_to_ns: now.up_to_ns - anchor.up_to_ns,
            completed: now.completed - anchor.completed,
            good: now.good - anchor.good,
            rejected: now.rejected - anchor.rejected,
        };
        let (events, bad) = split(delta);
        if events == 0 {
            return 0.0;
        }
        let bad_fraction = bad as f64 / events as f64;
        let budget = 1.0 - target;
        if budget <= 0.0 {
            // A 100% target has no budget: any badness is infinite burn.
            if bad > 0 {
                f64::INFINITY
            } else {
                0.0
            }
        } else {
            bad_fraction / budget
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A cumulative snapshot with one tenant holding the given counters.
    fn snap(up_to_ns: u64, completed: u64, good: u64, rejected: u64) -> TelemetrySnapshot {
        let mut acc = crate::live::LiveAccumulator::new(1, 1, 1 << 40, 1_000_000).unwrap();
        for i in 0..completed {
            // Good completions sit below the objective, bad ones above.
            let latency = if i < good { 500 } else { 2_000_000 };
            acc.observe(crate::live::LiveEvent {
                metric: crate::live::LiveMetric::Latency,
                tenant: 0,
                value: latency,
                time_ns: 0,
                id: i,
            });
        }
        for i in 0..rejected {
            acc.observe(crate::live::LiveEvent {
                metric: crate::live::LiveMetric::Rejected,
                tenant: 0,
                value: 0,
                time_ns: 0,
                id: i,
            });
        }
        acc.snapshot(0, up_to_ns, 0, 0.0, 0, &["t".to_string()])
    }

    fn spec() -> SloSpec {
        SloSpec {
            latency_target: 0.9,
            availability_target: 0.99,
            short_window_ns: 100,
            long_window_ns: 500,
            fast_burn: 5.0,
            slow_burn: 2.0,
        }
    }

    #[test]
    fn healthy_traffic_never_alerts() {
        let mut tracker = SloTracker::new(spec());
        for step in 1..=20u64 {
            let status = tracker.observe(&snap(step * 50, step * 100, step * 100, 0));
            assert!(!status.latency.alert, "step {step}");
            assert!(!status.availability.alert, "step {step}");
            assert_eq!(status.latency.short, 0.0);
        }
    }

    #[test]
    fn sustained_badness_alerts_on_both_windows() {
        let mut tracker = SloTracker::new(spec());
        // Everything misses the objective: bad_fraction 1.0, burn 10
        // with a 0.9 target — above both thresholds once sustained.
        let mut last = None;
        for step in 1..=20u64 {
            last = Some(tracker.observe(&snap(step * 50, step * 100, 0, 0)));
        }
        let status = last.unwrap();
        assert!(status.latency.alert);
        assert!((status.latency.short - 10.0).abs() < 1e-9);
        assert!((status.latency.long - 10.0).abs() < 1e-9);
        assert!(!status.availability.alert, "no rejections offered");
    }

    #[test]
    fn short_blip_does_not_trip_the_long_window() {
        let mut tracker = SloTracker::new(spec());
        // A long healthy history...
        for step in 1..=10u64 {
            tracker.observe(&snap(step * 50, step * 1_000, step * 1_000, 0));
        }
        // ...then one bad burst inside the short window only.
        let status = tracker.observe(&snap(540, 10_100, 10_000, 0));
        assert!(
            status.latency.short > status.latency.long,
            "short {} vs long {}",
            status.latency.short,
            status.latency.long
        );
        assert!(!status.latency.alert, "blip must not page");
    }

    #[test]
    fn availability_burns_on_rejections() {
        let mut tracker = SloTracker::new(spec());
        let mut last = None;
        for step in 1..=20u64 {
            // 10% of settled requests rejected: bad_fraction 0.1,
            // budget 0.01, burn 10.
            last = Some(tracker.observe(&snap(step * 50, step * 90, step * 90, step * 10)));
        }
        let status = last.unwrap();
        assert!(status.availability.alert);
        assert!((status.availability.short - 10.0).abs() < 1e-9);
        assert!(!status.latency.alert);
    }

    #[test]
    fn zero_budget_target_burns_infinitely_on_any_badness() {
        let mut tracker = SloTracker::new(SloSpec {
            latency_target: 1.0,
            ..spec()
        });
        let status = tracker.observe(&snap(50, 10, 9, 0));
        assert!(status.latency.short.is_infinite());
    }

    #[test]
    fn history_is_pruned_to_the_long_window() {
        let mut tracker = SloTracker::new(spec());
        for step in 1..=1_000u64 {
            tracker.observe(&snap(step * 50, step, step, 0));
        }
        assert!(
            tracker.history.len() < 20,
            "history grew unbounded: {}",
            tracker.history.len()
        );
    }
}
