//! Span-tree reconstruction: folding the flat event stream back into
//! the hierarchy that emitted it.
//!
//! Recorders capture *complete* spans (`time_ns .. time_ns + dur_ns`),
//! not open/close pairs, so reconstruction is interval nesting: a span
//! is a child of the smallest span that fully contains it. The
//! instrumented paths emit spans in deterministic order
//! (`bfree::BfreeSimulator::run_recorded` reduces on the calling
//! thread; `bfree_serve::ServingSim` is single-threaded over a virtual
//! clock), so the reconstructed forest is a pure function of the run —
//! the property the `trace_properties` suite pins down under chaos
//! fault plans at every `--jobs` setting.
//!
//! Reconstruction is *validating*: a span with a negative or
//! non-finite extent is reported as a [`TraceIssue`], and a forest
//! built from a [`crate::RingRecorder`] carries the ring's dropped
//! count so a truncated trace can never masquerade as a complete one.
//! Sibling spans may overlap freely (concurrent serving dispatches do),
//! but a span is only adopted by a parent that fully contains it —
//! partial overlap demotes it to a sibling instead of fabricating a
//! nesting that never happened.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::event::{Event, EventKind};
use crate::ring::RingRecorder;

/// Containment slack in nanoseconds: spans whose endpoints went through
/// f64 accumulation (the exec layer cursor) may disagree with their
/// parent by a rounding ulp.
const CONTAIN_EPS_NS: f64 = 1e-6;

/// One reconstructed span and everything that happened inside it.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span event itself.
    pub event: Event,
    /// Position of the span in the original event stream.
    pub seq: usize,
    /// Spans fully contained in this one, in start order.
    pub children: Vec<SpanNode>,
    /// Non-span events attributed to this span: everything emitted
    /// after this span and before the next one (the emitter's
    /// "counters follow their span" convention).
    pub attached: Vec<Event>,
}

impl SpanNode {
    /// Span start in nanoseconds.
    pub fn start_ns(&self) -> f64 {
        self.event.time_ns
    }

    /// Span end in nanoseconds.
    pub fn end_ns(&self) -> f64 {
        self.event.time_ns + self.event.dur_ns
    }

    /// Span duration in nanoseconds.
    pub fn dur_ns(&self) -> f64 {
        self.event.dur_ns
    }

    /// Time not covered by any child: `dur - Σ children.dur`. Negative
    /// only when children overlap each other (concurrent siblings).
    pub fn self_ns(&self) -> f64 {
        self.event.dur_ns - self.children.iter().map(|c| c.dur_ns()).sum::<f64>()
    }

    /// Spans in this subtree, this node included.
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::span_count)
            .sum::<usize>()
    }

    /// Depth of the subtree (1 for a leaf).
    pub fn depth(&self) -> usize {
        1 + self.children.iter().map(SpanNode::depth).max().unwrap_or(0)
    }

    /// Sum of `self_ns` over the subtree. For a tree whose siblings
    /// never overlap this equals the root duration exactly — the
    /// "latencies sum to the root" balance identity.
    pub fn self_time_sum_ns(&self) -> f64 {
        self.self_ns()
            + self
                .children
                .iter()
                .map(SpanNode::self_time_sum_ns)
                .sum::<f64>()
    }

    /// Visits this node and every descendant, parents before children.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a SpanNode, usize)) {
        self.visit_at(0, f);
    }

    fn visit_at<'a>(&'a self, depth: usize, f: &mut impl FnMut(&'a SpanNode, usize)) {
        f(self, depth);
        for child in &self.children {
            child.visit_at(depth + 1, f);
        }
    }
}

/// A defect found while reconstructing a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceIssue {
    /// A span whose duration or timestamp is negative or non-finite.
    MalformedSpan {
        /// Event name of the offending span.
        name: &'static str,
        /// Its start timestamp.
        time_ns: f64,
        /// Its duration.
        dur_ns: f64,
    },
    /// The ring recorder evicted events before the trace was read, so
    /// the forest is reconstructed from a truncated stream.
    Truncated {
        /// Events lost to ring eviction.
        dropped: u64,
    },
}

impl std::fmt::Display for TraceIssue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIssue::MalformedSpan {
                name,
                time_ns,
                dur_ns,
            } => write!(
                f,
                "malformed span `{name}`: start {time_ns} ns, duration {dur_ns} ns"
            ),
            TraceIssue::Truncated { dropped } => {
                write!(f, "trace truncated: {dropped} events dropped by the ring")
            }
        }
    }
}

/// The reconstructed span forest of one recorded run.
#[derive(Debug, Clone)]
pub struct TraceForest {
    /// Top-level spans (no enclosing span), in start order.
    pub roots: Vec<SpanNode>,
    /// Non-span events emitted before any span existed to attach to.
    pub orphans: Vec<Event>,
    /// Defects found during reconstruction (empty for a healthy trace).
    pub issues: Vec<TraceIssue>,
    /// Non-span events in original emission order (counters fold in
    /// this order, which is what makes stage sums bit-identical to the
    /// aggregate models).
    events_in_order: Vec<Event>,
    span_count: usize,
}

impl TraceForest {
    /// Reconstructs the forest from an ordered event slice.
    pub fn from_events(events: &[Event]) -> TraceForest {
        Self::build(events, 0)
    }

    /// Reconstructs from a [`RingRecorder`], carrying its dropped-event
    /// count into the validation issues.
    pub fn from_ring(ring: &RingRecorder) -> TraceForest {
        Self::build(&ring.events(), ring.dropped())
    }

    fn build(events: &[Event], dropped: u64) -> TraceForest {
        let mut issues = Vec::new();
        if dropped > 0 {
            issues.push(TraceIssue::Truncated { dropped });
        }

        // Split the stream: spans nest structurally, everything else
        // attaches to the span most recently emitted before it.
        let mut spans: Vec<(usize, &Event)> = Vec::new();
        let mut attached: BTreeMap<usize, Vec<Event>> = BTreeMap::new();
        let mut orphans = Vec::new();
        let mut events_in_order = Vec::new();
        let mut last_span_seq: Option<usize> = None;
        for (seq, event) in events.iter().enumerate() {
            if event.kind == EventKind::Span {
                if !(event.time_ns.is_finite() && event.dur_ns.is_finite() && event.dur_ns >= 0.0) {
                    issues.push(TraceIssue::MalformedSpan {
                        name: event.name,
                        time_ns: event.time_ns,
                        dur_ns: event.dur_ns,
                    });
                    continue;
                }
                spans.push((seq, event));
                last_span_seq = Some(seq);
            } else {
                events_in_order.push(event.clone());
                match last_span_seq {
                    Some(seq) => attached.entry(seq).or_default().push(event.clone()),
                    None => orphans.push(event.clone()),
                }
            }
        }
        let span_count = spans.len();

        // Interval nesting: sorted by (start asc, end desc, emission),
        // a scan with an open-span stack adopts each span into the
        // innermost span that fully contains it. The sort makes the
        // result independent of *when* a parent was emitted (the exec
        // layer emits its root span last), while emission order still
        // breaks exact ties deterministically.
        spans.sort_by(|(seq_a, a), (seq_b, b)| {
            a.time_ns
                .total_cmp(&b.time_ns)
                .then((b.time_ns + b.dur_ns).total_cmp(&(a.time_ns + a.dur_ns)))
                .then(seq_a.cmp(seq_b))
        });

        let mut roots: Vec<SpanNode> = Vec::new();
        // Stack of open nodes; each entry is the chain of ancestors of
        // the next span considered.
        let mut stack: Vec<SpanNode> = Vec::new();
        let close_into = |stack: &mut Vec<SpanNode>, roots: &mut Vec<SpanNode>| {
            let node = stack.pop().expect("close on empty stack");
            match stack.last_mut() {
                Some(parent) => parent.children.push(node),
                None => roots.push(node),
            }
        };
        for (seq, event) in spans {
            let start = event.time_ns;
            let end = event.time_ns + event.dur_ns;
            while let Some(top) = stack.last() {
                let contains = start >= top.start_ns() - CONTAIN_EPS_NS
                    && end <= top.end_ns() + CONTAIN_EPS_NS;
                if contains {
                    break;
                }
                close_into(&mut stack, &mut roots);
            }
            stack.push(SpanNode {
                event: event.clone(),
                seq,
                children: Vec::new(),
                attached: attached.remove(&seq).unwrap_or_default(),
            });
        }
        while !stack.is_empty() {
            close_into(&mut stack, &mut roots);
        }

        TraceForest {
            roots,
            orphans,
            issues,
            events_in_order,
            span_count,
        }
    }

    /// Spans in the forest. Reconstruction is lossless: this always
    /// equals the number of well-formed span events in the input.
    pub fn span_count(&self) -> usize {
        self.span_count
    }

    /// Non-span events, in original emission order.
    pub fn events_in_order(&self) -> &[Event] {
        &self.events_in_order
    }

    /// Whether reconstruction found no defects (and nothing was
    /// dropped). Issue-free is what "every open has a matching close"
    /// means for complete-span streams: every span has a well-formed
    /// extent and the stream is untruncated.
    pub fn is_balanced(&self) -> bool {
        self.issues.is_empty()
    }

    /// Visits every node in the forest, parents before children, roots
    /// in start order.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a SpanNode, usize)) {
        for root in &self.roots {
            root.visit(f);
        }
    }

    /// The forest as an indented text tree (for `experiments obs
    /// --tree`): name, detail, extent, and per-node self-time share.
    pub fn render_text(&self, max_children: usize) -> String {
        let mut out = String::new();
        for issue in &self.issues {
            let _ = writeln!(out, "warning: {issue}");
        }
        for root in &self.roots {
            Self::render_node(root, 0, max_children, &mut out);
        }
        if !self.orphans.is_empty() {
            let _ = writeln!(
                out,
                "({} events precede the first span)",
                self.orphans.len()
            );
        }
        out
    }

    fn render_node(node: &SpanNode, depth: usize, max_children: usize, out: &mut String) {
        let indent = "  ".repeat(depth);
        let self_pct = if node.dur_ns() > 0.0 {
            100.0 * node.self_ns().max(0.0) / node.dur_ns()
        } else {
            0.0
        };
        let _ = write!(
            out,
            "{indent}{} [{:.1}..{:.1} us, {:.3} us, self {self_pct:.0}%",
            node.event.name,
            node.start_ns() / 1000.0,
            node.end_ns() / 1000.0,
            node.dur_ns() / 1000.0,
        );
        if !node.attached.is_empty() {
            let _ = write!(out, ", {} events", node.attached.len());
        }
        out.push(']');
        if let Some(detail) = &node.event.detail {
            let short: String = detail.chars().take(60).collect();
            let _ = write!(out, " {short}");
        }
        out.push('\n');
        for child in node.children.iter().take(max_children) {
            Self::render_node(child, depth + 1, max_children, out);
        }
        if node.children.len() > max_children {
            let _ = writeln!(
                out,
                "{indent}  ... {} more children",
                node.children.len() - max_children
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Subsystem, Unit};
    use crate::recorder::Recorder;

    fn ring_with_nested_trace() -> RingRecorder {
        let ring = RingRecorder::new(64);
        // Emission order mimics the exec layer: children first, root
        // last — nesting must come from intervals, not emission order.
        ring.span(Subsystem::Exec, "configure", 0.0, 10.0);
        ring.span(Subsystem::Exec, "layer", 10.0, 40.0);
        ring.counter(Subsystem::Exec, "phase/compute", 40.0, Unit::Nanoseconds);
        ring.span(Subsystem::Exec, "layer", 50.0, 30.0);
        ring.counter(Subsystem::Exec, "phase/compute", 30.0, Unit::Nanoseconds);
        ring.span(Subsystem::Exec, "run", 0.0, 100.0);
        ring
    }

    #[test]
    fn nesting_follows_intervals_not_emission_order() {
        let forest = TraceForest::from_ring(&ring_with_nested_trace());
        assert!(forest.is_balanced());
        assert_eq!(forest.roots.len(), 1);
        let root = &forest.roots[0];
        assert_eq!(root.event.name, "run");
        assert_eq!(root.children.len(), 3);
        assert_eq!(root.children[0].event.name, "configure");
        // 100 - (10 + 40 + 30) = 20 ns not covered by any child.
        assert!((root.self_ns() - 20.0).abs() < 1e-9);
        assert_eq!(forest.span_count(), 4);
        assert_eq!(root.span_count(), 4);
        assert_eq!(root.depth(), 2);
    }

    #[test]
    fn counters_attach_to_the_preceding_span() {
        let forest = TraceForest::from_ring(&ring_with_nested_trace());
        let root = &forest.roots[0];
        let layer1 = &root.children[1];
        assert_eq!(layer1.attached.len(), 1);
        assert_eq!(layer1.attached[0].value, 40.0);
        // Emission order of non-span events is preserved for folds.
        let values: Vec<f64> = forest.events_in_order().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![40.0, 30.0]);
    }

    #[test]
    fn self_time_sums_to_root_when_children_tile() {
        let forest = TraceForest::from_ring(&ring_with_nested_trace());
        let root = &forest.roots[0];
        assert!((root.self_time_sum_ns() - root.dur_ns()).abs() < 1e-9);
    }

    #[test]
    fn overlapping_siblings_stay_siblings() {
        let ring = RingRecorder::new(16);
        // Two concurrent serving dispatches: neither contains the other.
        ring.span(Subsystem::Serve, "dispatch", 0.0, 100.0);
        ring.span(Subsystem::Serve, "dispatch", 50.0, 100.0);
        let forest = TraceForest::from_ring(&ring);
        assert!(forest.is_balanced());
        assert_eq!(forest.roots.len(), 2);
        assert!(forest.roots.iter().all(|r| r.children.is_empty()));
    }

    #[test]
    fn truncation_is_flagged_never_silent() {
        let ring = RingRecorder::new(2);
        ring.span(Subsystem::Exec, "a", 0.0, 1.0);
        ring.span(Subsystem::Exec, "b", 1.0, 1.0);
        ring.span(Subsystem::Exec, "c", 2.0, 1.0);
        let forest = TraceForest::from_ring(&ring);
        assert!(!forest.is_balanced());
        assert!(matches!(
            forest.issues[0],
            TraceIssue::Truncated { dropped: 1 }
        ));
        assert_eq!(forest.span_count(), 2);
    }

    #[test]
    fn malformed_spans_are_reported_and_skipped() {
        let ring = RingRecorder::new(16);
        ring.span(Subsystem::Exec, "ok", 0.0, 5.0);
        ring.record(Event {
            subsystem: Subsystem::Exec,
            kind: EventKind::Span,
            name: "broken",
            detail: None,
            component: None,
            time_ns: 3.0,
            dur_ns: -1.0,
            value: -1.0,
            unit: Unit::Nanoseconds,
        });
        let forest = TraceForest::from_ring(&ring);
        assert_eq!(forest.span_count(), 1);
        assert!(matches!(
            forest.issues[0],
            TraceIssue::MalformedSpan { name: "broken", .. }
        ));
        assert!(forest.issues[0].to_string().contains("broken"));
    }

    #[test]
    fn events_before_any_span_are_orphans() {
        let ring = RingRecorder::new(16);
        ring.counter(Subsystem::Par, "pool/items", 3.0, Unit::Count);
        ring.span(Subsystem::Exec, "run", 0.0, 1.0);
        let forest = TraceForest::from_ring(&ring);
        assert_eq!(forest.orphans.len(), 1);
        assert_eq!(forest.events_in_order().len(), 1);
    }

    #[test]
    fn render_text_shows_hierarchy_and_warnings() {
        let forest = TraceForest::from_ring(&ring_with_nested_trace());
        let text = forest.render_text(16);
        assert!(text.contains("run"));
        assert!(text.contains("  configure"));
        let ring = RingRecorder::new(1);
        ring.span(Subsystem::Exec, "a", 0.0, 1.0);
        ring.span(Subsystem::Exec, "b", 1.0, 1.0);
        let truncated = TraceForest::from_ring(&ring).render_text(16);
        assert!(truncated.contains("warning: trace truncated"));
    }

    #[test]
    fn empty_stream_reconstructs_cleanly() {
        let forest = TraceForest::from_events(&[]);
        assert!(forest.is_balanced());
        assert!(forest.roots.is_empty());
        assert_eq!(forest.span_count(), 0);
    }
}
