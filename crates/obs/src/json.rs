//! A dependency-free JSON value, writer, and parser.
//!
//! The workspace's vendored `serde` is a no-op marker stub (the build
//! environment has no registry access), so every serialization need in
//! the workspace — event export, config round-trips — goes through this
//! module instead. The surface is deliberately small: a [`JsonValue`]
//! tree, a writer with full string escaping, and a strict recursive-
//! descent parser returning positioned [`ObsError::Parse`] errors.
//!
//! Numbers are written with enough precision to round-trip f64 exactly
//! (`{:?}` formatting, which Rust guarantees to be shortest-round-trip).
//!
//! [`ObsError::Parse`]: crate::ObsError::Parse

use std::collections::BTreeMap;
use std::fmt;

use crate::error::ObsError;

/// A JSON document.
///
/// Objects use a [`BTreeMap`], so serialization order is deterministic
/// (sorted by key) — a requirement for the byte-identical-output CI
/// gates.
///
/// ```
/// use bfree_obs::JsonValue;
///
/// let v = JsonValue::parse(r#"{"a": [1, true, "x\n"]}"#).unwrap();
/// assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
/// let back = v.to_string();
/// assert_eq!(JsonValue::parse(&back).unwrap(), v);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as f64).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object with deterministic (sorted) key order.
    Object(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Builds an object from key/value pairs.
    pub fn object(pairs: impl IntoIterator<Item = (&'static str, JsonValue)>) -> JsonValue {
        JsonValue::Object(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Member lookup on objects (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The number, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The bool, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Typed member access: `self[key]` as f64.
    ///
    /// # Errors
    ///
    /// [`ObsError::Schema`] when the key is missing or not a number.
    pub fn require_f64(&self, key: &str) -> Result<f64, ObsError> {
        self.get(key)
            .and_then(JsonValue::as_f64)
            .ok_or_else(|| ObsError::Schema {
                field: key.to_string(),
                expected: "number",
            })
    }

    /// Typed member access: `self[key]` as u64.
    ///
    /// # Errors
    ///
    /// [`ObsError::Schema`] when the key is missing or not a
    /// non-negative integer.
    pub fn require_u64(&self, key: &str) -> Result<u64, ObsError> {
        self.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| ObsError::Schema {
                field: key.to_string(),
                expected: "non-negative integer",
            })
    }

    /// Typed member access: `self[key]` as a string slice.
    ///
    /// # Errors
    ///
    /// [`ObsError::Schema`] when the key is missing or not a string.
    pub fn require_str(&self, key: &str) -> Result<&str, ObsError> {
        self.get(key)
            .and_then(JsonValue::as_str)
            .ok_or_else(|| ObsError::Schema {
                field: key.to_string(),
                expected: "string",
            })
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// [`ObsError::Parse`] with a byte position and reason.
    pub fn parse(text: &str) -> Result<JsonValue, ObsError> {
        let mut parser = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after document"));
        }
        Ok(value)
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Number(n) => {
                if n.is_finite() {
                    // {:?} is shortest-round-trip for f64; integral
                    // values print without a trailing ".0" via {}.
                    if n.fract() == 0.0 && n.abs() < 1e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n:?}"));
                    }
                } else {
                    // JSON has no Inf/NaN; null is the conventional spill.
                    out.push_str("null");
                }
            }
            JsonValue::String(s) => write_escaped(s, out),
            JsonValue::Array(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Object(map) => {
                out.push('{');
                for (i, (k, v)) in map.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut out = String::new();
        self.write(&mut out);
        f.write_str(&out)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, reason: &'static str) -> ObsError {
        ObsError::Parse {
            position: self.pos,
            reason,
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8, reason: &'static str) -> Result<(), ObsError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(reason))
        }
    }

    fn literal(&mut self, text: &'static str, value: JsonValue) -> Result<JsonValue, ObsError> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(value)
        } else {
            Err(self.error("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<JsonValue, ObsError> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn string(&mut self) -> Result<String, ObsError> {
        self.expect(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self
                .peek()
                .is_some_and(|b| b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid utf-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or_else(|| self.error("truncated escape"))?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // writer; reject rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.error("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, ObsError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|t| t.parse::<f64>().ok())
            .map(JsonValue::Number)
            .ok_or_else(|| self.error("invalid number"))
    }

    fn array(&mut self) -> Result<JsonValue, ObsError> {
        self.expect(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, ObsError> {
        self.expect(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':', "expected ':'")?;
            self.skip_ws();
            let value = self.value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(text: &str) -> JsonValue {
        let v = JsonValue::parse(text).unwrap();
        let emitted = v.to_string();
        let again = JsonValue::parse(&emitted).unwrap();
        assert_eq!(v, again, "round-trip changed the document: {emitted}");
        v
    }

    #[test]
    fn scalars_round_trip() {
        assert_eq!(round_trip("null"), JsonValue::Null);
        assert_eq!(round_trip("true"), JsonValue::Bool(true));
        assert_eq!(round_trip("-12.5e2"), JsonValue::Number(-1250.0));
        assert_eq!(
            round_trip(r#""a\"b\\c\ndA""#),
            JsonValue::String("a\"b\\c\ndA".to_string())
        );
    }

    #[test]
    fn nested_structures_round_trip() {
        let v = round_trip(r#"{"b": [1, {"x": null}], "a": "z", "c": 0.5}"#);
        assert_eq!(v.require_f64("c").unwrap(), 0.5);
        assert_eq!(v.require_str("a").unwrap(), "z");
        assert!(v.require_f64("missing").is_err());
    }

    #[test]
    fn object_serialization_is_key_sorted() {
        let v = JsonValue::parse(r#"{"z": 1, "a": 2}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"a":2,"z":1}"#);
    }

    #[test]
    fn f64_shortest_round_trip_precision() {
        let v = JsonValue::Number(0.1 + 0.2);
        let parsed = JsonValue::parse(&v.to_string()).unwrap();
        assert_eq!(parsed.as_f64().unwrap().to_bits(), (0.1 + 0.2f64).to_bits());
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(JsonValue::Number(14.0).to_string(), "14");
        assert_eq!(JsonValue::Number(-3.0).to_string(), "-3");
        let v = JsonValue::parse("1024").unwrap();
        assert_eq!(v.as_u64(), Some(1024));
        assert_eq!(JsonValue::Number(-1.0).as_u64(), None);
        assert_eq!(JsonValue::Number(1.5).as_u64(), None);
    }

    #[test]
    fn parse_errors_carry_position() {
        let err = JsonValue::parse("[1, ").unwrap_err();
        match err {
            ObsError::Parse { position, .. } => assert!(position >= 3),
            other => panic!("unexpected error {other:?}"),
        }
        assert!(JsonValue::parse("{\"a\" 1}").is_err());
        assert!(JsonValue::parse("[1] trailing").is_err());
        assert!(JsonValue::parse("").is_err());
    }

    #[test]
    fn control_characters_are_escaped() {
        let v = JsonValue::String("a\u{1}b".to_string());
        assert_eq!(v.to_string(), "\"a\\u0001b\"");
        assert_eq!(JsonValue::parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn non_finite_numbers_spill_to_null() {
        assert_eq!(JsonValue::Number(f64::INFINITY).to_string(), "null");
        assert_eq!(JsonValue::Number(f64::NAN).to_string(), "null");
    }
}
