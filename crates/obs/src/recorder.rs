//! The [`Recorder`] trait and the zero-cost [`NullRecorder`].
//!
//! Instrumented code is *generic* over its recorder, never dynamic:
//! `fn run_recorded<R: Recorder>(&self, ..., recorder: &R)`. Each call
//! site monomorphizes, so the [`NullRecorder`] instantiation inlines
//! `is_enabled() == false` and `record() == ()`, the guard branches
//! constant-fold, and the disabled build carries no instrumentation
//! cost at all — not even the event construction.
//!
//! Recorder methods take `&self` so one recorder can be shared by
//! parallel workers (`bfree::par`) and by `&self` simulator methods;
//! stateful implementations synchronize internally.

use crate::event::{Component, Event, EventKind, Subsystem, Unit};

/// A sink for structured [`Event`]s.
///
/// Implementations must be cheap to query: `is_enabled` is called on
/// every hot-path instrumentation site, usually guarding the event
/// construction itself.
pub trait Recorder {
    /// Whether this recorder keeps events. Hot paths skip event
    /// construction entirely when this is `false`.
    fn is_enabled(&self) -> bool;

    /// Records one event. Implementations must not panic.
    fn record(&self, event: Event);

    /// Records a named interval of `dur_ns` starting at `start_ns`.
    fn span(&self, subsystem: Subsystem, name: &'static str, start_ns: f64, dur_ns: f64) {
        if self.is_enabled() {
            self.record(Event {
                subsystem,
                kind: EventKind::Span,
                name,
                detail: None,
                component: None,
                time_ns: start_ns,
                dur_ns,
                value: dur_ns,
                unit: Unit::Nanoseconds,
            });
        }
    }

    /// [`span`](Recorder::span) with a dynamic detail label. The label
    /// closure only runs when the recorder is enabled.
    fn span_with(
        &self,
        subsystem: Subsystem,
        name: &'static str,
        start_ns: f64,
        dur_ns: f64,
        detail: impl FnOnce() -> String,
    ) {
        if self.is_enabled() {
            self.record(Event {
                subsystem,
                kind: EventKind::Span,
                name,
                detail: Some(detail()),
                component: None,
                time_ns: start_ns,
                dur_ns,
                value: dur_ns,
                unit: Unit::Nanoseconds,
            });
        }
    }

    /// Records a point-in-time marker; the label closure only runs when
    /// the recorder is enabled.
    fn instant(
        &self,
        subsystem: Subsystem,
        name: &'static str,
        time_ns: f64,
        detail: impl FnOnce() -> String,
    ) {
        if self.is_enabled() {
            self.record(Event {
                subsystem,
                kind: EventKind::Instant,
                name,
                detail: Some(detail()),
                component: None,
                time_ns,
                dur_ns: 0.0,
                value: 1.0,
                unit: Unit::Count,
            });
        }
    }

    /// Accumulates `value` (in `unit`) onto a named counter.
    fn counter(&self, subsystem: Subsystem, name: &'static str, value: f64, unit: Unit) {
        if self.is_enabled() {
            self.record(Event {
                subsystem,
                kind: EventKind::Counter,
                name,
                detail: None,
                component: None,
                time_ns: 0.0,
                dur_ns: 0.0,
                value,
                unit,
            });
        }
    }

    /// Accumulates picojoules attributed to a hardware component.
    fn energy(&self, subsystem: Subsystem, name: &'static str, component: Component, pj: f64) {
        if self.is_enabled() {
            self.record(Event {
                subsystem,
                kind: EventKind::Counter,
                name,
                detail: None,
                component: Some(component),
                time_ns: 0.0,
                dur_ns: 0.0,
                value: pj,
                unit: Unit::Picojoules,
            });
        }
    }

    /// Accumulates nanoseconds attributed to a hardware component.
    fn latency(&self, subsystem: Subsystem, name: &'static str, component: Component, ns: f64) {
        if self.is_enabled() {
            self.record(Event {
                subsystem,
                kind: EventKind::Counter,
                name,
                detail: None,
                component: Some(component),
                time_ns: 0.0,
                dur_ns: 0.0,
                value: ns,
                unit: Unit::Nanoseconds,
            });
        }
    }

    /// Samples a level (queue depth, free slices) at `time_ns`.
    fn gauge(&self, subsystem: Subsystem, name: &'static str, time_ns: f64, level: f64) {
        if self.is_enabled() {
            self.record(Event {
                subsystem,
                kind: EventKind::Gauge,
                name,
                detail: None,
                component: None,
                time_ns,
                dur_ns: 0.0,
                value: level,
                unit: Unit::Count,
            });
        }
    }

    /// Contributes `value` (in `unit`) to a named distribution.
    fn histogram(&self, subsystem: Subsystem, name: &'static str, value: f64, unit: Unit) {
        if self.is_enabled() {
            self.record(Event {
                subsystem,
                kind: EventKind::Histogram,
                name,
                detail: None,
                component: None,
                time_ns: 0.0,
                dur_ns: 0.0,
                value,
                unit,
            });
        }
    }

    /// [`histogram`](Recorder::histogram) with a dynamic detail label
    /// (e.g. `request=<id>` so per-request paths can be reconstructed).
    /// The label closure only runs when the recorder is enabled.
    fn histogram_with(
        &self,
        subsystem: Subsystem,
        name: &'static str,
        value: f64,
        unit: Unit,
        detail: impl FnOnce() -> String,
    ) {
        if self.is_enabled() {
            self.record(Event {
                subsystem,
                kind: EventKind::Histogram,
                name,
                detail: Some(detail()),
                component: None,
                time_ns: 0.0,
                dur_ns: 0.0,
                value,
                unit,
            });
        }
    }
}

/// The do-nothing recorder: the default everywhere instrumentation is
/// not explicitly requested. Monomorphization erases it completely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn record(&self, _event: Event) {}
}

/// Fans every event out to two recorders — e.g. an [`crate::AggRecorder`]
/// for summaries *and* a [`crate::RingRecorder`] for trace capture in
/// one instrumented run, so the aggregate cross-check and the
/// drop-accounting gate see the identical event stream.
///
/// Enabled iff either side is; a side that is disabled still receives
/// the `record` call and discards it itself (recorders are cheap by
/// contract, and per-side re-checking would double the branches on the
/// hot path).
#[derive(Debug, Default)]
pub struct TeeRecorder<A, B> {
    first: A,
    second: B,
}

impl<A: Recorder, B: Recorder> TeeRecorder<A, B> {
    /// Tees events into `first` and `second`.
    pub fn new(first: A, second: B) -> Self {
        TeeRecorder { first, second }
    }

    /// The first sink.
    pub fn first(&self) -> &A {
        &self.first
    }

    /// The second sink.
    pub fn second(&self) -> &B {
        &self.second
    }

    /// Splits the tee back into its sinks.
    pub fn into_parts(self) -> (A, B) {
        (self.first, self.second)
    }
}

impl<A: Recorder, B: Recorder> Recorder for TeeRecorder<A, B> {
    fn is_enabled(&self) -> bool {
        self.first.is_enabled() || self.second.is_enabled()
    }

    fn record(&self, event: Event) {
        self.first.record(event.clone());
        self.second.record(event);
    }
}

// Shared references record through to the underlying recorder, so call
// sites can pass `&rec` down a call tree without re-borrowing games.
impl<R: Recorder + ?Sized> Recorder for &R {
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    fn record(&self, event: Event) {
        (**self).record(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    /// A test recorder capturing every event (single-threaded).
    struct Capture(RefCell<Vec<Event>>);

    impl Recorder for Capture {
        fn is_enabled(&self) -> bool {
            true
        }
        fn record(&self, event: Event) {
            self.0.borrow_mut().push(event);
        }
    }

    #[test]
    fn null_recorder_is_disabled_and_silent() {
        let rec = NullRecorder;
        assert!(!rec.is_enabled());
        rec.span(Subsystem::Exec, "layer", 0.0, 10.0);
        rec.energy(Subsystem::Exec, "e", Component::Dram, 1.0);
        // Nothing observable: NullRecorder has no state to inspect,
        // which is the point.
    }

    #[test]
    fn convenience_methods_build_correct_events() {
        let rec = Capture(RefCell::new(Vec::new()));
        rec.span(Subsystem::Serve, "request", 100.0, 50.0);
        rec.energy(Subsystem::Exec, "layer_energy", Component::Bce, 7.5);
        rec.gauge(Subsystem::Serve, "queue_depth", 42.0, 3.0);
        rec.histogram(Subsystem::Serve, "latency", 1000.0, Unit::Nanoseconds);
        let events = rec.0.borrow();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].kind, EventKind::Span);
        assert_eq!(events[0].dur_ns, 50.0);
        assert_eq!(events[1].component, Some(Component::Bce));
        assert_eq!(events[1].unit, Unit::Picojoules);
        assert_eq!(events[2].kind, EventKind::Gauge);
        assert_eq!(events[3].kind, EventKind::Histogram);
    }

    #[test]
    fn detail_closure_skipped_when_disabled() {
        let rec = NullRecorder;
        let mut ran = false;
        rec.span_with(Subsystem::Exec, "layer", 0.0, 1.0, || {
            ran = true;
            "expensive".to_string()
        });
        assert!(!ran, "disabled recorder must not evaluate detail labels");
    }

    #[test]
    fn reference_recorder_delegates() {
        let rec = Capture(RefCell::new(Vec::new()));
        let by_ref = &rec;
        by_ref.counter(Subsystem::Par, "items", 5.0, Unit::Count);
        assert_eq!(rec.0.borrow().len(), 1);
    }

    #[test]
    fn tee_recorder_duplicates_the_stream_to_both_sinks() {
        let tee = TeeRecorder::new(
            Capture(RefCell::new(Vec::new())),
            Capture(RefCell::new(Vec::new())),
        );
        tee.counter(Subsystem::Serve, "requests", 2.0, Unit::Count);
        tee.span(Subsystem::Serve, "request", 0.0, 10.0);
        assert_eq!(tee.first().0.borrow().len(), 2);
        assert_eq!(tee.second().0.borrow().len(), 2);
        assert_eq!(
            tee.first().0.borrow()[1].kind,
            tee.second().0.borrow()[1].kind
        );
    }

    #[test]
    fn tee_recorder_enabled_when_either_side_is() {
        let on_off = TeeRecorder::new(Capture(RefCell::new(Vec::new())), NullRecorder);
        assert!(on_off.is_enabled());
        let off_off = TeeRecorder::new(NullRecorder, NullRecorder);
        assert!(!off_off.is_enabled());
    }
}
