//! Streaming aggregation of events: the attribution workhorse.
//!
//! Where [`crate::RingRecorder`] keeps raw events for trace export,
//! [`AggRecorder`] folds them on arrival into per-key statistics —
//! count, sum, min, max, and a log2 histogram — keyed by
//! `(subsystem, kind, name, component)`. Aggregation is commutative, so
//! the result is independent of the arrival order of events from
//! parallel workers: the same property that makes the ordered-reduction
//! simulator deterministic makes this recorder's sums deterministic.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::event::{Component, Event, EventKind, Subsystem, Unit};
use crate::recorder::Recorder;

/// Number of log2 histogram buckets (covers the full f64 positive
/// exponent range of interest: bucket `i` holds values in
/// `[2^i, 2^(i+1))`, bucket 0 holds everything below 2).
const LOG2_BUCKETS: usize = 64;

/// Aggregated statistics for one event key.
#[derive(Debug, Clone, PartialEq)]
pub struct AggEntry {
    /// The emitting subsystem.
    pub subsystem: Subsystem,
    /// Event shape.
    pub kind: EventKind,
    /// Static event name.
    pub name: &'static str,
    /// Hardware component, if the events carried one.
    pub component: Option<Component>,
    /// Unit of the aggregated values (unit of the first event seen).
    pub unit: Unit,
    /// Events folded in.
    pub count: u64,
    /// Sum of values.
    pub sum: f64,
    /// Smallest value seen.
    pub min: f64,
    /// Largest value seen.
    pub max: f64,
    /// Log2 bucket counts: bucket `i` counts values in `[2^i, 2^(i+1))`.
    pub log2_buckets: Box<[u64; LOG2_BUCKETS]>,
}

impl AggEntry {
    fn new(event: &Event) -> Self {
        AggEntry {
            subsystem: event.subsystem,
            kind: event.kind,
            name: event.name,
            component: event.component,
            unit: event.unit,
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            log2_buckets: Box::new([0; LOG2_BUCKETS]),
        }
    }

    fn fold(&mut self, value: f64) {
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
        let bucket = if value < 2.0 {
            0
        } else {
            (value.log2() as usize).min(LOG2_BUCKETS - 1)
        };
        self.log2_buckets[bucket] += 1;
    }

    /// Mean of the folded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate percentile from the log2 histogram: the upper edge
    /// of the bucket containing the `p`-th percentile observation
    /// (nearest-rank). Good to a factor of 2, which is what a latency
    /// distribution sketch needs.
    pub fn approx_percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &n) in self.log2_buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 2f64.powi(i as i32 + 1);
            }
        }
        self.max
    }
}

type Key = (Subsystem, EventKind, &'static str, Option<Component>, Unit);

/// A [`Recorder`] folding events into per-key [`AggEntry`] statistics.
///
/// ```
/// use bfree_obs::{AggRecorder, Recorder, Subsystem, Unit};
///
/// let rec = AggRecorder::new();
/// for v in [10.0, 20.0, 30.0] {
///     rec.histogram(Subsystem::Serve, "latency", v, Unit::Nanoseconds);
/// }
/// let entries = rec.snapshot();
/// assert_eq!(entries.len(), 1);
/// assert_eq!(entries[0].count, 3);
/// assert_eq!(entries[0].sum, 60.0);
/// ```
#[derive(Debug, Default)]
pub struct AggRecorder {
    entries: Mutex<BTreeMap<Key, AggEntry>>,
}

impl AggRecorder {
    /// An empty aggregator.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, BTreeMap<Key, AggEntry>> {
        // A fold never leaves an entry half-updated in a way later
        // folds cannot absorb, so recover from poisoning.
        match self.entries.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// All aggregated entries in deterministic key order.
    pub fn snapshot(&self) -> Vec<AggEntry> {
        self.lock().values().cloned().collect()
    }

    /// The summed value of one `(subsystem, name)` across kinds and
    /// components (0 when never recorded).
    pub fn sum(&self, subsystem: Subsystem, name: &str) -> f64 {
        self.lock()
            .iter()
            .filter(|((s, _, n, _, _), _)| *s == subsystem && *n == name)
            .map(|(_, e)| e.sum)
            .sum()
    }

    /// Total picojoules recorded per hardware component, across all
    /// subsystems and event names — the Fig. 2 / Fig. 12(d)-style
    /// attribution table.
    pub fn energy_by_component(&self) -> BTreeMap<Component, f64> {
        let mut out = BTreeMap::new();
        for ((_, _, _, component, unit), entry) in self.lock().iter() {
            if *unit == Unit::Picojoules {
                if let Some(c) = component {
                    *out.entry(*c).or_insert(0.0) += entry.sum;
                }
            }
        }
        out
    }

    /// Total nanoseconds recorded per hardware component.
    pub fn latency_by_component(&self) -> BTreeMap<Component, f64> {
        let mut out = BTreeMap::new();
        for ((_, kind, _, component, unit), entry) in self.lock().iter() {
            if *unit == Unit::Nanoseconds && *kind == EventKind::Counter {
                if let Some(c) = component {
                    *out.entry(*c).or_insert(0.0) += entry.sum;
                }
            }
        }
        out
    }

    /// Drops every entry.
    pub fn clear(&self) {
        self.lock().clear();
    }
}

impl Recorder for AggRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let mut entries = self.lock();
        entries
            .entry(event.key())
            .or_insert_with(|| AggEntry::new(&event))
            .fold(event.value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_by_component_sums_across_names() {
        let rec = AggRecorder::new();
        rec.energy(Subsystem::Exec, "layer", Component::Dram, 100.0);
        rec.energy(Subsystem::Exec, "gather", Component::Dram, 50.0);
        rec.energy(Subsystem::Arch, "transfer", Component::Bce, 25.0);
        let by = rec.energy_by_component();
        assert_eq!(by[&Component::Dram], 150.0);
        assert_eq!(by[&Component::Bce], 25.0);
        assert_eq!(by.len(), 2);
    }

    #[test]
    fn latency_by_component_ignores_energy_and_spans() {
        let rec = AggRecorder::new();
        rec.latency(Subsystem::Exec, "phase", Component::Interconnect, 10.0);
        rec.energy(Subsystem::Exec, "phase", Component::Interconnect, 99.0);
        rec.span(Subsystem::Exec, "layer", 0.0, 77.0);
        let by = rec.latency_by_component();
        assert_eq!(by[&Component::Interconnect], 10.0);
        assert_eq!(by.len(), 1);
    }

    #[test]
    fn min_max_mean_track_extremes() {
        let rec = AggRecorder::new();
        for v in [5.0, 1.0, 9.0] {
            rec.histogram(Subsystem::Serve, "lat", v, Unit::Nanoseconds);
        }
        let e = &rec.snapshot()[0];
        assert_eq!(e.min, 1.0);
        assert_eq!(e.max, 9.0);
        assert_eq!(e.mean(), 5.0);
    }

    #[test]
    fn log2_percentile_brackets_the_true_value() {
        let rec = AggRecorder::new();
        for i in 1..=1000u32 {
            rec.histogram(Subsystem::Serve, "lat", f64::from(i), Unit::Nanoseconds);
        }
        let e = &rec.snapshot()[0];
        let p50 = e.approx_percentile(50.0);
        // True p50 = 500; the log2 sketch returns the bucket upper edge.
        assert!((500.0..=1024.0).contains(&p50), "p50 sketch {p50}");
        let p99 = e.approx_percentile(99.0);
        assert!((990.0..=1024.0).contains(&p99), "p99 sketch {p99}");
    }

    #[test]
    fn aggregation_is_order_independent() {
        let forward = AggRecorder::new();
        let backward = AggRecorder::new();
        let values: Vec<f64> = (1..100).map(f64::from).collect();
        for &v in &values {
            forward.energy(Subsystem::Exec, "e", Component::Dram, v);
        }
        for &v in values.iter().rev() {
            backward.energy(Subsystem::Exec, "e", Component::Dram, v);
        }
        // Counts, extremes and buckets are exactly equal; sums agree to
        // f64 round-off (different addition order).
        let f = &forward.snapshot()[0];
        let b = &backward.snapshot()[0];
        assert_eq!(f.count, b.count);
        assert_eq!(f.min, b.min);
        assert_eq!(f.max, b.max);
        assert_eq!(f.log2_buckets, b.log2_buckets);
        assert!((f.sum - b.sum).abs() < 1e-9);
    }

    #[test]
    fn empty_percentile_and_mean_are_zero() {
        let e = AggEntry::new(&Event {
            subsystem: Subsystem::Par,
            kind: EventKind::Histogram,
            name: "x",
            detail: None,
            component: None,
            time_ns: 0.0,
            dur_ns: 0.0,
            value: 0.0,
            unit: Unit::Count,
        });
        assert_eq!(e.mean(), 0.0);
        assert_eq!(e.approx_percentile(99.0), 0.0);
    }
}
