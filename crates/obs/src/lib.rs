//! # bfree-obs
//!
//! Zero-cost structured observability for the BFree workspace.
//!
//! The paper's core evaluation claims are *attribution* claims — where
//! the picojoules and nanoseconds of an inference go (Fig. 2's
//! interconnect dominance, Fig. 12–14's phase/component splits,
//! Table III's per-network costs). Reproducing them mechanically needs
//! more than end-of-run aggregates: it needs every hot path to emit
//! *events* tagged by component, phase, layer, and request, which an
//! exporter can then fold into any of the paper's figures.
//!
//! This crate is the substrate:
//!
//! * [`Recorder`] — the sink trait every instrumented path is generic
//!   over. Instrumentation calls monomorphize against the concrete
//!   recorder, so with [`NullRecorder`] (the default everywhere) the
//!   `if recorder.is_enabled()` guards are constant-folded and the
//!   instrumented build is byte-for-byte the uninstrumented one.
//! * [`Event`] — one structured observation: a [`Span`], [`Instant`],
//!   [`Counter`], [`Gauge`] or [`Histogram`] sample, tagged with the
//!   emitting [`Subsystem`], an optional hardware [`Component`], a
//!   static name and an optional dynamic detail string.
//! * [`RingRecorder`] — a bounded in-memory ring of events for trace
//!   inspection and export (oldest events dropped under pressure, with
//!   a drop counter so truncation is never silent).
//! * [`AggRecorder`] — streaming aggregation (count / sum / min / max /
//!   log2 histogram) keyed by subsystem, name, and component; the basis
//!   of the `experiments attribution` cross-check.
//! * [`export`] — JSON, CSV, and Chrome `trace_event` serializers over
//!   recorded events (`chrome://tracing` / Perfetto flame-style views).
//! * [`trace`] — span-tree reconstruction: folds the flat event stream
//!   back into hierarchical per-run/per-request trace trees, validating
//!   balance and flagging ring truncation ([`TraceForest`]).
//! * [`critical`] — critical-path attribution over recorded streams:
//!   emission-order stage folds (bit-identical to the aggregate
//!   reports) and per-request p50/p95/p99 exemplar paths.
//! * [`perf`] — wall-clock self-profiling of the simulator itself:
//!   [`WallTimer`] scoped host-time guards (erased under
//!   [`NullRecorder`]) and a Prometheus-style text exposition.
//! * [`live`] — the live telemetry plane: lock-free per-worker
//!   [`SpscRing`]s with explicit drop accounting, the cumulative
//!   [`LiveAccumulator`] fold, and immutable [`TelemetrySnapshot`]s
//!   published via [`SnapshotCell`] and rendered as OpenMetrics text.
//! * [`histo`] — [`LogHistogram`], the exactly-mergeable log-bucketed
//!   (HDR-style) distribution the live plane uses for latency/energy
//!   percentiles.
//! * [`slo`] — [`SloTracker`], multi-window burn-rate evaluation of
//!   latency and availability objectives over snapshot sequences.
//! * [`json`] — the dependency-free JSON value, writer and parser the
//!   exporters and the config round-trips use (the workspace's vendored
//!   `serde` is a no-op stub, so serialization is hand-rolled).
//!
//! [`Span`]: EventKind::Span
//! [`Instant`]: EventKind::Instant
//! [`Counter`]: EventKind::Counter
//! [`Gauge`]: EventKind::Gauge
//! [`Histogram`]: EventKind::Histogram
//!
//! ```
//! use bfree_obs::{AggRecorder, Component, Recorder, Subsystem, Unit};
//!
//! let rec = AggRecorder::new();
//! rec.energy(Subsystem::Exec, "layer_energy", Component::Dram, 800.0);
//! rec.energy(Subsystem::Exec, "layer_energy", Component::Bce, 200.0);
//! let by_component = rec.energy_by_component();
//! assert_eq!(by_component[&Component::Dram], 800.0);
//! let _ = Unit::Picojoules;
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agg;
pub mod critical;
pub mod error;
pub mod event;
pub mod export;
pub mod histo;
pub mod json;
pub mod live;
pub mod perf;
pub mod recorder;
pub mod ring;
pub mod slo;
pub mod trace;

pub use agg::{AggEntry, AggRecorder};
pub use critical::{fold_stage_energy, fold_stage_latency, RequestPath, RequestPaths, StageSum};
pub use error::ObsError;
pub use event::{Component, Event, EventKind, Subsystem, Unit};
pub use export::{to_chrome_trace, to_csv, to_json, ExportFormat};
pub use histo::LogHistogram;
pub use json::JsonValue;
pub use live::{
    LiveAccumulator, LiveCollector, LiveEvent, LiveMetric, SnapshotCell, SpscRing,
    TelemetrySnapshot, TenantSnapshot, REASON_SHED,
};
pub use perf::{prometheus_text, WallTimer};
pub use recorder::{NullRecorder, Recorder, TeeRecorder};
pub use ring::RingRecorder;
pub use slo::{BurnRates, SloSpec, SloStatus, SloTracker};
pub use trace::{SpanNode, TraceForest, TraceIssue};
