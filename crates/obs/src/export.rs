//! Event serializers: JSON, CSV, and Chrome `trace_event`.
//!
//! All exporters are pure `&[Event] -> String` functions: they preserve
//! the order of the input slice and contain no clocks or randomness, so
//! a deterministic event stream exports to byte-identical text. Callers
//! that collected events concurrently (e.g. from a shared
//! [`crate::RingRecorder`]) should sort before exporting.

use std::fmt::Write as _;

use crate::error::ObsError;
use crate::event::{Event, EventKind, Subsystem};
use crate::json::JsonValue;

/// Output formats understood by `experiments obs export`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// Structured JSON array of event objects.
    Json,
    /// Flat CSV, one event per row.
    Csv,
    /// Chrome `trace_event` JSON for `chrome://tracing` / Perfetto.
    Chrome,
}

impl ExportFormat {
    /// All formats in CLI help order.
    pub const ALL: [ExportFormat; 3] =
        [ExportFormat::Json, ExportFormat::Csv, ExportFormat::Chrome];

    /// Stable CLI label.
    pub fn label(self) -> &'static str {
        match self {
            ExportFormat::Json => "json",
            ExportFormat::Csv => "csv",
            ExportFormat::Chrome => "chrome",
        }
    }

    /// Parses a CLI format name.
    ///
    /// # Errors
    ///
    /// [`ObsError::UnknownFormat`] for anything but `json`, `csv`, or
    /// `chrome`.
    pub fn parse(name: &str) -> Result<ExportFormat, ObsError> {
        match name {
            "json" => Ok(ExportFormat::Json),
            "csv" => Ok(ExportFormat::Csv),
            "chrome" => Ok(ExportFormat::Chrome),
            other => Err(ObsError::UnknownFormat {
                name: other.to_string(),
            }),
        }
    }

    /// Serializes `events` in this format.
    pub fn render(self, events: &[Event]) -> String {
        match self {
            ExportFormat::Json => to_json(events),
            ExportFormat::Csv => to_csv(events),
            ExportFormat::Chrome => to_chrome_trace(events),
        }
    }
}

impl std::fmt::Display for ExportFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ExportFormat {
    type Err = ObsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExportFormat::parse(s)
    }
}

fn event_to_json(event: &Event) -> JsonValue {
    let mut pairs = vec![
        (
            "subsystem",
            JsonValue::String(event.subsystem.label().to_string()),
        ),
        ("kind", JsonValue::String(event.kind.label().to_string())),
        ("name", JsonValue::String(event.name.to_string())),
        ("time_ns", JsonValue::Number(event.time_ns)),
        ("dur_ns", JsonValue::Number(event.dur_ns)),
        ("value", JsonValue::Number(event.value)),
        ("unit", JsonValue::String(event.unit.label().to_string())),
    ];
    if let Some(detail) = &event.detail {
        pairs.push(("detail", JsonValue::String(detail.clone())));
    }
    if let Some(component) = event.component {
        pairs.push((
            "component",
            JsonValue::String(component.label().to_string()),
        ));
    }
    JsonValue::object(pairs)
}

/// Serializes events as a JSON array of flat objects.
///
/// ```
/// use bfree_obs::{to_json, JsonValue, Recorder, RingRecorder, Subsystem};
///
/// let ring = RingRecorder::new(16);
/// ring.span(Subsystem::Exec, "layer", 0.0, 42.0);
/// let text = to_json(&ring.events());
/// let doc = JsonValue::parse(&text).unwrap();
/// assert_eq!(doc.as_array().unwrap().len(), 1);
/// ```
pub fn to_json(events: &[Event]) -> String {
    JsonValue::Array(events.iter().map(event_to_json).collect()).to_string()
}

fn csv_field(text: &str, out: &mut String) {
    if text.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for c in text.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(text);
    }
}

/// Serializes events as CSV with a fixed header row.
///
/// Columns: `subsystem,kind,name,detail,component,time_ns,dur_ns,value,unit`.
/// Empty cells for absent detail/component; fields containing commas,
/// quotes, or newlines are RFC 4180-quoted.
pub fn to_csv(events: &[Event]) -> String {
    let mut out = String::from("subsystem,kind,name,detail,component,time_ns,dur_ns,value,unit\n");
    for event in events {
        out.push_str(event.subsystem.label());
        out.push(',');
        out.push_str(event.kind.label());
        out.push(',');
        csv_field(event.name, &mut out);
        out.push(',');
        if let Some(detail) = &event.detail {
            csv_field(detail, &mut out);
        }
        out.push(',');
        if let Some(component) = event.component {
            out.push_str(component.label());
        }
        let _ = write!(
            out,
            ",{},{},{},{}",
            fmt_num(event.time_ns),
            fmt_num(event.dur_ns),
            fmt_num(event.value),
            event.unit.label()
        );
        out.push('\n');
    }
    out
}

/// Formats a number the way the JSON writer does: integral values
/// without a fraction, everything else shortest-round-trip.
fn fmt_num(v: f64) -> String {
    JsonValue::Number(v).to_string()
}

fn chrome_tid(subsystem: Subsystem) -> f64 {
    // One Chrome "thread" lane per subsystem, in canonical order.
    (Subsystem::ALL
        .iter()
        .position(|s| *s == subsystem)
        .unwrap_or(0)
        + 1) as f64
}

/// Serializes events as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form), loadable in
/// `chrome://tracing` and Perfetto.
///
/// Mapping: spans become `"X"` (complete) events with microsecond
/// `ts`/`dur`; instants become `"i"`; counters, gauges and histogram
/// samples become `"C"` counter events. Each subsystem gets its own
/// thread lane.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let trace_events: Vec<JsonValue> = events
        .iter()
        .map(|event| {
            let mut args = Vec::new();
            if let Some(detail) = &event.detail {
                args.push(("detail", JsonValue::String(detail.clone())));
            }
            if let Some(component) = event.component {
                args.push((
                    "component",
                    JsonValue::String(component.label().to_string()),
                ));
            }
            let mut pairs = vec![
                ("name", JsonValue::String(event.name.to_string())),
                (
                    "cat",
                    JsonValue::String(event.subsystem.label().to_string()),
                ),
                ("pid", JsonValue::Number(1.0)),
                ("tid", JsonValue::Number(chrome_tid(event.subsystem))),
                // trace_event timestamps are microseconds.
                ("ts", JsonValue::Number(event.time_ns / 1000.0)),
            ];
            match event.kind {
                EventKind::Span => {
                    pairs.push(("ph", JsonValue::String("X".to_string())));
                    pairs.push(("dur", JsonValue::Number(event.dur_ns / 1000.0)));
                }
                EventKind::Instant => {
                    pairs.push(("ph", JsonValue::String("i".to_string())));
                    pairs.push(("s", JsonValue::String("t".to_string())));
                }
                EventKind::Counter | EventKind::Gauge | EventKind::Histogram => {
                    pairs.push(("ph", JsonValue::String("C".to_string())));
                    args.push(("value", JsonValue::Number(event.value)));
                }
            }
            pairs.push(("args", JsonValue::object(args)));
            JsonValue::object(pairs)
        })
        .collect();
    JsonValue::object([("traceEvents", JsonValue::Array(trace_events))]).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Component, Unit};
    use crate::recorder::Recorder;
    use crate::ring::RingRecorder;

    fn sample_events() -> Vec<Event> {
        let ring = RingRecorder::new(16);
        ring.span(Subsystem::Exec, "layer", 1000.0, 2500.0);
        ring.span_with(Subsystem::Serve, "request", 0.0, 5000.0, || {
            "tenant=a, batch=4".to_string()
        });
        ring.energy(
            Subsystem::Arch,
            "slice_access",
            Component::Interconnect,
            33.5,
        );
        ring.gauge(Subsystem::Serve, "queue_depth", 500.0, 3.0);
        ring.instant(Subsystem::Serve, "reject", 600.0, || "capacity".to_string());
        ring.histogram(Subsystem::Serve, "latency", 4096.0, Unit::Nanoseconds);
        ring.events()
    }

    #[test]
    fn json_export_parses_back_with_all_fields() {
        let events = sample_events();
        let doc = JsonValue::parse(&to_json(&events)).unwrap();
        let items = doc.as_array().unwrap();
        assert_eq!(items.len(), events.len());
        assert_eq!(items[0].require_str("subsystem").unwrap(), "exec");
        assert_eq!(items[0].require_f64("dur_ns").unwrap(), 2500.0);
        assert_eq!(items[2].require_str("component").unwrap(), "interconnect");
        assert_eq!(items[2].require_str("unit").unwrap(), "pJ");
        assert_eq!(items[4].require_str("detail").unwrap(), "capacity");
    }

    #[test]
    fn csv_export_has_header_and_quotes_commas() {
        let csv = to_csv(&sample_events());
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "subsystem,kind,name,detail,component,time_ns,dur_ns,value,unit"
        );
        assert_eq!(lines.clone().count(), 6);
        let request_row = lines.find(|l| l.contains("request")).unwrap();
        assert!(
            request_row.contains("\"tenant=a, batch=4\""),
            "comma-bearing detail must be quoted: {request_row}"
        );
    }

    #[test]
    fn chrome_trace_maps_kinds_to_phases() {
        let doc = JsonValue::parse(&to_chrome_trace(&sample_events())).unwrap();
        let items = doc.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(items[0].require_str("ph").unwrap(), "X");
        assert_eq!(items[0].require_f64("dur").unwrap(), 2.5);
        assert_eq!(items[0].require_f64("ts").unwrap(), 1.0);
        assert_eq!(items[2].require_str("ph").unwrap(), "C");
        assert_eq!(
            items[2].get("args").unwrap().require_f64("value").unwrap(),
            33.5
        );
        assert_eq!(items[4].require_str("ph").unwrap(), "i");
        // Lanes: serve events share a tid distinct from exec's.
        let tid_exec = items[0].require_f64("tid").unwrap();
        let tid_serve = items[1].require_f64("tid").unwrap();
        assert_ne!(tid_exec, tid_serve);
    }

    #[test]
    fn format_parse_and_render_round_trip() {
        for format in ExportFormat::ALL {
            assert_eq!(ExportFormat::parse(format.label()).unwrap(), format);
        }
        assert!(matches!(
            ExportFormat::parse("yaml"),
            Err(ObsError::UnknownFormat { .. })
        ));
        let events = sample_events();
        assert_eq!(ExportFormat::Json.render(&events), to_json(&events));
        assert_eq!(ExportFormat::Csv.render(&events), to_csv(&events));
        assert_eq!(
            ExportFormat::Chrome.render(&events),
            to_chrome_trace(&events)
        );
        assert_eq!("csv".parse::<ExportFormat>().unwrap(), ExportFormat::Csv);
    }

    #[test]
    fn empty_event_list_exports_cleanly() {
        assert_eq!(to_json(&[]), "[]");
        assert_eq!(to_csv(&[]).lines().count(), 1);
        let doc = JsonValue::parse(&to_chrome_trace(&[])).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }
}
