//! Event serializers: JSON, CSV, and Chrome `trace_event`.
//!
//! All exporters are pure `&[Event] -> String` functions: they preserve
//! the order of the input slice and contain no clocks or randomness, so
//! a deterministic event stream exports to byte-identical text. Callers
//! that collected events concurrently (e.g. from a shared
//! [`crate::RingRecorder`]) should sort before exporting.

use std::fmt::Write as _;

use crate::error::ObsError;
use crate::event::{Event, EventKind, Subsystem};
use crate::json::JsonValue;

/// Output formats understood by `experiments obs export`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExportFormat {
    /// Structured JSON array of event objects.
    Json,
    /// Flat CSV, one event per row.
    Csv,
    /// Chrome `trace_event` JSON for `chrome://tracing` / Perfetto.
    Chrome,
}

impl ExportFormat {
    /// All formats in CLI help order.
    pub const ALL: [ExportFormat; 3] =
        [ExportFormat::Json, ExportFormat::Csv, ExportFormat::Chrome];

    /// Stable CLI label.
    pub fn label(self) -> &'static str {
        match self {
            ExportFormat::Json => "json",
            ExportFormat::Csv => "csv",
            ExportFormat::Chrome => "chrome",
        }
    }

    /// Parses a CLI format name.
    ///
    /// # Errors
    ///
    /// [`ObsError::UnknownFormat`] for anything but `json`, `csv`, or
    /// `chrome`.
    pub fn parse(name: &str) -> Result<ExportFormat, ObsError> {
        match name {
            "json" => Ok(ExportFormat::Json),
            "csv" => Ok(ExportFormat::Csv),
            "chrome" => Ok(ExportFormat::Chrome),
            other => Err(ObsError::UnknownFormat {
                name: other.to_string(),
            }),
        }
    }

    /// Serializes `events` in this format.
    pub fn render(self, events: &[Event]) -> String {
        match self {
            ExportFormat::Json => to_json(events),
            ExportFormat::Csv => to_csv(events),
            ExportFormat::Chrome => to_chrome_trace(events),
        }
    }
}

impl std::fmt::Display for ExportFormat {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ExportFormat {
    type Err = ObsError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ExportFormat::parse(s)
    }
}

fn event_to_json(event: &Event) -> JsonValue {
    let mut pairs = vec![
        (
            "subsystem",
            JsonValue::String(event.subsystem.label().to_string()),
        ),
        ("kind", JsonValue::String(event.kind.label().to_string())),
        ("name", JsonValue::String(event.name.to_string())),
        ("time_ns", JsonValue::Number(event.time_ns)),
        ("dur_ns", JsonValue::Number(event.dur_ns)),
        ("value", JsonValue::Number(event.value)),
        ("unit", JsonValue::String(event.unit.label().to_string())),
    ];
    if let Some(detail) = &event.detail {
        pairs.push(("detail", JsonValue::String(detail.clone())));
    }
    if let Some(component) = event.component {
        pairs.push((
            "component",
            JsonValue::String(component.label().to_string()),
        ));
    }
    JsonValue::object(pairs)
}

/// Serializes events as a JSON array of flat objects.
///
/// ```
/// use bfree_obs::{to_json, JsonValue, Recorder, RingRecorder, Subsystem};
///
/// let ring = RingRecorder::new(16);
/// ring.span(Subsystem::Exec, "layer", 0.0, 42.0);
/// let text = to_json(&ring.events());
/// let doc = JsonValue::parse(&text).unwrap();
/// assert_eq!(doc.as_array().unwrap().len(), 1);
/// ```
pub fn to_json(events: &[Event]) -> String {
    JsonValue::Array(events.iter().map(event_to_json).collect()).to_string()
}

fn csv_field(text: &str, out: &mut String) {
    if text.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for c in text.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(text);
    }
}

/// Serializes events as CSV with a fixed header row.
///
/// Columns: `subsystem,kind,name,detail,component,time_ns,dur_ns,value,unit`.
/// Empty cells for absent detail/component; fields containing commas,
/// quotes, or newlines are RFC 4180-quoted.
pub fn to_csv(events: &[Event]) -> String {
    let mut out = String::from("subsystem,kind,name,detail,component,time_ns,dur_ns,value,unit\n");
    for event in events {
        out.push_str(event.subsystem.label());
        out.push(',');
        out.push_str(event.kind.label());
        out.push(',');
        csv_field(event.name, &mut out);
        out.push(',');
        if let Some(detail) = &event.detail {
            csv_field(detail, &mut out);
        }
        out.push(',');
        if let Some(component) = event.component {
            out.push_str(component.label());
        }
        let _ = write!(
            out,
            ",{},{},{},{}",
            fmt_num(event.time_ns),
            fmt_num(event.dur_ns),
            fmt_num(event.value),
            event.unit.label()
        );
        out.push('\n');
    }
    out
}

/// Formats a number the way the JSON writer does: integral values
/// without a fraction, everything else shortest-round-trip.
fn fmt_num(v: f64) -> String {
    JsonValue::Number(v).to_string()
}

/// One Chrome "process" per subsystem, in canonical order.
fn chrome_pid(subsystem: Subsystem) -> f64 {
    (Subsystem::ALL
        .iter()
        .position(|s| *s == subsystem)
        .unwrap_or(0)
        + 1) as f64
}

/// Slack when comparing span endpoints during lane assignment, matching
/// the trace reconstructor's containment epsilon.
const LANE_EPS_NS: f64 = 1e-6;

/// Assigns each span a concurrency lane within its subsystem: nested
/// spans share their ancestor's lane (Chrome stacks contained `"X"`
/// events), while *overlapping* spans — concurrent serving dispatches,
/// parallel workers — spill to the first free lane. The result is one
/// Perfetto row per concurrency slot instead of every span of a
/// subsystem collapsing into a single row.
///
/// Returns `(per-event lane index, lanes used per subsystem)`; non-span
/// events carry lane 0 (the subsystem's bookkeeping row).
fn assign_lanes(events: &[Event]) -> (Vec<usize>, Vec<(Subsystem, usize)>) {
    let mut span_order: Vec<usize> = (0..events.len())
        .filter(|&i| events[i].kind == EventKind::Span)
        .collect();
    // Parents before children (start asc, end desc), emission order as
    // the tiebreak: the same canonical order the trace reconstructor
    // nests by, so lanes and trees agree.
    span_order.sort_by(|&a, &b| {
        let (ea, eb) = (&events[a], &events[b]);
        ea.time_ns
            .total_cmp(&eb.time_ns)
            .then((eb.time_ns + eb.dur_ns).total_cmp(&(ea.time_ns + ea.dur_ns)))
            .then(a.cmp(&b))
    });
    let mut lanes: Vec<usize> = vec![0; events.len()];
    // Per subsystem, per lane: the stack of open span end-times.
    let mut open: Vec<(Subsystem, Vec<Vec<f64>>)> = Vec::new();
    for idx in span_order {
        let event = &events[idx];
        let start = event.time_ns;
        let end = event.time_ns + event.dur_ns;
        let slot = match open.iter().position(|(s, _)| *s == event.subsystem) {
            Some(slot) => slot,
            None => {
                open.push((event.subsystem, Vec::new()));
                open.len() - 1
            }
        };
        let subsystem_lanes = &mut open[slot].1;
        let mut assigned = None;
        for (lane, stack) in subsystem_lanes.iter_mut().enumerate() {
            // Spans that ended before this one starts are closed for
            // good (spans arrive start-ordered), so popping is safe
            // whether or not this lane is chosen.
            while stack.last().is_some_and(|&e| e <= start + LANE_EPS_NS) {
                stack.pop();
            }
            // The lane fits if it is idle or its innermost open span
            // fully contains this one (proper nesting).
            if stack.last().is_none_or(|&e| end <= e + LANE_EPS_NS) {
                stack.push(end);
                assigned = Some(lane);
                break;
            }
        }
        lanes[idx] = match assigned {
            Some(lane) => lane + 1,
            None => {
                subsystem_lanes.push(vec![end]);
                subsystem_lanes.len()
            }
        };
    }
    let used = open
        .into_iter()
        .map(|(subsystem, lanes)| (subsystem, lanes.len()))
        .collect();
    (lanes, used)
}

/// Serializes events as Chrome `trace_event` JSON (the
/// `{"traceEvents": [...]}` object form), loadable in
/// `chrome://tracing` and Perfetto.
///
/// Mapping: spans become `"X"` (complete) events with microsecond
/// `ts`/`dur`; instants become `"i"`; counters, gauges and histogram
/// samples become `"C"` counter events. Each subsystem is a Chrome
/// *process* (`"M"` `process_name` metadata) and each concurrency slot
/// within it a named thread lane, so concurrent serving dispatches and
/// parallel workers render as separate rows instead of collapsing into
/// one.
pub fn to_chrome_trace(events: &[Event]) -> String {
    let (lanes, lanes_used) = assign_lanes(events);
    let mut trace_events: Vec<JsonValue> = Vec::new();
    // Process metadata for every subsystem present, thread metadata for
    // every lane in use (lane 0 is the counters/instants row).
    let mut present: Vec<Subsystem> = Vec::new();
    for subsystem in Subsystem::ALL {
        if events.iter().any(|e| e.subsystem == subsystem) {
            present.push(subsystem);
        }
    }
    for subsystem in &present {
        trace_events.push(JsonValue::object([
            ("name", JsonValue::String("process_name".to_string())),
            ("ph", JsonValue::String("M".to_string())),
            ("pid", JsonValue::Number(chrome_pid(*subsystem))),
            ("tid", JsonValue::Number(0.0)),
            (
                "args",
                JsonValue::object([(
                    "name",
                    JsonValue::String(format!("bfree/{}", subsystem.label())),
                )]),
            ),
        ]));
        let span_lanes = lanes_used
            .iter()
            .find(|(s, _)| s == subsystem)
            .map_or(0, |(_, n)| *n);
        for lane in 0..=span_lanes {
            let label = if lane == 0 {
                "events".to_string()
            } else {
                format!("lane-{lane}")
            };
            trace_events.push(JsonValue::object([
                ("name", JsonValue::String("thread_name".to_string())),
                ("ph", JsonValue::String("M".to_string())),
                ("pid", JsonValue::Number(chrome_pid(*subsystem))),
                ("tid", JsonValue::Number(lane as f64)),
                (
                    "args",
                    JsonValue::object([("name", JsonValue::String(label))]),
                ),
            ]));
        }
    }
    for (idx, event) in events.iter().enumerate() {
        let mut args = Vec::new();
        if let Some(detail) = &event.detail {
            args.push(("detail", JsonValue::String(detail.clone())));
        }
        if let Some(component) = event.component {
            args.push((
                "component",
                JsonValue::String(component.label().to_string()),
            ));
        }
        let mut pairs = vec![
            ("name", JsonValue::String(event.name.to_string())),
            (
                "cat",
                JsonValue::String(event.subsystem.label().to_string()),
            ),
            ("pid", JsonValue::Number(chrome_pid(event.subsystem))),
            ("tid", JsonValue::Number(lanes[idx] as f64)),
            // trace_event timestamps are microseconds.
            ("ts", JsonValue::Number(event.time_ns / 1000.0)),
        ];
        match event.kind {
            EventKind::Span => {
                pairs.push(("ph", JsonValue::String("X".to_string())));
                pairs.push(("dur", JsonValue::Number(event.dur_ns / 1000.0)));
            }
            EventKind::Instant => {
                pairs.push(("ph", JsonValue::String("i".to_string())));
                pairs.push(("s", JsonValue::String("t".to_string())));
            }
            EventKind::Counter | EventKind::Gauge | EventKind::Histogram => {
                pairs.push(("ph", JsonValue::String("C".to_string())));
                args.push(("value", JsonValue::Number(event.value)));
            }
        }
        pairs.push(("args", JsonValue::object(args)));
        trace_events.push(JsonValue::object(pairs));
    }
    JsonValue::object([("traceEvents", JsonValue::Array(trace_events))]).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Component, Unit};
    use crate::recorder::Recorder;
    use crate::ring::RingRecorder;

    fn sample_events() -> Vec<Event> {
        let ring = RingRecorder::new(16);
        ring.span(Subsystem::Exec, "layer", 1000.0, 2500.0);
        ring.span_with(Subsystem::Serve, "request", 0.0, 5000.0, || {
            "tenant=a, batch=4".to_string()
        });
        ring.energy(
            Subsystem::Arch,
            "slice_access",
            Component::Interconnect,
            33.5,
        );
        ring.gauge(Subsystem::Serve, "queue_depth", 500.0, 3.0);
        ring.instant(Subsystem::Serve, "reject", 600.0, || "capacity".to_string());
        ring.histogram(Subsystem::Serve, "latency", 4096.0, Unit::Nanoseconds);
        ring.events()
    }

    #[test]
    fn json_export_parses_back_with_all_fields() {
        let events = sample_events();
        let doc = JsonValue::parse(&to_json(&events)).unwrap();
        let items = doc.as_array().unwrap();
        assert_eq!(items.len(), events.len());
        assert_eq!(items[0].require_str("subsystem").unwrap(), "exec");
        assert_eq!(items[0].require_f64("dur_ns").unwrap(), 2500.0);
        assert_eq!(items[2].require_str("component").unwrap(), "interconnect");
        assert_eq!(items[2].require_str("unit").unwrap(), "pJ");
        assert_eq!(items[4].require_str("detail").unwrap(), "capacity");
    }

    #[test]
    fn csv_export_has_header_and_quotes_commas() {
        let csv = to_csv(&sample_events());
        let mut lines = csv.lines();
        assert_eq!(
            lines.next().unwrap(),
            "subsystem,kind,name,detail,component,time_ns,dur_ns,value,unit"
        );
        assert_eq!(lines.clone().count(), 6);
        let request_row = lines.find(|l| l.contains("request")).unwrap();
        assert!(
            request_row.contains("\"tenant=a, batch=4\""),
            "comma-bearing detail must be quoted: {request_row}"
        );
    }

    #[test]
    fn chrome_trace_maps_kinds_to_phases() {
        let doc = JsonValue::parse(&to_chrome_trace(&sample_events())).unwrap();
        let all = doc.get("traceEvents").unwrap().as_array().unwrap();
        // Metadata first, then the payload events in input order.
        let items: Vec<_> = all
            .iter()
            .filter(|e| e.require_str("ph").unwrap() != "M")
            .collect();
        assert_eq!(items[0].require_str("ph").unwrap(), "X");
        assert_eq!(items[0].require_f64("dur").unwrap(), 2.5);
        assert_eq!(items[0].require_f64("ts").unwrap(), 1.0);
        assert_eq!(items[2].require_str("ph").unwrap(), "C");
        assert_eq!(
            items[2].get("args").unwrap().require_f64("value").unwrap(),
            33.5
        );
        assert_eq!(items[4].require_str("ph").unwrap(), "i");
        // Subsystems are separate processes: serve events carry a pid
        // distinct from exec's.
        let pid_exec = items[0].require_f64("pid").unwrap();
        let pid_serve = items[1].require_f64("pid").unwrap();
        assert_ne!(pid_exec, pid_serve);
        // Both processes and their lanes are named via "M" metadata.
        let meta: Vec<_> = all
            .iter()
            .filter(|e| e.require_str("ph").unwrap() == "M")
            .collect();
        assert!(meta
            .iter()
            .any(|e| e.get("args").unwrap().require_str("name").unwrap() == "bfree/exec"));
        assert!(meta
            .iter()
            .any(|e| e.get("args").unwrap().require_str("name").unwrap() == "lane-1"));
    }

    #[test]
    fn chrome_lanes_separate_overlapping_spans_and_share_nested_ones() {
        let ring = RingRecorder::new(16);
        // Two overlapping serve dispatches (concurrent slots) plus one
        // span nested inside the first.
        ring.span(Subsystem::Serve, "dispatch", 0.0, 100.0);
        ring.span(Subsystem::Serve, "dispatch", 50.0, 100.0);
        ring.span(Subsystem::Serve, "stage", 10.0, 20.0);
        ring.gauge(Subsystem::Serve, "queue/depth", 0.0, 1.0);
        let doc = JsonValue::parse(&to_chrome_trace(&ring.events())).unwrap();
        let spans: Vec<f64> = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .filter(|e| e.require_str("ph").unwrap() == "X")
            .map(|e| e.require_f64("tid").unwrap())
            .collect();
        // Input order: dispatch A, dispatch B, nested stage.
        assert_eq!(spans.len(), 3);
        assert_ne!(spans[0], spans[1], "overlapping dispatches need lanes");
        assert_eq!(spans[0], spans[2], "a nested span shares its parent lane");
        // The gauge stays on the subsystem's bookkeeping row (tid 0).
        let gauge_tid = doc
            .get("traceEvents")
            .unwrap()
            .as_array()
            .unwrap()
            .iter()
            .find(|e| e.require_str("ph").unwrap() == "C")
            .unwrap()
            .require_f64("tid")
            .unwrap();
        assert_eq!(gauge_tid, 0.0);
    }

    /// Compile-time exhaustiveness over the event taxonomy: adding a
    /// [`Subsystem`] or [`EventKind`] variant fails this match until the
    /// author re-audits the exporters — the regression that silently
    /// dropped a new subsystem from an export can no longer compile.
    fn assert_variant_audited(subsystem: Subsystem, kind: EventKind) {
        match subsystem {
            // Every arm is exported by to_json/to_csv/to_chrome_trace
            // via Subsystem::label() and chrome_pid(); extend the test
            // below when adding a variant here.
            Subsystem::Arch
            | Subsystem::Bce
            | Subsystem::Exec
            | Subsystem::Par
            | Subsystem::Serve
            | Subsystem::Fault
            | Subsystem::Model
            | Subsystem::Integrity => {}
        }
        match kind {
            EventKind::Span
            | EventKind::Instant
            | EventKind::Counter
            | EventKind::Gauge
            | EventKind::Histogram => {}
        }
    }

    #[test]
    fn every_subsystem_and_kind_round_trips_through_every_exporter() {
        let mut events = Vec::new();
        for (i, subsystem) in Subsystem::ALL.into_iter().enumerate() {
            for (j, kind) in [
                EventKind::Span,
                EventKind::Instant,
                EventKind::Counter,
                EventKind::Gauge,
                EventKind::Histogram,
            ]
            .into_iter()
            .enumerate()
            {
                assert_variant_audited(subsystem, kind);
                events.push(Event {
                    subsystem,
                    kind,
                    name: "audit",
                    detail: Some(format!("cell={i}.{j}")),
                    component: None,
                    time_ns: (i * 10 + j) as f64,
                    dur_ns: if kind == EventKind::Span { 1.0 } else { 0.0 },
                    value: 1.0,
                    unit: Unit::Count,
                });
            }
        }
        // ALL must enumerate exactly the variants audited above.
        assert_eq!(Subsystem::ALL.len(), 8);

        let json = JsonValue::parse(&to_json(&events)).unwrap();
        assert_eq!(json.as_array().unwrap().len(), events.len());
        let csv = to_csv(&events);
        assert_eq!(csv.lines().count(), events.len() + 1);
        let chrome = JsonValue::parse(&to_chrome_trace(&events)).unwrap();
        let chrome_items = chrome.get("traceEvents").unwrap().as_array().unwrap();
        for subsystem in Subsystem::ALL {
            // Each subsystem appears in every export and owns a distinct
            // Chrome process.
            assert!(
                csv.lines().any(|l| l.starts_with(subsystem.label())),
                "{subsystem} missing from CSV"
            );
            assert!(
                json.as_array()
                    .unwrap()
                    .iter()
                    .any(|e| e.require_str("subsystem").unwrap() == subsystem.label()),
                "{subsystem} missing from JSON"
            );
            let pids: Vec<f64> = chrome_items
                .iter()
                .filter(|e| {
                    e.get("cat")
                        .and_then(|c| c.as_str())
                        .is_some_and(|c| c == subsystem.label())
                })
                .map(|e| e.require_f64("pid").unwrap())
                .collect();
            assert_eq!(pids.len(), 5, "{subsystem} missing from Chrome trace");
            for other in Subsystem::ALL {
                if other != subsystem {
                    assert_ne!(chrome_pid(subsystem), chrome_pid(other));
                }
            }
        }
    }

    #[test]
    fn format_parse_and_render_round_trip() {
        for format in ExportFormat::ALL {
            assert_eq!(ExportFormat::parse(format.label()).unwrap(), format);
        }
        assert!(matches!(
            ExportFormat::parse("yaml"),
            Err(ObsError::UnknownFormat { .. })
        ));
        let events = sample_events();
        assert_eq!(ExportFormat::Json.render(&events), to_json(&events));
        assert_eq!(ExportFormat::Csv.render(&events), to_csv(&events));
        assert_eq!(
            ExportFormat::Chrome.render(&events),
            to_chrome_trace(&events)
        );
        assert_eq!("csv".parse::<ExportFormat>().unwrap(), ExportFormat::Csv);
    }

    #[test]
    fn empty_event_list_exports_cleanly() {
        assert_eq!(to_json(&[]), "[]");
        assert_eq!(to_csv(&[]).lines().count(), 1);
        let doc = JsonValue::parse(&to_chrome_trace(&[])).unwrap();
        assert_eq!(doc.get("traceEvents").unwrap().as_array().unwrap().len(), 0);
    }
}
