//! Critical-path attribution over recorded event streams.
//!
//! Two complementary views of "where did the time go":
//!
//! * **Stage sums** ([`fold_stage_latency`] / [`fold_stage_energy`]):
//!   fold the non-span counters of a trace *in emission order*. The
//!   instrumented simulators emit cost counters in the exact order
//!   their aggregate reports merge breakdowns, so the folded f64 sums
//!   are bit-identical to the report — the invariant `experiments
//!   critical` gates on with 0.0 divergence, extending the
//!   `experiments attribution` check down to reconstructed traces.
//! * **Per-request paths** ([`RequestPaths`]): stitch the serving
//!   engine's request-tagged events (`request=<id>` detail fields) into
//!   one [`RequestPath`] per completed request — queue wait, service,
//!   retry backoff — and pull exact nearest-rank p50/p95/p99 *exemplar*
//!   requests out of the population, so "what does the p99 look like"
//!   has a concrete trace as its answer, not just a number.

use std::collections::BTreeMap;

use crate::event::{Component, Event, EventKind, Subsystem, Unit};

/// One stage's accumulated cost, folded in emission order.
#[derive(Debug, Clone, PartialEq)]
pub struct StageSum {
    /// Emitting subsystem.
    pub subsystem: Subsystem,
    /// Counter event name (e.g. `phase/compute`, `stage/execute`).
    pub name: &'static str,
    /// Hardware component, when the counter carried one.
    pub component: Option<Component>,
    /// Sum of values in emission order (ns or pJ).
    pub total: f64,
    /// Events folded into this stage.
    pub count: u64,
}

fn fold_counters(events: &[Event], unit: Unit) -> Vec<StageSum> {
    // First-seen key order, f64 accumulation strictly in emission
    // order: the pair of properties that makes the sums reproduce the
    // aggregate models bit for bit.
    let mut order: Vec<(Subsystem, &'static str, Option<Component>)> = Vec::new();
    let mut sums: BTreeMap<(Subsystem, &'static str, Option<Component>), StageSum> =
        BTreeMap::new();
    for event in events {
        if event.kind != EventKind::Counter || event.unit != unit {
            continue;
        }
        let key = (event.subsystem, event.name, event.component);
        let entry = sums.entry(key).or_insert_with(|| {
            order.push(key);
            StageSum {
                subsystem: event.subsystem,
                name: event.name,
                component: event.component,
                total: 0.0,
                count: 0,
            }
        });
        entry.total += event.value;
        entry.count += 1;
    }
    order
        .into_iter()
        .map(|key| sums.remove(&key).expect("key recorded on first sight"))
        .collect()
}

/// Folds every `Counter`+`Nanoseconds` event into per-stage latency
/// sums, in first-emission order.
pub fn fold_stage_latency(events: &[Event]) -> Vec<StageSum> {
    fold_counters(events, Unit::Nanoseconds)
}

/// Folds every `Counter`+`Picojoules` event into per-stage energy sums,
/// in first-emission order.
pub fn fold_stage_energy(events: &[Event]) -> Vec<StageSum> {
    fold_counters(events, Unit::Picojoules)
}

/// Extracts the value of `key` from a space-separated `k=v` detail
/// string (`"request=7 tenant=bert"` → `detail_field(d, "request") ==
/// Some("7")`).
pub fn detail_field<'a>(detail: &'a str, key: &str) -> Option<&'a str> {
    detail.split_whitespace().find_map(|pair| {
        let (k, v) = pair.split_once('=')?;
        (k == key).then_some(v)
    })
}

fn detail_u64(event: &Event, key: &str) -> Option<u64> {
    detail_field(event.detail.as_deref()?, key)?.parse().ok()
}

/// One completed request's reconstructed latency path.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestPath {
    /// The serving engine's request id.
    pub request_id: u64,
    /// Tenant name from the arrival event, when recorded.
    pub tenant: Option<String>,
    /// Virtual arrival time (ns), when the arrival event was recorded.
    pub arrival_ns: Option<f64>,
    /// Submit → final dispatch (includes any retry backoff waits).
    pub queue_ns: f64,
    /// Final dispatch → completion.
    pub service_ns: f64,
    /// Submit → completion. Exactly `queue_ns + service_ns`.
    pub total_ns: f64,
    /// Faulted service attempts that were retried.
    pub retries: u32,
    /// Total backoff the retry policy scheduled for this request.
    pub backoff_ns: f64,
}

impl RequestPath {
    /// The path as named stages summing exactly to `total_ns`. Backoff
    /// is carved out of the queue stage (a retried request waits out
    /// its backoff *in* the submit→dispatch window).
    pub fn stages(&self) -> [(&'static str, f64); 3] {
        let backoff = self.backoff_ns.min(self.queue_ns);
        [
            ("queue_wait", self.queue_ns - backoff),
            ("retry_backoff", backoff),
            ("service", self.service_ns),
        ]
    }

    /// The dominant stage of this request's path.
    pub fn dominant_stage(&self) -> &'static str {
        self.stages()
            .into_iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map(|(name, _)| name)
            .unwrap_or("service")
    }
}

/// Every completed request's path, reconstructed from a recorded
/// serving trace.
#[derive(Debug, Clone, Default)]
pub struct RequestPaths {
    paths: Vec<RequestPath>,
}

impl RequestPaths {
    /// Stitches request-tagged serve/fault events into per-request
    /// paths. A request appears once it has both its `latency/queue`
    /// and `latency/total` histogram samples (emitted on completion);
    /// arrival and retry events enrich the path when present.
    pub fn from_events(events: &[Event]) -> RequestPaths {
        #[derive(Default)]
        struct Partial {
            tenant: Option<String>,
            arrival_ns: Option<f64>,
            queue_ns: Option<f64>,
            total_ns: Option<f64>,
            retries: u32,
            backoff_ns: f64,
        }
        let mut partials: BTreeMap<u64, Partial> = BTreeMap::new();
        for event in events {
            let Some(id) = detail_u64(event, "request") else {
                continue;
            };
            let partial = partials.entry(id).or_default();
            match (event.subsystem, event.kind, event.name) {
                (Subsystem::Serve, EventKind::Instant, "request/arrival") => {
                    partial.arrival_ns = Some(event.time_ns);
                    partial.tenant = event
                        .detail
                        .as_deref()
                        .and_then(|d| detail_field(d, "tenant"))
                        .map(str::to_string);
                }
                (Subsystem::Fault, EventKind::Instant, "request/retry") => {
                    partial.retries += 1;
                    partial.backoff_ns += event
                        .detail
                        .as_deref()
                        .and_then(|d| detail_field(d, "backoff_ns"))
                        .and_then(|v| v.parse::<f64>().ok())
                        .unwrap_or(0.0);
                }
                (Subsystem::Serve, EventKind::Histogram, "latency/queue") => {
                    partial.queue_ns = Some(event.value);
                }
                (Subsystem::Serve, EventKind::Histogram, "latency/total") => {
                    partial.total_ns = Some(event.value);
                }
                _ => {}
            }
        }
        let paths = partials
            .into_iter()
            .filter_map(|(request_id, p)| {
                let (queue_ns, total_ns) = (p.queue_ns?, p.total_ns?);
                Some(RequestPath {
                    request_id,
                    tenant: p.tenant,
                    arrival_ns: p.arrival_ns,
                    queue_ns,
                    service_ns: total_ns - queue_ns,
                    total_ns,
                    retries: p.retries,
                    backoff_ns: p.backoff_ns,
                })
            })
            .collect();
        RequestPaths { paths }
    }

    /// The paths, in request-id order.
    pub fn paths(&self) -> &[RequestPath] {
        &self.paths
    }

    /// Completed requests reconstructed.
    pub fn len(&self) -> usize {
        self.paths.len()
    }

    /// Whether no request completed in the trace.
    pub fn is_empty(&self) -> bool {
        self.paths.is_empty()
    }

    /// The *exact* nearest-rank percentile exemplar by total latency:
    /// the concrete request sitting at percentile `p` of the completed
    /// population (not a sketch — the full population is in hand).
    pub fn exemplar(&self, p: f64) -> Option<&RequestPath> {
        if self.paths.is_empty() {
            return None;
        }
        let mut by_latency: Vec<&RequestPath> = self.paths.iter().collect();
        by_latency.sort_by(|a, b| {
            a.total_ns
                .total_cmp(&b.total_ns)
                .then(a.request_id.cmp(&b.request_id))
        });
        let rank = ((p / 100.0) * by_latency.len() as f64).ceil().max(1.0) as usize;
        Some(by_latency[rank.min(by_latency.len()) - 1])
    }

    /// Mean total latency over the completed population (0 when empty).
    pub fn mean_total_ns(&self) -> f64 {
        if self.paths.is_empty() {
            return 0.0;
        }
        self.paths.iter().map(|p| p.total_ns).sum::<f64>() / self.paths.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::Recorder;
    use crate::ring::RingRecorder;

    #[test]
    fn stage_folding_preserves_emission_order_and_bits() {
        let ring = RingRecorder::new(64);
        // Values chosen so that addition order changes the f64 result.
        let values = [1e16, 1.0, -1e16, 1.0];
        for v in values {
            ring.counter(Subsystem::Exec, "phase/compute", v, Unit::Nanoseconds);
        }
        ring.counter(Subsystem::Exec, "phase/writeback", 5.0, Unit::Nanoseconds);
        ring.energy(Subsystem::Exec, "component_energy", Component::Dram, 3.0);
        let stages = fold_stage_latency(&ring.events());
        assert_eq!(stages.len(), 2);
        assert_eq!(stages[0].name, "phase/compute");
        let expected = values.iter().fold(0.0, |acc, v| acc + v);
        assert_eq!(stages[0].total.to_bits(), expected.to_bits());
        assert_eq!(stages[0].count, 4);
        assert_eq!(stages[1].name, "phase/writeback");
        let energy = fold_stage_energy(&ring.events());
        assert_eq!(energy.len(), 1);
        assert_eq!(energy[0].component, Some(Component::Dram));
    }

    #[test]
    fn detail_field_parses_kv_pairs() {
        assert_eq!(detail_field("request=7 tenant=bert", "request"), Some("7"));
        assert_eq!(
            detail_field("request=7 tenant=bert", "tenant"),
            Some("bert")
        );
        assert_eq!(detail_field("request=7", "attempt"), None);
        assert_eq!(detail_field("no pairs here", "request"), None);
    }

    fn serve_trace() -> Vec<Event> {
        let ring = RingRecorder::new(128);
        for (id, total) in [(0u64, 500.0), (1, 900.0), (2, 300.0)] {
            ring.instant(
                Subsystem::Serve,
                "request/arrival",
                10.0 * id as f64,
                || format!("request={id} tenant=lstm"),
            );
            ring.histogram_with(
                Subsystem::Serve,
                "latency/queue",
                100.0,
                Unit::Nanoseconds,
                || format!("request={id}"),
            );
            ring.histogram_with(
                Subsystem::Serve,
                "latency/total",
                total,
                Unit::Nanoseconds,
                || format!("request={id}"),
            );
        }
        ring.instant(Subsystem::Fault, "request/retry", 0.0, || {
            "request=1 attempt=1 backoff_ns=50".to_string()
        });
        // An incomplete request: arrival only, never completed.
        ring.instant(Subsystem::Serve, "request/arrival", 99.0, || {
            "request=9 tenant=lstm".to_string()
        });
        ring.events()
    }

    #[test]
    fn request_paths_stitch_completed_requests_only() {
        let paths = RequestPaths::from_events(&serve_trace());
        assert_eq!(paths.len(), 3);
        let p1 = &paths.paths()[1];
        assert_eq!(p1.request_id, 1);
        assert_eq!(p1.tenant.as_deref(), Some("lstm"));
        assert_eq!(p1.queue_ns, 100.0);
        assert_eq!(p1.total_ns, 900.0);
        assert_eq!(p1.service_ns, 800.0);
        assert_eq!(p1.retries, 1);
        assert_eq!(p1.backoff_ns, 50.0);
        // Stages sum exactly to the total.
        let stage_sum: f64 = p1.stages().iter().map(|(_, ns)| ns).sum();
        assert_eq!(stage_sum, p1.total_ns);
        assert_eq!(p1.dominant_stage(), "service");
    }

    #[test]
    fn exemplars_are_exact_nearest_rank() {
        let paths = RequestPaths::from_events(&serve_trace());
        // Totals sorted: 300, 500, 900.
        assert_eq!(paths.exemplar(50.0).unwrap().total_ns, 500.0);
        assert_eq!(paths.exemplar(99.0).unwrap().total_ns, 900.0);
        assert_eq!(paths.exemplar(1.0).unwrap().total_ns, 300.0);
        assert!((paths.mean_total_ns() - 1700.0 / 3.0).abs() < 1e-9);
        assert!(RequestPaths::from_events(&[]).exemplar(50.0).is_none());
    }
}
