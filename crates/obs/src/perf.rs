//! Wall-clock self-profiling: measuring the *simulator*, not the
//! simulated hardware.
//!
//! Everything else in this crate records virtual nanoseconds from the
//! cost models. This module records host time: scoped [`WallTimer`]
//! guards around experiment phases and worker bodies, folded by any
//! [`Recorder`] and rendered as a Prometheus-style text exposition
//! snapshot ([`prometheus_text`]).
//!
//! Zero-cost rule: a [`WallTimer`] only reads the host clock when its
//! recorder [`is_enabled`](Recorder::is_enabled). Under
//! [`crate::NullRecorder`] the guard monomorphizes to a no-op — no
//! `Instant::now()` call, no drop work — so the default build stays
//! byte-identical to an unprofiled one. Wall-clock values are
//! inherently nondeterministic, which is why they live in their own
//! event namespace (`wall/...`) and are *never* emitted into the
//! deterministic trace streams the goldens and cross-checks fold.

use std::time::Instant;

use crate::agg::AggEntry;
use crate::event::{EventKind, Subsystem, Unit};
use crate::recorder::Recorder;

/// A scoped host-time timer: measures from construction to drop and
/// emits one `Histogram` event in nanoseconds.
///
/// ```
/// use bfree_obs::perf::WallTimer;
/// use bfree_obs::{AggRecorder, Subsystem};
///
/// let rec = AggRecorder::new();
/// {
///     let _t = WallTimer::start(&rec, Subsystem::Exec, "wall/pricing");
///     // ... timed work ...
/// }
/// assert_eq!(rec.snapshot()[0].count, 1);
/// ```
#[derive(Debug)]
pub struct WallTimer<'a, R: Recorder> {
    recorder: &'a R,
    subsystem: Subsystem,
    name: &'static str,
    /// `None` when the recorder is disabled: the whole guard erases.
    start: Option<Instant>,
}

impl<'a, R: Recorder> WallTimer<'a, R> {
    /// Starts timing `name` — only touching the host clock if
    /// `recorder` is enabled.
    pub fn start(recorder: &'a R, subsystem: Subsystem, name: &'static str) -> Self {
        WallTimer {
            recorder,
            subsystem,
            name,
            start: recorder.is_enabled().then(Instant::now),
        }
    }

    /// Stops early and returns the elapsed nanoseconds that were
    /// recorded (`None` when the recorder is disabled).
    pub fn stop(mut self) -> Option<f64> {
        self.finish()
    }

    fn finish(&mut self) -> Option<f64> {
        let start = self.start.take()?;
        let elapsed_ns = start.elapsed().as_nanos() as f64;
        self.recorder
            .histogram(self.subsystem, self.name, elapsed_ns, Unit::Nanoseconds);
        Some(elapsed_ns)
    }
}

impl<R: Recorder> Drop for WallTimer<'_, R> {
    fn drop(&mut self) {
        self.finish();
    }
}

/// Times `f` under `name` and returns its result; the elapsed wall time
/// is recorded iff `recorder` is enabled.
pub fn timed<R: Recorder, T>(
    recorder: &R,
    subsystem: Subsystem,
    name: &'static str,
    f: impl FnOnce() -> T,
) -> T {
    let _timer = WallTimer::start(recorder, subsystem, name);
    f()
}

/// Maps a metric name to a Prometheus-legal identifier: `[a-zA-Z0-9_]`,
/// everything else collapsed to `_`.
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect()
}

/// Escapes a label *value* per the exposition-format rules: backslash,
/// double quote, and newline must be backslash-encoded or the scrape
/// line is malformed (a raw quote even terminates the value early and
/// lets the rest inject arbitrary series).
pub(crate) fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

/// Renders aggregated entries as a Prometheus text-exposition snapshot.
///
/// Monotonic [`EventKind::Counter`] entries become `_total`-suffixed
/// `counter` families with a single sample per label set; everything
/// else becomes a `bfree_<subsystem>_<name>` summary-style family with
/// `_count` / `_sum` / `_min` / `_max` series and quantile series for
/// histogram entries (from the log2 sketch). `# TYPE` / `# HELP` are
/// emitted once per family — entries differing only in their
/// `unit`/`component` labels share one header. Label values are
/// escaped. Entries arrive in [`crate::AggRecorder::snapshot`]'s
/// deterministic key order, so identical aggregates render identical
/// text.
pub fn prometheus_text(entries: &[AggEntry]) -> String {
    use std::collections::BTreeSet;
    use std::fmt::Write as _;

    let mut out = String::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for entry in entries {
        let base = format!("bfree_{}_{}", entry.subsystem.label(), sanitize(entry.name));
        let counter = entry.kind == EventKind::Counter;
        let family = if counter {
            format!("{base}_total")
        } else {
            base
        };
        let mut labels = format!("unit=\"{}\"", escape_label(entry.unit.label()));
        if let Some(component) = entry.component {
            let _ = write!(labels, ",component=\"{}\"", escape_label(component.label()));
        }
        if seen.insert(family.clone()) {
            let kind = if counter { "counter" } else { "summary" };
            let _ = writeln!(out, "# TYPE {family} {kind}");
            let _ = writeln!(
                out,
                "# HELP {family} Aggregated `{}` from the {} subsystem.",
                entry.name,
                entry.subsystem.label()
            );
        }
        if counter {
            // A counter is one monotonic sample: the accumulated sum.
            let _ = writeln!(out, "{family}{{{labels}}} {}", entry.sum);
            continue;
        }
        let _ = writeln!(out, "{family}_count{{{labels}}} {}", entry.count);
        let _ = writeln!(out, "{family}_sum{{{labels}}} {}", entry.sum);
        if entry.count > 0 {
            let _ = writeln!(out, "{family}_min{{{labels}}} {}", entry.min);
            let _ = writeln!(out, "{family}_max{{{labels}}} {}", entry.max);
        }
        if entry.kind == EventKind::Histogram {
            for (q, p) in [("0.5", 50.0), ("0.95", 95.0), ("0.99", 99.0)] {
                let _ = writeln!(
                    out,
                    "{family}{{{labels},quantile=\"{q}\"}} {}",
                    entry.approx_percentile(p)
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::agg::AggRecorder;
    use crate::event::Component;
    use crate::recorder::NullRecorder;

    #[test]
    fn wall_timer_records_positive_elapsed_time() {
        let rec = AggRecorder::new();
        {
            let _t = WallTimer::start(&rec, Subsystem::Exec, "wall/test");
            std::hint::black_box((0..1000u64).sum::<u64>());
        }
        let entries = rec.snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "wall/test");
        assert_eq!(entries[0].count, 1);
        assert!(entries[0].sum > 0.0, "elapsed {}", entries[0].sum);
        assert_eq!(entries[0].unit, Unit::Nanoseconds);
    }

    #[test]
    fn stop_returns_elapsed_and_suppresses_drop_double_count() {
        let rec = AggRecorder::new();
        let timer = WallTimer::start(&rec, Subsystem::Par, "wall/worker");
        let elapsed = timer.stop();
        assert!(elapsed.is_some());
        assert_eq!(rec.snapshot()[0].count, 1, "stop must record exactly once");
    }

    #[test]
    fn disabled_recorder_never_reads_the_clock() {
        let timer = WallTimer::start(&NullRecorder, Subsystem::Exec, "wall/noop");
        assert!(timer.start.is_none(), "no Instant::now under NullRecorder");
        assert_eq!(timer.stop(), None);
        assert_eq!(timed(&NullRecorder, Subsystem::Exec, "wall/noop", || 7), 7);
    }

    #[test]
    fn prometheus_text_is_deterministic_and_labeled() {
        let rec = AggRecorder::new();
        for v in [4.0, 8.0, 128.0] {
            rec.histogram(Subsystem::Serve, "latency/total", v, Unit::Nanoseconds);
        }
        rec.energy(Subsystem::Exec, "component_energy", Component::Dram, 42.5);
        let a = prometheus_text(&rec.snapshot());
        let b = prometheus_text(&rec.snapshot());
        assert_eq!(a, b);
        assert!(a.contains("# TYPE bfree_serve_latency_total summary"));
        assert!(a.contains("# HELP bfree_serve_latency_total "));
        assert!(a.contains("bfree_serve_latency_total_count{unit=\"ns\"} 3"));
        assert!(a.contains("bfree_serve_latency_total_sum{unit=\"ns\"} 140"));
        assert!(a.contains("quantile=\"0.99\""));
        // Monotonic counters render as a single `_total` sample with a
        // `counter` type line, not a summary.
        assert!(a.contains("# TYPE bfree_exec_component_energy_total counter"));
        assert!(
            a.contains("bfree_exec_component_energy_total{unit=\"pJ\",component=\"dram\"} 42.5")
        );
        assert!(!a.contains("bfree_exec_component_energy_total_count"));
        assert!(!a
            .contains("bfree_exec_component_energy_total{unit=\"pJ\",component=\"dram\",quantile"));
    }

    #[test]
    fn prometheus_type_and_help_emitted_once_per_family() {
        let rec = AggRecorder::new();
        // Two components in the same counter family: one header, two
        // samples.
        rec.energy(Subsystem::Exec, "component_energy", Component::Dram, 1.0);
        rec.energy(Subsystem::Exec, "component_energy", Component::Bce, 2.0);
        let text = prometheus_text(&rec.snapshot());
        assert_eq!(
            text.matches("# TYPE bfree_exec_component_energy_total counter")
                .count(),
            1,
            "{text}"
        );
        assert_eq!(
            text.matches("# HELP bfree_exec_component_energy_total ")
                .count(),
            1
        );
        assert_eq!(
            text.matches("bfree_exec_component_energy_total{unit=")
                .count(),
            2
        );
    }

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label("plain"), "plain");
        assert_eq!(escape_label("a\\b"), "a\\\\b");
        assert_eq!(escape_label("say \"hi\""), "say \\\"hi\\\"");
        assert_eq!(escape_label("line\nbreak"), "line\\nbreak");
    }

    #[test]
    fn sanitize_collapses_non_identifier_chars() {
        assert_eq!(sanitize("latency/total"), "latency_total");
        assert_eq!(sanitize("pool/free_slices"), "pool_free_slices");
        assert_eq!(sanitize("ok_name9"), "ok_name9");
    }
}
