//! A bounded in-memory event ring for trace capture and export.

use std::collections::VecDeque;
use std::sync::Mutex;

use crate::event::Event;
use crate::recorder::Recorder;

struct RingInner {
    events: VecDeque<Event>,
    capacity: usize,
    dropped: u64,
}

/// A [`Recorder`] keeping the most recent `capacity` events.
///
/// Under pressure the *oldest* events are evicted and counted in
/// [`dropped`](RingRecorder::dropped), so a truncated trace is always
/// detectable. Internally synchronized; safe to share with parallel
/// workers (arrival order under concurrency follows lock acquisition,
/// which is why deterministic exports sort before writing).
///
/// ```
/// use bfree_obs::{Recorder, RingRecorder, Subsystem};
///
/// let ring = RingRecorder::new(2);
/// ring.span(Subsystem::Exec, "a", 0.0, 1.0);
/// ring.span(Subsystem::Exec, "b", 1.0, 1.0);
/// ring.span(Subsystem::Exec, "c", 2.0, 1.0);
/// assert_eq!(ring.len(), 2);
/// assert_eq!(ring.dropped(), 1);
/// assert_eq!(ring.events()[0].name, "b");
/// ```
#[derive(Debug)]
pub struct RingRecorder {
    inner: Mutex<RingInner>,
}

impl std::fmt::Debug for RingInner {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingInner")
            .field("len", &self.events.len())
            .field("capacity", &self.capacity)
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl RingRecorder {
    /// A ring holding at most `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            inner: Mutex::new(RingInner {
                events: VecDeque::new(),
                capacity: capacity.max(1),
                dropped: 0,
            }),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingInner> {
        // An event push never leaves the ring half-updated, so a
        // poisoned lock still guards a consistent ring.
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.lock().events.iter().cloned().collect()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.lock().events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.lock().events.is_empty()
    }

    /// Events evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// Empties the ring and resets the drop counter.
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.events.clear();
        inner.dropped = 0;
    }

    /// Surfaces the drop counter as a first-class `obs/ring_dropped`
    /// counter on `sink`, so truncation shows up in aggregate
    /// summaries and the OpenMetrics exposition
    /// (`bfree_par_obs_ring_dropped_total`) instead of only a stderr
    /// warning.
    pub fn export_drop_counter<R: Recorder>(&self, sink: &R) {
        sink.counter(
            crate::event::Subsystem::Par,
            "obs/ring_dropped",
            self.dropped() as f64,
            crate::event::Unit::Count,
        );
    }
}

impl Recorder for RingRecorder {
    fn is_enabled(&self) -> bool {
        true
    }

    fn record(&self, event: Event) {
        let mut inner = self.lock();
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Subsystem, Unit};

    #[test]
    fn keeps_most_recent_events() {
        let ring = RingRecorder::new(3);
        for i in 0..10u32 {
            ring.counter(Subsystem::Par, "i", f64::from(i), Unit::Count);
        }
        let values: Vec<f64> = ring.events().iter().map(|e| e.value).collect();
        assert_eq!(values, vec![7.0, 8.0, 9.0]);
        assert_eq!(ring.dropped(), 7);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let ring = RingRecorder::new(0);
        ring.counter(Subsystem::Par, "x", 1.0, Unit::Count);
        ring.counter(Subsystem::Par, "x", 2.0, Unit::Count);
        assert_eq!(ring.len(), 1);
        assert_eq!(ring.events()[0].value, 2.0);
    }

    #[test]
    fn clear_resets_state() {
        let ring = RingRecorder::new(1);
        ring.counter(Subsystem::Par, "x", 1.0, Unit::Count);
        ring.counter(Subsystem::Par, "x", 2.0, Unit::Count);
        ring.clear();
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn drop_counter_exports_into_an_aggregate() {
        let ring = RingRecorder::new(2);
        for i in 0..5u32 {
            ring.counter(Subsystem::Par, "i", f64::from(i), Unit::Count);
        }
        let agg = crate::agg::AggRecorder::new();
        ring.export_drop_counter(&agg);
        let entries = agg.snapshot();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].name, "obs/ring_dropped");
        assert_eq!(entries[0].sum, 3.0);
        let text = crate::perf::prometheus_text(&entries);
        assert!(text.contains("bfree_par_obs_ring_dropped_total{unit=\"count\"} 3"));
    }

    #[test]
    fn shared_across_threads() {
        let ring = RingRecorder::new(1000);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        ring.counter(Subsystem::Par, "t", 1.0, Unit::Count);
                    }
                });
            }
        });
        assert_eq!(ring.len(), 400);
    }
}
