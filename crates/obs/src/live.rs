//! The live telemetry plane: lock-free per-worker collection,
//! mergeable aggregation, and immutable periodic snapshots.
//!
//! The recorders in the rest of this crate are post-hoc: events are
//! folded after a run completes, which makes the wall-clock realtime
//! engine a black box *while it is serving*. This module closes that
//! gap with three pieces:
//!
//! * [`SpscRing`] / [`LiveCollector`] — one bounded single-producer
//!   single-consumer ring per worker thread. The hot path is one
//!   fullness check and four relaxed stores plus one release store:
//!   no mutex, no allocation, no syscall. A full ring *drops* the
//!   event and counts it ([`SpscRing::dropped`]) — producers never
//!   block, and truncation is never silent.
//! * [`LiveAccumulator`] — the consumer-side fold: per-tenant
//!   completion/rejection counters, exact SLO-good counts, and
//!   [`LogHistogram`]s for latency and energy. Because the histograms
//!   merge exactly, the fold is independent of which ring an event
//!   arrived on and of drain interleaving.
//! * [`TelemetrySnapshot`] — an immutable, cheaply shareable
//!   (`Arc`-published via [`SnapshotCell`]) view the aggregator thread
//!   publishes on a configurable cadence, rendered to OpenMetrics text
//!   by [`TelemetrySnapshot::to_openmetrics`] (with exemplar trace
//!   ids on the latency histograms).
//!
//! The same snapshot schema is produced two ways: the wall-clock
//! engine drains rings on real time, while the virtual-clock oracle
//! folds its deterministic record stream at virtual cadence cuts.
//! Counters are exact in both, which is what lets the conformance
//! harness reconcile them.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::error::ObsError;
use crate::histo::LogHistogram;
use crate::perf::escape_label;

/// What a [`LiveEvent`] measures.
///
/// The discriminants are stable wire values: they are packed into the
/// ring slot's `meta` word and must round-trip through
/// [`LiveMetric::from_code`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum LiveMetric {
    /// End-to-end request latency in nanoseconds (`value` = ns,
    /// `id` = request id for exemplars).
    Latency = 0,
    /// Energy charged to a completed request in picojoules
    /// (`value` = pJ).
    Energy = 1,
    /// A terminal rejection (`value` = reject reason code).
    Rejected = 2,
    /// A transient-fault retry was scheduled.
    Retry = 3,
    /// Queue occupancy sample (`value` = depth).
    QueueDepth = 4,
    /// An integrity event (corrected/uncorrectable/scrub) was observed.
    Integrity = 5,
}

impl LiveMetric {
    /// Every metric, in wire-code order — the basis of the
    /// exhaustive-format exposition test.
    pub const ALL: [LiveMetric; 6] = [
        LiveMetric::Latency,
        LiveMetric::Energy,
        LiveMetric::Rejected,
        LiveMetric::Retry,
        LiveMetric::QueueDepth,
        LiveMetric::Integrity,
    ];

    /// The wire code packed into ring slots.
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Inverse of [`LiveMetric::code`] (`None` for unknown codes).
    pub fn from_code(code: u8) -> Option<LiveMetric> {
        LiveMetric::ALL.get(code as usize).copied()
    }
}

/// One observation pushed through a [`SpscRing`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LiveEvent {
    /// What is being measured.
    pub metric: LiveMetric,
    /// Tenant index the observation belongs to (ignored for global
    /// metrics such as [`LiveMetric::Retry`]).
    pub tenant: u32,
    /// Metric-dependent magnitude (nanoseconds, picojoules, a reason
    /// code, or a depth).
    pub value: u64,
    /// Observation timestamp in nanoseconds (virtual or wall clock,
    /// depending on the producing engine).
    pub time_ns: u64,
    /// Request id for exemplars (0 when not applicable).
    pub id: u64,
}

/// One ring slot: four atomic words written relaxed by the producer
/// and published by the ring's release-store on `head`.
///
/// `meta` packs `metric.code() | tenant << 8`.
#[derive(Debug)]
struct Slot {
    meta: AtomicU64,
    value: AtomicU64,
    time: AtomicU64,
    aux: AtomicU64,
}

/// A bounded lock-free single-producer single-consumer event ring.
///
/// This is a Lamport queue in safe Rust: the producer owns `head`, the
/// consumer owns `tail`, and each publishes its counter with a release
/// store that the other side acquires. Slot payloads are plain atomics
/// written/read relaxed — the head/tail handoff orders them. A full
/// ring rejects the push and increments [`SpscRing::dropped`]; the hot
/// path never blocks.
///
/// The single-producer contract is by convention (enforced by the
/// engine handing each worker thread exactly one ring), not by types:
/// violating it cannot corrupt memory — everything is atomic — but can
/// lose or duplicate slots.
///
/// ```
/// use bfree_obs::{LiveEvent, LiveMetric, SpscRing};
///
/// let ring = SpscRing::new(8);
/// let event = LiveEvent {
///     metric: LiveMetric::Latency,
///     tenant: 0,
///     value: 1_500,
///     time_ns: 10,
///     id: 7,
/// };
/// assert!(ring.push(event));
/// let mut drained = Vec::new();
/// ring.drain(|e| drained.push(e));
/// assert_eq!(drained, vec![event]);
/// ```
#[derive(Debug)]
pub struct SpscRing {
    slots: Box<[Slot]>,
    mask: u64,
    /// Next slot the producer will write; owned by the producer.
    head: AtomicU64,
    /// Next slot the consumer will read; owned by the consumer.
    tail: AtomicU64,
    dropped: AtomicU64,
}

impl SpscRing {
    /// A ring holding at most `capacity` in-flight events (rounded up
    /// to a power of two, minimum 2).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(2).next_power_of_two() as u64;
        let slots = (0..capacity)
            .map(|_| Slot {
                meta: AtomicU64::new(0),
                value: AtomicU64::new(0),
                time: AtomicU64::new(0),
                aux: AtomicU64::new(0),
            })
            .collect();
        SpscRing {
            slots,
            mask: capacity - 1,
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Pushes one event; returns `false` (and counts a drop) when the
    /// ring is full. Producer-side only.
    pub fn push(&self, event: LiveEvent) -> bool {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head.wrapping_sub(tail) >= self.slots.len() as u64 {
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let slot = &self.slots[(head & self.mask) as usize];
        let meta = u64::from(event.metric.code()) | (u64::from(event.tenant) << 8);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.value.store(event.value, Ordering::Relaxed);
        slot.time.store(event.time_ns, Ordering::Relaxed);
        slot.aux.store(event.id, Ordering::Relaxed);
        // Publish: the consumer's acquire-load of `head` sees the slot
        // stores above.
        self.head.store(head.wrapping_add(1), Ordering::Release);
        true
    }

    /// Drains every event currently published, oldest first, into `f`;
    /// returns how many were consumed. Consumer-side only.
    pub fn drain(&self, mut f: impl FnMut(LiveEvent)) -> usize {
        let mut tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        let mut consumed = 0usize;
        while tail != head {
            let slot = &self.slots[(tail & self.mask) as usize];
            let meta = slot.meta.load(Ordering::Relaxed);
            // Unknown codes cannot appear from this crate's producers;
            // skip defensively rather than panic on the consumer.
            if let Some(metric) = LiveMetric::from_code((meta & 0xFF) as u8) {
                f(LiveEvent {
                    metric,
                    tenant: (meta >> 8) as u32,
                    value: slot.value.load(Ordering::Relaxed),
                    time_ns: slot.time.load(Ordering::Relaxed),
                    id: slot.aux.load(Ordering::Relaxed),
                });
                consumed += 1;
            }
            tail = tail.wrapping_add(1);
        }
        // Free the slots for the producer: its acquire-load of `tail`
        // sees our reads completed.
        self.tail.store(tail, Ordering::Release);
        consumed
    }

    /// Events rejected because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

/// A set of [`SpscRing`]s, one per producer thread, drained by a
/// single aggregator.
#[derive(Debug)]
pub struct LiveCollector {
    rings: Vec<SpscRing>,
}

impl LiveCollector {
    /// `producers` rings of `capacity` slots each.
    pub fn new(producers: usize, capacity: usize) -> Self {
        LiveCollector {
            rings: (0..producers.max(1))
                .map(|_| SpscRing::new(capacity))
                .collect(),
        }
    }

    /// The ring owned by producer `index`. Each producer thread must
    /// use exactly one ring.
    pub fn producer(&self, index: usize) -> &SpscRing {
        &self.rings[index]
    }

    /// Number of producer rings.
    pub fn producers(&self) -> usize {
        self.rings.len()
    }

    /// Drains every ring into `acc`; returns total events consumed.
    pub fn drain_into(&self, acc: &mut LiveAccumulator) -> usize {
        let mut consumed = 0;
        for ring in &self.rings {
            consumed += ring.drain(|event| acc.observe(event));
        }
        consumed
    }

    /// Total events dropped across all rings.
    pub fn dropped(&self) -> u64 {
        self.rings.iter().map(SpscRing::dropped).sum()
    }
}

/// Reject-reason codes carried in [`LiveMetric::Rejected`] events.
/// Codes at or above [`REASON_SHED`] count as load shedding.
pub const REASON_SHED: u64 = 4;

/// Cumulative per-tenant state inside a [`LiveAccumulator`].
#[derive(Debug, Clone)]
struct TenantAcc {
    completed: u64,
    rejected: u64,
    shed: u64,
    good: u64,
    latency: LogHistogram,
    energy: LogHistogram,
    /// Worst-latency exemplar: `(request id, latency ns)`.
    exemplar: Option<(u64, u64)>,
}

/// The consumer-side cumulative fold of [`LiveEvent`]s.
///
/// Counters are exact (every drained event is counted once); latency
/// and energy distributions are [`LogHistogram`]s, so folding the same
/// multiset of events always yields the same accumulator regardless of
/// ring assignment or drain order.
#[derive(Debug, Clone)]
pub struct LiveAccumulator {
    tenants: Vec<TenantAcc>,
    objective_ns: u64,
    retries: u64,
    integrity: u64,
    queue_depth: u64,
    queue_depth_max: u64,
}

impl LiveAccumulator {
    /// An empty accumulator for `tenants` tenants, with latency
    /// histograms over `[histo_min_ns, histo_max_ns]`, energy
    /// histograms over the same span in picojoules, and an exact
    /// good-latency count against `objective_ns` (a latency is *good*
    /// iff it is `<= objective_ns`).
    ///
    /// # Errors
    ///
    /// Propagates [`ObsError::Telemetry`] for degenerate histogram
    /// bounds.
    pub fn new(
        tenants: usize,
        histo_min_ns: u64,
        histo_max_ns: u64,
        objective_ns: u64,
    ) -> Result<Self, ObsError> {
        let mut accs = Vec::with_capacity(tenants);
        for _ in 0..tenants {
            accs.push(TenantAcc {
                completed: 0,
                rejected: 0,
                shed: 0,
                good: 0,
                latency: LogHistogram::new(histo_min_ns, histo_max_ns)?,
                energy: LogHistogram::new(histo_min_ns, histo_max_ns)?,
                exemplar: None,
            });
        }
        Ok(LiveAccumulator {
            tenants: accs,
            objective_ns,
            retries: 0,
            integrity: 0,
            queue_depth: 0,
            queue_depth_max: 0,
        })
    }

    /// Folds one event into the cumulative state.
    pub fn observe(&mut self, event: LiveEvent) {
        match event.metric {
            LiveMetric::Latency => {
                if let Some(t) = self.tenants.get_mut(event.tenant as usize) {
                    t.completed += 1;
                    if event.value <= self.objective_ns {
                        t.good += 1;
                    }
                    t.latency.record(event.value);
                    if t.exemplar.is_none_or(|(_, worst)| event.value > worst) {
                        t.exemplar = Some((event.id, event.value));
                    }
                }
            }
            LiveMetric::Energy => {
                if let Some(t) = self.tenants.get_mut(event.tenant as usize) {
                    t.energy.record(event.value);
                }
            }
            LiveMetric::Rejected => {
                if let Some(t) = self.tenants.get_mut(event.tenant as usize) {
                    t.rejected += 1;
                    if event.value >= REASON_SHED {
                        t.shed += 1;
                    }
                }
            }
            LiveMetric::Retry => self.retries += 1,
            LiveMetric::QueueDepth => {
                self.queue_depth = event.value;
                self.queue_depth_max = self.queue_depth_max.max(event.value);
            }
            LiveMetric::Integrity => self.integrity += 1,
        }
    }

    /// Freezes the current cumulative state as snapshot `seq` covering
    /// virtual/wall time up to `up_to_ns`. `queue_depth` and
    /// `pool_utilization` are point-in-time gauges supplied by the
    /// engine; `dropped` is the collector's drop counter at freeze
    /// time; `tenant_names` labels the exposition (padded with
    /// `tenant<i>` when short).
    pub fn snapshot(
        &self,
        seq: u64,
        up_to_ns: u64,
        queue_depth: u64,
        pool_utilization: f64,
        dropped: u64,
        tenant_names: &[String],
    ) -> TelemetrySnapshot {
        let tenants = self
            .tenants
            .iter()
            .enumerate()
            .map(|(i, t)| TenantSnapshot {
                name: tenant_names
                    .get(i)
                    .cloned()
                    .unwrap_or_else(|| format!("tenant{i}")),
                completed: t.completed,
                rejected: t.rejected,
                shed: t.shed,
                good: t.good,
                latency_p50_ns: t.latency.percentile(50.0),
                latency_p95_ns: t.latency.percentile(95.0),
                latency_p99_ns: t.latency.percentile(99.0),
                mean_latency_ns: t.latency.mean(),
                mean_energy_pj: t.energy.mean(),
                latency: t.latency.clone(),
                energy: t.energy.clone(),
                exemplar: t.exemplar,
            })
            .collect();
        TelemetrySnapshot {
            seq,
            up_to_ns,
            tenants,
            retries: self.retries,
            integrity: self.integrity,
            queue_depth,
            queue_depth_max: self.queue_depth_max,
            pool_utilization,
            dropped,
        }
    }

    /// The SLO latency objective the good-count is folded against.
    pub fn objective_ns(&self) -> u64 {
        self.objective_ns
    }
}

/// Per-tenant slice of a [`TelemetrySnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSnapshot {
    /// Tenant name (exposition label).
    pub name: String,
    /// Requests completed successfully.
    pub completed: u64,
    /// Requests terminally rejected (all reasons, sheds included).
    pub rejected: u64,
    /// Rejections attributed to load shedding.
    pub shed: u64,
    /// Completions whose latency met the SLO objective.
    pub good: u64,
    /// Median latency (bucket upper edge, ns).
    pub latency_p50_ns: u64,
    /// 95th-percentile latency (bucket upper edge, ns).
    pub latency_p95_ns: u64,
    /// 99th-percentile latency (bucket upper edge, ns).
    pub latency_p99_ns: u64,
    /// Mean latency over the clamped samples (ns).
    pub mean_latency_ns: f64,
    /// Mean energy per completed request (pJ).
    pub mean_energy_pj: f64,
    /// Full latency distribution (ns).
    pub latency: LogHistogram,
    /// Full energy distribution (pJ).
    pub energy: LogHistogram,
    /// Worst-latency exemplar `(request id, latency ns)`.
    pub exemplar: Option<(u64, u64)>,
}

/// An immutable view of the live telemetry state at one instant,
/// published by the aggregator and shared via [`SnapshotCell`].
#[derive(Debug, Clone, PartialEq)]
pub struct TelemetrySnapshot {
    /// Monotonic snapshot sequence number (0-based).
    pub seq: u64,
    /// The clock value (virtual or wall ns) the snapshot covers up to.
    pub up_to_ns: u64,
    /// Per-tenant state, in tenant-index order.
    pub tenants: Vec<TenantSnapshot>,
    /// Transient-fault retries scheduled (global — the engines account
    /// retries globally, so per-tenant splits would not reconcile).
    pub retries: u64,
    /// Integrity events observed (corrections, scrubs).
    pub integrity: u64,
    /// Queue occupancy when the snapshot was taken.
    pub queue_depth: u64,
    /// Largest queue occupancy sampled so far.
    pub queue_depth_max: u64,
    /// Fraction of slice-pool capacity busy over the covered interval
    /// (0 when the engine cannot attribute it yet).
    pub pool_utilization: f64,
    /// Ring events dropped so far (0 in any healthy run).
    pub dropped: u64,
}

impl TelemetrySnapshot {
    /// An empty snapshot (seq 0, no tenants) — the placeholder a
    /// [`SnapshotCell`] starts from.
    pub fn empty() -> Self {
        TelemetrySnapshot {
            seq: 0,
            up_to_ns: 0,
            tenants: Vec::new(),
            retries: 0,
            integrity: 0,
            queue_depth: 0,
            queue_depth_max: 0,
            pool_utilization: 0.0,
            dropped: 0,
        }
    }

    /// Completions summed over all tenants.
    pub fn completed(&self) -> u64 {
        self.tenants.iter().map(|t| t.completed).sum()
    }

    /// Rejections summed over all tenants.
    pub fn rejected(&self) -> u64 {
        self.tenants.iter().map(|t| t.rejected).sum()
    }

    /// SLO-good completions summed over all tenants.
    pub fn good(&self) -> u64 {
        self.tenants.iter().map(|t| t.good).sum()
    }

    /// Renders the snapshot as OpenMetrics text: `_total`-suffixed
    /// counters, cumulative `le`-bucket latency/energy histograms with
    /// a worst-latency exemplar trace id, quantile gauges, and the
    /// queue/pool/drop gauges. Label values are escaped per the
    /// exposition-format rules.
    pub fn to_openmetrics(&self) -> String {
        use std::fmt::Write as _;

        let mut out = String::new();
        let _ = writeln!(out, "# TYPE bfree_live_snapshot_seq gauge");
        let _ = writeln!(
            out,
            "# HELP bfree_live_snapshot_seq Monotonic snapshot sequence number."
        );
        let _ = writeln!(out, "bfree_live_snapshot_seq {}", self.seq);
        let _ = writeln!(out, "# TYPE bfree_live_up_to_ns gauge");
        let _ = writeln!(
            out,
            "# HELP bfree_live_up_to_ns Clock value the snapshot covers up to."
        );
        let _ = writeln!(out, "bfree_live_up_to_ns {}", self.up_to_ns);

        // Per-tenant counter families: TYPE/HELP once, then one sample
        // per tenant.
        type TenantCounter = fn(&TenantSnapshot) -> u64;
        let counters: [(&str, &str, TenantCounter); 4] = [
            ("bfree_live_completed_total", "Requests completed.", |t| {
                t.completed
            }),
            (
                "bfree_live_rejected_total",
                "Requests terminally rejected.",
                |t| t.rejected,
            ),
            (
                "bfree_live_shed_total",
                "Rejections attributed to load shedding.",
                |t| t.shed,
            ),
            (
                "bfree_live_slo_good_total",
                "Completions meeting the latency objective.",
                |t| t.good,
            ),
        ];
        for (family, help, get) in counters {
            let _ = writeln!(out, "# TYPE {family} counter");
            let _ = writeln!(out, "# HELP {family} {help}");
            for tenant in &self.tenants {
                let _ = writeln!(
                    out,
                    "{family}{{tenant=\"{}\"}} {}",
                    escape_label(&tenant.name),
                    get(tenant)
                );
            }
        }

        for (family, help, pick) in [
            (
                "bfree_live_latency_ns",
                "End-to-end request latency (ns).",
                true,
            ),
            (
                "bfree_live_energy_pj",
                "Energy per completed request (pJ).",
                false,
            ),
        ] {
            let _ = writeln!(out, "# TYPE {family} histogram");
            let _ = writeln!(out, "# HELP {family} {help}");
            for tenant in &self.tenants {
                let histo = if pick {
                    &tenant.latency
                } else {
                    &tenant.energy
                };
                let label = escape_label(&tenant.name);
                let mut cumulative = 0u64;
                for (edge, count) in histo.buckets() {
                    cumulative += count;
                    let exemplar = tenant
                        .exemplar
                        .filter(|&(_, worst)| pick && worst <= edge && worst > 0)
                        .filter(|&(_, worst)| {
                            // Attach to the first bucket containing the
                            // exemplar: its edge is the smallest >= worst.
                            histo
                                .buckets()
                                .find(|&(e, _)| e >= worst)
                                .is_some_and(|(e, _)| e == edge)
                        });
                    match exemplar {
                        Some((id, worst)) => {
                            let _ = writeln!(
                                out,
                                "{family}_bucket{{tenant=\"{label}\",le=\"{edge}\"}} {cumulative} # {{trace_id=\"req-{id}\"}} {worst}"
                            );
                        }
                        None => {
                            let _ = writeln!(
                                out,
                                "{family}_bucket{{tenant=\"{label}\",le=\"{edge}\"}} {cumulative}"
                            );
                        }
                    }
                }
                let _ = writeln!(
                    out,
                    "{family}_bucket{{tenant=\"{label}\",le=\"+Inf\"}} {}",
                    histo.count()
                );
                let _ = writeln!(out, "{family}_sum{{tenant=\"{label}\"}} {}", histo.sum());
                let _ = writeln!(
                    out,
                    "{family}_count{{tenant=\"{label}\"}} {}",
                    histo.count()
                );
            }
        }

        let _ = writeln!(out, "# TYPE bfree_live_latency_quantile_ns gauge");
        let _ = writeln!(
            out,
            "# HELP bfree_live_latency_quantile_ns Latency percentiles (bucket upper edge, ns)."
        );
        for tenant in &self.tenants {
            let label = escape_label(&tenant.name);
            for (q, v) in [
                ("0.5", tenant.latency_p50_ns),
                ("0.95", tenant.latency_p95_ns),
                ("0.99", tenant.latency_p99_ns),
            ] {
                let _ = writeln!(
                    out,
                    "bfree_live_latency_quantile_ns{{tenant=\"{label}\",quantile=\"{q}\"}} {v}"
                );
            }
        }

        for (family, help, value) in [
            (
                "bfree_live_retries_total",
                "Transient-fault retries scheduled.",
                self.retries,
            ),
            (
                "bfree_live_integrity_events_total",
                "Integrity events observed.",
                self.integrity,
            ),
            (
                "bfree_live_dropped_events_total",
                "Ring events dropped by the collector.",
                self.dropped,
            ),
        ] {
            let _ = writeln!(out, "# TYPE {family} counter");
            let _ = writeln!(out, "# HELP {family} {help}");
            let _ = writeln!(out, "{family} {value}");
        }

        let _ = writeln!(out, "# TYPE bfree_live_queue_depth gauge");
        let _ = writeln!(out, "# HELP bfree_live_queue_depth Queue occupancy.");
        let _ = writeln!(out, "bfree_live_queue_depth {}", self.queue_depth);
        let _ = writeln!(out, "bfree_live_queue_depth_max {}", self.queue_depth_max);
        let _ = writeln!(out, "# TYPE bfree_live_pool_utilization gauge");
        let _ = writeln!(
            out,
            "# HELP bfree_live_pool_utilization Busy fraction of slice-pool capacity."
        );
        let _ = writeln!(out, "bfree_live_pool_utilization {}", self.pool_utilization);
        out
    }
}

/// A one-slot publish/subscribe cell for the latest snapshot.
///
/// This is the std-only stand-in for an `arc-swap` cell: publishing
/// swaps the `Arc` under a mutex held for a pointer assignment, and
/// readers clone the `Arc` out. The lock is never held across any
/// computation, so contention is bounded by the cadence, not the load.
#[derive(Debug)]
pub struct SnapshotCell {
    latest: Mutex<Arc<TelemetrySnapshot>>,
}

impl Default for SnapshotCell {
    fn default() -> Self {
        Self::new()
    }
}

impl SnapshotCell {
    /// A cell holding an empty placeholder snapshot.
    pub fn new() -> Self {
        SnapshotCell {
            latest: Mutex::new(Arc::new(TelemetrySnapshot::empty())),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Arc<TelemetrySnapshot>> {
        // The guarded value is a single Arc pointer: a poisoned lock
        // still holds a fully-formed snapshot.
        match self.latest.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Publishes `snapshot` as the latest.
    pub fn publish(&self, snapshot: Arc<TelemetrySnapshot>) {
        *self.lock() = snapshot;
    }

    /// The most recently published snapshot.
    pub fn load(&self) -> Arc<TelemetrySnapshot> {
        Arc::clone(&self.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(metric: LiveMetric, tenant: u32, value: u64, id: u64) -> LiveEvent {
        LiveEvent {
            metric,
            tenant,
            value,
            time_ns: 0,
            id,
        }
    }

    #[test]
    fn live_ring_round_trips_every_field() {
        let ring = SpscRing::new(4);
        let e = LiveEvent {
            metric: LiveMetric::Rejected,
            tenant: 3,
            value: REASON_SHED,
            time_ns: 123_456,
            id: 99,
        };
        assert!(ring.push(e));
        let mut got = Vec::new();
        ring.drain(|x| got.push(x));
        assert_eq!(got, vec![e]);
    }

    #[test]
    fn live_ring_full_push_drops_and_counts() {
        let ring = SpscRing::new(2);
        assert!(ring.push(event(LiveMetric::Latency, 0, 1, 1)));
        assert!(ring.push(event(LiveMetric::Latency, 0, 2, 2)));
        assert!(!ring.push(event(LiveMetric::Latency, 0, 3, 3)));
        assert_eq!(ring.dropped(), 1);
        let mut got = Vec::new();
        ring.drain(|x| got.push(x));
        assert_eq!(got.len(), 2);
        // Space freed: pushes succeed again.
        assert!(ring.push(event(LiveMetric::Latency, 0, 4, 4)));
    }

    #[test]
    fn live_ring_spsc_stress_loses_nothing_below_capacity() {
        // One producer, one consumer, ring big enough to never fill:
        // every pushed value must arrive exactly once, in order. This
        // test is in the tsan CI scope (`cargo test -p bfree-obs live`).
        const N: u64 = 100_000;
        let ring = SpscRing::new(1 << 17);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..N {
                    assert!(ring.push(event(LiveMetric::Latency, 0, i, i)));
                }
            });
            let mut next = 0u64;
            while next < N {
                ring.drain(|e| {
                    assert_eq!(e.value, next, "out-of-order or duplicated slot");
                    next += 1;
                });
                std::hint::spin_loop();
            }
        });
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn live_ring_spsc_stress_under_pressure_accounts_every_event() {
        // Tiny ring, racing producer: consumed + dropped must equal
        // pushed, and consumed values must stay strictly increasing.
        const N: u64 = 50_000;
        let ring = SpscRing::new(8);
        let consumed = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|scope| {
            scope.spawn(|| {
                for i in 0..N {
                    ring.push(event(LiveMetric::Energy, 1, i, i));
                }
            });
            let mut last = None::<u64>;
            let mut seen = 0u64;
            // Settle once a drain comes back empty *and* the totals
            // reconcile — the producer may still be mid-push before
            // that point.
            loop {
                let got = ring.drain(|e| {
                    assert!(last.is_none_or(|l| e.value > l), "non-monotone value");
                    last = Some(e.value);
                    seen += 1;
                });
                if got == 0 && seen + ring.dropped() == N {
                    break;
                }
                std::hint::spin_loop();
            }
            consumed.store(seen, Ordering::Relaxed);
        });
        assert_eq!(consumed.load(Ordering::Relaxed) + ring.dropped(), N);
    }

    #[test]
    fn accumulator_fold_is_ring_assignment_invariant() {
        let events: Vec<LiveEvent> = (0..200)
            .map(|i| match i % 5 {
                0 => event(LiveMetric::Latency, (i % 2) as u32, 1_000 + i, i),
                1 => event(LiveMetric::Energy, (i % 2) as u32, 500 + i, i),
                2 => event(LiveMetric::Rejected, 0, REASON_SHED, i),
                3 => event(LiveMetric::Retry, 0, 0, i),
                _ => event(LiveMetric::Integrity, 0, 0, i),
            })
            .collect();
        let names = vec!["a".to_string(), "b".to_string()];
        // Same multiset, two different ring assignments.
        let mut direct = LiveAccumulator::new(2, 1, 1 << 40, 50_000_000).unwrap();
        for &e in &events {
            direct.observe(e);
        }
        let collector = LiveCollector::new(3, 1 << 10);
        for (i, &e) in events.iter().enumerate() {
            assert!(collector.producer(i % 3).push(e));
        }
        let mut via_rings = LiveAccumulator::new(2, 1, 1 << 40, 50_000_000).unwrap();
        collector.drain_into(&mut via_rings);
        let a = direct.snapshot(1, 99, 0, 0.0, 0, &names);
        let b = via_rings.snapshot(1, 99, 0, 0.0, 0, &names);
        assert_eq!(a, b);
        assert_eq!(a.retries, 40);
        assert_eq!(a.integrity, 40);
        assert_eq!(a.tenants[0].shed, 40);
    }

    #[test]
    fn exposition_covers_every_live_metric_exhaustively() {
        let mut acc = LiveAccumulator::new(1, 1, 1 << 30, 10_000).unwrap();
        for metric in LiveMetric::ALL {
            acc.observe(event(metric, 0, 5_000, 7));
        }
        let text = acc
            .snapshot(2, 1_000, 4, 0.5, 1, &["t\"en\\ant\n0".to_string()])
            .to_openmetrics();
        for metric in LiveMetric::ALL {
            // The compiler enforces exhaustiveness of this mapping; the
            // assertions enforce each family actually renders.
            let family = match metric {
                LiveMetric::Latency => "bfree_live_latency_ns_bucket",
                LiveMetric::Energy => "bfree_live_energy_pj_bucket",
                LiveMetric::Rejected => "bfree_live_rejected_total",
                LiveMetric::Retry => "bfree_live_retries_total",
                LiveMetric::QueueDepth => "bfree_live_queue_depth",
                LiveMetric::Integrity => "bfree_live_integrity_events_total",
            };
            assert!(text.contains(family), "family {family} missing:\n{text}");
        }
        // Label escaping: backslash, quote and newline must be encoded.
        assert!(text.contains("tenant=\"t\\\"en\\\\ant\\n0\""));
        // Counters carry the _total suffix and a single TYPE line.
        assert_eq!(text.matches("# TYPE bfree_live_completed_total").count(), 1);
        // The worst-latency exemplar carries the request id.
        assert!(text.contains("# {trace_id=\"req-7\"}"), "{text}");
        assert!(text.contains("bfree_live_dropped_events_total 1"));
    }

    #[test]
    fn metric_codes_round_trip() {
        for metric in LiveMetric::ALL {
            assert_eq!(LiveMetric::from_code(metric.code()), Some(metric));
        }
        assert_eq!(LiveMetric::from_code(200), None);
    }

    #[test]
    fn snapshot_cell_publishes_latest() {
        let cell = SnapshotCell::new();
        assert_eq!(cell.load().seq, 0);
        let mut snap = TelemetrySnapshot::empty();
        snap.seq = 9;
        cell.publish(Arc::new(snap));
        assert_eq!(cell.load().seq, 9);
    }
}
