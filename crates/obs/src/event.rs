//! The event taxonomy: what an instrumented path can say.
//!
//! Every observation is one flat [`Event`]. Flatness is deliberate: the
//! hot paths construct events inside `if recorder.is_enabled()` guards,
//! so the type must be cheap to build (one optional heap allocation for
//! the dynamic detail string) and trivially serializable by every
//! exporter without walking a tree.

use std::fmt;

/// Which layer of the stack emitted an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Subsystem {
    /// `pim-arch`: timing/energy cost models (slice accesses, DRAM
    /// transfers, interconnect traversals).
    Arch,
    /// `pim-bce`: compute-engine pipeline (stage occupancy, stalls).
    Bce,
    /// `bfree`: the per-layer execution simulator.
    Exec,
    /// `bfree::par`: the worker pool.
    Par,
    /// `bfree-serve`: the multi-tenant serving engine.
    Serve,
    /// `bfree-fault`: the fault-injection and resilience layer
    /// (injected failures, retries, quarantines, load shedding).
    Fault,
    /// `bfree-model` / `bfree-serve`: model artifact and registry
    /// lifecycle (binds, version publishes, hot swaps).
    Model,
    /// `pim-lut` / `bfree-serve`: data-integrity machinery (bit flips
    /// detected, corrected, uncorrectable, scrub passes, artifact
    /// re-verification).
    Integrity,
}

impl Subsystem {
    /// All subsystems in canonical order.
    pub const ALL: [Subsystem; 8] = [
        Subsystem::Arch,
        Subsystem::Bce,
        Subsystem::Exec,
        Subsystem::Par,
        Subsystem::Serve,
        Subsystem::Fault,
        Subsystem::Model,
        Subsystem::Integrity,
    ];

    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Subsystem::Arch => "arch",
            Subsystem::Bce => "bce",
            Subsystem::Exec => "exec",
            Subsystem::Par => "par",
            Subsystem::Serve => "serve",
            Subsystem::Fault => "fault",
            Subsystem::Model => "model",
            Subsystem::Integrity => "integrity",
        }
    }
}

impl fmt::Display for Subsystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Hardware component an event attributes cost to.
///
/// This is the union of the paper's attribution axes: the Fig. 12(d)
/// energy components, plus the Fig. 2 slice-access decomposition
/// (interconnect / subarray / peripheral) and the wordline share of the
/// subarray itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Component {
    /// Main memory (DRAM / eDRAM / HBM).
    Dram,
    /// Subarray row accesses (data rows).
    Subarray,
    /// Wordline/bitline drive inside the subarray (the share of a row
    /// access spent activating the row; Fig. 2's "subarray" slice seen
    /// from inside).
    Wordline,
    /// Decoupled-bitline LUT-row reads.
    Lut,
    /// BFree Compute Engine datapath (ROM MACs, adders, shifters).
    Bce,
    /// Slice-level H-tree interconnect.
    Interconnect,
    /// Inter-subarray router hops (systolic flow).
    Router,
    /// Slice/cache peripherals (decoders, muxes, port logic).
    Peripheral,
    /// Cache- and slice-level controllers.
    Controller,
}

impl Component {
    /// All components in canonical report order.
    pub const ALL: [Component; 9] = [
        Component::Dram,
        Component::Subarray,
        Component::Wordline,
        Component::Lut,
        Component::Bce,
        Component::Interconnect,
        Component::Router,
        Component::Peripheral,
        Component::Controller,
    ];

    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Component::Dram => "dram",
            Component::Subarray => "subarray",
            Component::Wordline => "wordline",
            Component::Lut => "lut",
            Component::Bce => "bce",
            Component::Interconnect => "interconnect",
            Component::Router => "router",
            Component::Peripheral => "peripheral",
            Component::Controller => "controller",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The shape of one observation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum EventKind {
    /// A named interval: `time_ns .. time_ns + dur_ns`.
    Span,
    /// A point-in-time marker.
    Instant,
    /// A monotonically accumulated quantity (energy, bytes, ops).
    Counter,
    /// A sampled level (queue depth, free slices).
    Gauge,
    /// A value contributing to a distribution (per-request latency).
    Histogram,
}

impl EventKind {
    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::Span => "span",
            EventKind::Instant => "instant",
            EventKind::Counter => "counter",
            EventKind::Gauge => "gauge",
            EventKind::Histogram => "histogram",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Unit of an event's `value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Unit {
    /// Nanoseconds (virtual or model time).
    Nanoseconds,
    /// Picojoules.
    Picojoules,
    /// A dimensionless count.
    Count,
    /// Bytes moved.
    Bytes,
    /// A dimensionless fraction or ratio.
    Ratio,
}

impl Unit {
    /// Stable machine-readable label.
    pub fn label(self) -> &'static str {
        match self {
            Unit::Nanoseconds => "ns",
            Unit::Picojoules => "pJ",
            Unit::Count => "count",
            Unit::Bytes => "bytes",
            Unit::Ratio => "ratio",
        }
    }
}

impl fmt::Display for Unit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One structured observation.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The emitting subsystem.
    pub subsystem: Subsystem,
    /// The observation's shape.
    pub kind: EventKind,
    /// Static event name (e.g. `"layer"`, `"request"`, `"queue_depth"`).
    pub name: &'static str,
    /// Optional dynamic label (layer name, tenant name, stall cause).
    pub detail: Option<String>,
    /// Optional hardware component the cost is attributed to.
    pub component: Option<Component>,
    /// Event timestamp in nanoseconds (virtual/model time; 0 for
    /// time-free model events).
    pub time_ns: f64,
    /// Span duration in nanoseconds (0 for non-spans).
    pub dur_ns: f64,
    /// The measured value (duration for spans, level for gauges, ...).
    pub value: f64,
    /// Unit of `value`.
    pub unit: Unit,
}

impl Event {
    /// The aggregation key exporters and [`crate::AggRecorder`] group
    /// by: subsystem, kind, name, component, unit. Unit is part of the
    /// key so an energy counter and a latency counter sharing a name
    /// never fold into one entry.
    pub fn key(&self) -> (Subsystem, EventKind, &'static str, Option<Component>, Unit) {
        (
            self.subsystem,
            self.kind,
            self.name,
            self.component,
            self.unit,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable_and_lowercase() {
        for s in Subsystem::ALL {
            assert_eq!(s.label(), s.label().to_lowercase());
        }
        for c in Component::ALL {
            assert_eq!(c.to_string(), c.label());
        }
        assert_eq!(EventKind::Span.label(), "span");
        assert_eq!(Unit::Picojoules.to_string(), "pJ");
    }

    #[test]
    fn component_all_covers_fig2_and_fig12_axes() {
        // Fig. 2 needs interconnect / subarray / peripheral; Fig. 12(d)
        // needs dram / subarray / lut / bce / interconnect / router /
        // controller. Both must be expressible.
        for needed in [
            Component::Interconnect,
            Component::Subarray,
            Component::Peripheral,
            Component::Dram,
            Component::Lut,
            Component::Bce,
            Component::Router,
            Component::Controller,
        ] {
            assert!(Component::ALL.contains(&needed));
        }
    }

    #[test]
    fn event_key_groups_by_identity_not_value() {
        let a = Event {
            subsystem: Subsystem::Exec,
            kind: EventKind::Counter,
            name: "energy",
            detail: Some("conv1".to_string()),
            component: Some(Component::Dram),
            time_ns: 0.0,
            dur_ns: 0.0,
            value: 10.0,
            unit: Unit::Picojoules,
        };
        let b = Event {
            detail: None,
            value: 20.0,
            ..a.clone()
        };
        assert_eq!(a.key(), b.key());
    }
}
