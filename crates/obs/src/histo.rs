//! Mergeable log-bucketed (HDR-style) histograms for live telemetry.
//!
//! The [`crate::AggEntry`] log2 sketch is good to a factor of two —
//! fine for attribution cross-checks, too coarse for live latency
//! percentiles. [`LogHistogram`] refines it to a log-linear layout:
//! each power-of-two octave is split into `2^SUB_BITS` equal
//! sub-buckets, bounding the relative quantile error at
//! `2^-SUB_BITS` (6.25%) while keeping the bucket index a pure
//! integer function of the value.
//!
//! Three properties the live telemetry plane builds on:
//!
//! * **Exact mergeability.** Two histograms with the same bounds merge
//!   by bucket-wise addition: counts, sums, and extremes are exactly
//!   the values a single histogram fed the union of samples would
//!   hold. Merge is associative and commutative (integer sums), so
//!   per-worker histograms fold into one snapshot independently of
//!   drain order.
//! * **Determinism.** Bucketing uses only integer shifts — no
//!   floating-point log — so the same samples always land in the same
//!   buckets on every host, and [`LogHistogram::percentile`] (nearest
//!   rank, bucket upper edge) is a pure function of the counts.
//! * **Bounded memory.** Values clamp into `[min_value, max_value]`;
//!   the bucket array size depends only on the bounds (~16 buckets per
//!   octave), not on the sample count.

use crate::error::ObsError;

/// Sub-bucket precision: each power-of-two octave is split into
/// `2^SUB_BITS` linear sub-buckets.
const SUB_BITS: u32 = 4;
/// Sub-buckets per octave.
const SUBS: u64 = 1 << SUB_BITS;

/// Absolute log-linear bucket index of `v` (`v >= 1`). Values below
/// `2 * SUBS` index themselves exactly; larger values use
/// `SUB_BITS` of mantissa below the leading bit.
fn abs_index(v: u64) -> usize {
    debug_assert!(v >= 1);
    let msb = 63 - v.leading_zeros();
    if msb <= SUB_BITS {
        v as usize
    } else {
        let shift = msb - SUB_BITS;
        let sub = (v >> shift) - SUBS;
        (((u64::from(shift) << SUB_BITS) + SUBS) + sub) as usize
    }
}

/// Inclusive upper edge of absolute bucket `index`: the largest value
/// that lands in it, and the deterministic representative
/// [`LogHistogram::percentile`] reports.
fn upper_edge(index: usize) -> u64 {
    let index = index as u64;
    if index < 2 * SUBS {
        index
    } else {
        let shift = (index >> SUB_BITS) - 1;
        let sub = index & (SUBS - 1);
        let lower = (SUBS + sub) << shift;
        lower + (1 << shift) - 1
    }
}

/// A mergeable log-linear histogram over `u64` samples (latency in
/// nanoseconds, energy in picojoules).
///
/// ```
/// use bfree_obs::LogHistogram;
///
/// let mut h = LogHistogram::new(1, 1_000_000).unwrap();
/// for v in [100, 200, 400, 800] {
///     h.record(v);
/// }
/// assert_eq!(h.count(), 4);
/// let p50 = h.percentile(50.0);
/// assert!((188..=223).contains(&p50), "p50 bucket edge {p50}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogHistogram {
    min_value: u64,
    max_value: u64,
    /// Absolute index of the bucket holding `min_value`.
    offset: usize,
    counts: Vec<u64>,
    count: u64,
    sum: u128,
    min_seen: u64,
    max_seen: u64,
}

impl LogHistogram {
    /// A histogram covering `[min_value, max_value]` (values outside
    /// clamp to the nearest bound, so every sample is counted).
    ///
    /// # Errors
    ///
    /// [`ObsError::Telemetry`] when `min_value` is zero or the bounds
    /// are degenerate (`min_value >= max_value`).
    pub fn new(min_value: u64, max_value: u64) -> Result<Self, ObsError> {
        if min_value == 0 {
            return Err(ObsError::Telemetry {
                reason: "histogram min bound must be at least 1".to_string(),
            });
        }
        if min_value >= max_value {
            return Err(ObsError::Telemetry {
                reason: format!(
                    "histogram bounds are degenerate: min {min_value} >= max {max_value}"
                ),
            });
        }
        let offset = abs_index(min_value);
        let buckets = abs_index(max_value) - offset + 1;
        Ok(LogHistogram {
            min_value,
            max_value,
            offset,
            counts: vec![0; buckets],
            count: 0,
            sum: 0,
            min_seen: u64::MAX,
            max_seen: 0,
        })
    }

    /// The configured lower bound.
    pub fn min_value(&self) -> u64 {
        self.min_value
    }

    /// The configured upper bound.
    pub fn max_value(&self) -> u64 {
        self.max_value
    }

    /// Records one sample (clamped into the configured bounds).
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` samples of the same value in one fold.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let clamped = value.clamp(self.min_value, self.max_value);
        let index = abs_index(clamped) - self.offset;
        self.counts[index] += n;
        self.count += n;
        self.sum += u128::from(clamped) * u128::from(n);
        self.min_seen = self.min_seen.min(clamped);
        self.max_seen = self.max_seen.max(clamped);
    }

    /// Samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of the recorded (clamped) samples.
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Mean of the recorded samples (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest clamped sample seen (`None` when empty).
    pub fn min_seen(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min_seen)
    }

    /// Largest clamped sample seen (`None` when empty).
    pub fn max_seen(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max_seen)
    }

    /// Nearest-rank percentile: the inclusive upper edge of the bucket
    /// holding the `p`-th percentile sample (0 when empty). Pure
    /// function of the bucket counts, so merge-then-query equals
    /// query-on-the-union.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return upper_edge(i + self.offset).min(self.max_value);
            }
        }
        self.max_value
    }

    /// Folds `other` into `self` by bucket-wise addition.
    ///
    /// # Errors
    ///
    /// [`ObsError::Telemetry`] when the bounds differ — histograms are
    /// only exactly mergeable over the same bucket layout.
    pub fn merge(&mut self, other: &LogHistogram) -> Result<(), ObsError> {
        if self.min_value != other.min_value || self.max_value != other.max_value {
            return Err(ObsError::Telemetry {
                reason: format!(
                    "histogram bounds mismatch: [{}, {}] vs [{}, {}]",
                    self.min_value, self.max_value, other.min_value, other.max_value
                ),
            });
        }
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
        Ok(())
    }

    /// Non-empty buckets as `(inclusive upper edge, count)` pairs in
    /// ascending edge order — the OpenMetrics histogram series.
    pub fn buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        let offset = self.offset;
        let max_value = self.max_value;
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(move |(i, &n)| (upper_edge(i + offset).min(max_value), n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_edges_are_consistent() {
        let mut last = 0usize;
        for v in 1..100_000u64 {
            let i = abs_index(v);
            assert!(i >= last, "index not monotone at {v}");
            assert!(v <= upper_edge(i), "{v} above its bucket edge");
            last = i;
        }
    }

    #[test]
    fn relative_error_is_bounded_by_sub_bucket_precision() {
        for v in [17u64, 1_000, 65_535, 1_000_000, u32::MAX as u64] {
            let edge = upper_edge(abs_index(v));
            let err = (edge - v) as f64 / v as f64;
            assert!(err <= 1.0 / SUBS as f64 + 1e-9, "error {err} at {v}");
        }
    }

    #[test]
    fn degenerate_bounds_are_rejected() {
        assert!(matches!(
            LogHistogram::new(0, 10),
            Err(ObsError::Telemetry { .. })
        ));
        assert!(matches!(
            LogHistogram::new(10, 10),
            Err(ObsError::Telemetry { .. })
        ));
        assert!(matches!(
            LogHistogram::new(20, 10),
            Err(ObsError::Telemetry { .. })
        ));
    }

    #[test]
    fn out_of_range_samples_clamp_instead_of_vanishing() {
        let mut h = LogHistogram::new(100, 1_000).unwrap();
        h.record(1);
        h.record(1_000_000);
        assert_eq!(h.count(), 2);
        assert_eq!(h.min_seen(), Some(100));
        assert_eq!(h.max_seen(), Some(1_000));
    }

    #[test]
    fn merge_equals_union() {
        let mut a = LogHistogram::new(1, 1 << 30).unwrap();
        let mut b = LogHistogram::new(1, 1 << 30).unwrap();
        let mut whole = LogHistogram::new(1, 1 << 30).unwrap();
        for v in 1..500u64 {
            let sample = v * v + 7;
            if v % 2 == 0 {
                a.record(sample);
            } else {
                b.record(sample);
            }
            whole.record(sample);
        }
        a.merge(&b).unwrap();
        assert_eq!(a, whole);
        for p in [50.0, 95.0, 99.0] {
            assert_eq!(a.percentile(p), whole.percentile(p));
        }
    }

    #[test]
    fn merge_rejects_mismatched_bounds() {
        let mut a = LogHistogram::new(1, 1_000).unwrap();
        let b = LogHistogram::new(1, 2_000).unwrap();
        assert!(matches!(a.merge(&b), Err(ObsError::Telemetry { .. })));
    }

    #[test]
    fn percentiles_bracket_the_true_value() {
        let mut h = LogHistogram::new(1, 1 << 20).unwrap();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let p50 = h.percentile(50.0);
        assert!(
            (5_000..=5_375).contains(&p50),
            "p50 {p50} outside 6.25% band"
        );
        let p99 = h.percentile(99.0);
        assert!((9_900..=10_650).contains(&p99), "p99 {p99}");
    }

    #[test]
    fn buckets_iterate_in_edge_order_and_cover_every_sample() {
        let mut h = LogHistogram::new(1, 1 << 16).unwrap();
        for v in [3u64, 3, 70_000, 12_345] {
            h.record(v);
        }
        let buckets: Vec<(u64, u64)> = h.buckets().collect();
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(buckets.iter().map(|&(_, n)| n).sum::<u64>(), h.count());
    }
}
