//! Observability-layer errors.

use std::error::Error;
use std::fmt;

/// Errors from the observability layer: JSON parsing, schema
/// validation during config/event deserialization, and export-format
/// selection.
///
/// Marked `#[non_exhaustive]` like every public error in the workspace,
/// so adding variants is not a breaking change; match with a wildcard
/// arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ObsError {
    /// The JSON text is not well-formed.
    Parse {
        /// Byte offset where parsing failed.
        position: usize,
        /// What the parser expected.
        reason: &'static str,
    },
    /// The JSON document is well-formed but a field is missing or has
    /// the wrong type.
    Schema {
        /// The offending field name.
        field: String,
        /// The expected shape.
        expected: &'static str,
    },
    /// An export format name was not recognized.
    UnknownFormat {
        /// The name that failed to parse.
        name: String,
    },
    /// A live-telemetry invariant was violated: degenerate histogram
    /// bounds at construction, or a merge across mismatched bucket
    /// layouts.
    Telemetry {
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ObsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObsError::Parse { position, reason } => {
                write!(f, "JSON parse error at byte {position}: {reason}")
            }
            ObsError::Schema { field, expected } => {
                write!(f, "JSON field `{field}`: expected {expected}")
            }
            ObsError::UnknownFormat { name } => {
                write!(
                    f,
                    "unknown export format `{name}` (expected json, csv, or chrome)"
                )
            }
            ObsError::Telemetry { reason } => {
                write!(f, "live telemetry error: {reason}")
            }
        }
    }
}

// Leaf error: no underlying source.
impl Error for ObsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = ObsError::Parse {
            position: 12,
            reason: "expected ':'",
        };
        assert!(e.to_string().contains("byte 12"));
        let e = ObsError::Schema {
            field: "slices".to_string(),
            expected: "non-negative integer",
        };
        assert!(e.to_string().contains("slices"));
        let e = ObsError::UnknownFormat {
            name: "yaml".to_string(),
        };
        assert!(e.to_string().contains("yaml"));
    }

    #[test]
    fn is_a_leaf_std_error() {
        let e: Box<dyn Error> = Box::new(ObsError::Parse {
            position: 0,
            reason: "empty",
        });
        assert!(e.source().is_none());
    }
}
