//! Calibrated CPU and GPU comparison models (paper §V-C/D, Table III).
//!
//! The paper measured an Intel Xeon E5-2697 (PyTorch/TensorFlow, RAPL)
//! and an NVIDIA Titan V (nvidia-smi). We cannot re-run that hardware,
//! so these models are *calibrated*: where Table III publishes absolute
//! per-inference latency and energy (LSTM, BERT-base, BERT-large at
//! batches 1 and 16) the model replays those numbers; for other
//! network/batch points it falls back to a saturating-throughput
//! roofline (`peak * batch / (batch + k)`) with a fixed device power.
//! DESIGN.md §4 documents this substitution.

use pim_arch::{Energy, EnergyBreakdown, EnergyComponent, Latency, LatencyBreakdown, Phase};
use pim_nn::Network;
use serde::{Deserialize, Serialize};

use crate::report::{InferenceModel, RunReport};

/// One published measurement: per-inference latency and energy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibEntry {
    /// Network name (matches `Network::name`).
    pub network: String,
    /// Batch size.
    pub batch: usize,
    /// Per-inference latency, ms.
    pub latency_ms: f64,
    /// Per-inference energy, J.
    pub energy_j: f64,
}

/// A device model: published calibration points plus a roofline
/// fallback.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedDevice {
    name: String,
    entries: Vec<CalibEntry>,
    /// Saturated effective throughput in GMACs/s.
    pub peak_gmacs: f64,
    /// Batch at which throughput reaches half of peak.
    pub batch_saturation: f64,
    /// Average device power for the fallback path, W.
    pub power_w: f64,
}

impl CalibratedDevice {
    /// Creates a device model.
    pub fn new(
        name: impl Into<String>,
        entries: Vec<CalibEntry>,
        peak_gmacs: f64,
        batch_saturation: f64,
        power_w: f64,
    ) -> Self {
        CalibratedDevice {
            name: name.into(),
            entries,
            peak_gmacs,
            batch_saturation,
            power_w,
        }
    }

    /// Effective throughput at a batch size (GMACs/s).
    pub fn throughput_gmacs(&self, batch: usize) -> f64 {
        let b = batch.max(1) as f64;
        self.peak_gmacs * b / (b + self.batch_saturation)
    }

    fn lookup(&self, network: &str, batch: usize) -> Option<&CalibEntry> {
        self.entries
            .iter()
            .find(|e| e.network == network && e.batch == batch)
    }
}

impl InferenceModel for CalibratedDevice {
    fn device_name(&self) -> &str {
        &self.name
    }

    fn run(&self, network: &Network, batch: usize) -> RunReport {
        let batch = batch.max(1);
        let (latency_ms, energy_j) = match self.lookup(network.name(), batch) {
            Some(entry) => (
                entry.latency_ms * batch as f64,
                entry.energy_j * batch as f64,
            ),
            None => {
                let macs = network.total_macs() as f64 * batch as f64;
                let seconds = macs / (self.throughput_gmacs(batch) * 1e9);
                (seconds * 1e3, seconds * self.power_w)
            }
        };
        let mut latency = LatencyBreakdown::new();
        latency.add(Phase::Compute, Latency::from_ms(latency_ms));
        let mut energy = EnergyBreakdown::new();
        energy.add(EnergyComponent::Dram, Energy::from_joules(energy_j));
        RunReport {
            device: self.name.clone(),
            network: network.name().to_string(),
            batch,
            latency,
            energy,
            per_layer: vec![],
        }
    }
}

/// The Xeon E5-2697 model.
#[derive(Debug, Clone, PartialEq)]
pub struct CpuModel;

impl CpuModel {
    /// Builds the CPU model with Table III calibration points.
    pub fn paper_xeon() -> CalibratedDevice {
        CalibratedDevice::new(
            "CPU (Xeon E5-2697)",
            vec![
                entry("LSTM", 1, 888.3, 31.09),
                entry("BERT-base", 1, 1160.0, 34.80),
                entry("BERT-base", 16, 121.3, 3.64),
                entry("BERT-large", 1, 2910.0, 87.3),
                entry("BERT-large", 16, 453.1, 13.6),
            ],
            // Fallback (CNNs): the paper's framework-level CPU profile
            // sustains ~12 GMACs/s and ~30 W package power.
            12.0,
            2.0,
            30.0,
        )
    }
}

/// The Titan V model.
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel;

impl GpuModel {
    /// Builds the GPU model with Table III calibration points.
    pub fn paper_titan_v() -> CalibratedDevice {
        CalibratedDevice::new(
            "GPU (Titan V)",
            vec![
                entry("LSTM", 1, 96.2, 4.33),
                entry("BERT-base", 1, 47.3, 1.67),
                entry("BERT-base", 16, 3.8, 0.45),
                entry("BERT-large", 1, 89.7, 4.5),
                entry("BERT-large", 16, 11.1, 1.7),
            ],
            // Fallback (CNNs): framework-level Titan V inference
            // sustains ~0.9 TMACs/s at large batch. The paper's own
            // Table III implies average powers far below TDP (35 W at
            // batch 1 up to 118 W at batch 16); 80 W sits in that band.
            900.0,
            4.0,
            80.0,
        )
    }
}

fn entry(network: &str, batch: usize, latency_ms: f64, energy_j: f64) -> CalibEntry {
    CalibEntry {
        network: network.to_string(),
        batch,
        latency_ms,
        energy_j,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_nn::networks;

    #[test]
    fn table3_points_replayed_exactly() {
        let cpu = CpuModel::paper_xeon();
        let report = cpu.run(&networks::bert_base(), 1);
        assert!((report.per_inference_latency().milliseconds() - 1160.0).abs() < 1e-6);
        assert!((report.per_inference_energy().joules() - 34.8).abs() < 1e-9);
        let report16 = cpu.run(&networks::bert_base(), 16);
        assert!((report16.per_inference_latency().milliseconds() - 121.3).abs() < 1e-6);
    }

    #[test]
    fn gpu_faster_than_cpu_everywhere() {
        let cpu = CpuModel::paper_xeon();
        let gpu = GpuModel::paper_titan_v();
        for (net, _) in networks::table2_networks() {
            for batch in [1, 16] {
                let c = cpu.run(&net, batch);
                let g = gpu.run(&net, batch);
                assert!(
                    g.per_inference_latency() < c.per_inference_latency(),
                    "{} batch {batch}",
                    net.name()
                );
            }
        }
    }

    #[test]
    fn fallback_uses_roofline() {
        let cpu = CpuModel::paper_xeon();
        let net = networks::vgg16();
        let report = cpu.run(&net, 16);
        let expected_s = net.total_macs() as f64 * 16.0 / (cpu.throughput_gmacs(16) * 1e9);
        assert!((report.total_latency().seconds() - expected_s).abs() < 1e-9);
    }

    #[test]
    fn throughput_saturates_with_batch() {
        let gpu = GpuModel::paper_titan_v();
        assert!(gpu.throughput_gmacs(16) > gpu.throughput_gmacs(1));
        assert!(gpu.throughput_gmacs(256) < gpu.peak_gmacs);
        assert!(gpu.throughput_gmacs(256) > 0.95 * gpu.peak_gmacs);
    }

    #[test]
    fn batch_energy_scales() {
        let cpu = CpuModel::paper_xeon();
        let b16 = cpu.run(&networks::bert_large(), 16);
        // Whole-batch energy = per-inference x 16.
        assert!((b16.total_energy().joules() - 13.6 * 16.0).abs() < 1e-6);
    }
}
