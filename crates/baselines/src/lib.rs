//! # pim-baselines
//!
//! The four comparison points of the BFree paper's evaluation (§V):
//!
//! * [`NeuralCacheModel`] — the state-of-the-art processing-in-cache
//!   baseline (Eckert et al., ISCA 2018): bit-serial multi-row-activation
//!   compute in the same 35 MB L3, with its published cycle counts
//!   (102 cycles per 8-bit multiply) and the input-load / reduction
//!   phases BFree's systolic dataflow eliminates;
//! * [`EyerissModel`] — the spatial DNN accelerator baseline at the
//!   iso-area configuration of §V-D (12 x 12 PEs, 8-bit MACs, 1.5 GHz);
//! * [`CpuModel`] / [`GpuModel`] — analytic models of the Xeon E5-2697
//!   and Titan V, calibrated against the paper's own Table III
//!   measurements (see DESIGN.md §4 on this substitution).
//!
//! All models implement [`InferenceModel`] and produce a [`RunReport`]
//! with phase-level latency and component-level energy breakdowns.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu_gpu;
pub mod eyeriss;
pub mod neural_cache;
pub mod report;

pub use cpu_gpu::{CalibratedDevice, CpuModel, GpuModel};
pub use eyeriss::EyerissModel;
pub use neural_cache::NeuralCacheModel;
pub use report::{InferenceModel, LayerTiming, RunReport};
