//! The Neural Cache baseline (Eckert et al., ISCA 2018), as
//! characterised by the BFree paper (§II-B/C, §V-D).
//!
//! Neural Cache repurposes the same L3 into bit-serial compute: operands
//! are stored bit-serially in columns, multiple word lines assert at
//! once, and an 8-bit multiply takes 102 compute cycles across all 64
//! bitlines of a subarray partition (PIM-OPC ~ 0.63, §II-C). Its clock
//! is derated by the wordline under-driving MRA requires. Unlike BFree,
//! it has no systolic streaming: "Neural Cache loads all inputs into the
//! appropriate subarrays before the processing can begin" and "outputs
//! ... have to be read out and written back multiple times for
//! accumulation" (§V-D) — the input-load and reduction phases this model
//! charges explicitly (about 30% of its runtime in Fig. 12(c)).

use pim_arch::{
    Bytes, CacheGeometry, Energy, EnergyBreakdown, EnergyComponent, EnergyParams, Latency,
    LatencyBreakdown, MemoryTech, Phase, TimingParams,
};
use pim_nn::Network;
use serde::{Deserialize, Serialize};

use crate::report::{InferenceModel, LayerTiming, RunReport};

/// Phase and energy parameters of the Neural Cache model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NeuralCacheModel {
    geom: CacheGeometry,
    timing: TimingParams,
    energy: EnergyParams,
    mem: MemoryTech,
    /// Bit-serial cycles for one 8-bit multiply-accumulate: 102 for the
    /// multiply (§II-C) plus the bit-serial accumulation into the
    /// running partial sum.
    pub mac_cycles_int8: u64,
    /// Extra cycles per compute pass spent loading and transposing the
    /// bit-serial operands into the subarray.
    pub load_cycles_per_pass: u64,
    /// Extra cycles per compute pass spent reading out and re-writing
    /// partial sums for accumulation.
    pub reduction_cycles_per_pass: u64,
    /// Compute-pass cycles that actually toggle the bitlines per MAC
    /// (predicated bit-serial steps idle some cycles), for energy.
    pub energy_active_cycles_per_mac: u64,
    /// Fraction of active cycles that are full multi-row-activation
    /// compute ops (15.4 pJ); the rest are single-row copies (8.6 pJ).
    pub compute_op_fraction: f64,
    /// Row accesses per pass charged to operand loading and partial-sum
    /// reduction (energy side of the load/reduce overhead).
    pub row_accesses_per_pass: u64,
    /// Fraction of subarrays doing useful work (mapping efficiency).
    pub utilization: f64,
}

impl NeuralCacheModel {
    /// The paper's configuration: the same 35 MB L3 and DRAM as BFree.
    pub fn paper_default() -> Self {
        NeuralCacheModel {
            geom: CacheGeometry::xeon_l3_35mb(),
            timing: TimingParams::default(),
            energy: EnergyParams::default(),
            mem: MemoryTech::dram(),
            // 102-cycle bit-serial multiply (§II-C) + 18-cycle
            // bit-serial accumulate into the 24-bit partial sum.
            mac_cycles_int8: 120,
            // Calibration (DESIGN.md §4): sized so input load + reduction
            // take ~30% of Neural Cache's runtime as Fig. 12(c) reports.
            load_cycles_per_pass: 65,
            reduction_cycles_per_pass: 35,
            energy_active_cycles_per_mac: 85,
            compute_op_fraction: 0.4,
            row_accesses_per_pass: 24,
            utilization: 0.85,
        }
    }

    /// Replaces the memory technology (bandwidth sweeps).
    pub fn with_memory(mut self, mem: MemoryTech) -> Self {
        self.mem = mem;
        self
    }

    /// The cache geometry in use.
    pub fn geometry(&self) -> &CacheGeometry {
        &self.geom
    }

    /// Bitline lanes per subarray (one MAC per bitline per pass).
    fn lanes(&self) -> u64 {
        self.geom.bits_per_row() as u64
    }

    /// Compute passes needed for `macs` multiplies: each pass retires one
    /// MAC on every lane of every active subarray.
    fn passes(&self, macs: u64) -> u64 {
        let active = (self.geom.total_subarrays() as f64 * self.utilization).max(1.0) as u64;
        macs.div_ceil(self.lanes() * active)
    }

    /// Average bitline-op energy per cycle per subarray, mixing MRA
    /// compute ops and single-row copies.
    fn avg_op_energy(&self) -> Energy {
        self.energy.bitline_compute_op() * self.compute_op_fraction
            + self.energy.subarray_row_access() * (1.0 - self.compute_op_fraction)
    }
}

impl InferenceModel for NeuralCacheModel {
    fn device_name(&self) -> &str {
        "Neural Cache"
    }

    fn run(&self, network: &Network, batch: usize) -> RunReport {
        let batch = batch.max(1) as u64;
        let mut latency = LatencyBreakdown::new();
        let mut energy = EnergyBreakdown::new();
        let mut per_layer = Vec::new();

        let active_subarrays = (self.geom.total_subarrays() as f64 * self.utilization).max(1.0);

        for layer in network.layers() {
            let macs = layer.macs() * batch;
            let mut layer_latency = Latency::ZERO;

            if layer.is_weight_layer() {
                // Weights come from DRAM once per layer (batch amortized).
                let bytes = Bytes::new(layer.weight_bytes(8));
                let t = self.mem.transfer_time(bytes);
                latency.add(Phase::WeightLoad, t);
                energy.add(EnergyComponent::Dram, self.mem.transfer_energy(bytes));
                layer_latency += t;
            }

            if macs > 0 {
                let passes = self.passes(macs);
                // Compute at the derated MRA clock.
                let compute_cycles = pim_arch::Cycles::new(passes * self.mac_cycles_int8);
                let t_compute = self.timing.bitline_compute_time(compute_cycles);
                latency.add(Phase::Compute, t_compute);
                layer_latency += t_compute;

                // Input loading and reduction at the regular clock.
                let t_load = pim_arch::Cycles::new(passes * self.load_cycles_per_pass)
                    .at_ghz(self.timing.subarray_clock_ghz);
                latency.add(Phase::InputLoad, t_load);
                let t_reduce = pim_arch::Cycles::new(passes * self.reduction_cycles_per_pass)
                    .at_ghz(self.timing.subarray_clock_ghz);
                latency.add(Phase::Reduction, t_reduce);
                layer_latency += t_load + t_reduce;

                // Energy: the active bit-serial cycles toggle the
                // bitlines of every active subarray; load/reduce adds a
                // bounded number of row accesses per pass.
                let active_cycles = passes * self.energy_active_cycles_per_mac;
                energy.add(
                    EnergyComponent::SubarrayAccess,
                    self.avg_op_energy() * (active_cycles as f64 * active_subarrays),
                );
                let access_rows = passes * self.row_accesses_per_pass;
                energy.add(
                    EnergyComponent::SubarrayAccess,
                    self.energy.subarray_row_access() * (access_rows as f64 * active_subarrays),
                );
                // Distributing inputs and collecting outputs crosses the
                // slice interconnect.
                let line_bytes = 64u64;
                let lines = (layer.input_elements() * batch).div_ceil(line_bytes)
                    + (layer.output_elements() * batch).div_ceil(line_bytes);
                energy.add(
                    EnergyComponent::Interconnect,
                    self.energy.slice_access() * lines,
                );
            }

            if layer.macs() > 0 || layer.is_weight_layer() {
                per_layer.push(LayerTiming {
                    name: layer.name().to_string(),
                    latency: layer_latency,
                    macs,
                });
            }
        }

        // Controllers run for the whole execution.
        energy.add(
            EnergyComponent::Controller,
            self.energy
                .controller_static(latency.total(), self.geom.slices()),
        );

        RunReport {
            device: self.device_name().to_string(),
            network: network.name().to_string(),
            batch: batch as usize,
            latency,
            energy,
            per_layer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_nn::networks;

    #[test]
    fn per_mac_energy_matches_hand_calculation() {
        let nc = NeuralCacheModel::paper_default();
        // 85 active cycles x (0.4 * 15.4 + 0.6 * 8.6) pJ plus 24 row
        // accesses, shared across 64 lanes.
        let per_mac = (85.0 * (0.4 * 15.4 + 0.6 * 8.6) + 24.0 * 8.6) / 64.0;
        let report = nc.run(&networks::vgg16(), 1);
        let compute_energy = report.energy.get(EnergyComponent::SubarrayAccess);
        let macs = networks::vgg16().total_macs() as f64;
        let measured = compute_energy.picojoules() / macs;
        assert!(
            measured > per_mac * 0.8 && measured < per_mac * 1.3,
            "got {measured} vs {per_mac}"
        );
    }

    #[test]
    fn input_load_and_reduction_are_significant() {
        // Fig. 12(c): ~30% of Neural Cache execution is input load +
        // reduction. Check the non-weight-load part of the breakdown.
        let nc = NeuralCacheModel::paper_default();
        let report = nc.run(&networks::inception_v3(), 1);
        let exec = report.latency.get(Phase::Compute)
            + report.latency.get(Phase::InputLoad)
            + report.latency.get(Phase::Reduction);
        let overhead = report.latency.get(Phase::InputLoad) + report.latency.get(Phase::Reduction);
        let frac = overhead.nanoseconds() / exec.nanoseconds();
        assert!((0.2..0.45).contains(&frac), "overhead fraction {frac}");
    }

    #[test]
    fn weight_load_is_major_runtime_component() {
        // Fig. 12(b,c): DRAM filter loading is a major runtime share
        // (the largest single phase alongside compute).
        let nc = NeuralCacheModel::paper_default();
        let report = nc.run(&networks::inception_v3(), 1);
        let frac = report.latency.fraction(Phase::WeightLoad);
        assert!(frac > 0.2, "weight-load fraction {frac}");
    }

    #[test]
    fn batching_amortizes_weight_loads() {
        let nc = NeuralCacheModel::paper_default();
        let b1 = nc.run(&networks::inception_v3(), 1);
        let b16 = nc.run(&networks::inception_v3(), 16);
        assert!(b16.per_inference_latency() < b1.per_inference_latency());
    }

    #[test]
    fn per_layer_timings_cover_weight_layers() {
        let nc = NeuralCacheModel::paper_default();
        let net = networks::vgg16();
        let report = nc.run(&net, 1);
        assert_eq!(report.per_layer.len(), net.weight_layer_count());
    }

    #[test]
    fn faster_memory_reduces_weight_load_only() {
        let dram = NeuralCacheModel::paper_default();
        let hbm = NeuralCacheModel::paper_default().with_memory(MemoryTech::hbm());
        let net = networks::vgg16();
        let a = dram.run(&net, 1);
        let b = hbm.run(&net, 1);
        assert!(b.latency.get(Phase::WeightLoad) < a.latency.get(Phase::WeightLoad));
        assert_eq!(b.latency.get(Phase::Compute), a.latency.get(Phase::Compute));
    }
}
