//! The Eyeriss baseline (Chen et al., ISCA 2016) at the paper's
//! iso-area configuration (§V-D): a 12 x 12 array of 8-bit MAC PEs at
//! the same 1.5 GHz clock, sized to match the area of one slice's worth
//! of BFree custom logic.
//!
//! The model is an analytic row-stationary mapping: each layer's MACs
//! divide across the PEs at a utilization set by how well the filter
//! rows and output rows tile the 12 x 12 array, plus the fill/drain and
//! psum-accumulation overheads of the dataflow. Weights and inputs
//! arrive over the same DRAM as BFree.

use pim_arch::{
    Bytes, Cycles, Energy, EnergyBreakdown, EnergyComponent, Latency, LatencyBreakdown, MemoryTech,
    Phase,
};
use pim_nn::{LayerOp, Network};
use serde::{Deserialize, Serialize};

use crate::report::{InferenceModel, LayerTiming, RunReport};

/// The analytic Eyeriss model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EyerissModel {
    /// PE rows.
    pub rows: usize,
    /// PE columns.
    pub cols: usize,
    /// Clock in GHz (iso-frequency with BFree: 1.5).
    pub clock_ghz: f64,
    /// Per-MAC energy including local scratchpad traffic, pJ.
    pub mac_pj: f64,
    /// Global-buffer energy per byte moved, pJ.
    pub buffer_pj_per_byte: f64,
    /// Main memory.
    pub mem: MemoryTech,
    /// Multiplicative overhead for psum accumulation and array
    /// fill/drain between processing passes.
    pub dataflow_overhead: f64,
}

impl EyerissModel {
    /// The paper's iso-area configuration: 12 x 12 PEs at 1.5 GHz.
    pub fn paper_default() -> Self {
        EyerissModel {
            rows: 12,
            cols: 12,
            clock_ghz: 1.5,
            mac_pj: 2.2,
            buffer_pj_per_byte: 6.0,
            mem: MemoryTech::dram(),
            dataflow_overhead: 1.10,
        }
    }

    /// Total PEs.
    pub fn pes(&self) -> usize {
        self.rows * self.cols
    }

    /// Row-stationary utilization for a layer: filter rows map to PE
    /// rows and output rows to PE columns, so kernels and outputs that
    /// do not tile 12 evenly strand PEs (Chen et al. §V). Non-conv
    /// matmul work uses the array as a 1-D dot-product engine at high
    /// utilization.
    pub fn utilization(&self, op: &LayerOp) -> f64 {
        match *op {
            LayerOp::Conv2d { kernel, .. } => {
                // A replication-aware approximation: each pass places
                // floor(rows / kh) replicas of the kh filter rows.
                let kh = kernel.0.min(self.rows);
                let used_rows = (self.rows / kh) * kh;
                let row_util = used_rows as f64 / self.rows as f64;
                // Column dimension is output width strips; assume long
                // strips keep columns nearly full.
                row_util * 0.95
            }
            LayerOp::Linear { .. }
            | LayerOp::Lstm { .. }
            | LayerOp::Gru { .. }
            | LayerOp::Attention { .. }
            | LayerOp::FeedForward { .. } => 0.90,
            _ => 1.0,
        }
    }
}

impl InferenceModel for EyerissModel {
    fn device_name(&self) -> &str {
        "Eyeriss"
    }

    fn run(&self, network: &Network, batch: usize) -> RunReport {
        let batch = batch.max(1) as u64;
        let mut latency = LatencyBreakdown::new();
        let mut energy = EnergyBreakdown::new();
        let mut per_layer = Vec::new();

        for layer in network.layers() {
            let macs = layer.macs() * batch;
            let mut layer_latency = Latency::ZERO;

            if layer.is_weight_layer() {
                let bytes = Bytes::new(layer.weight_bytes(8));
                let t = self.mem.transfer_time(bytes);
                latency.add(Phase::WeightLoad, t);
                energy.add(EnergyComponent::Dram, self.mem.transfer_energy(bytes));
                layer_latency += t;
            }

            if macs > 0 {
                let util = self.utilization(layer.op());
                let effective = (self.pes() as f64 * util).max(1.0);
                let cycles = (macs as f64 / effective * self.dataflow_overhead).ceil() as u64;
                let t = Cycles::new(cycles).at_ghz(self.clock_ghz);
                latency.add(Phase::Compute, t);
                layer_latency += t;
                energy.add(EnergyComponent::Bce, Energy::from_pj(self.mac_pj) * macs);

                // Inputs stream through the global buffer; outputs write
                // back. The accelerator has no cache to hide this in.
                let in_bytes = layer.input_elements() * batch;
                let t_in = self.mem.transfer_time(Bytes::new(in_bytes));
                latency.add(Phase::InputLoad, t_in);
                layer_latency += t_in;
                let moved = (layer.input_elements() + layer.output_elements()) * batch;
                energy.add(
                    EnergyComponent::Interconnect,
                    Energy::from_pj(self.buffer_pj_per_byte) * moved,
                );
                energy.add(
                    EnergyComponent::Dram,
                    self.mem.transfer_energy(Bytes::new(in_bytes)),
                );
            }

            if layer.macs() > 0 || layer.is_weight_layer() {
                per_layer.push(LayerTiming {
                    name: layer.name().to_string(),
                    latency: layer_latency,
                    macs,
                });
            }
        }

        RunReport {
            device: self.device_name().to_string(),
            network: network.name().to_string(),
            batch: batch as usize,
            latency,
            energy,
            per_layer,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_nn::networks;

    #[test]
    fn iso_area_config_is_144_pes() {
        assert_eq!(EyerissModel::paper_default().pes(), 144);
    }

    #[test]
    fn conv3x3_utilization_reasonable() {
        let e = EyerissModel::paper_default();
        let op = LayerOp::Conv2d {
            out_channels: 64,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        };
        let u = e.utilization(&op);
        assert!((0.7..=1.0).contains(&u), "util {u}");
    }

    #[test]
    fn kernel_5x5_strands_pe_rows() {
        let e = EyerissModel::paper_default();
        let op5 = LayerOp::Conv2d {
            out_channels: 64,
            kernel: (5, 5),
            stride: (1, 1),
            padding: (2, 2),
        };
        let op3 = LayerOp::Conv2d {
            out_channels: 64,
            kernel: (3, 3),
            stride: (1, 1),
            padding: (1, 1),
        };
        // 12 / 5 = 2 replicas x 5 rows = 10 of 12 rows used.
        assert!(e.utilization(&op5) < e.utilization(&op3));
    }

    #[test]
    fn compute_time_matches_throughput() {
        let e = EyerissModel::paper_default();
        let report = e.run(&networks::vgg16(), 1);
        let macs = networks::vgg16().total_macs() as f64;
        let peak = 144.0 * 1.5e9;
        let ideal_ms = macs / peak * 1e3;
        let compute_ms = report.latency.get(Phase::Compute).milliseconds();
        assert!(compute_ms > ideal_ms, "must be above peak-rate bound");
        assert!(compute_ms < ideal_ms * 2.0, "within 2x of peak");
    }

    #[test]
    fn per_layer_report_present() {
        let e = EyerissModel::paper_default();
        let net = networks::vgg16();
        let report = e.run(&net, 1);
        assert_eq!(report.per_layer.len(), net.weight_layer_count());
    }

    #[test]
    fn compute_energy_scales_with_batch_weights_amortize() {
        let e = EyerissModel::paper_default();
        let net = networks::vgg16();
        let b1 = e.run(&net, 1);
        let b4 = e.run(&net, 4);
        // MAC energy is per-inference; weight DRAM energy is per-batch.
        let mac1 = b1.energy.get(EnergyComponent::Bce);
        let mac4 = b4.energy.get(EnergyComponent::Bce);
        assert!((mac4.ratio(mac1) - 4.0).abs() < 1e-9);
        assert!(b4.total_energy() > b1.total_energy());
        assert!(b4.total_energy() < b1.total_energy() * 4.0);
    }
}
