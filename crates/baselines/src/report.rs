//! The common run-report type every inference model produces.

use pim_arch::{Energy, EnergyBreakdown, Latency, LatencyBreakdown};
use pim_nn::Network;
use serde::{Deserialize, Serialize};

/// Per-layer timing for layer-wise figures (Fig. 12(a), Fig. 13).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LayerTiming {
    /// The layer (or module) name.
    pub name: String,
    /// Latency attributed to this layer for the whole batch.
    pub latency: Latency,
    /// Multiplies executed in this layer for the whole batch.
    pub macs: u64,
}

/// The result of running one network at one batch size on one model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Which device/model produced this.
    pub device: String,
    /// The network name.
    pub network: String,
    /// Batch size (latency and energy cover the whole batch).
    pub batch: usize,
    /// Phase-tagged latency for the whole batch.
    pub latency: LatencyBreakdown,
    /// Component-tagged energy for the whole batch.
    pub energy: EnergyBreakdown,
    /// Per-layer timings (empty for devices that do not expose them).
    pub per_layer: Vec<LayerTiming>,
}

impl RunReport {
    /// Total batch latency.
    pub fn total_latency(&self) -> Latency {
        self.latency.total()
    }

    /// Total batch energy.
    pub fn total_energy(&self) -> Energy {
        self.energy.total()
    }

    /// Amortized per-inference latency (Table III convention).
    pub fn per_inference_latency(&self) -> Latency {
        self.latency.total() / self.batch.max(1) as f64
    }

    /// Amortized per-inference energy.
    pub fn per_inference_energy(&self) -> Energy {
        self.energy.total() / self.batch.max(1) as f64
    }

    /// Speedup of this run over another run of the same work.
    pub fn speedup_over(&self, other: &RunReport) -> f64 {
        other
            .per_inference_latency()
            .ratio(self.per_inference_latency())
    }

    /// Energy-efficiency gain of this run over another.
    pub fn energy_gain_over(&self, other: &RunReport) -> f64 {
        other
            .per_inference_energy()
            .ratio(self.per_inference_energy())
    }
}

/// Anything that can run a network at a batch size and report cost.
pub trait InferenceModel {
    /// The device name used in reports.
    fn device_name(&self) -> &str;

    /// Runs `network` at `batch`, returning whole-batch cost.
    fn run(&self, network: &Network, batch: usize) -> RunReport;
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_arch::Phase;

    fn report(ms: f64, mj: f64, batch: usize) -> RunReport {
        let mut latency = LatencyBreakdown::new();
        latency.add(Phase::Compute, Latency::from_ms(ms));
        let mut energy = EnergyBreakdown::new();
        energy.add(pim_arch::EnergyComponent::Bce, Energy::from_mj(mj));
        RunReport {
            device: "test".to_string(),
            network: "net".to_string(),
            batch,
            latency,
            energy,
            per_layer: vec![],
        }
    }

    #[test]
    fn per_inference_amortizes_batch() {
        let r = report(16.0, 32.0, 16);
        assert!((r.per_inference_latency().milliseconds() - 1.0).abs() < 1e-9);
        assert!((r.per_inference_energy().millijoules() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn speedup_and_energy_gain() {
        let fast = report(1.0, 1.0, 1);
        let slow = report(10.0, 5.0, 1);
        assert!((fast.speedup_over(&slow) - 10.0).abs() < 1e-9);
        assert!((fast.energy_gain_over(&slow) - 5.0).abs() < 1e-9);
    }
}
