//! Serialization of LUT contents into subarray LUT-row images.
//!
//! The BFree cache controller loads the LUT rows of every subarray during
//! the configuration phase (paper Fig. 11). Each subarray has eight
//! 64-bit LUT rows — 64 bytes — so every table must be imaged into that
//! budget. This module turns the functional tables of this crate into
//! byte images and checks they fit.

use serde::{Deserialize, Serialize};

use crate::divide::DivLut;
use crate::error::LutError;
use crate::mult_table::MultLut;
use crate::pwl::{quantize_q8_8, PwlTable};

/// What a LUT image contains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LutKind {
    /// The 49-entry odd x odd multiply table.
    Multiply,
    /// A reciprocal-square division table (or a slice of one).
    Divide,
    /// Piecewise-linear coefficients for an activation function.
    Activation,
}

impl LutKind {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            LutKind::Multiply => "multiply",
            LutKind::Divide => "divide",
            LutKind::Activation => "activation",
        }
    }
}

/// A byte image ready to be written into a subarray's LUT rows.
///
/// ```
/// use pim_lut::{LutImage, MultLut};
/// let image = LutImage::from_mult_table(&MultLut::new());
/// // The 49-entry table fits the 64-byte LUT-row budget of a subarray.
/// assert!(image.fits_in(64));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LutImage {
    kind: LutKind,
    bytes: Vec<u8>,
}

impl LutImage {
    /// Images the multiply table: one byte per product, row-major over
    /// the 7 x 7 odd operand grid (49 bytes, padded by the caller's row
    /// granularity when written).
    pub fn from_mult_table(table: &MultLut) -> Self {
        let bytes = table.iter().map(|(_, _, p)| p).collect();
        LutImage {
            kind: LutKind::Multiply,
            bytes,
        }
    }

    /// Images a division table slice: each entry as four little-endian
    /// bytes. A full `m = 8` table is 512 bytes, so it is distributed
    /// across the LUT rows of eight subarrays (64 bytes each); `segment`
    /// selects which 64-byte chunk.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::InvalidTable`] when the segment is out of
    /// range.
    pub fn from_div_table(
        table: &DivLut,
        segment: usize,
        chunk_bytes: usize,
    ) -> Result<Self, LutError> {
        let total = table.storage_bytes();
        let chunks = total.div_ceil(chunk_bytes);
        if segment >= chunks {
            return Err(LutError::InvalidTable {
                parameter: "segment",
                reason: format!("segment {segment} out of {chunks} chunks"),
            });
        }
        // Rebuild the raw entry bytes; DivLut does not expose entries
        // directly so we image via its (m, entries) serde form.
        let full: Vec<u8> = serde_flatten_div(table);
        let start = segment * chunk_bytes;
        let end = (start + chunk_bytes).min(full.len());
        Ok(LutImage {
            kind: LutKind::Divide,
            bytes: full[start..end].to_vec(),
        })
    }

    /// Images a PWL table: per segment, slope then intercept, each as a
    /// Q8.8 fixed-point little-endian pair (four bytes per segment).
    pub fn from_pwl_table(table: &PwlTable) -> Self {
        let mut bytes = Vec::with_capacity(table.storage_bytes());
        for (alpha, beta) in table.coefficients() {
            let a = quantize_q8_8(alpha);
            let b = quantize_q8_8(beta);
            bytes.extend_from_slice(&a.to_le_bytes());
            bytes.extend_from_slice(&b.to_le_bytes());
        }
        LutImage {
            kind: LutKind::Activation,
            bytes,
        }
    }

    /// What the image contains.
    pub fn kind(&self) -> LutKind {
        self.kind
    }

    /// The raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Image size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the image is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Whether the image fits in `budget` bytes of LUT rows.
    pub fn fits_in(&self, budget: usize) -> bool {
        self.bytes.len() <= budget
    }

    /// Validates the image against a budget.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::ImageTooLarge`] when it does not fit.
    pub fn check_fits(&self, budget: usize) -> Result<(), LutError> {
        if self.fits_in(budget) {
            Ok(())
        } else {
            Err(LutError::ImageTooLarge {
                required: self.bytes.len(),
                available: budget,
            })
        }
    }

    /// Number of subarray row writes needed to load this image
    /// (`row_bytes` per write).
    pub fn row_writes(&self, row_bytes: usize) -> usize {
        self.bytes.len().div_ceil(row_bytes)
    }
}

fn serde_flatten_div(table: &DivLut) -> Vec<u8> {
    // Entries fit in u32 for m <= 12 (2^40 / 2^(2m-2) <= 2^26).
    let mut out = Vec::with_capacity(table.storage_bytes());
    // Reconstruct entries the same way DivLut::new does; this keeps the
    // image logic independent of DivLut internals.
    let m = table.index_bits();
    let lo = 1u64 << (m - 1);
    let hi = 1u64 << m;
    for yh in lo..hi {
        let entry = ((1u64 << 40) as f64 / (yh * yh) as f64).round() as u32;
        out.extend_from_slice(&entry.to_le_bytes());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pwl::PwlFunction;

    #[test]
    fn mult_image_is_49_bytes_and_fits_subarray() {
        let image = LutImage::from_mult_table(&MultLut::new());
        assert_eq!(image.len(), 49);
        assert!(image.fits_in(64));
        assert_eq!(image.kind(), LutKind::Multiply);
        // Loading takes ceil(49 / 8) = 7 row writes.
        assert_eq!(image.row_writes(8), 7);
    }

    #[test]
    fn mult_image_bytes_are_products() {
        let image = LutImage::from_mult_table(&MultLut::new());
        assert_eq!(image.bytes()[0], 9); // 3 x 3
        assert_eq!(image.bytes()[48], 225); // 15 x 15
    }

    #[test]
    fn div_table_spreads_across_chunks() {
        let div = DivLut::new(8).unwrap();
        // 512 bytes over 64-byte chunks = 8 segments.
        let total = div.storage_bytes();
        assert_eq!(total, 512);
        for segment in 0..8 {
            let image = LutImage::from_div_table(&div, segment, 64).unwrap();
            assert_eq!(image.len(), 64);
            assert!(image.fits_in(64));
        }
        assert!(LutImage::from_div_table(&div, 8, 64).is_err());
    }

    #[test]
    fn pwl_image_four_bytes_per_segment() {
        let t = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 16).unwrap();
        let image = LutImage::from_pwl_table(&t);
        assert_eq!(image.len(), 64);
        assert!(image.fits_in(64));
        assert!(!image.is_empty());
    }

    #[test]
    fn oversized_image_rejected() {
        let t = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 64).unwrap();
        let image = LutImage::from_pwl_table(&t);
        assert_eq!(image.len(), 256);
        assert!(image.check_fits(64).is_err());
        assert!(image.check_fits(256).is_ok());
    }

    #[test]
    fn q8_8_quantization_round_trips_small_values() {
        for v in [-1.5, -0.25, 0.0, 0.5, 1.0, 3.75] {
            let q = quantize_q8_8(v);
            assert!((q as f64 / 256.0 - v).abs() < 1.0 / 512.0 + 1e-12);
        }
    }

    #[test]
    fn kind_names() {
        assert_eq!(LutKind::Multiply.name(), "multiply");
        assert_eq!(LutKind::Divide.name(), "divide");
        assert_eq!(LutKind::Activation.name(), "activation");
    }
}
