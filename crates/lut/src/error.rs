//! Error type for LUT construction and evaluation.

use std::error::Error;
use std::fmt;

/// Errors produced when building or evaluating LUT structures.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LutError {
    /// Division by zero requested.
    DivisionByZero,
    /// A table parameter (segment count, index width) was out of range.
    InvalidTable {
        /// Which parameter was invalid.
        parameter: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// A piecewise-linear table was asked to cover an empty or inverted
    /// interval.
    InvalidRange {
        /// Lower bound supplied.
        lo: f64,
        /// Upper bound supplied.
        hi: f64,
    },
    /// A LUT image does not fit in the available LUT rows.
    ImageTooLarge {
        /// Bytes required by the image.
        required: usize,
        /// Bytes available in the LUT rows.
        available: usize,
    },
}

impl fmt::Display for LutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LutError::DivisionByZero => write!(f, "division by zero"),
            LutError::InvalidTable { parameter, reason } => {
                write!(f, "invalid table parameter {parameter}: {reason}")
            }
            LutError::InvalidRange { lo, hi } => {
                write!(f, "invalid approximation range [{lo}, {hi}]")
            }
            LutError::ImageTooLarge {
                required,
                available,
            } => {
                write!(
                    f,
                    "lut image of {required} bytes exceeds {available} available bytes"
                )
            }
        }
    }
}

impl Error for LutError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(LutError::DivisionByZero.to_string(), "division by zero");
        let e = LutError::ImageTooLarge {
            required: 128,
            available: 64,
        };
        assert!(e.to_string().contains("128"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LutError>();
    }
}
