//! The 49-entry multiply LUT (paper §III-C1, Fig. 5).
//!
//! A naive 4-bit multiply LUT needs 256 entries. The paper stores products
//! only when **both operands are odd and at least 3**: multiplying by zero,
//! one or a power of two needs no table, and even operands are reduced to
//! their odd parts by the operand analyzer. The odd operands in `3..=15`
//! are `{3, 5, 7, 9, 11, 13, 15}` — seven values — giving a 7 x 7 = 49
//! entry table of one-byte products (max 15 x 15 = 225).

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// The preloaded odd x odd product table.
///
/// The read counter is an [`AtomicU64`] rather than a `Cell` so one
/// table can serve concurrent BCE tiles on the worker pool
/// (`bfree::par`); counts stay exact because each lookup increments
/// exactly once, whichever thread performs it.
///
/// ```
/// use pim_lut::MultLut;
/// let lut = MultLut::new();
/// assert_eq!(lut.entry_count(), 49);
/// assert_eq!(lut.lookup(7, 13), 91);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct MultLut {
    entries: Vec<u8>, // row-major 7x7, indexed by odd_index
    reads: AtomicU64,
}

impl Clone for MultLut {
    fn clone(&self) -> Self {
        MultLut {
            entries: self.entries.clone(),
            reads: AtomicU64::new(self.reads.load(Ordering::Relaxed)),
        }
    }
}

// Table identity is its entries; the read counter is telemetry.
impl PartialEq for MultLut {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for MultLut {}

/// The odd operand values the table covers, in index order.
pub const ODD_OPERANDS: [u8; 7] = [3, 5, 7, 9, 11, 13, 15];

fn odd_index(v: u8) -> usize {
    debug_assert!(
        v % 2 == 1 && (3..=15).contains(&v),
        "operand {v} is not an odd in 3..=15"
    );
    ((v - 3) / 2) as usize
}

impl MultLut {
    /// Builds the preloaded table.
    pub fn new() -> Self {
        let mut entries = Vec::with_capacity(49);
        for &a in &ODD_OPERANDS {
            for &b in &ODD_OPERANDS {
                entries.push(a * b);
            }
        }
        MultLut {
            entries,
            reads: AtomicU64::new(0),
        }
    }

    /// Number of stored products (the paper's 49).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Storage footprint in bytes (one byte per product).
    pub fn storage_bytes(&self) -> usize {
        self.entries.len()
    }

    /// Looks up the product of two odd operands in `3..=15`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if either operand is even, less than 3 or
    /// greater than 15 — the operand analyzer must filter those before the
    /// LUT is consulted, exactly as in the hardware.
    pub fn lookup(&self, a: u8, b: u8) -> u8 {
        self.reads.fetch_add(1, Ordering::Relaxed);
        self.entries[odd_index(a) * 7 + odd_index(b)]
    }

    /// Number of lookups performed since construction (event counter used
    /// by tests and the energy model).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Folds a batch of `n` lookups into the read counter with a single
    /// atomic add — the batched datapath
    /// ([`crate::BatchedLutMultiplier`]) resolves products through its
    /// flattened array and accounts for the table traffic here, once
    /// per tile instead of once per element.
    pub fn add_reads(&self, n: u64) {
        self.reads.fetch_add(n, Ordering::Relaxed);
    }

    /// Resets the read counter.
    pub fn reset_reads(&self) {
        self.reads.store(0, Ordering::Relaxed);
    }

    /// Iterates over `(a, b, product)` for every stored entry.
    pub fn iter(&self) -> impl Iterator<Item = (u8, u8, u8)> + '_ {
        ODD_OPERANDS.iter().flat_map(move |&a| {
            ODD_OPERANDS
                .iter()
                .map(move |&b| (a, b, self.entries[odd_index(a) * 7 + odd_index(b)]))
        })
    }

    /// The upper-triangle entry count if symmetry were exploited
    /// (paper §III-C1 notes this halves storage at the cost of
    /// parallelism): `7 + 6 + ... + 1 = 28`.
    pub fn triangular_entry_count(&self) -> usize {
        let n = ODD_OPERANDS.len();
        n * (n + 1) / 2
    }

    /// Reconstructs a table from the 49 raw bytes the configuration
    /// phase wrote into the LUT rows — the BCE-side decode of
    /// [`LutImage::from_mult_table`].
    ///
    /// # Errors
    ///
    /// Returns [`crate::LutError::InvalidTable`] when the byte count is wrong
    /// or any entry disagrees with the product it must hold (a corrupted
    /// configuration image).
    ///
    /// [`LutImage::from_mult_table`]: crate::storage::LutImage::from_mult_table
    pub fn from_image_bytes(bytes: &[u8]) -> Result<Self, crate::error::LutError> {
        if bytes.len() != 49 {
            return Err(crate::error::LutError::InvalidTable {
                parameter: "image",
                reason: format!("expected 49 bytes, got {}", bytes.len()),
            });
        }
        let table = MultLut {
            entries: bytes.to_vec(),
            reads: AtomicU64::new(0),
        };
        for (a, b, p) in table.iter() {
            if p as u16 != a as u16 * b as u16 {
                return Err(crate::error::LutError::InvalidTable {
                    parameter: "image",
                    reason: format!("entry for {a} x {b} holds {p}"),
                });
            }
        }
        Ok(table)
    }
}

impl Default for MultLut {
    fn default() -> Self {
        MultLut::new()
    }
}

/// The half-size triangular variant of §III-C1: "LUT entries can be
/// further reduced by half, by storing only the upper or lower triangle
/// entries but this will lead to reduced PIM parallelism."
///
/// Only pairs with `a <= b` are stored (28 entries); a swapped lookup
/// serves `(b, a)` from the same row, which serializes two engines that
/// would otherwise read mirrored entries concurrently. The
/// [`TriangularMultLut::conflict_lookups`] counter exposes that lost
/// parallelism to the cost model.
///
/// ```
/// use pim_lut::mult_table::TriangularMultLut;
/// let lut = TriangularMultLut::new();
/// assert_eq!(lut.entry_count(), 28);
/// assert_eq!(lut.lookup(13, 7), 91); // swapped pair, same product
/// assert_eq!(lut.conflict_lookups(), 1);
/// ```
#[derive(Debug, Serialize, Deserialize)]
pub struct TriangularMultLut {
    entries: Vec<u8>, // upper triangle, row-major
    reads: AtomicU64,
    conflicts: AtomicU64,
}

impl Clone for TriangularMultLut {
    fn clone(&self) -> Self {
        TriangularMultLut {
            entries: self.entries.clone(),
            reads: AtomicU64::new(self.reads.load(Ordering::Relaxed)),
            conflicts: AtomicU64::new(self.conflicts.load(Ordering::Relaxed)),
        }
    }
}

// Table identity is its entries; the counters are telemetry.
impl PartialEq for TriangularMultLut {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for TriangularMultLut {}

impl TriangularMultLut {
    /// Builds the 28-entry upper-triangle table.
    pub fn new() -> Self {
        let mut entries = Vec::with_capacity(28);
        for (i, &a) in ODD_OPERANDS.iter().enumerate() {
            for &b in &ODD_OPERANDS[i..] {
                entries.push(a * b);
            }
        }
        TriangularMultLut {
            entries,
            reads: AtomicU64::new(0),
            conflicts: AtomicU64::new(0),
        }
    }

    /// Number of stored products (28).
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Storage footprint in bytes.
    pub fn storage_bytes(&self) -> usize {
        self.entries.len()
    }

    fn triangle_offset(row: usize, col: usize) -> usize {
        // Row r of an n=7 upper triangle starts at r*(2n - r + 1)/2.
        debug_assert!(col >= row);
        row * (15 - row) / 2 + (col - row)
    }

    /// Looks up the product of two odd operands in `3..=15`, swapping as
    /// needed and counting swapped (conflicting) lookups.
    ///
    /// # Panics
    ///
    /// Panics in debug builds for even or out-of-range operands.
    pub fn lookup(&self, a: u8, b: u8) -> u8 {
        self.reads.fetch_add(1, Ordering::Relaxed);
        let (lo, hi) = if a <= b {
            (a, b)
        } else {
            self.conflicts.fetch_add(1, Ordering::Relaxed);
            (b, a)
        };
        self.entries[Self::triangle_offset(odd_index(lo), odd_index(hi))]
    }

    /// Total lookups performed.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Lookups that needed the operand swap (the reduced-parallelism
    /// case the paper warns about).
    pub fn conflict_lookups(&self) -> u64 {
        self.conflicts.load(Ordering::Relaxed)
    }
}

impl Default for TriangularMultLut {
    fn default() -> Self {
        TriangularMultLut::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn has_exactly_49_entries() {
        assert_eq!(MultLut::new().entry_count(), 49);
        assert_eq!(MultLut::new().storage_bytes(), 49);
    }

    #[test]
    fn every_entry_is_correct() {
        let lut = MultLut::new();
        for (a, b, p) in lut.iter() {
            assert_eq!(p as u16, a as u16 * b as u16);
        }
    }

    #[test]
    fn lookup_all_odd_pairs() {
        let lut = MultLut::new();
        for &a in &ODD_OPERANDS {
            for &b in &ODD_OPERANDS {
                assert_eq!(lut.lookup(a, b) as u16, a as u16 * b as u16);
            }
        }
    }

    #[test]
    fn read_counter_tracks_lookups() {
        let lut = MultLut::new();
        assert_eq!(lut.reads(), 0);
        lut.lookup(3, 3);
        lut.lookup(15, 15);
        assert_eq!(lut.reads(), 2);
        lut.reset_reads();
        assert_eq!(lut.reads(), 0);
    }

    #[test]
    fn symmetric_table() {
        let lut = MultLut::new();
        for &a in &ODD_OPERANDS {
            for &b in &ODD_OPERANDS {
                assert_eq!(lut.lookup(a, b), lut.lookup(b, a));
            }
        }
    }

    #[test]
    fn triangular_count_is_28() {
        assert_eq!(MultLut::new().triangular_entry_count(), 28);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn even_operand_panics_in_debug() {
        MultLut::new().lookup(4, 3);
    }

    #[test]
    fn max_product_fits_in_byte() {
        let lut = MultLut::new();
        assert_eq!(lut.lookup(15, 15), 225);
    }

    #[test]
    fn image_round_trip() {
        let original = MultLut::new();
        let bytes: Vec<u8> = original.iter().map(|(_, _, p)| p).collect();
        let decoded = MultLut::from_image_bytes(&bytes).unwrap();
        for (a, b, p) in original.iter() {
            assert_eq!(decoded.lookup(a, b), p);
        }
    }

    #[test]
    fn triangular_table_matches_full_table() {
        let full = MultLut::new();
        let tri = TriangularMultLut::new();
        for &a in &ODD_OPERANDS {
            for &b in &ODD_OPERANDS {
                assert_eq!(tri.lookup(a, b), full.lookup(a, b), "{a} x {b}");
            }
        }
    }

    #[test]
    fn triangular_counts_conflicts_only_on_swapped_pairs() {
        let tri = TriangularMultLut::new();
        tri.lookup(3, 15);
        assert_eq!(tri.conflict_lookups(), 0);
        tri.lookup(15, 3);
        assert_eq!(tri.conflict_lookups(), 1);
        tri.lookup(7, 7);
        assert_eq!(tri.conflict_lookups(), 1);
        assert_eq!(tri.reads(), 3);
    }

    #[test]
    fn triangular_storage_is_28_bytes() {
        let tri = TriangularMultLut::new();
        assert_eq!(tri.entry_count(), 28);
        assert_eq!(tri.storage_bytes(), 28);
    }

    #[test]
    fn corrupted_image_rejected() {
        let mut bytes: Vec<u8> = MultLut::new().iter().map(|(_, _, p)| p).collect();
        bytes[10] ^= 0x40;
        assert!(MultLut::from_image_bytes(&bytes).is_err());
        assert!(MultLut::from_image_bytes(&bytes[..48]).is_err());
    }
}
