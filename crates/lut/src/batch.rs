//! Batched (SWAR) LUT multiplication over packed `u64` nibble lanes.
//!
//! The scalar [`LutMultiplier`] models one BCE multiply at a time:
//! every nibble product walks the operand analyzer's branch ladder and
//! pays an atomic read-counter increment per LUT access. That is the
//! right shape for auditing a single multiply, but the paper's whole
//! claim is throughput from *thousands* of concurrent in-cache lookups
//! — and the functional hot path (conv dots, matmul tiles, the perf
//! sentinel's kernels) multiplies millions of elements per call.
//!
//! [`BatchedLutMultiplier`] is the batch-oriented datapath model:
//!
//! * the 49-entry odd x odd table is **flattened through the operand
//!   analyzer** into a 256-entry direct-indexed product array (index
//!   `a << 4 | b`), so a nibble product is one branchless load;
//! * each entry's analyzer cost (LUT reads, shifts, adds) is packed
//!   into 16-bit lanes of a single `u64` ([`PackedCost`]), so folding
//!   the cost of a batch is plain integer addition, unpacked **once per
//!   tile** instead of once per element;
//! * [`BatchedLutMultiplier::mul_nibble_x8`] performs eight nibble
//!   products per packed `u64` word (SWAR: one product byte per lane),
//!   the lane layout the dot kernels stream operands through;
//! * the [`MultLut`] read counter is advanced with **one atomic add per
//!   batch** ([`MultLut::add_reads`]) rather than one per lookup.
//!
//! Every entry point is bit-exact with its scalar counterpart in both
//! value and [`OpCost`] — the equivalence suite at the bottom of this
//! module and the proptests alongside it enforce that exhaustively for
//! u8 and statistically for the dot kernels.

use crate::cost::OpCost;
use crate::mult_table::MultLut;
use crate::multiply::LutMultiplier;

/// Nibble lanes per packed `u64` word (one operand nibble per byte).
pub const NIBBLE_LANES: usize = 8;

/// Mask of the high nibble of every byte lane — must be zero in packed
/// operands.
const HIGH_NIBBLES: u64 = 0xf0f0_f0f0_f0f0_f0f0;

const LANE_MASK: u64 = 0xffff;
const SHIFTS_LANE: u32 = 16;
const ADDS_LANE: u32 = 32;

/// How many elements a dot kernel folds into one packed-cost
/// accumulator before spilling to [`OpCost`]. Each 8-bit element
/// contributes at most 8 events per 16-bit lane, so 4096 elements stay
/// well clear of lane saturation (and 16-bit elements, at 32 events,
/// still fit with headroom).
const COST_SPILL_CHUNK: usize = 1024;

/// Analyzer cost of one (or a summed batch of) nibble products, packed
/// into 16-bit lanes of a `u64`: LUT reads in bits 0..16, shifts in
/// bits 16..32, adds in bits 32..48. Cycle counts are *not* packed —
/// every nibble product retires in one cycle, so batch cycle totals are
/// analytic.
///
/// Summing packed costs is a single integer add; lanes cannot carry
/// into each other as long as fewer than `COST_SPILL_CHUNK` (1024) x 8
/// events accumulate, which the dot kernels guarantee by spilling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PackedCost(u64);

impl PackedCost {
    /// Packs a scalar nibble cost (cycles are dropped; see type docs).
    fn pack(cost: OpCost) -> PackedCost {
        debug_assert!(cost.lut_reads <= 1 && cost.shifts <= 2 && cost.adds <= 1);
        PackedCost(cost.lut_reads | cost.shifts << SHIFTS_LANE | cost.adds << ADDS_LANE)
    }

    /// The LUT-read lane — what a batch folds into [`MultLut::add_reads`].
    pub fn lut_reads(self) -> u64 {
        self.0 & LANE_MASK
    }

    /// Unpacks into an [`OpCost`] with zero cycles.
    pub fn unpack(self) -> OpCost {
        OpCost {
            lut_reads: self.0 & LANE_MASK,
            shifts: (self.0 >> SHIFTS_LANE) & LANE_MASK,
            adds: (self.0 >> ADDS_LANE) & LANE_MASK,
            ..OpCost::ZERO
        }
    }
}

impl std::ops::Add for PackedCost {
    type Output = PackedCost;
    fn add(self, rhs: PackedCost) -> PackedCost {
        PackedCost(self.0 + rhs.0)
    }
}

impl std::ops::AddAssign for PackedCost {
    fn add_assign(&mut self, rhs: PackedCost) {
        self.0 += rhs.0;
    }
}

/// The batched LUT multiplier: the 49-entry table flattened to a
/// 256-entry direct-indexed product array plus lane-packed analyzer
/// costs, with telemetry folded per batch.
///
/// ```
/// use pim_lut::{BatchedLutMultiplier, LutMultiplier};
/// let batched = BatchedLutMultiplier::new();
/// let scalar = LutMultiplier::new();
/// let (p, c) = batched.mul_u8(200, 57);
/// assert_eq!((p, c), scalar.mul_u8(200, 57)); // bit-exact, cost included
/// // One batched dot advances the read counter once, not per lookup.
/// let (d, _) = batched.dot_i8(&[3, -5, 127], &[-7, 11, 13]);
/// assert_eq!(d, 3 * -7 + -5 * 11 + 127 * 13);
/// ```
#[derive(Debug, Clone)]
pub struct BatchedLutMultiplier {
    lut: MultLut,
    products: [u8; 256],
    costs: [PackedCost; 256],
}

impl BatchedLutMultiplier {
    /// Builds the flattened tables by sweeping the scalar analyzer over
    /// all 256 nibble pairs — the products and costs *are* the scalar
    /// datapath's, precomputed.
    pub fn new() -> Self {
        let scalar = LutMultiplier::new();
        let mut products = [0u8; 256];
        let mut costs = [PackedCost::default(); 256];
        for a in 0u8..16 {
            for b in 0u8..16 {
                let (p, c) = scalar.mul_nibble(a, b);
                let idx = ((a as usize) << 4) | b as usize;
                products[idx] = p;
                costs[idx] = PackedCost::pack(c);
            }
        }
        BatchedLutMultiplier {
            // The flattening sweep consumed reads on the throwaway
            // scalar table; the operational counter starts at zero.
            lut: MultLut::new(),
            products,
            costs,
        }
    }

    /// Shared access to the underlying table (imaging and telemetry;
    /// batched entry points fold their read totals into it).
    pub fn table(&self) -> &MultLut {
        &self.lut
    }

    /// The 256-entry direct-indexed product array (index `a << 4 | b`).
    pub fn products(&self) -> &[u8; 256] {
        &self.products
    }

    /// Packed analyzer cost of one nibble pair.
    pub fn packed_cost(&self, a: u8, b: u8) -> PackedCost {
        debug_assert!(a <= 15 && b <= 15);
        self.costs[((a as usize) << 4) | b as usize]
    }

    /// Eight nibble products in one step over packed lanes: byte lane
    /// `l` of each operand word holds a nibble (high nibble clear), and
    /// byte lane `l` of the result holds the product (max 225 fits).
    /// All eight lanes retire together, so the cost charges one cycle.
    /// The read counter advances once, by the batch's LUT-read total.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when any lane's high nibble is set.
    pub fn mul_nibble_x8(&self, packed_a: u64, packed_b: u64) -> (u64, OpCost) {
        let (prod, pc) = self.lanes(packed_a, packed_b);
        let mut cost = pc.unpack();
        cost.cycles = 1;
        self.lut.add_reads(cost.lut_reads);
        (prod, cost)
    }

    /// The uncounted SWAR core: packed products and packed cost.
    #[inline]
    fn lanes(&self, packed_a: u64, packed_b: u64) -> (u64, PackedCost) {
        debug_assert_eq!(packed_a & HIGH_NIBBLES, 0, "operand lane overflow");
        debug_assert_eq!(packed_b & HIGH_NIBBLES, 0, "operand lane overflow");
        let mut prod = 0u64;
        let mut cost = PackedCost::default();
        for lane in 0..NIBBLE_LANES {
            let a = (packed_a >> (8 * lane)) & 0xf;
            let b = (packed_b >> (8 * lane)) & 0xf;
            let idx = ((a << 4) | b) as usize;
            prod |= (self.products[idx] as u64) << (8 * lane);
            cost += self.costs[idx];
        }
        (prod, cost)
    }

    /// Magnitude and packed cost of one unsigned 8-bit multiply — the
    /// per-element primitive the BCE engine builds batched tiles from.
    /// Does **not** touch the read counter; callers fold their
    /// [`PackedCost`] totals via [`MultLut::add_reads`].
    #[inline]
    pub fn mul_u8_parts(&self, a: u8, b: u8) -> (u16, PackedCost) {
        let (a1, a0) = ((a >> 4) as usize, (a & 0xf) as usize);
        let (b1, b0) = ((b >> 4) as usize, (b & 0xf) as usize);
        let i00 = (a0 << 4) | b0;
        let i01 = (a0 << 4) | b1;
        let i10 = (a1 << 4) | b0;
        let i11 = (a1 << 4) | b1;
        let mag = self.products[i00] as u32
            + (((self.products[i01] as u32) + (self.products[i10] as u32)) << 4)
            + ((self.products[i11] as u32) << 8);
        debug_assert!(mag <= u16::MAX as u32);
        (
            mag as u16,
            self.costs[i00] + self.costs[i01] + self.costs[i10] + self.costs[i11],
        )
    }

    /// Magnitude and packed cost of one unsigned 16-bit multiply
    /// (sixteen nibble partials through the direct-indexed array).
    #[inline]
    fn mul_u16_parts(&self, a: u16, b: u16) -> (u32, PackedCost) {
        let mut mag: u64 = 0;
        let mut cost = PackedCost::default();
        for i in 0..4 {
            let pa = ((a >> (4 * i)) & 0xf) as usize;
            for j in 0..4 {
                let pb = ((b >> (4 * j)) & 0xf) as usize;
                let idx = (pa << 4) | pb;
                mag += (self.products[idx] as u64) << (4 * (i + j));
                cost += self.costs[idx];
            }
        }
        debug_assert!(mag <= u32::MAX as u64);
        (mag as u32, cost)
    }

    /// Batched unsigned 8-bit multiply — value- and cost-identical to
    /// [`LutMultiplier::mul_u8`].
    pub fn mul_u8(&self, a: u8, b: u8) -> (u16, OpCost) {
        let (mag, pc) = self.mul_u8_parts(a, b);
        let mut cost = pc.unpack();
        cost.adds += 3;
        cost.cycles = 2;
        self.lut.add_reads(cost.lut_reads);
        (mag, cost)
    }

    /// Batched signed 8-bit multiply (sign-magnitude, as the BCE
    /// handles quantized signed weights).
    pub fn mul_i8(&self, a: i8, b: i8) -> (i16, OpCost) {
        let sign = (a < 0) ^ (b < 0);
        let (mag, cost) = self.mul_u8(a.unsigned_abs(), b.unsigned_abs());
        let product = if sign { -(mag as i32) } else { mag as i32 };
        debug_assert!(product >= i16::MIN as i32 && product <= i16::MAX as i32);
        (product as i16, cost)
    }

    /// Batched unsigned 16-bit multiply — value- and cost-identical to
    /// [`LutMultiplier::mul_u16`].
    pub fn mul_u16(&self, a: u16, b: u16) -> (u32, OpCost) {
        let (mag, pc) = self.mul_u16_parts(a, b);
        let mut cost = pc.unpack();
        cost.adds += 15;
        cost.cycles = 8;
        self.lut.add_reads(cost.lut_reads);
        (mag, cost)
    }

    /// Batched signed 16-bit multiply.
    pub fn mul_i16(&self, a: i16, b: i16) -> (i32, OpCost) {
        let sign = (a < 0) ^ (b < 0);
        let (mag, cost) = self.mul_u16(a.unsigned_abs(), b.unsigned_abs());
        let product = if sign { -(mag as i64) } else { mag as i64 };
        debug_assert!(product >= i32::MIN as i64 && product <= i32::MAX as i64);
        (product as i32, cost)
    }

    /// Batched signed 8-bit dot product: elements stream two at a time
    /// through [`mul_nibble_x8`]'s eight lanes (four partials each), the
    /// packed costs fold per chunk and the read counter advances once.
    /// Value- and cost-identical to [`LutMultiplier::dot_i8`].
    ///
    /// [`mul_nibble_x8`]: BatchedLutMultiplier::mul_nibble_x8
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_i8(&self, a: &[i8], b: &[i8]) -> (i32, OpCost) {
        assert_eq!(
            a.len(),
            b.len(),
            "dot product operands must have equal length"
        );
        let mut acc: i32 = 0;
        let mut cost = OpCost::ZERO;
        for (ca, cb) in a.chunks(COST_SPILL_CHUNK).zip(b.chunks(COST_SPILL_CHUNK)) {
            let mut packed = PackedCost::default();
            let mut i = 0;
            // Two i8 elements fill one SWAR word: lanes 0..4 hold the
            // first element's four nibble partials, lanes 4..8 the
            // second's.
            while i + 1 < ca.len() {
                let (wa, wb) = (
                    pack_mul_lanes(ca[i].unsigned_abs(), ca[i + 1].unsigned_abs()),
                    pack_operand_lanes(cb[i].unsigned_abs(), cb[i + 1].unsigned_abs()),
                );
                let (prod, pc) = self.lanes(wa, wb);
                packed += pc;
                let mag0 = combine_partials((prod & 0xffff_ffff) as u32);
                let mag1 = combine_partials((prod >> 32) as u32);
                acc += signed(mag0, (ca[i] < 0) ^ (cb[i] < 0));
                acc += signed(mag1, (ca[i + 1] < 0) ^ (cb[i + 1] < 0));
                i += 2;
            }
            if i < ca.len() {
                let (mag, pc) = self.mul_u8_parts(ca[i].unsigned_abs(), cb[i].unsigned_abs());
                packed += pc;
                acc += signed(mag as u32, (ca[i] < 0) ^ (cb[i] < 0));
            }
            cost += packed.unpack();
        }
        let n = a.len() as u64;
        // Per element: three adds combine the four partials; n products
        // accumulate with n - 1 adds; two cycles per 8-bit MAC.
        cost.adds += 3 * n + n.saturating_sub(1);
        cost.cycles = 2 * n;
        self.lut.add_reads(cost.lut_reads);
        (acc, cost)
    }

    /// Batched unsigned 8-bit dot product — identical to
    /// [`LutMultiplier::dot_u8`].
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_u8(&self, a: &[u8], b: &[u8]) -> (u32, OpCost) {
        assert_eq!(
            a.len(),
            b.len(),
            "dot product operands must have equal length"
        );
        let mut acc: u32 = 0;
        let mut cost = OpCost::ZERO;
        for (ca, cb) in a.chunks(COST_SPILL_CHUNK).zip(b.chunks(COST_SPILL_CHUNK)) {
            let mut packed = PackedCost::default();
            let mut i = 0;
            while i + 1 < ca.len() {
                let (wa, wb) = (
                    pack_mul_lanes(ca[i], ca[i + 1]),
                    pack_operand_lanes(cb[i], cb[i + 1]),
                );
                let (prod, pc) = self.lanes(wa, wb);
                packed += pc;
                acc += combine_partials((prod & 0xffff_ffff) as u32);
                acc += combine_partials((prod >> 32) as u32);
                i += 2;
            }
            if i < ca.len() {
                let (mag, pc) = self.mul_u8_parts(ca[i], cb[i]);
                packed += pc;
                acc += mag as u32;
            }
            cost += packed.unpack();
        }
        let n = a.len() as u64;
        cost.adds += 3 * n + n.saturating_sub(1);
        cost.cycles = 2 * n;
        self.lut.add_reads(cost.lut_reads);
        (acc, cost)
    }

    /// Batched signed 4-bit dot product (`-8..=7` operands): one table
    /// hit per element, one cycle per MAC, `n - 1` accumulate adds.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths or when an operand
    /// is out of 4-bit signed range.
    pub fn dot_i4(&self, a: &[i8], b: &[i8]) -> (i32, OpCost) {
        assert_eq!(
            a.len(),
            b.len(),
            "dot product operands must have equal length"
        );
        let mut acc: i32 = 0;
        let mut cost = OpCost::ZERO;
        for (ca, cb) in a.chunks(COST_SPILL_CHUNK).zip(b.chunks(COST_SPILL_CHUNK)) {
            let mut packed = PackedCost::default();
            for (&x, &y) in ca.iter().zip(cb.iter()) {
                assert!(
                    (-8..=7).contains(&x) && (-8..=7).contains(&y),
                    "operands must be 4-bit signed"
                );
                let idx = ((x.unsigned_abs() as usize) << 4) | y.unsigned_abs() as usize;
                packed += self.costs[idx];
                acc += signed(self.products[idx] as u32, (x < 0) ^ (y < 0));
            }
            cost += packed.unpack();
        }
        let n = a.len() as u64;
        cost.adds += n.saturating_sub(1);
        cost.cycles = n;
        self.lut.add_reads(cost.lut_reads);
        (acc, cost)
    }

    /// Batched signed 16-bit dot product: sixteen nibble partials per
    /// element (eight cycles per MAC), costs folded per chunk.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_i16(&self, a: &[i16], b: &[i16]) -> (i64, OpCost) {
        assert_eq!(
            a.len(),
            b.len(),
            "dot product operands must have equal length"
        );
        let mut acc: i64 = 0;
        let mut cost = OpCost::ZERO;
        for (ca, cb) in a.chunks(COST_SPILL_CHUNK).zip(b.chunks(COST_SPILL_CHUNK)) {
            let mut packed = PackedCost::default();
            for (&x, &y) in ca.iter().zip(cb.iter()) {
                let (mag, pc) = self.mul_u16_parts(x.unsigned_abs(), y.unsigned_abs());
                packed += pc;
                let p = if (x < 0) ^ (y < 0) {
                    -(mag as i64)
                } else {
                    mag as i64
                };
                acc += p;
            }
            cost += packed.unpack();
        }
        let n = a.len() as u64;
        cost.adds += 15 * n + n.saturating_sub(1);
        cost.cycles = 8 * n;
        self.lut.add_reads(cost.lut_reads);
        (acc, cost)
    }
}

impl Default for BatchedLutMultiplier {
    fn default() -> Self {
        BatchedLutMultiplier::new()
    }
}

/// Packs the two nibbles of two multiplicands into the dot kernels'
/// lane order: `[a0, a0, a1, a1]` per element (pairing with
/// [`pack_operand_lanes`]'s `[b0, b1, b0, b1]` yields the four
/// partial-product pairs of an 8-bit multiply).
#[inline]
fn pack_mul_lanes(first: u8, second: u8) -> u64 {
    let half = |m: u8| {
        let (a1, a0) = ((m >> 4) as u64, (m & 0xf) as u64);
        a0 | a0 << 8 | a1 << 16 | a1 << 24
    };
    half(first) | half(second) << 32
}

/// The multiplier-side lane order: `[b0, b1, b0, b1]` per element.
#[inline]
fn pack_operand_lanes(first: u8, second: u8) -> u64 {
    let half = |m: u8| {
        let (b1, b0) = ((m >> 4) as u64, (m & 0xf) as u64);
        b0 | b1 << 8 | b0 << 16 | b1 << 24
    };
    half(first) | half(second) << 32
}

/// Folds one element's four partial-product lanes (`p00, p01, p10,
/// p11`, one per byte) into the 16-bit magnitude.
#[inline]
fn combine_partials(lanes: u32) -> u32 {
    let p00 = lanes & 0xff;
    let p01 = (lanes >> 8) & 0xff;
    let p10 = (lanes >> 16) & 0xff;
    let p11 = (lanes >> 24) & 0xff;
    p00 + ((p01 + p10) << 4) + (p11 << 8)
}

#[inline]
fn signed(mag: u32, negative: bool) -> i32 {
    if negative {
        -(mag as i32)
    } else {
        mag as i32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn flattened_products_match_the_analyzer_exhaustively() {
        let batched = BatchedLutMultiplier::new();
        let scalar = LutMultiplier::new();
        for a in 0u8..16 {
            for b in 0u8..16 {
                let idx = ((a as usize) << 4) | b as usize;
                let (p, c) = scalar.mul_nibble(a, b);
                assert_eq!(batched.products()[idx], p, "{a} x {b}");
                let unpacked = batched.packed_cost(a, b).unpack();
                assert_eq!(unpacked, OpCost { cycles: 0, ..c }, "{a} x {b}");
            }
        }
    }

    #[test]
    fn mul_u8_matches_scalar_exhaustively_in_value_and_cost() {
        // The satellite equivalence suite: all 256 x 256 u8 pairs,
        // value AND OpCost bit-equal between scalar and SWAR paths.
        let batched = BatchedLutMultiplier::new();
        let scalar = LutMultiplier::new();
        for a in 0u16..=255 {
            for b in 0u16..=255 {
                let got = batched.mul_u8(a as u8, b as u8);
                let want = scalar.mul_u8(a as u8, b as u8);
                assert_eq!(got, want, "{a} x {b}");
            }
        }
        // Identical work must leave identical read-counter totals.
        assert_eq!(batched.table().reads(), scalar.table().reads());
    }

    #[test]
    fn swar_word_multiplies_eight_lanes() {
        let batched = BatchedLutMultiplier::new();
        let scalar = LutMultiplier::new();
        let a_lanes = [0u8, 1, 3, 7, 9, 12, 14, 15];
        let b_lanes = [15u8, 13, 11, 6, 5, 4, 2, 0];
        let pack = |lanes: [u8; 8]| {
            lanes
                .iter()
                .enumerate()
                .fold(0u64, |w, (i, &v)| w | (v as u64) << (8 * i))
        };
        let (prod, cost) = batched.mul_nibble_x8(pack(a_lanes), pack(b_lanes));
        let mut expected_cost = OpCost::ZERO;
        for lane in 0..NIBBLE_LANES {
            let byte = ((prod >> (8 * lane)) & 0xff) as u8;
            let (p, c) = scalar.mul_nibble(a_lanes[lane], b_lanes[lane]);
            assert_eq!(byte, p, "lane {lane}");
            expected_cost += OpCost { cycles: 0, ..c };
        }
        // The eight lanes retire together in a single cycle.
        assert_eq!(
            cost,
            OpCost {
                cycles: 1,
                ..expected_cost
            }
        );
        assert_eq!(batched.table().reads(), cost.lut_reads);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn lane_overflow_panics_in_debug() {
        let batched = BatchedLutMultiplier::new();
        batched.mul_nibble_x8(0x10, 0x01);
    }

    #[test]
    fn dot_counter_advances_by_the_batch_total() {
        let batched = BatchedLutMultiplier::new();
        let scalar = LutMultiplier::new();
        let a: Vec<i8> = (0..257).map(|i| (i * 89 % 255) as i8).collect();
        let b: Vec<i8> = (0..257).map(|i| (i * 33 % 255) as i8).collect();
        let (got, cost) = batched.dot_i8(&a, &b);
        let (want, want_cost) = scalar.dot_i8(&a, &b);
        assert_eq!(got, want);
        assert_eq!(cost, want_cost);
        assert_eq!(batched.table().reads(), scalar.table().reads());
        assert_eq!(batched.table().reads(), cost.lut_reads);
    }

    #[test]
    fn empty_dot_is_free() {
        let batched = BatchedLutMultiplier::new();
        assert_eq!(batched.dot_i8(&[], &[]), (0, OpCost::ZERO));
        assert_eq!(batched.dot_u8(&[], &[]), (0, OpCost::ZERO));
        assert_eq!(batched.dot_i4(&[], &[]), (0, OpCost::ZERO));
        assert_eq!(batched.dot_i16(&[], &[]), (0, OpCost::ZERO));
    }

    #[test]
    #[should_panic]
    fn mismatched_dot_lengths_panic() {
        let _ = BatchedLutMultiplier::new().dot_i8(&[1, 2], &[3]);
    }

    proptest! {
        #[test]
        fn prop_dot_i8_matches_scalar(
            a in proptest::collection::vec(any::<i8>(), 0..97),
        ) {
            // 0..97 covers empty, odd (tail lane) and even lengths —
            // lengths deliberately not a multiple of the lane width.
            let batched = BatchedLutMultiplier::new();
            let scalar = LutMultiplier::new();
            let b: Vec<i8> = a.iter().rev().map(|&v| v.wrapping_mul(37)).collect();
            prop_assert_eq!(batched.dot_i8(&a, &b), scalar.dot_i8(&a, &b));
        }

        #[test]
        fn prop_dot_u8_matches_scalar(
            a in proptest::collection::vec(any::<u8>(), 0..97),
        ) {
            let batched = BatchedLutMultiplier::new();
            let scalar = LutMultiplier::new();
            let b: Vec<u8> = a.iter().rev().map(|&v| v.wrapping_mul(29)).collect();
            prop_assert_eq!(batched.dot_u8(&a, &b), scalar.dot_u8(&a, &b));
        }

        #[test]
        fn prop_dot_cost_totals_equal_summed_scalar_costs(
            a in proptest::collection::vec(any::<i8>(), 1..64),
        ) {
            // The batched OpCost total must equal the fold of
            // per-element scalar costs plus the n - 1 accumulate adds.
            let batched = BatchedLutMultiplier::new();
            let scalar = LutMultiplier::new();
            let b: Vec<i8> = a.iter().map(|&v| v.wrapping_add(91)).collect();
            let (_, cost) = batched.dot_i8(&a, &b);
            let mut expected: OpCost = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| scalar.mul_i8(x, y).1)
                .sum();
            expected.adds += a.len() as u64 - 1;
            prop_assert_eq!(cost, expected);
        }

        #[test]
        fn prop_mul_i16_matches_scalar(x: i16, y: i16) {
            let batched = BatchedLutMultiplier::new();
            let scalar = LutMultiplier::new();
            prop_assert_eq!(batched.mul_i16(x, y), scalar.mul_i16(x, y));
        }

        #[test]
        fn prop_dot_i16_is_exact_with_folded_costs(
            a in proptest::collection::vec(any::<i16>(), 0..41),
        ) {
            let batched = BatchedLutMultiplier::new();
            let scalar = LutMultiplier::new();
            let b: Vec<i16> = a.iter().rev().map(|&v| v.wrapping_mul(129)).collect();
            let (d, cost) = batched.dot_i16(&a, &b);
            let expected: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
            prop_assert_eq!(d, expected);
            let mut want: OpCost = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| scalar.mul_i16(x, y).1)
                .sum();
            want.adds += (a.len() as u64).saturating_sub(1);
            prop_assert_eq!(cost, want);
        }

        #[test]
        fn prop_dot_i4_matches_per_element_scalar(
            a in proptest::collection::vec(-8i8..=7, 0..33),
        ) {
            let batched = BatchedLutMultiplier::new();
            let scalar = LutMultiplier::new();
            let b: Vec<i8> = a.iter().rev().cloned().collect();
            let (d, cost) = batched.dot_i4(&a, &b);
            let expected: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
            prop_assert_eq!(d, expected);
            let mut want: OpCost = a
                .iter()
                .zip(&b)
                .map(|(&x, &y)| scalar.mul_i4(x, y).1)
                .sum();
            want.adds += (a.len() as u64).saturating_sub(1);
            prop_assert_eq!(cost, want);
        }
    }
}
