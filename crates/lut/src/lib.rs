//! # pim-lut
//!
//! The functional LUT arithmetic of the BFree architecture (Ramanathan et
//! al., MICRO 2020, §III-B/§III-C). BFree replaces bitline computing with
//! data lookup:
//!
//! * **Multiplication** uses a 49-entry table holding only products of
//!   odd 4-bit operands in `3..=15`; the *operand analyzer* decomposes all
//!   other operands into odd parts and powers of two and fixes the result
//!   up with shifts and adds ([`MultLut`], [`OperandAnalyzer`],
//!   [`LutMultiplier`]). Wider operands are decomposed into 4-bit nibbles.
//!   The result is **bit-exact** with native multiplication.
//! * **Division** uses the small-table Taylor-series method of Hung et
//!   al.: `X/Y ~ X*(Yh - Yl)/Yh^2` with a reciprocal-square table indexed
//!   by the upper bits of the normalized divisor ([`DivLut`]).
//! * **Activation functions** (exponent, sigmoid, tanh) use piecewise
//!   linear approximation tables storing a slope and intercept per segment
//!   ([`PwlTable`]), composed into a full [`softmax()`] routine.
//!
//! The LUT rows live in plain 6T SRAM, so [`scrub`] adds the integrity
//! layer: a Hamming SECDED(72,64) codec ([`secded`]), parity/SECDED row
//! encodings, and a deterministic background scrubber that corrects or
//! seed-regenerates damaged rows ([`ProtectedLut`]).
//!
//! Every operation also returns an [`OpCost`] describing the
//! architectural events it generated (LUT reads, ROM reads, shifts, adds,
//! cycles), which `pim-bce` prices in time and energy.
//!
//! ```
//! use pim_lut::{LutMultiplier, MultLut};
//!
//! let mul = LutMultiplier::new();
//! let (product, cost) = mul.mul_u8(93, 201);
//! assert_eq!(product, 93 * 201);
//! assert!(cost.cycles >= 1);
//! assert_eq!(MultLut::new().entry_count(), 49); // paper Fig. 5
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod batch;
pub mod cost;
pub mod divide;
pub mod error;
pub mod mult_table;
pub mod multiply;
pub mod pwl;
pub mod scrub;
pub mod secded;
pub mod softmax;
pub mod storage;

pub use analyzer::{OperandAnalyzer, OperandClass};
pub use batch::{BatchedLutMultiplier, PackedCost, NIBBLE_LANES};
pub use cost::OpCost;
pub use divide::DivLut;
pub use error::LutError;
pub use mult_table::{MultLut, TriangularMultLut};
pub use multiply::LutMultiplier;
pub use pwl::{PwlFunction, PwlTable};
pub use scrub::{ProtectedLut, Protection, RowCheck, ScrubReport};
pub use softmax::{softmax, SoftmaxEngine};
pub use storage::{LutImage, LutKind};
