//! LUT-based exact multiplication (paper §III-C1, Figs. 5-7).
//!
//! A 4-bit x 4-bit product is produced from the 49-entry odd x odd table
//! plus shifter/adder fixups selected by the operand analyzer; wider
//! operands are decomposed into 4-bit nibbles and the partial products
//! accumulated, exactly as the BCE pipeline does. The results are
//! **bit-exact** with native multiplication — only the *cost* differs
//! from a hardwired multiplier.

use crate::analyzer::{OperandAnalyzer, OperandClass};
use crate::cost::OpCost;
use crate::mult_table::MultLut;

/// The LUT-based multiplier: the functional model of the BCE multiply
/// datapath.
///
/// ```
/// use pim_lut::LutMultiplier;
/// let mul = LutMultiplier::new();
/// let (p, cost) = mul.mul_u8(200, 57);
/// assert_eq!(p, 200 * 57);
/// // An 8-bit multiply uses at most four nibble partial products.
/// assert!(cost.lut_reads <= 4);
/// ```
#[derive(Debug, Clone, Default)]
pub struct LutMultiplier {
    lut: MultLut,
}

impl LutMultiplier {
    /// Creates a multiplier with a freshly preloaded 49-entry table.
    pub fn new() -> Self {
        LutMultiplier {
            lut: MultLut::new(),
        }
    }

    /// Shared access to the underlying table (for storage imaging and
    /// event counting).
    pub fn table(&self) -> &MultLut {
        &self.lut
    }

    /// Multiplies two 4-bit operands (`0..=15`).
    ///
    /// Decomposition rules, in the order the operand analyzer applies
    /// them (paper Fig. 6):
    ///
    /// 1. zero or one operands short-circuit;
    /// 2. a power-of-two operand becomes a single shift;
    /// 3. an even operand with exactly two set bits (6, 10, 12) becomes
    ///    two shifts and an add of the other operand — no LUT access;
    /// 4. otherwise both odd parts are at least 3 and the LUT provides
    ///    `odd_a * odd_b`, shifted by the residual power-of-two exponents.
    ///
    /// Every 4-bit product retires in one BCE cycle: the dual shifters
    /// and the adder operate in the same pipeline stage as the lookup.
    ///
    /// # Panics
    ///
    /// Panics if either operand exceeds 15.
    pub fn mul_nibble(&self, a: u8, b: u8) -> (u8, OpCost) {
        assert!(
            a <= 15 && b <= 15,
            "mul_nibble operands must be 4-bit, got {a} x {b}"
        );
        let ca = OperandAnalyzer::classify(a);
        let cb = OperandAnalyzer::classify(b);

        // Rule 1: trivial operands.
        if matches!(ca, OperandClass::Zero) || matches!(cb, OperandClass::Zero) {
            return (0, OpCost::trivial());
        }
        if matches!(ca, OperandClass::One) {
            return (b, OpCost::trivial());
        }
        if matches!(cb, OperandClass::One) {
            return (a, OpCost::trivial());
        }

        // Rule 2: a power of two is a single shift of the other operand.
        if let OperandClass::PowerOfTwo { shift } = ca {
            return (
                b << shift,
                OpCost {
                    shifts: 1,
                    cycles: 1,
                    ..OpCost::ZERO
                },
            );
        }
        if let OperandClass::PowerOfTwo { shift } = cb {
            return (
                a << shift,
                OpCost {
                    shifts: 1,
                    cycles: 1,
                    ..OpCost::ZERO
                },
            );
        }

        // Rule 3: an even operand that is the sum of exactly two powers of
        // two is handled with the BCE's two shifters and the adder
        // (Fig. 6, cycle 4), skipping the LUT.
        if a.is_multiple_of(2) && OperandAnalyzer::is_two_power_sum(a) {
            let parts = OperandAnalyzer::power_decomposition(a);
            let product = (b << parts[0]) + (b << parts[1]);
            return (
                product,
                OpCost {
                    shifts: 2,
                    adds: 1,
                    cycles: 1,
                    ..OpCost::ZERO
                },
            );
        }
        if b.is_multiple_of(2) && OperandAnalyzer::is_two_power_sum(b) {
            let parts = OperandAnalyzer::power_decomposition(b);
            let product = (a << parts[0]) + (a << parts[1]);
            return (
                product,
                OpCost {
                    shifts: 2,
                    adds: 1,
                    cycles: 1,
                    ..OpCost::ZERO
                },
            );
        }

        // Rule 4: both odd parts are >= 3 — the LUT path.
        let odd_a = ca.odd_part();
        let odd_b = cb.odd_part();
        let shift = ca.shift_part() + cb.shift_part();
        let product = self.lut.lookup(odd_a, odd_b) << shift;
        let shifts = if shift > 0 { 1 } else { 0 };
        (
            product,
            OpCost {
                lut_reads: 1,
                shifts,
                cycles: 1,
                ..OpCost::ZERO
            },
        )
    }

    /// Multiplies two unsigned 8-bit operands via four nibble partial
    /// products.
    ///
    /// The conv-mode BCE retires two nibble partials per cycle with its
    /// dual shifters, so an 8-bit multiply takes two cycles (the paper's
    /// 0.5 MAC/cycle/subarray in conv mode).
    pub fn mul_u8(&self, a: u8, b: u8) -> (u16, OpCost) {
        let (a1, a0) = (a >> 4, a & 0xf);
        let (b1, b0) = (b >> 4, b & 0xf);
        let mut cost = OpCost::ZERO;
        let mut acc: u32 = 0;
        for (pa, pb, weight) in [(a0, b0, 0u32), (a0, b1, 4), (a1, b0, 4), (a1, b1, 8)] {
            let (p, c) = self.mul_nibble(pa, pb);
            acc += (p as u32) << weight;
            cost += OpCost { cycles: 0, ..c };
        }
        // Three accumulating adds to combine the four partials.
        cost.adds += 3;
        cost.cycles = 2;
        debug_assert!(acc <= u16::MAX as u32);
        (acc as u16, cost)
    }

    /// Multiplies two unsigned 16-bit operands via sixteen nibble partial
    /// products (eight cycles at two partials per cycle).
    pub fn mul_u16(&self, a: u16, b: u16) -> (u32, OpCost) {
        let an = [
            (a & 0xf) as u8,
            ((a >> 4) & 0xf) as u8,
            ((a >> 8) & 0xf) as u8,
            (a >> 12) as u8,
        ];
        let bn = [
            (b & 0xf) as u8,
            ((b >> 4) & 0xf) as u8,
            ((b >> 8) & 0xf) as u8,
            (b >> 12) as u8,
        ];
        let mut cost = OpCost::ZERO;
        let mut acc: u64 = 0;
        for (i, &pa) in an.iter().enumerate() {
            for (j, &pb) in bn.iter().enumerate() {
                let (p, c) = self.mul_nibble(pa, pb);
                acc += (p as u64) << (4 * (i + j));
                cost += OpCost { cycles: 0, ..c };
            }
        }
        cost.adds += 15;
        cost.cycles = 8;
        debug_assert!(acc <= u32::MAX as u64);
        (acc as u32, cost)
    }

    /// Multiplies two signed 8-bit operands in sign-magnitude form, the
    /// way the BCE handles quantized signed weights.
    pub fn mul_i8(&self, a: i8, b: i8) -> (i16, OpCost) {
        let sign = (a < 0) ^ (b < 0);
        let (mag, cost) = self.mul_u8(a.unsigned_abs(), b.unsigned_abs());
        let product = if sign { -(mag as i32) } else { mag as i32 };
        debug_assert!(product >= i16::MIN as i32 && product <= i16::MAX as i32);
        (product as i16, cost)
    }

    /// Multiplies two signed 16-bit operands in sign-magnitude form.
    pub fn mul_i16(&self, a: i16, b: i16) -> (i32, OpCost) {
        let sign = (a < 0) ^ (b < 0);
        let (mag, cost) = self.mul_u16(a.unsigned_abs(), b.unsigned_abs());
        let product = if sign { -(mag as i64) } else { mag as i64 };
        debug_assert!(product >= i32::MIN as i64 && product <= i32::MAX as i64);
        (product as i32, cost)
    }

    /// Multiplies two 4-bit *signed* operands (`-8..=7`), the reduced
    /// precision mode of Fig. 14's mixed-precision runs.
    pub fn mul_i4(&self, a: i8, b: i8) -> (i16, OpCost) {
        assert!(
            (-8..=7).contains(&a) && (-8..=7).contains(&b),
            "operands must be 4-bit signed"
        );
        let sign = (a < 0) ^ (b < 0);
        let (mag, cost) = self.mul_nibble(a.unsigned_abs(), b.unsigned_abs());
        let product = if sign { -(mag as i16) } else { mag as i16 };
        (product, cost)
    }

    /// Dot product of two signed 8-bit vectors with a 32-bit accumulator,
    /// the fundamental MAC loop of every kernel mapping.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_i8(&self, a: &[i8], b: &[i8]) -> (i32, OpCost) {
        assert_eq!(
            a.len(),
            b.len(),
            "dot product operands must have equal length"
        );
        let mut acc: i32 = 0;
        let mut cost = OpCost::ZERO;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let (p, c) = self.mul_i8(x, y);
            acc += p as i32;
            cost += c;
        }
        // Accumulating n products takes n - 1 adds, consistent with
        // mul_u8's three adds for four partials.
        cost.adds += (a.len() as u64).saturating_sub(1);
        (acc, cost)
    }

    /// Dot product of two unsigned 8-bit vectors.
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    pub fn dot_u8(&self, a: &[u8], b: &[u8]) -> (u32, OpCost) {
        assert_eq!(
            a.len(),
            b.len(),
            "dot product operands must have equal length"
        );
        let mut acc: u32 = 0;
        let mut cost = OpCost::ZERO;
        for (&x, &y) in a.iter().zip(b.iter()) {
            let (p, c) = self.mul_u8(x, y);
            acc += p as u32;
            cost += c;
        }
        // Accumulating n products takes n - 1 adds, consistent with
        // mul_u8's three adds for four partials.
        cost.adds += (a.len() as u64).saturating_sub(1);
        (acc, cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn nibble_multiply_exhaustive() {
        let m = LutMultiplier::new();
        for a in 0u8..=15 {
            for b in 0u8..=15 {
                let (p, cost) = m.mul_nibble(a, b);
                assert_eq!(p as u16, a as u16 * b as u16, "{a} x {b}");
                assert_eq!(cost.cycles, 1, "every nibble product is one cycle");
                assert!(cost.lut_reads <= 1);
            }
        }
    }

    #[test]
    fn trivial_operands_skip_all_hardware() {
        let m = LutMultiplier::new();
        let (_, c) = m.mul_nibble(0, 9);
        assert_eq!((c.lut_reads, c.shifts, c.adds), (0, 0, 0));
        let (_, c) = m.mul_nibble(7, 1);
        assert_eq!((c.lut_reads, c.shifts, c.adds), (0, 0, 0));
    }

    #[test]
    fn power_of_two_uses_single_shift() {
        let m = LutMultiplier::new();
        for pow in [2u8, 4, 8] {
            let (p, c) = m.mul_nibble(pow, 13);
            assert_eq!(p as u16, pow as u16 * 13);
            assert_eq!(c.lut_reads, 0);
            assert_eq!(c.shifts, 1);
        }
    }

    #[test]
    fn two_power_sum_evens_avoid_lut() {
        // Fig. 6 cycle 4: 6 = 4 + 2 becomes two shifts and an add.
        let m = LutMultiplier::new();
        for even in [6u8, 10, 12] {
            let (p, c) = m.mul_nibble(even, 7);
            assert_eq!(p as u16, even as u16 * 7);
            assert_eq!(c.lut_reads, 0, "{even} should not touch the LUT");
            assert_eq!(c.shifts, 2);
            assert_eq!(c.adds, 1);
        }
    }

    #[test]
    fn odd_by_odd_is_single_lut_read() {
        let m = LutMultiplier::new();
        let (p, c) = m.mul_nibble(7, 13);
        assert_eq!(p, 91);
        assert_eq!(c.lut_reads, 1);
        assert_eq!(c.shifts, 0);
    }

    #[test]
    fn even_composite_uses_lut_and_shift() {
        // 14 = 7 << 1 has three set bits, so it takes the LUT path.
        let m = LutMultiplier::new();
        let (p, c) = m.mul_nibble(14, 9);
        assert_eq!(p as u16, 126);
        assert_eq!(c.lut_reads, 1);
        assert_eq!(c.shifts, 1);
    }

    #[test]
    fn u8_multiply_exhaustive_against_native() {
        let m = LutMultiplier::new();
        for a in (0u16..=255).step_by(7) {
            for b in 0u16..=255 {
                let (p, _) = m.mul_u8(a as u8, b as u8);
                assert_eq!(p, (a * b), "{a} x {b}");
            }
        }
    }

    #[test]
    fn u8_multiply_takes_two_cycles() {
        // Paper: conv mode achieves 0.5 8-bit MACs per cycle.
        let m = LutMultiplier::new();
        let (_, c) = m.mul_u8(0xAB, 0xCD);
        assert_eq!(c.cycles, 2);
        assert!(c.lut_reads <= 4);
    }

    #[test]
    fn i4_multiply_covers_full_range() {
        let m = LutMultiplier::new();
        for a in -8i8..=7 {
            for b in -8i8..=7 {
                let (p, _) = m.mul_i4(a, b);
                assert_eq!(p as i32, a as i32 * b as i32);
            }
        }
    }

    #[test]
    fn i8_edge_cases() {
        let m = LutMultiplier::new();
        for (a, b) in [
            (-128i8, -128i8),
            (-128, 127),
            (127, 127),
            (0, -128),
            (-1, -1),
        ] {
            let (p, _) = m.mul_i8(a, b);
            assert_eq!(p as i32, a as i32 * b as i32, "{a} x {b}");
        }
    }

    #[test]
    fn dot_product_matches_native() {
        let m = LutMultiplier::new();
        let a: Vec<i8> = vec![1, -2, 3, -4, 5, -6, 7, -8];
        let b: Vec<i8> = vec![-8, 7, -6, 5, -4, 3, -2, 1];
        let (d, cost) = m.dot_i8(&a, &b);
        let expected: i32 = a.iter().zip(&b).map(|(&x, &y)| x as i32 * y as i32).sum();
        assert_eq!(d, expected);
        assert_eq!(cost.cycles, 16); // 8 MACs x 2 cycles
    }

    #[test]
    fn dot_charges_n_minus_one_accumulate_adds() {
        // 7 x 9 is a pure rule-4 product: one LUT read, no shifts, no
        // per-nibble adds — each mul_u8 cost is exactly the three
        // partial-combine adds. The accumulation across n products must
        // add n - 1 more, not n.
        let m = LutMultiplier::new();
        let (_, c) = m.dot_u8(&[7, 7, 7, 7], &[9, 9, 9, 9]);
        assert_eq!(c.adds, 4 * 3 + 3);
        let (_, c) = m.dot_u8(&[7], &[9]);
        assert_eq!(c.adds, 3, "a single product needs no accumulate add");
        let (_, c) = m.dot_u8(&[], &[]);
        assert_eq!(c, OpCost::ZERO, "an empty dot is free");
    }

    #[test]
    #[should_panic]
    fn mismatched_dot_lengths_panic() {
        let m = LutMultiplier::new();
        let _ = m.dot_i8(&[1, 2], &[3]);
    }

    proptest! {
        #[test]
        fn prop_u8_exact(a: u8, b: u8) {
            let m = LutMultiplier::new();
            let (p, _) = m.mul_u8(a, b);
            prop_assert_eq!(p, a as u16 * b as u16);
        }

        #[test]
        fn prop_u16_exact(a: u16, b: u16) {
            let m = LutMultiplier::new();
            let (p, _) = m.mul_u16(a, b);
            prop_assert_eq!(p, a as u32 * b as u32);
        }

        #[test]
        fn prop_i8_exact(a: i8, b: i8) {
            let m = LutMultiplier::new();
            let (p, _) = m.mul_i8(a, b);
            prop_assert_eq!(p as i32, a as i32 * b as i32);
        }

        #[test]
        fn prop_i16_exact(a: i16, b: i16) {
            let m = LutMultiplier::new();
            let (p, _) = m.mul_i16(a, b);
            prop_assert_eq!(p as i64, a as i64 * b as i64);
        }

        #[test]
        fn prop_dot_exact(a in proptest::collection::vec(any::<i8>(), 0..64)) {
            let m = LutMultiplier::new();
            let b: Vec<i8> = a.iter().rev().cloned().collect();
            let (d, _) = m.dot_i8(&a, &b);
            let expected: i64 = a.iter().zip(&b).map(|(&x, &y)| x as i64 * y as i64).sum();
            prop_assert_eq!(d as i64, expected);
        }

        #[test]
        fn prop_cost_cycles_fixed(a: u8, b: u8) {
            // The cost model is data-independent in cycle count.
            let m = LutMultiplier::new();
            let (_, c) = m.mul_u8(a, b);
            prop_assert_eq!(c.cycles, 2);
        }
    }
}
