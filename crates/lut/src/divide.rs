//! Small-table Taylor-series division (paper §III-C2).
//!
//! BFree performs division (average pooling, softmax normalization) with
//! the method of Hung, Fahmy, Mencer and Flynn: both operands are mapped
//! into `[1, 2)` by shifting, the divisor is split into its upper and
//! lower halves `Y = Yh + Yl`, and
//!
//! ```text
//! X / Y  ~  X * (Yh - Yl) / Yh^2
//! ```
//!
//! where `1 / Yh^2` comes from a small LUT indexed by the upper divisor
//! bits. The relative error is bounded by `(Yl / Yh)^2 <= 2^-2(m-1)` for
//! an `m`-bit table index, so the default `m = 8` gives better than
//! 0.01% error — ample for pooling and softmax.
//!
//! The implementation is pure fixed-point (`u64` intermediates with
//! documented scale factors), mirroring the shift-and-multiply hardware.

use serde::{Deserialize, Serialize};

use crate::cost::OpCost;
use crate::error::LutError;

/// Scale of the reciprocal-square table entries: entries store
/// `round(2^RECIP_SHIFT / yh^2)`.
const RECIP_SHIFT: u32 = 40;

/// The Taylor-series division engine with its reciprocal-square table.
///
/// ```
/// use pim_lut::DivLut;
/// let div = DivLut::new(8).unwrap();
/// let (q, _cost) = div.divide(355, 113).unwrap();
/// assert!((q - 355.0 / 113.0).abs() / (355.0 / 113.0) < 1e-4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DivLut {
    m: u32,
    /// `table[i] = round(2^40 / (i + 2^(m-1))^2)` for the `2^(m-1)`
    /// possible upper-bit patterns of a normalized divisor.
    table: Vec<u64>,
}

impl DivLut {
    /// Builds the table for an `m`-bit divisor index, `4 <= m <= 12`.
    ///
    /// The table has `2^(m-1)` entries (a normalized divisor always has
    /// its leading bit set).
    ///
    /// # Errors
    ///
    /// Returns [`LutError::InvalidTable`] when `m` is out of range.
    pub fn new(m: u32) -> Result<Self, LutError> {
        if !(4..=12).contains(&m) {
            return Err(LutError::InvalidTable {
                parameter: "m",
                reason: format!("index width must be in 4..=12, got {m}"),
            });
        }
        let lo = 1u64 << (m - 1);
        let hi = 1u64 << m;
        let table = (lo..hi)
            .map(|yh| {
                let denom = yh * yh;
                ((1u128 << RECIP_SHIFT) as f64 / denom as f64).round() as u64
            })
            .collect();
        Ok(DivLut { m, table })
    }

    /// The divisor index width `m`.
    pub fn index_bits(&self) -> u32 {
        self.m
    }

    /// Number of table entries (`2^(m-1)`).
    pub fn entry_count(&self) -> usize {
        self.table.len()
    }

    /// Table storage in bytes (entries fit in four bytes each for
    /// `m <= 12`).
    pub fn storage_bytes(&self) -> usize {
        self.table.len() * 4
    }

    /// Worst-case relative error bound of the approximation,
    /// `2^-2(m-1)` (loose; the measured error is typically smaller).
    pub fn error_bound(&self) -> f64 {
        2f64.powi(-(2 * (self.m as i32 - 1)))
    }

    /// Divides two unsigned integers, returning the approximate quotient
    /// and the architectural cost (one LUT read, two multiplies folded
    /// into the BCE, and the normalization shifts).
    ///
    /// # Errors
    ///
    /// Returns [`LutError::DivisionByZero`] when `y == 0`. `x == 0`
    /// returns zero exactly.
    pub fn divide(&self, x: u64, y: u64) -> Result<(f64, OpCost), LutError> {
        if y == 0 {
            return Err(LutError::DivisionByZero);
        }
        if x == 0 {
            return Ok((0.0, OpCost::trivial()));
        }
        // Normalize both operands to 16-bit with the MSB set; record the
        // exponents so the result can be denormalized (the hardware keeps
        // the shift counter, §III-C2).
        let (xn, ex) = normalize16(x);
        let (yn, ey) = normalize16(y);

        // Split the divisor: yh = top m bits (leading bit set), yl = rest.
        let frac_bits = 16 - self.m;
        let yh = yn >> frac_bits; // in [2^(m-1), 2^m)
        let yl = yn & ((1u64 << frac_bits) - 1);

        // N = X * (Yh - Yl), both in 2^-15 units => N in 2^-30 units.
        // (yh << frac_bits) restores Yh to 2^-15 units.
        let n = xn * ((yh << frac_bits) - yl);

        // Multiply by 1/Yh^2 from the table. The table stores
        // 2^40 / yh^2; Yh in value terms is yh / 2^(m-1), so
        // 1/Yh^2 = 2^(2m-2) / yh^2 and the residual shift is
        // 40 - (2m - 2) = 42 - 2m.
        let recip = self.table[(yh - (1 << (self.m - 1))) as usize];
        let scaled = (n as u128 * recip as u128) >> (42 - 2 * self.m);

        // scaled is the normalized quotient in 2^-30 units.
        let norm_quotient = scaled as f64 / (1u64 << 30) as f64;
        let quotient = norm_quotient * 2f64.powi(ex - ey);

        let cost = OpCost {
            lut_reads: 1,
            shifts: 3,
            adds: 1,
            rom_reads: 2,
            cycles: 4,
        };
        Ok((quotient, cost))
    }

    /// Divides and rounds to the nearest unsigned integer, the form used
    /// by average pooling.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::DivisionByZero`] when `y == 0`.
    pub fn divide_round(&self, x: u64, y: u64) -> Result<(u64, OpCost), LutError> {
        let (q, cost) = self.divide(x, y)?;
        Ok((q.round().max(0.0) as u64, cost))
    }

    /// Division with one Newton-Raphson refinement step — an extension
    /// beyond the paper's single-lookup scheme for workloads needing
    /// tighter quotients. The LUT quotient seeds a reciprocal estimate
    /// `r0 = q0 / x`, refined as `r1 = r0 * (2 - y * r0)`, roughly
    /// squaring the relative accuracy for two extra multiplies and a
    /// subtract on the BCE datapath.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::DivisionByZero`] when `y == 0`.
    pub fn divide_refined(&self, x: u64, y: u64) -> Result<(f64, OpCost), LutError> {
        let (q0, mut cost) = self.divide(x, y)?;
        if x == 0 {
            return Ok((0.0, cost));
        }
        let r0 = q0 / x as f64; // seed reciprocal of y
        let r1 = r0 * (2.0 - y as f64 * r0);
        cost += OpCost {
            rom_reads: 4,
            adds: 2,
            shifts: 0,
            cycles: 3,
            lut_reads: 0,
        };
        Ok((x as f64 * r1, cost))
    }
}

impl Default for DivLut {
    /// The paper's configuration: `m = 8` (128 entries, 512 bytes).
    fn default() -> Self {
        // Invariant: `new` accepts 1 <= m <= 16; 8 is a constant.
        DivLut::new(8).expect("m = 8 is valid")
    }
}

/// Normalizes a non-zero integer into `[2^15, 2^16)`; returns the
/// normalized mantissa and the exponent such that
/// `value = mantissa * 2^(exp - 15)`.
fn normalize16(v: u64) -> (u64, i32) {
    debug_assert!(v != 0);
    let msb = 63 - v.leading_zeros() as i32;
    let mantissa = if msb >= 15 {
        v >> (msb - 15)
    } else {
        v << (15 - msb)
    };
    (mantissa, msb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn table_sizes() {
        let d = DivLut::new(8).unwrap();
        assert_eq!(d.entry_count(), 128);
        assert_eq!(d.storage_bytes(), 512);
        assert_eq!(DivLut::new(6).unwrap().entry_count(), 32);
    }

    #[test]
    fn invalid_index_width_rejected() {
        assert!(DivLut::new(3).is_err());
        assert!(DivLut::new(13).is_err());
    }

    #[test]
    fn division_by_zero_rejected() {
        let d = DivLut::default();
        assert_eq!(d.divide(5, 0), Err(LutError::DivisionByZero));
    }

    #[test]
    fn zero_numerator_is_exact() {
        let d = DivLut::default();
        let (q, _) = d.divide(0, 7).unwrap();
        assert_eq!(q, 0.0);
    }

    #[test]
    fn normalize16_preserves_value() {
        for v in [1u64, 2, 3, 100, 32768, 65535, 65536, 1 << 30, u64::MAX >> 1] {
            let (m, e) = normalize16(v);
            assert!(
                (32768..65536).contains(&m),
                "mantissa {m} out of range for {v}"
            );
            let back = m as f64 * 2f64.powi(e - 15);
            assert!((back / v as f64 - 1.0).abs() < 2e-5, "{v} -> {back}");
        }
    }

    #[test]
    fn dense_error_sweep_within_bound() {
        let d = DivLut::new(8).unwrap();
        let mut max_rel = 0.0f64;
        for x in (1..5000u64).step_by(37) {
            for y in (1..5000u64).step_by(41) {
                let (q, _) = d.divide(x, y).unwrap();
                let exact = x as f64 / y as f64;
                let rel = (q - exact).abs() / exact;
                max_rel = max_rel.max(rel);
            }
        }
        // Loose analytic bound plus fixed-point rounding slack.
        assert!(
            max_rel < d.error_bound() * 4.0 + 1e-4,
            "max relative error {max_rel}"
        );
    }

    #[test]
    fn error_shrinks_with_larger_table() {
        let worst = |m: u32| {
            let d = DivLut::new(m).unwrap();
            let mut worst = 0.0f64;
            for y in 1..=255u64 {
                let (q, _) = d.divide(1000, y).unwrap();
                let exact = 1000.0 / y as f64;
                worst = worst.max((q - exact).abs() / exact);
            }
            worst
        };
        assert!(worst(10) < worst(5));
    }

    #[test]
    fn average_pooling_style_division_rounds_correctly() {
        let d = DivLut::default();
        // 9-element average pooling windows.
        let (q, _) = d.divide_round(45, 9).unwrap();
        assert_eq!(q, 5);
        let (q, _) = d.divide_round(1000, 9).unwrap();
        assert_eq!(q, 111);
    }

    #[test]
    fn refined_division_beats_single_lookup() {
        let d = DivLut::new(6).unwrap(); // coarse table to make the gain visible
        let mut worst_plain = 0.0f64;
        let mut worst_refined = 0.0f64;
        for x in (1..2000u64).step_by(97) {
            for y in (1..500u64).step_by(41) {
                let exact = x as f64 / y as f64;
                let (plain, _) = d.divide(x, y).unwrap();
                let (refined, _) = d.divide_refined(x, y).unwrap();
                worst_plain = worst_plain.max((plain - exact).abs() / exact);
                worst_refined = worst_refined.max((refined - exact).abs() / exact);
            }
        }
        assert!(
            worst_refined < worst_plain / 4.0,
            "refined {worst_refined} vs plain {worst_plain}"
        );
    }

    #[test]
    fn refined_division_costs_more_cycles() {
        let d = DivLut::default();
        let (_, plain) = d.divide(100, 7).unwrap();
        let (_, refined) = d.divide_refined(100, 7).unwrap();
        assert!(refined.cycles > plain.cycles);
        assert!(refined.rom_reads > plain.rom_reads);
    }

    #[test]
    fn cost_reports_one_lut_read() {
        let d = DivLut::default();
        let (_, c) = d.divide(17, 5).unwrap();
        assert_eq!(c.lut_reads, 1);
        assert!(c.cycles >= 1);
    }

    proptest! {
        #[test]
        fn prop_relative_error_bounded(x in 1u64..1_000_000, y in 1u64..1_000_000) {
            let d = DivLut::new(8).unwrap();
            let (q, _) = d.divide(x, y).unwrap();
            let exact = x as f64 / y as f64;
            let rel = (q - exact).abs() / exact;
            prop_assert!(rel < 4.0 * d.error_bound() + 1e-4, "x={} y={} rel={}", x, y, rel);
        }

        #[test]
        fn prop_quotient_monotone_in_numerator(x in 1u64..100_000, y in 1u64..1000) {
            let d = DivLut::new(8).unwrap();
            let (q1, _) = d.divide(x, y).unwrap();
            let (q2, _) = d.divide(x * 2, y).unwrap();
            // Doubling the numerator should roughly double the quotient.
            prop_assert!((q2 / q1 - 2.0).abs() < 0.01);
        }
    }
}
