//! Hamming SECDED(72,64) codec for 64-bit LUT rows.
//!
//! Classic extended Hamming layout: code-word positions `1..72` hold
//! the 64 data bits interleaved with seven check bits at the
//! power-of-two positions (1, 2, 4, 8, 16, 32, 64), and position 0
//! holds an overall even-parity bit over the whole word. Any single
//! flipped bit produces a non-zero syndrome *and* an odd overall
//! parity, which locates and corrects it; any double flip leaves the
//! overall parity even while the syndrome is non-zero, which detects
//! it without mislocating a correction.
//!
//! Everything here is pure shift/XOR bit-twiddling on integers —
//! exactly the kind of code the `miri` CI job sweeps.

/// Width of the full SECDED code word.
pub const CODE_BITS: u32 = 72;

/// The seven Hamming check-bit positions (powers of two).
const CHECKS: [u32; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Positions covered by check bit `c`: every position whose index has
/// bit `c` set (including `c` itself, so a flipped check bit indicts
/// exactly its own syndrome).
const fn group_mask(c: u32) -> u128 {
    let mut mask = 0u128;
    let mut p = 1u32;
    while p < CODE_BITS {
        if p & c != 0 {
            mask |= 1 << p;
        }
        p += 1;
    }
    mask
}

const GROUP_MASKS: [u128; 7] = [
    group_mask(1),
    group_mask(2),
    group_mask(4),
    group_mask(8),
    group_mask(16),
    group_mask(32),
    group_mask(64),
];

/// Outcome of decoding one code word.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decoded {
    /// No error: the stored word is exactly as encoded.
    Clean {
        /// The 64 data bits.
        data: u64,
    },
    /// A single bit flip was located and corrected.
    Corrected {
        /// The data after correction.
        data: u64,
        /// The flipped code-word bit position (0..72).
        bit: u32,
    },
    /// A double (or worse) error: detected, not correctable in place.
    Uncorrectable,
}

/// Even-parity bit over a bare 64-bit row, for the 1-bit parity scheme.
#[must_use]
pub fn parity_bit(data: u64) -> bool {
    data.count_ones() % 2 == 1
}

/// Encodes 64 data bits into a 72-bit SECDED code word (low bits of
/// the returned value).
#[must_use]
pub fn encode(data: u64) -> u128 {
    let mut code = 0u128;
    let mut i = 0u32;
    for p in 1..CODE_BITS {
        if !p.is_power_of_two() {
            if (data >> i) & 1 == 1 {
                code |= 1 << p;
            }
            i += 1;
        }
    }
    for (k, &c) in CHECKS.iter().enumerate() {
        if (code & GROUP_MASKS[k]).count_ones() % 2 == 1 {
            code |= 1 << c;
        }
    }
    // Overall even parity across the whole word, stored at position 0.
    if code.count_ones() % 2 == 1 {
        code |= 1;
    }
    code
}

/// Extracts the 64 data bits from a code word without checking it.
#[must_use]
pub fn extract(code: u128) -> u64 {
    let mut data = 0u64;
    let mut i = 0u32;
    for p in 1..CODE_BITS {
        if !p.is_power_of_two() {
            if (code >> p) & 1 == 1 {
                data |= 1 << i;
            }
            i += 1;
        }
    }
    data
}

/// Decodes a possibly-corrupted code word.
#[must_use]
pub fn decode(code: u128) -> Decoded {
    let mut syndrome = 0u32;
    for (k, &c) in CHECKS.iter().enumerate() {
        if (code & GROUP_MASKS[k]).count_ones() % 2 == 1 {
            syndrome |= c;
        }
    }
    let overall_even = code.count_ones().is_multiple_of(2);
    match (syndrome, overall_even) {
        (0, true) => Decoded::Clean {
            data: extract(code),
        },
        // Only the overall parity bit itself flipped; data is intact.
        (0, false) => Decoded::Corrected {
            data: extract(code),
            bit: 0,
        },
        (s, false) if s < CODE_BITS => Decoded::Corrected {
            data: extract(code ^ (1 << s)),
            bit: s,
        },
        // Even overall parity with a non-zero syndrome (or a syndrome
        // pointing outside the word): at least two flips.
        _ => Decoded::Uncorrectable,
    }
}

/// The code word with bit `bit` (0..[`CODE_BITS`]) flipped.
#[must_use]
pub fn flip_bit(code: u128, bit: u32) -> u128 {
    debug_assert!(bit < CODE_BITS);
    code ^ (1 << bit)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_words() -> impl Iterator<Item = u64> {
        (0..64).map(|i| 1u64 << i).chain([
            0,
            u64::MAX,
            0x0123_4567_89AB_CDEF,
            0xDEAD_BEEF_CAFE_F00D,
        ])
    }

    #[test]
    fn clean_words_round_trip() {
        for data in sample_words() {
            assert_eq!(decode(encode(data)), Decoded::Clean { data });
        }
    }

    #[test]
    fn every_single_flip_is_corrected() {
        for data in [0u64, u64::MAX, 0x0123_4567_89AB_CDEF] {
            let code = encode(data);
            for bit in 0..CODE_BITS {
                match decode(flip_bit(code, bit)) {
                    Decoded::Corrected {
                        data: decoded,
                        bit: located,
                    } => {
                        assert_eq!(decoded, data, "bit {bit}");
                        assert_eq!(located, bit);
                    }
                    other => panic!("bit {bit}: expected correction, got {other:?}"),
                }
            }
        }
    }

    #[test]
    fn every_double_flip_is_detected() {
        let code = encode(0x0123_4567_89AB_CDEF);
        for a in 0..CODE_BITS {
            for b in (a + 1)..CODE_BITS {
                assert_eq!(
                    decode(flip_bit(flip_bit(code, a), b)),
                    Decoded::Uncorrectable,
                    "flips at {a},{b} must be detected, never miscorrected"
                );
            }
        }
    }

    #[test]
    fn parity_bit_counts_ones() {
        assert!(!parity_bit(0));
        assert!(parity_bit(1));
        assert!(!parity_bit(0b11));
        assert!(!parity_bit(u64::MAX));
    }

    #[test]
    fn code_word_uses_exactly_72_bits() {
        for data in sample_words() {
            assert_eq!(encode(data) >> CODE_BITS, 0);
        }
    }
}
