//! LUT-based softmax (paper §III-C3 and §IV-B2).
//!
//! BFree computes softmax with the PWL exponent table, a cross-subarray
//! accumulation of the denominator, and the Taylor-series division LUT
//! for the final normalization. This module composes those pieces into a
//! functional engine that also reports the architectural cost.

use crate::cost::OpCost;
use crate::divide::DivLut;
use crate::error::LutError;
use crate::pwl::{PwlFunction, PwlTable};

/// Fixed-point scale used to feed the integer divider (the hardware
/// accumulates exponent outputs in fixed point).
const SOFTMAX_FIXED_SCALE: f64 = 65536.0;

/// A softmax engine built from the exponent PWL table and the division
/// LUT.
///
/// ```
/// use pim_lut::SoftmaxEngine;
/// let engine = SoftmaxEngine::new().unwrap();
/// let (probs, _cost) = engine.softmax(&[1.0, 2.0, 3.0]).unwrap();
/// assert!((probs.iter().sum::<f64>() - 1.0).abs() < 1e-2);
/// assert!(probs[2] > probs[1] && probs[1] > probs[0]);
/// ```
#[derive(Debug, Clone)]
pub struct SoftmaxEngine {
    exp_table: PwlTable,
    div: DivLut,
}

impl SoftmaxEngine {
    /// Creates an engine with the default table sizes (128-segment
    /// exponent over `[-16, 0]`, `m = 8` divider).
    ///
    /// # Errors
    ///
    /// Propagates table-construction errors.
    pub fn new() -> Result<Self, LutError> {
        Ok(SoftmaxEngine {
            exp_table: PwlTable::new(PwlFunction::Exp, -16.0, 0.0, 128)?,
            div: DivLut::new(8)?,
        })
    }

    /// Creates an engine with custom table parameters.
    ///
    /// # Errors
    ///
    /// Propagates table-construction errors.
    pub fn with_tables(exp_segments: usize, div_index_bits: u32) -> Result<Self, LutError> {
        Ok(SoftmaxEngine {
            exp_table: PwlTable::new(PwlFunction::Exp, -16.0, 0.0, exp_segments)?,
            div: DivLut::new(div_index_bits)?,
        })
    }

    /// Computes softmax over `logits`, returning the probabilities and
    /// the total architectural cost (per-element exponent lookups, the
    /// accumulation, and per-element division).
    ///
    /// # Errors
    ///
    /// Returns [`LutError::InvalidTable`] for an empty input.
    pub fn softmax(&self, logits: &[f64]) -> Result<(Vec<f64>, OpCost), LutError> {
        if logits.is_empty() {
            return Err(LutError::InvalidTable {
                parameter: "logits",
                reason: "softmax input must be non-empty".to_string(),
            });
        }
        let mut cost = OpCost::ZERO;
        // Shift by the max for numerical stability; the hardware performs
        // this with its comparator/adder in one pass.
        let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        cost.adds += logits.len() as u64;
        cost.cycles += logits.len() as u64;

        let mut exps = Vec::with_capacity(logits.len());
        for &v in logits {
            let (e, c) = self.exp_table.eval(v - max);
            exps.push(e.max(0.0));
            cost += c;
        }

        // Accumulate the denominator in fixed point (the cross-subarray
        // reduction of Fig. 10's softmax flow).
        let denom_fixed: u64 = exps.iter().map(|&e| (e * SOFTMAX_FIXED_SCALE) as u64).sum();
        cost.adds += exps.len() as u64;
        cost.cycles += exps.len() as u64;
        let denom_fixed = denom_fixed.max(1);

        let mut probs = Vec::with_capacity(exps.len());
        for &e in &exps {
            let num_fixed = (e * SOFTMAX_FIXED_SCALE) as u64;
            let (q, c) = self.div.divide(num_fixed, denom_fixed)?;
            probs.push(q);
            cost += c;
        }
        Ok((probs, cost))
    }

    /// Maximum absolute element-wise error versus exact softmax over a
    /// given input.
    pub fn max_abs_error(&self, logits: &[f64]) -> Result<f64, LutError> {
        let (approx, _) = self.softmax(logits)?;
        let exact = exact_softmax(logits);
        Ok(approx
            .iter()
            .zip(exact.iter())
            .map(|(a, e)| (a - e).abs())
            .fold(0.0, f64::max))
    }
}

/// Convenience free function using the default engine.
///
/// # Errors
///
/// Returns [`LutError::InvalidTable`] for an empty input.
pub fn softmax(logits: &[f64]) -> Result<(Vec<f64>, OpCost), LutError> {
    SoftmaxEngine::new()?.softmax(logits)
}

/// Exact reference softmax.
pub fn exact_softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&v| (v - max).exp()).collect();
    let denom: f64 = exps.iter().sum();
    exps.iter().map(|&e| e / denom).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sums_to_one_approximately() {
        let engine = SoftmaxEngine::new().unwrap();
        let (p, _) = engine.softmax(&[0.5, -1.0, 2.0, 3.5]).unwrap();
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 2e-2);
    }

    #[test]
    fn matches_exact_softmax_closely() {
        let engine = SoftmaxEngine::new().unwrap();
        let logits = [1.0, 2.0, 3.0, 4.0, 2.5];
        let err = engine.max_abs_error(&logits).unwrap();
        assert!(err < 5e-3, "error {err}");
    }

    #[test]
    fn preserves_argmax_and_ordering() {
        let engine = SoftmaxEngine::new().unwrap();
        let (p, _) = engine.softmax(&[-2.0, 0.1, 3.0, 1.5]).unwrap();
        assert!(p[2] > p[3] && p[3] > p[1] && p[1] > p[0]);
    }

    #[test]
    fn uniform_logits_give_uniform_probs() {
        let engine = SoftmaxEngine::new().unwrap();
        let (p, _) = engine.softmax(&[1.0; 8]).unwrap();
        for &v in &p {
            assert!((v - 0.125).abs() < 5e-3);
        }
    }

    #[test]
    fn empty_input_rejected() {
        let engine = SoftmaxEngine::new().unwrap();
        assert!(engine.softmax(&[]).is_err());
    }

    #[test]
    fn cost_scales_linearly_with_length() {
        let engine = SoftmaxEngine::new().unwrap();
        let (_, c4) = engine.softmax(&[1.0; 4]).unwrap();
        let (_, c8) = engine.softmax(&[1.0; 8]).unwrap();
        assert_eq!(c8.lut_reads, 2 * c4.lut_reads);
    }

    #[test]
    fn finer_tables_reduce_error() {
        let coarse = SoftmaxEngine::with_tables(16, 5).unwrap();
        let fine = SoftmaxEngine::with_tables(256, 10).unwrap();
        let logits = [0.3, 1.7, -0.5, 2.2, 0.9];
        assert!(fine.max_abs_error(&logits).unwrap() <= coarse.max_abs_error(&logits).unwrap());
    }

    proptest! {
        #[test]
        fn prop_probabilities_in_unit_interval(
            logits in proptest::collection::vec(-8.0f64..8.0, 1..32)
        ) {
            let engine = SoftmaxEngine::new().unwrap();
            let (p, _) = engine.softmax(&logits).unwrap();
            for &v in &p {
                prop_assert!((-1e-6..=1.05).contains(&v));
            }
        }

        #[test]
        fn prop_error_small_for_moderate_logits(
            logits in proptest::collection::vec(-6.0f64..6.0, 2..16)
        ) {
            let engine = SoftmaxEngine::new().unwrap();
            let err = engine.max_abs_error(&logits).unwrap();
            prop_assert!(err < 2e-2, "error {}", err);
        }
    }
}
