//! The BCE operand analyzer (paper §III-C1, Fig. 5/6).
//!
//! Before touching the multiply LUT, the BCE classifies each 4-bit
//! operand. Products involving zero, one or a power of two never access
//! the LUT; even operands are decomposed either into `odd * 2^k` (one LUT
//! access plus a shift) or — when they are the sum of exactly two powers
//! of two, as in the paper's Fig. 6 cycle 4 — into two shifts and an add
//! with no LUT access at all.

use serde::{Deserialize, Serialize};

/// Classification of a 4-bit operand by the operand analyzer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperandClass {
    /// The operand is zero: the product is zero, no compute needed.
    Zero,
    /// The operand is one: the product is the other operand.
    One,
    /// The operand is `2^k` for `k >= 1`: multiply becomes a left shift.
    PowerOfTwo {
        /// The shift amount `k`.
        shift: u32,
    },
    /// The operand is odd and `>= 3`: a direct LUT row/column index.
    Odd {
        /// The operand value.
        value: u8,
    },
    /// The operand is even but not a power of two: `value = odd << shift`
    /// with `odd >= 3`.
    EvenComposite {
        /// The odd factor (`>= 3`).
        odd: u8,
        /// The power-of-two factor exponent (`>= 1`).
        shift: u32,
    },
}

impl OperandClass {
    /// Whether multiplying by this operand requires a LUT access when the
    /// other operand is odd.
    pub fn needs_lut(self) -> bool {
        matches!(
            self,
            OperandClass::Odd { .. } | OperandClass::EvenComposite { .. }
        )
    }

    /// The odd factor of the operand (1 for powers of two and one, 0 for
    /// zero).
    pub fn odd_part(self) -> u8 {
        match self {
            OperandClass::Zero => 0,
            OperandClass::One => 1,
            OperandClass::PowerOfTwo { .. } => 1,
            OperandClass::Odd { value } => value,
            OperandClass::EvenComposite { odd, .. } => odd,
        }
    }

    /// The power-of-two exponent of the operand.
    pub fn shift_part(self) -> u32 {
        match self {
            OperandClass::PowerOfTwo { shift } => shift,
            OperandClass::EvenComposite { shift, .. } => shift,
            _ => 0,
        }
    }
}

/// The operand analyzer: a tiny piece of BCE logic that classifies
/// operands and chooses the decomposition strategy.
///
/// ```
/// use pim_lut::{OperandAnalyzer, OperandClass};
/// let a = OperandAnalyzer::classify(12);
/// assert_eq!(a, OperandClass::EvenComposite { odd: 3, shift: 2 });
/// assert_eq!(OperandAnalyzer::classify(8), OperandClass::PowerOfTwo { shift: 3 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OperandAnalyzer;

impl OperandAnalyzer {
    /// Classifies a 4-bit operand (values above 15 are accepted and
    /// classified by the same rules; the BCE only ever passes nibbles).
    pub fn classify(value: u8) -> OperandClass {
        match value {
            0 => OperandClass::Zero,
            1 => OperandClass::One,
            v if v.is_power_of_two() => OperandClass::PowerOfTwo {
                shift: v.trailing_zeros(),
            },
            v if v % 2 == 1 => OperandClass::Odd { value: v },
            v => {
                let shift = v.trailing_zeros();
                OperandClass::EvenComposite {
                    odd: v >> shift,
                    shift,
                }
            }
        }
    }

    /// Whether the operand is the sum of exactly two powers of two (e.g.
    /// `6 = 4 + 2`, `12 = 8 + 4`), enabling the paper's two-shift
    /// decomposition that avoids the LUT entirely.
    pub fn is_two_power_sum(value: u8) -> bool {
        value.count_ones() == 2
    }

    /// The exponents of the set bits, highest first, for the two-shift
    /// decomposition. Empty for zero.
    pub fn power_decomposition(value: u8) -> Vec<u32> {
        (0..8).rev().filter(|k| value & (1 << k) != 0).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_all_nibbles() {
        assert_eq!(OperandAnalyzer::classify(0), OperandClass::Zero);
        assert_eq!(OperandAnalyzer::classify(1), OperandClass::One);
        assert_eq!(
            OperandAnalyzer::classify(2),
            OperandClass::PowerOfTwo { shift: 1 }
        );
        assert_eq!(OperandAnalyzer::classify(3), OperandClass::Odd { value: 3 });
        assert_eq!(
            OperandAnalyzer::classify(4),
            OperandClass::PowerOfTwo { shift: 2 }
        );
        assert_eq!(
            OperandAnalyzer::classify(6),
            OperandClass::EvenComposite { odd: 3, shift: 1 }
        );
        assert_eq!(
            OperandAnalyzer::classify(8),
            OperandClass::PowerOfTwo { shift: 3 }
        );
        assert_eq!(
            OperandAnalyzer::classify(10),
            OperandClass::EvenComposite { odd: 5, shift: 1 }
        );
        assert_eq!(
            OperandAnalyzer::classify(12),
            OperandClass::EvenComposite { odd: 3, shift: 2 }
        );
        assert_eq!(
            OperandAnalyzer::classify(15),
            OperandClass::Odd { value: 15 }
        );
    }

    #[test]
    fn decomposition_reconstructs_value() {
        for v in 0u8..=15 {
            let c = OperandAnalyzer::classify(v);
            let reconstructed = c.odd_part() << c.shift_part();
            assert_eq!(reconstructed, v, "classify({v}) lost information");
        }
    }

    #[test]
    fn odd_part_is_odd_or_degenerate() {
        for v in 0u8..=15 {
            let odd = OperandAnalyzer::classify(v).odd_part();
            assert!(odd == 0 || odd % 2 == 1);
        }
    }

    #[test]
    fn two_power_sums_detected() {
        // 6=4+2, 12=8+4, 10=8+2, 5=4+1 (odd, but still two set bits).
        assert!(OperandAnalyzer::is_two_power_sum(6));
        assert!(OperandAnalyzer::is_two_power_sum(12));
        assert!(OperandAnalyzer::is_two_power_sum(10));
        assert!(!OperandAnalyzer::is_two_power_sum(7));
        assert!(!OperandAnalyzer::is_two_power_sum(8));
        assert!(!OperandAnalyzer::is_two_power_sum(0));
    }

    #[test]
    fn power_decomposition_sums_back() {
        for v in 1u8..=15 {
            let parts = OperandAnalyzer::power_decomposition(v);
            let sum: u32 = parts.iter().map(|k| 1u32 << k).sum();
            assert_eq!(sum, v as u32);
        }
        assert!(OperandAnalyzer::power_decomposition(0).is_empty());
    }

    #[test]
    fn needs_lut_only_for_odd_factors_above_one() {
        assert!(!OperandAnalyzer::classify(0).needs_lut());
        assert!(!OperandAnalyzer::classify(1).needs_lut());
        assert!(!OperandAnalyzer::classify(4).needs_lut());
        assert!(OperandAnalyzer::classify(3).needs_lut());
        assert!(OperandAnalyzer::classify(12).needs_lut());
    }
}
