//! Protected LUT-row storage and the deterministic background scrubber.
//!
//! A [`ProtectedLut`] holds a subarray's LUT image as 64-bit rows in
//! one of three protection encodings (bare, parity, SECDED) next to the
//! golden encoding it booted from. Faults flip bits in the *stored*
//! rows; the scrubber sweeps every row on a virtual-clock cadence,
//! correcting what its code can correct and regenerating what it can
//! only detect — the golden copy is a pure function of the table seed
//! (paper Fig. 11 configuration phase), so "repair" is a row rewrite,
//! never a checkpoint restore.
//!
//! The oracle view ([`ProtectedLut::audit`]) compares decoded data
//! against golden data: whatever the scheme failed to notice is silent
//! data corruption, the number the `sdc` experiment exists to drive to
//! zero.

use serde::{Deserialize, Serialize};

use crate::secded;
use crate::storage::LutImage;

/// Bytes per 64-bit LUT row.
pub const ROW_BYTES: usize = 8;

/// How each stored row is encoded against bit flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protection {
    /// Bare 6T cells: every flip is invisible until an oracle looks.
    None,
    /// One even-parity bit per row: odd flip counts are detected (and
    /// repaired by regeneration), even counts pass silently.
    Parity,
    /// Hamming SECDED(72,64): single flips corrected in place, double
    /// flips detected and repaired by regeneration.
    Secded,
}

impl Protection {
    /// Every scheme, in sweep order.
    pub const ALL: [Protection; 3] = [Protection::None, Protection::Parity, Protection::Secded];

    /// Stable lowercase label for CSV columns and event payloads.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Protection::None => "none",
            Protection::Parity => "parity",
            Protection::Secded => "secded",
        }
    }

    /// Coded word width — the space a fault can flip a bit in.
    #[must_use]
    pub fn word_bits(self) -> u32 {
        match self {
            Protection::None => 64,
            Protection::Parity => 65,
            Protection::Secded => secded::CODE_BITS,
        }
    }
}

/// Outcome of checking one stored row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowCheck {
    /// The code sees nothing wrong (which, below SECDED, does not mean
    /// nothing *is* wrong).
    Clean {
        /// The decoded data bits.
        data: u64,
    },
    /// SECDED located and corrected a single flipped bit.
    Corrected {
        /// The data after correction.
        data: u64,
        /// The flipped code-word bit.
        bit: u32,
    },
    /// The code detected corruption it cannot correct; the row must be
    /// regenerated from its seed.
    Detected,
}

/// One scrubber sweep over every row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ScrubReport {
    /// Rows scanned (every row, every pass).
    pub rows: u32,
    /// Rows whose check passed untouched.
    pub clean: u32,
    /// Rows corrected in place (SECDED single flips).
    pub corrected: u32,
    /// Rows detected as uncorrectable and regenerated from the seed.
    pub repaired: u32,
    /// Rows still decoding to wrong data after the pass — corruption
    /// the scheme never noticed (oracle view).
    pub silent: u32,
}

/// A subarray's LUT rows under one protection encoding, plus the
/// golden encoding they booted from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtectedLut {
    protection: Protection,
    rows: Vec<u128>,
    golden: Vec<u128>,
}

fn encode_row(protection: Protection, data: u64) -> u128 {
    match protection {
        Protection::None => u128::from(data),
        Protection::Parity => u128::from(data) | (u128::from(secded::parity_bit(data)) << 64),
        Protection::Secded => secded::encode(data),
    }
}

fn check_row(protection: Protection, code: u128) -> RowCheck {
    match protection {
        Protection::None => RowCheck::Clean { data: code as u64 },
        Protection::Parity => {
            let data = code as u64;
            let stored = (code >> 64) & 1 == 1;
            if stored == secded::parity_bit(data) {
                RowCheck::Clean { data }
            } else {
                RowCheck::Detected
            }
        }
        Protection::Secded => match secded::decode(code) {
            secded::Decoded::Clean { data } => RowCheck::Clean { data },
            secded::Decoded::Corrected { data, bit } => RowCheck::Corrected { data, bit },
            secded::Decoded::Uncorrectable => RowCheck::Detected,
        },
    }
}

impl ProtectedLut {
    /// Encodes `image` into protected rows, zero-padding the tail row
    /// (a 49-byte multiply image becomes seven 8-byte rows).
    #[must_use]
    pub fn from_image(image: &LutImage, protection: Protection) -> Self {
        let golden: Vec<u128> = image
            .bytes()
            .chunks(ROW_BYTES)
            .map(|chunk| {
                let mut word = [0u8; ROW_BYTES];
                word[..chunk.len()].copy_from_slice(chunk);
                encode_row(protection, u64::from_le_bytes(word))
            })
            .collect();
        ProtectedLut {
            protection,
            rows: golden.clone(),
            golden,
        }
    }

    /// The protection scheme in force.
    #[must_use]
    pub fn protection(&self) -> Protection {
        self.protection
    }

    /// Number of stored rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows.len()
    }

    /// Coded word width of each row.
    #[must_use]
    pub fn word_bits(&self) -> u32 {
        self.protection.word_bits()
    }

    /// Flips `bit` of stored row `row` — the fault injector's hook.
    pub fn inject(&mut self, row: usize, bit: u32) {
        debug_assert!(bit < self.word_bits());
        self.rows[row] ^= 1 << bit;
    }

    /// Checks stored row `row` without modifying it.
    #[must_use]
    pub fn check(&self, row: usize) -> RowCheck {
        check_row(self.protection, self.rows[row])
    }

    /// The data a reader of row `row` observes right now: corrected
    /// under SECDED when correctable, the raw (possibly wrong) data
    /// bits otherwise.
    #[must_use]
    pub fn row_data(&self, row: usize) -> u64 {
        match self.check(row) {
            RowCheck::Clean { data } | RowCheck::Corrected { data, .. } => data,
            RowCheck::Detected => self.rows[row] as u64,
        }
    }

    /// One full scrubber sweep: checks every row, writes back
    /// corrections, regenerates detected-uncorrectable rows from the
    /// golden (seed-derived) encoding, then audits what slipped
    /// through.
    pub fn scrub_pass(&mut self) -> ScrubReport {
        let mut report = ScrubReport {
            rows: self.rows.len() as u32,
            ..ScrubReport::default()
        };
        for row in 0..self.rows.len() {
            match check_row(self.protection, self.rows[row]) {
                RowCheck::Clean { .. } => report.clean += 1,
                RowCheck::Corrected { data, .. } => {
                    self.rows[row] = encode_row(self.protection, data);
                    report.corrected += 1;
                }
                RowCheck::Detected => {
                    self.rows[row] = self.golden[row];
                    report.repaired += 1;
                }
            }
        }
        report.silent = self.audit();
        report
    }

    /// Oracle view: rows whose decoded data differs from the golden
    /// data right now — corruption the scheme has not noticed.
    #[must_use]
    pub fn audit(&self) -> u32 {
        (0..self.rows.len())
            .filter(|&row| {
                self.row_data(row) != secded_free_data(self.protection, self.golden[row])
            })
            .count() as u32
    }

    /// Whether the stored rows are bit-identical to the golden
    /// (seed-regenerated) encoding — the scrubber-conservation
    /// invariant after a pass that found only correctable damage.
    #[must_use]
    pub fn matches_golden(&self) -> bool {
        self.rows == self.golden
    }
}

fn secded_free_data(protection: Protection, golden_code: u128) -> u64 {
    match protection {
        Protection::None | Protection::Parity => golden_code as u64,
        Protection::Secded => secded::extract(golden_code),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mult_table::MultLut;

    fn lut(protection: Protection) -> ProtectedLut {
        ProtectedLut::from_image(&LutImage::from_mult_table(&MultLut::new()), protection)
    }

    #[test]
    fn boot_state_is_golden_and_clean() {
        for protection in Protection::ALL {
            let p = lut(protection);
            assert_eq!(p.rows(), 7);
            assert!(p.matches_golden());
            assert_eq!(p.audit(), 0);
        }
    }

    #[test]
    fn secded_scrub_restores_single_flips_bit_identically() {
        let mut p = lut(Protection::Secded);
        for row in 0..p.rows() {
            p.inject(row, (row as u32 * 11) % p.word_bits());
        }
        assert!(!p.matches_golden());
        let report = p.scrub_pass();
        assert_eq!(report.corrected, 7);
        assert_eq!(report.silent, 0);
        assert!(p.matches_golden(), "scrubbed == seed-regenerated");
    }

    #[test]
    fn secded_repairs_double_flips_via_regeneration() {
        let mut p = lut(Protection::Secded);
        p.inject(2, 5);
        p.inject(2, 40);
        let report = p.scrub_pass();
        assert_eq!(report.repaired, 1);
        assert_eq!(report.silent, 0);
        assert!(p.matches_golden());
    }

    #[test]
    fn parity_detects_odd_misses_even() {
        let mut p = lut(Protection::Parity);
        p.inject(0, 3); // single flip: detected, regenerated
        p.inject(1, 7);
        p.inject(1, 9); // double flip: parity still consistent
        let report = p.scrub_pass();
        assert_eq!(report.repaired, 1);
        assert_eq!(report.silent, 1, "the double flip passes parity");
        assert!(!p.matches_golden());
    }

    #[test]
    fn unprotected_rows_corrupt_silently() {
        let mut p = lut(Protection::None);
        p.inject(4, 0);
        let report = p.scrub_pass();
        assert_eq!(report.clean, 7, "no code, nothing to notice");
        assert_eq!(report.silent, 1);
        // The reader sees the corrupted product byte.
        assert_ne!(p.row_data(4), lut(Protection::None).row_data(4));
    }

    #[test]
    fn parity_bit_flip_alone_is_detected_not_silent() {
        let mut p = lut(Protection::Parity);
        p.inject(3, 64); // the parity bit itself
        let report = p.scrub_pass();
        assert_eq!(report.repaired, 1);
        assert_eq!(report.silent, 0);
        assert!(p.matches_golden());
    }
}
