//! Piecewise-linear activation-function tables (paper §III-C3, Eq. 2).
//!
//! BFree computes exponent, sigmoid and tanh by piecewise linear
//! approximation: the LUT stores, per segment `s`, the slope `alpha_s`
//! and the intercept `beta_s = y_l^s - alpha_s * x_l^s`, so that
//! `f(x) ~ alpha_s * x + beta_s` for `x` in segment `s`. One LUT read
//! plus one multiply and one add evaluate any supported function.

use serde::{Deserialize, Serialize};

use crate::cost::OpCost;
use crate::error::LutError;

/// The non-linear functions BFree approximates with PWL tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PwlFunction {
    /// `exp(x)`, used by softmax.
    Exp,
    /// The logistic sigmoid `1 / (1 + exp(-x))`.
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
}

impl PwlFunction {
    /// Evaluates the exact reference function.
    pub fn exact(self, x: f64) -> f64 {
        match self {
            PwlFunction::Exp => x.exp(),
            PwlFunction::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            PwlFunction::Tanh => x.tanh(),
        }
    }

    /// The saturation values outside the approximated range (`None` for
    /// exp, which the caller must range-limit).
    pub fn saturation(self) -> Option<(f64, f64)> {
        match self {
            PwlFunction::Exp => None,
            PwlFunction::Sigmoid => Some((0.0, 1.0)),
            PwlFunction::Tanh => Some((-1.0, 1.0)),
        }
    }

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            PwlFunction::Exp => "exp",
            PwlFunction::Sigmoid => "sigmoid",
            PwlFunction::Tanh => "tanh",
        }
    }
}

/// A piecewise-linear approximation table for one function.
///
/// ```
/// use pim_lut::{PwlFunction, PwlTable};
/// let sigmoid = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 64).unwrap();
/// let (y, _cost) = sigmoid.eval(1.0);
/// assert!((y - 0.7310585786).abs() < 1e-3);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PwlTable {
    function: PwlFunction,
    lo: f64,
    hi: f64,
    segments: usize,
    /// Per segment: `(alpha_s, beta_s)`.
    coefficients: Vec<(f64, f64)>,
}

impl PwlTable {
    /// Builds a table of `segments` uniform segments over `[lo, hi]`,
    /// interpolating the function between segment endpoints.
    ///
    /// # Errors
    ///
    /// Returns [`LutError::InvalidRange`] when `lo >= hi` and
    /// [`LutError::InvalidTable`] when `segments == 0`.
    pub fn new(function: PwlFunction, lo: f64, hi: f64, segments: usize) -> Result<Self, LutError> {
        if lo >= hi || lo.is_nan() || !lo.is_finite() || !hi.is_finite() {
            return Err(LutError::InvalidRange { lo, hi });
        }
        if segments == 0 {
            return Err(LutError::InvalidTable {
                parameter: "segments",
                reason: "at least one segment required".to_string(),
            });
        }
        let width = (hi - lo) / segments as f64;
        let coefficients = (0..segments)
            .map(|s| {
                let xl = lo + s as f64 * width;
                let xr = xl + width;
                let yl = function.exact(xl);
                let yr = function.exact(xr);
                let alpha = (yr - yl) / width;
                let beta = yl - alpha * xl;
                (alpha, beta)
            })
            .collect();
        Ok(PwlTable {
            function,
            lo,
            hi,
            segments,
            coefficients,
        })
    }

    /// The approximated function.
    pub fn function(&self) -> PwlFunction {
        self.function
    }

    /// The approximation interval.
    pub fn range(&self) -> (f64, f64) {
        (self.lo, self.hi)
    }

    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.segments
    }

    /// LUT storage in bytes: two 16-bit fixed-point coefficients per
    /// segment, as stored in the subarray LUT rows.
    pub fn storage_bytes(&self) -> usize {
        self.segments * 4
    }

    /// Evaluates the approximation. Inputs outside the range saturate
    /// (sigmoid/tanh) or clamp to the boundary segment (exp).
    pub fn eval(&self, x: f64) -> (f64, OpCost) {
        let cost = OpCost {
            lut_reads: 1,
            rom_reads: 1,
            adds: 1,
            shifts: 0,
            cycles: 2,
        };
        if x < self.lo || x > self.hi {
            if let Some((lo_sat, hi_sat)) = self.function.saturation() {
                return (if x < self.lo { lo_sat } else { hi_sat }, cost);
            }
        }
        let width = (self.hi - self.lo) / self.segments as f64;
        let idx = (((x - self.lo) / width).floor() as isize).clamp(0, self.segments as isize - 1)
            as usize;
        let (alpha, beta) = self.coefficients[idx];
        (alpha * x + beta, cost)
    }

    /// Maximum absolute approximation error over a dense sample of the
    /// range.
    pub fn max_abs_error(&self, samples: usize) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..=samples {
            let x = self.lo + (self.hi - self.lo) * i as f64 / samples as f64;
            let (approx, _) = self.eval(x);
            worst = worst.max((approx - self.function.exact(x)).abs());
        }
        worst
    }

    /// Iterates over the stored `(alpha, beta)` coefficients.
    pub fn coefficients(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.coefficients.iter().copied()
    }

    /// Evaluates the approximation from the **Q8.8 fixed-point**
    /// coefficients — the exact bytes the configuration phase writes
    /// into the LUT rows — instead of the f64 originals. This is what
    /// the hardware actually computes; the extra error versus
    /// [`PwlTable::eval`] is the coefficient quantization step
    /// (≤ 2^-9 per coefficient).
    pub fn eval_quantized(&self, x: f64) -> (f64, OpCost) {
        let cost = OpCost {
            lut_reads: 1,
            rom_reads: 1,
            adds: 1,
            shifts: 1,
            cycles: 2,
        };
        if x < self.lo || x > self.hi {
            if let Some((lo_sat, hi_sat)) = self.function.saturation() {
                return (if x < self.lo { lo_sat } else { hi_sat }, cost);
            }
        }
        let width = (self.hi - self.lo) / self.segments as f64;
        let idx = (((x - self.lo) / width).floor() as isize).clamp(0, self.segments as isize - 1)
            as usize;
        let (alpha, beta) = self.coefficients[idx];
        let alpha_q = quantize_q8_8(alpha) as f64 / 256.0;
        let beta_q = quantize_q8_8(beta) as f64 / 256.0;
        (alpha_q * x + beta_q, cost)
    }

    /// Maximum absolute error of the quantized-coefficient evaluation
    /// over a dense sample of the range.
    pub fn max_abs_error_quantized(&self, samples: usize) -> f64 {
        let mut worst = 0.0f64;
        for i in 0..=samples {
            let x = self.lo + (self.hi - self.lo) * i as f64 / samples as f64;
            let (approx, _) = self.eval_quantized(x);
            worst = worst.max((approx - self.function.exact(x)).abs());
        }
        worst
    }
}

/// Quantizes a coefficient to Q8.8, the storage format of the LUT rows.
pub(crate) fn quantize_q8_8(v: f64) -> i16 {
    (v * 256.0).round().clamp(i16::MIN as f64, i16::MAX as f64) as i16
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sigmoid_error_shrinks_with_segments() {
        let coarse = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 8).unwrap();
        let fine = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 128).unwrap();
        assert!(fine.max_abs_error(4000) < coarse.max_abs_error(4000));
        assert!(fine.max_abs_error(4000) < 1e-3);
    }

    #[test]
    fn tanh_saturates_outside_range() {
        let t = PwlTable::new(PwlFunction::Tanh, -4.0, 4.0, 32).unwrap();
        assert_eq!(t.eval(100.0).0, 1.0);
        assert_eq!(t.eval(-100.0).0, -1.0);
    }

    #[test]
    fn sigmoid_saturates_to_unit_interval() {
        let t = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 32).unwrap();
        assert_eq!(t.eval(50.0).0, 1.0);
        assert_eq!(t.eval(-50.0).0, 0.0);
    }

    #[test]
    fn exp_interpolates_at_segment_endpoints() {
        let t = PwlTable::new(PwlFunction::Exp, -4.0, 0.0, 16).unwrap();
        // Endpoints of segments are exact by construction.
        for i in 0..=16 {
            let x = -4.0 + 0.25 * i as f64;
            let (y, _) = t.eval(x);
            assert!((y - x.exp()).abs() < 1e-9, "x={x} y={y}");
        }
    }

    #[test]
    fn exp_error_within_tolerance_for_softmax_use() {
        // Softmax inputs are shifted to (-inf, 0]; the table covers
        // [-16, 0] with 128 segments.
        let t = PwlTable::new(PwlFunction::Exp, -16.0, 0.0, 128).unwrap();
        assert!(t.max_abs_error(10_000) < 2e-3);
    }

    #[test]
    fn eval_cost_is_one_lookup_one_mac() {
        let t = PwlTable::new(PwlFunction::Tanh, -4.0, 4.0, 32).unwrap();
        let (_, c) = t.eval(0.5);
        assert_eq!(c.lut_reads, 1);
        assert_eq!(c.rom_reads, 1);
        assert_eq!(c.adds, 1);
    }

    #[test]
    fn quantized_eval_tracks_f64_eval_within_q8_8_step() {
        let t = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 64).unwrap();
        for i in -80..=80 {
            let x = i as f64 / 10.0;
            let (exact, _) = t.eval(x);
            let (quant, _) = t.eval_quantized(x);
            // alpha error up to 2^-9 * |x| plus beta error 2^-9.
            let bound = (x.abs() + 1.0) / 512.0 + 1e-12;
            assert!((exact - quant).abs() <= bound, "x={x}: {exact} vs {quant}");
        }
    }

    #[test]
    fn quantized_error_still_usable_for_inference() {
        let t = PwlTable::new(PwlFunction::Tanh, -4.0, 4.0, 64).unwrap();
        assert!(t.max_abs_error_quantized(4000) < 0.02);
        let s = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 64).unwrap();
        assert!(s.max_abs_error_quantized(4000) < 0.02);
    }

    #[test]
    fn quantized_eval_saturates_like_f64_eval() {
        let t = PwlTable::new(PwlFunction::Tanh, -4.0, 4.0, 32).unwrap();
        assert_eq!(t.eval_quantized(100.0).0, 1.0);
        assert_eq!(t.eval_quantized(-100.0).0, -1.0);
    }

    #[test]
    fn invalid_ranges_rejected() {
        assert!(PwlTable::new(PwlFunction::Exp, 1.0, 1.0, 8).is_err());
        assert!(PwlTable::new(PwlFunction::Exp, 2.0, 1.0, 8).is_err());
        assert!(PwlTable::new(PwlFunction::Exp, f64::NAN, 1.0, 8).is_err());
        assert!(PwlTable::new(PwlFunction::Exp, 0.0, 1.0, 0).is_err());
    }

    #[test]
    fn storage_is_four_bytes_per_segment() {
        let t = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 16).unwrap();
        assert_eq!(t.storage_bytes(), 64);
    }

    #[test]
    fn function_names() {
        assert_eq!(PwlFunction::Exp.name(), "exp");
        assert_eq!(PwlFunction::Sigmoid.name(), "sigmoid");
        assert_eq!(PwlFunction::Tanh.name(), "tanh");
    }

    proptest! {
        #[test]
        fn prop_sigmoid_bounded(x in -100.0f64..100.0) {
            let t = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 64).unwrap();
            let (y, _) = t.eval(x);
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn prop_tanh_close_in_range(x in -4.0f64..4.0) {
            let t = PwlTable::new(PwlFunction::Tanh, -4.0, 4.0, 128).unwrap();
            let (y, _) = t.eval(x);
            prop_assert!((y - x.tanh()).abs() < 1e-3);
        }

        #[test]
        fn prop_pwl_monotone_for_monotone_functions(
            a in -7.9f64..7.9, b in -7.9f64..7.9
        ) {
            let t = PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 64).unwrap();
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(t.eval(lo).0 <= t.eval(hi).0 + 1e-12);
        }
    }
}
