//! The artifact writer: serializes any `bfree-nn` workload.
//!
//! [`encode_network`] lowers a [`Network`] plus a [`BfreeConfig`] into
//! the binary layout of [`crate::format`]: per-layer quantization
//! scales, mapping metadata derived with the same [`Mapper`] the
//! simulator and the serving tier use, the LUT segment table the
//! network's operators need, and (optionally) the quantized weight
//! bytes inline.

use bfree::{BfreeConfig, Mapper, PrecisionPolicy};
use pim_bce::{BceMode, Precision};
use pim_lut::{DivLut, LutImage, LutKind, MultLut, PwlFunction, PwlTable};
use pim_nn::layers::Act;
use pim_nn::request::NetworkKind;
use pim_nn::{networks, LayerOp, LayerSpec, Network, PoolKind};

use crate::format::{self, policy_tag};

/// Default synthetic-weight seed for artifacts that do not pin one.
pub const DEFAULT_WEIGHT_SEED: u64 = 0xBFEE_5EED;

/// How an artifact carries its quantized weights.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeightPayload {
    /// The quantized bytes are stored inline in the weights section.
    Inline,
    /// The weights section is empty; the loader regenerates the bytes
    /// from the header's weight seed (same generator, identical bytes).
    /// Keeps multi-hundred-megabyte workloads like BERT-large at
    /// kilobyte artifact sizes.
    Seeded,
}

/// Everything about an artifact that is not derived from the network.
#[derive(Debug, Clone)]
pub struct ArtifactSpec {
    /// Registry-assigned model version stamped into the header.
    pub model_version: u64,
    /// Per-layer precision assignment.
    pub precision: PrecisionPolicy,
    /// Inline or seed-regenerated weights.
    pub payload: WeightPayload,
    /// Synthetic-weight seed.
    pub seed: u64,
}

impl Default for ArtifactSpec {
    fn default() -> Self {
        ArtifactSpec {
            model_version: 1,
            precision: PrecisionPolicy::uniform_int8(),
            payload: WeightPayload::Seeded,
            seed: DEFAULT_WEIGHT_SEED,
        }
    }
}

/// The operator tag for a layer (index into
/// [`crate::artifact::OP_NAMES`]).
pub fn op_tag(op: &LayerOp) -> u8 {
    match op {
        LayerOp::Conv2d { .. } => 0,
        LayerOp::Linear { .. } => 1,
        LayerOp::Pool { .. } => 2,
        LayerOp::GlobalAvgPool => 3,
        LayerOp::Activation(_) => 4,
        LayerOp::Lstm { .. } => 5,
        LayerOp::Gru { .. } => 6,
        LayerOp::Attention { .. } => 7,
        LayerOp::FeedForward { .. } => 8,
        LayerOp::LayerNorm => 9,
        LayerOp::Add => 10,
    }
}

fn policy_to_tag(policy: &PrecisionPolicy) -> u32 {
    match policy {
        PrecisionPolicy::Uniform(Precision::Int4) => policy_tag::UNIFORM_INT4,
        PrecisionPolicy::Uniform(Precision::Int16) => policy_tag::UNIFORM_INT16,
        PrecisionPolicy::Uniform(_) => policy_tag::UNIFORM_INT8,
        PrecisionPolicy::MixedFourEight { .. } => policy_tag::MIXED_FOUR_EIGHT,
    }
}

/// Whether a layer's evaluation needs the LUT division path
/// (§III-C2: average pooling, normalization, softmax).
fn needs_division(layer: &LayerSpec) -> bool {
    matches!(
        layer.op(),
        LayerOp::Pool {
            kind: PoolKind::Avg,
            ..
        } | LayerOp::GlobalAvgPool
            | LayerOp::LayerNorm
            | LayerOp::Activation(Act::Softmax)
            | LayerOp::Attention { .. }
    )
}

/// The PWL tables a layer's non-linearities need, as activation tags
/// (the [`PwlFunction`] order: 0 exp, 1 sigmoid, 2 tanh).
fn pwl_needs(layer: &LayerSpec) -> Vec<u8> {
    match layer.op() {
        LayerOp::Activation(Act::Sigmoid) => vec![1],
        LayerOp::Activation(Act::Tanh) | LayerOp::Activation(Act::Gelu) => vec![2],
        LayerOp::Activation(Act::Softmax) | LayerOp::Attention { .. } => vec![0],
        LayerOp::Lstm { .. } | LayerOp::Gru { .. } => vec![1, 2],
        _ => Vec::new(),
    }
}

fn pwl_table(act_tag: u8) -> PwlTable {
    // 16 segments = 64 bytes, one subarray's LUT-row budget.
    match act_tag {
        0 => PwlTable::new(PwlFunction::Exp, -16.0, 0.0, 16),
        1 => PwlTable::new(PwlFunction::Sigmoid, -8.0, 8.0, 16),
        _ => PwlTable::new(PwlFunction::Tanh, -8.0, 8.0, 16),
    }
    .expect("static PWL ranges are valid")
}

/// Serializes a network into a complete, checksummed artifact.
///
/// Infallible by construction: every workload the catalog can build
/// lowers to a valid artifact, and the output always round-trips
/// through [`crate::ModelArtifact::parse`].
pub fn encode_network(network: &Network, config: &BfreeConfig, spec: &ArtifactSpec) -> Vec<u8> {
    let geometry = &config.geometry;
    let mapper = Mapper::new(geometry.clone());
    let weight_names: Vec<&str> = network.weight_layers().map(|l| l.name()).collect();

    // Names section: network name first, then every layer name.
    let mut names = Vec::new();
    let net_name_off = names.len() as u32;
    names.extend_from_slice(network.name().as_bytes());
    let net_name_len = network.name().len() as u32;

    let layers = network.layers();
    let mut records = vec![0u8; layers.len() * format::LAYER_RECORD_LEN];
    let mut weights = Vec::new();
    let mut weight_cursor = 0u64;
    let mut div_needed = false;
    let mut act_tags: Vec<u8> = Vec::new();

    for (i, layer) in layers.iter().enumerate() {
        let r = &mut records[i * format::LAYER_RECORD_LEN..(i + 1) * format::LAYER_RECORD_LEN];
        let name_off = names.len() as u32;
        names.extend_from_slice(layer.name().as_bytes());
        format::write_u32(r, format::R_NAME_OFF, name_off);
        format::write_u32(r, format::R_NAME_LEN, layer.name().len() as u32);
        r[format::R_OP_TAG] = op_tag(layer.op());

        let precision = spec.precision.layer_precision(layer, &weight_names);
        r[format::R_PRECISION_BITS] = precision.bits() as u8;

        div_needed |= needs_division(layer);
        for tag in pwl_needs(layer) {
            if !act_tags.contains(&tag) {
                act_tags.push(tag);
            }
        }

        format::write_u64(r, format::R_PARAMS, layer.params());
        format::write_u64(r, format::R_MACS, layer.macs());

        if layer.is_weight_layer() {
            // Mode, mapping and quantization metadata follow the exact
            // derivation the serving tier's Tenant::new uses, so a
            // registry built from artifacts prices demand identically.
            let mode = if config.uses_matmul(layer, 1) {
                BceMode::MatMul
            } else {
                BceMode::Conv
            };
            r[format::R_MODE_TAG] = match mode {
                BceMode::MatMul => 1,
                BceMode::Conv => 0,
            };
            let (subarrays, replicas) = match mapper.map_layer(layer, mode, precision) {
                Ok(mapping) => (mapping.subarrays_per_replica, mapping.replicas),
                Err(_) => (geometry.total_subarrays(), 1),
            };
            format::write_u32(r, format::R_SUBARRAYS, subarrays as u32);
            format::write_u32(r, format::R_REPLICAS, replicas as u32);

            let len = layer.weight_bytes(precision.bits());
            format::write_u64(r, format::R_WEIGHT_OFF, weight_cursor);
            format::write_u64(r, format::R_WEIGHT_LEN, len);
            if spec.payload == WeightPayload::Inline {
                weights.extend_from_slice(&format::synth_weight_bytes(spec.seed, i, len as usize));
            }
            weight_cursor += len;

            let scale = format::synth_scale(spec.seed, i, precision.bits() as u8);
            format::write_u64(r, format::R_SCALE, scale.to_bits());
        } else {
            format::write_u64(r, format::R_WEIGHT_OFF, format::NO_WEIGHTS);
            format::write_u64(r, format::R_SCALE, 1.0f64.to_bits());
        }
    }

    // LUT section: the multiply ROM always, the division table when any
    // operator divides, one PWL table per distinct non-linearity.
    let mut segments: Vec<(LutKind, u8, Vec<u8>)> = Vec::new();
    segments.push((
        LutKind::Multiply,
        255,
        LutImage::from_mult_table(&MultLut::new()).bytes().to_vec(),
    ));
    if div_needed {
        let div = DivLut::new(8).expect("m = 8 is the paper's division table");
        let chunks = div.storage_bytes().div_ceil(64);
        for segment in 0..chunks {
            let image = LutImage::from_div_table(&div, segment, 64).expect("segment in range");
            segments.push((LutKind::Divide, 255, image.bytes().to_vec()));
        }
    }
    act_tags.sort_unstable();
    for tag in act_tags {
        let image = LutImage::from_pwl_table(&pwl_table(tag));
        segments.push((LutKind::Activation, tag, image.bytes().to_vec()));
    }

    let mut luts = vec![0u8; 8];
    format::write_u32(&mut luts, 0, segments.len() as u32);
    for (kind, act, bytes) in &segments {
        let mut entry = vec![0u8; 8];
        entry[0] = match kind {
            LutKind::Multiply => 0,
            LutKind::Divide => 1,
            LutKind::Activation => 2,
        };
        entry[1] = *act;
        format::write_u32(&mut entry, 4, bytes.len() as u32);
        luts.extend_from_slice(&entry);
        luts.extend_from_slice(bytes);
        luts.resize(luts.len() + (format::pad8(bytes.len()) - bytes.len()), 0);
    }

    // Assemble: header | names | layer table | weights | luts | footer.
    let names_off = format::HEADER_LEN as u64;
    let layers_off = names_off + names.len() as u64;
    let weights_off = layers_off + records.len() as u64;
    let luts_off = weights_off + weights.len() as u64;
    let total_len = luts_off + luts.len() as u64 + format::FOOTER_LEN as u64;

    let mut out = Vec::with_capacity(total_len as usize);
    let mut header = vec![0u8; format::HEADER_LEN];
    header[format::H_MAGIC..format::H_MAGIC + 4].copy_from_slice(&format::MAGIC);
    format::write_u16(&mut header, format::H_VERSION, format::FORMAT_VERSION);
    let flags = match spec.payload {
        WeightPayload::Inline => format::FLAG_INLINE_WEIGHTS,
        WeightPayload::Seeded => 0,
    };
    format::write_u16(&mut header, format::H_FLAGS, flags);
    format::write_u64(&mut header, format::H_MODEL_VERSION, spec.model_version);
    format::write_u64(&mut header, format::H_WEIGHT_SEED, spec.seed);
    format::write_u32(&mut header, format::H_LAYER_COUNT, layers.len() as u32);
    format::write_u32(
        &mut header,
        format::H_POLICY_TAG,
        policy_to_tag(&spec.precision),
    );
    format::write_u64(&mut header, format::H_NAMES_OFF, names_off);
    format::write_u64(&mut header, format::H_NAMES_LEN, names.len() as u64);
    format::write_u64(&mut header, format::H_LAYERS_OFF, layers_off);
    format::write_u64(&mut header, format::H_WEIGHTS_OFF, weights_off);
    format::write_u64(&mut header, format::H_WEIGHTS_LEN, weights.len() as u64);
    format::write_u64(&mut header, format::H_LUTS_OFF, luts_off);
    format::write_u64(&mut header, format::H_LUTS_LEN, luts.len() as u64);
    format::write_u64(&mut header, format::H_TOTAL_LEN, total_len);
    format::write_u32(&mut header, format::H_NET_NAME_OFF, net_name_off);
    format::write_u32(&mut header, format::H_NET_NAME_LEN, net_name_len);

    out.extend_from_slice(&header);
    out.extend_from_slice(&names);
    out.extend_from_slice(&records);
    out.extend_from_slice(&weights);
    out.extend_from_slice(&luts);
    let checksum = format::fnv1a64(&out);
    out.extend_from_slice(&checksum.to_le_bytes());
    out
}

/// Serializes a catalog workload (by [`NetworkKind`]) into an artifact.
pub fn encode_kind(kind: NetworkKind, config: &BfreeConfig, spec: &ArtifactSpec) -> Vec<u8> {
    encode_network(&networks::build(kind), config, spec)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::artifact::ModelArtifact;

    fn config() -> BfreeConfig {
        BfreeConfig::paper_default()
    }

    #[test]
    fn lstm_round_trips_with_inline_weights() {
        let net = networks::build(NetworkKind::LstmTimit);
        let spec = ArtifactSpec {
            payload: WeightPayload::Inline,
            ..ArtifactSpec::default()
        };
        let bytes = encode_network(&net, &config(), &spec);
        let art = ModelArtifact::parse(&bytes).unwrap();
        assert_eq!(art.network_name(), net.name());
        assert_eq!(art.layer_count(), net.layers().len());
        assert!(art.inline_weights());
        assert_eq!(art.model_version(), 1);
        for (view, layer) in art.layers().zip(net.layers()) {
            assert_eq!(view.name(), layer.name());
            assert_eq!(view.params(), layer.params());
            assert_eq!(view.macs(), layer.macs());
            assert_eq!(view.is_weight_layer(), layer.is_weight_layer());
            if layer.is_weight_layer() {
                assert_eq!(view.weight_len(), layer.weight_bytes(8));
                assert_eq!(view.weights().unwrap().len(), view.weight_len() as usize);
            } else {
                assert!(view.weights().is_none());
            }
        }
    }

    #[test]
    fn seeded_and_inline_payloads_describe_identical_weights() {
        let net = networks::build(NetworkKind::LstmTimit);
        let inline = encode_network(
            &net,
            &config(),
            &ArtifactSpec {
                payload: WeightPayload::Inline,
                ..ArtifactSpec::default()
            },
        );
        let seeded = encode_network(&net, &config(), &ArtifactSpec::default());
        assert!(seeded.len() < inline.len());
        let a = ModelArtifact::parse(&inline).unwrap();
        let b = ModelArtifact::parse(&seeded).unwrap();
        for (x, y) in a.layers().zip(b.layers()) {
            assert_eq!(x.materialize_weights(), y.materialize_weights());
            assert_eq!(x.scale(), y.scale());
            assert_eq!(x.subarrays_per_replica(), y.subarrays_per_replica());
        }
    }

    #[test]
    fn every_catalog_workload_encodes_and_parses() {
        let config = config();
        for entry in networks::CATALOG.iter() {
            let bytes = encode_kind(entry.kind, &config, &ArtifactSpec::default());
            let art = ModelArtifact::parse(&bytes).unwrap();
            assert!(art.layer_count() > 0, "{}", entry.kind);
            assert!(art.total_weight_bytes() > 0, "{}", entry.kind);
            // Every artifact carries the multiply ROM as segment 0.
            let first = art.lut_segments().next().unwrap();
            assert_eq!(first.kind(), LutKind::Multiply);
            assert_eq!(first.bytes().len(), 49);
            // Seeded artifacts stay small even for 324M-param BERT-large.
            assert!(
                bytes.len() < 64 * 1024,
                "{}: {} bytes",
                entry.kind,
                bytes.len()
            );
        }
    }

    #[test]
    fn bert_carries_exp_div_and_tanh_tables() {
        let bytes = encode_kind(NetworkKind::BertBase, &config(), &ArtifactSpec::default());
        let art = ModelArtifact::parse(&bytes).unwrap();
        let kinds: Vec<_> = art
            .lut_segments()
            .map(|s| (s.kind(), s.act_tag()))
            .collect();
        assert!(kinds.contains(&(LutKind::Divide, 255)));
        assert!(kinds.contains(&(LutKind::Activation, 0)), "exp for softmax");
        assert!(kinds.contains(&(LutKind::Activation, 2)), "tanh for gelu");
        // Division table: 512 bytes over 64-byte subarray chunks.
        let div_bytes: usize = art
            .lut_segments()
            .filter(|s| s.kind() == LutKind::Divide)
            .map(|s| s.bytes().len())
            .sum();
        assert_eq!(div_bytes, 512);
    }

    #[test]
    fn mixed_policy_round_trips_through_per_layer_bits() {
        let net = networks::build(NetworkKind::Vgg16);
        let spec = ArtifactSpec {
            precision: PrecisionPolicy::MixedFourEight {
                keep_int8: vec!["conv3_2".to_string()],
            },
            ..ArtifactSpec::default()
        };
        let bytes = encode_network(&net, &config(), &spec);
        let art = ModelArtifact::parse(&bytes).unwrap();
        assert_eq!(art.precision_policy(), spec.precision);
    }

    #[test]
    fn mapping_metadata_matches_the_mapper() {
        let net = networks::build(NetworkKind::LstmTimit);
        let config = config();
        let bytes = encode_network(&net, &config, &ArtifactSpec::default());
        let art = ModelArtifact::parse(&bytes).unwrap();
        let mapper = Mapper::new(config.geometry.clone());
        for (view, layer) in art.layers().zip(net.layers()) {
            if !layer.is_weight_layer() {
                continue;
            }
            let mode = if view.is_matmul() {
                BceMode::MatMul
            } else {
                BceMode::Conv
            };
            let mapping = mapper.map_layer(layer, mode, view.precision()).unwrap();
            assert_eq!(
                view.subarrays_per_replica() as usize,
                mapping.subarrays_per_replica
            );
            assert_eq!(view.replicas() as usize, mapping.replicas);
        }
    }
}
