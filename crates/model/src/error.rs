//! Typed failure modes of artifact parsing.
//!
//! A model artifact arrives over a trust boundary — a file on disk, a
//! blob from a registry — so every malformation is a value, never a
//! panic: truncation, bit flips, version skew and malformed records all
//! map to a specific [`ModelError`] naming what was wrong and where.

use std::error::Error;
use std::fmt;

/// Why a byte buffer is not a loadable model artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ModelError {
    /// The buffer does not start with the `BFRM` magic.
    BadMagic {
        /// The four bytes found where the magic belongs.
        found: [u8; 4],
    },
    /// The artifact was written by an unknown format version.
    UnsupportedVersion {
        /// The version recorded in the header.
        found: u16,
        /// The single version this reader understands.
        supported: u16,
    },
    /// The buffer is shorter than a declared structure needs.
    Truncated {
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes actually available.
        actual: usize,
    },
    /// The footer checksum does not match the buffer contents.
    ChecksumMismatch {
        /// The checksum stored in the footer.
        stored: u64,
        /// The checksum recomputed over the buffer.
        computed: u64,
    },
    /// A header field is out of range or inconsistent.
    BadHeader {
        /// The offending field.
        field: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// A per-layer record is malformed.
    BadRecord {
        /// Index of the offending layer record.
        layer: usize,
        /// The offending field.
        field: &'static str,
        /// Why it is invalid.
        reason: String,
    },
    /// A LUT segment entry is malformed.
    BadLutSegment {
        /// Index of the offending segment.
        segment: usize,
        /// Why it is invalid.
        reason: String,
    },
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::BadMagic { found } => {
                write!(f, "bad artifact magic {found:?} (expected \"BFRM\")")
            }
            ModelError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "unsupported artifact format version {found} (this reader supports {supported})"
                )
            }
            ModelError::Truncated { needed, actual } => {
                write!(f, "truncated artifact: need {needed} bytes, have {actual}")
            }
            ModelError::ChecksumMismatch { stored, computed } => {
                write!(
                    f,
                    "artifact checksum mismatch: footer {stored:#018x}, computed {computed:#018x}"
                )
            }
            ModelError::BadHeader { field, reason } => {
                write!(f, "bad artifact header field {field}: {reason}")
            }
            ModelError::BadRecord {
                layer,
                field,
                reason,
            } => {
                write!(f, "bad layer record {layer} field {field}: {reason}")
            }
            ModelError::BadLutSegment { segment, reason } => {
                write!(f, "bad LUT segment {segment}: {reason}")
            }
        }
    }
}

impl Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_context() {
        let e = ModelError::Truncated {
            needed: 104,
            actual: 12,
        };
        assert!(e.to_string().contains("104"));
        let e = ModelError::ChecksumMismatch {
            stored: 1,
            computed: 2,
        };
        assert!(e.to_string().contains("mismatch"));
        let e = ModelError::BadRecord {
            layer: 3,
            field: "name",
            reason: "not utf-8".to_string(),
        };
        assert!(e.to_string().contains("record 3"));
    }
}
