//! # bfree-model — versioned, checksummed model artifacts
//!
//! The binary exchange format between the offline world (quantize a
//! network, derive its cache mapping, bake its LUT images) and the
//! serving tier (bind tenants to model versions, hot-swap them): a
//! single buffer holding a fixed header, fixed-size per-layer records
//! (quantization scale and zero point, precision and mode tags, mapping
//! metadata), the LUT segment table and — inline or seed-regenerated —
//! the quantized weight bytes, closed by an FNV-1a 64 footer checksum.
//!
//! Loading is zero-copy: [`ModelArtifact::parse`] validates the buffer
//! once and all accessors are typed views into it. Weight bytes are
//! handed out as `&[i8]` slices of the original buffer; multi-byte
//! fields are read through alignment-safe copies, so buffers at any
//! alignment — memory-mapped, odd-offset, network-received — load
//! identically.
//!
//! ```
//! use bfree_model::{encode_kind, ArtifactSpec, ModelArtifact};
//! use pim_nn::request::NetworkKind;
//!
//! let config = bfree::BfreeConfig::paper_default();
//! let bytes = encode_kind(NetworkKind::LstmTimit, &config, &ArtifactSpec::default());
//! let artifact = ModelArtifact::parse(&bytes).unwrap();
//! assert_eq!(artifact.network_name(), "LSTM");
//! assert_eq!(artifact.layer_count(), artifact.layers().count());
//! ```

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod artifact;
pub mod error;
pub mod format;
pub mod writer;

pub use artifact::{
    LayerView, LutSegmentView, LutSegments, ModelArtifact, OwnedArtifact, OP_NAMES,
};
pub use error::ModelError;
pub use format::{fnv1a64, policy_tag, FORMAT_VERSION, MAGIC};
pub use writer::{
    encode_kind, encode_network, op_tag, ArtifactSpec, WeightPayload, DEFAULT_WEIGHT_SEED,
};
