//! Zero-copy artifact views.
//!
//! [`ModelArtifact::parse`] validates a byte buffer once — magic,
//! version, section bounds, every record, the footer checksum — and
//! hands out borrowing accessor views: no deserialization pass, no
//! allocation proportional to the model. Weight bytes are viewed in
//! place as `&[i8]` (the crate's single `unsafe` expression; `i8` has
//! size and alignment 1, so any byte slice is a valid view); every
//! multi-byte field goes through the copying little-endian readers in
//! [`crate::format`], so a buffer at any alignment — including a slice
//! starting at an odd address — parses identically and safely.

use bfree::PrecisionPolicy;
use pim_bce::Precision;
use pim_lut::LutKind;

use crate::error::ModelError;
use crate::format::{self, policy_tag};

/// Operator-tag names, indexed by tag (mirrors `pim_nn::LayerOp`).
pub const OP_NAMES: [&str; 11] = [
    "conv2d",
    "linear",
    "pool",
    "global_avg_pool",
    "activation",
    "lstm",
    "gru",
    "attention",
    "feed_forward",
    "layer_norm",
    "add",
];

/// Execution-mode tags (record field).
pub mod mode_tag {
    /// Convolution dataflow.
    pub const CONV: u8 = 0;
    /// Mat-mul dataflow.
    pub const MATMUL: u8 = 1;
}

/// A parsed, validated artifact borrowing its byte buffer.
#[derive(Debug, Clone, Copy)]
pub struct ModelArtifact<'a> {
    bytes: &'a [u8],
}

impl<'a> ModelArtifact<'a> {
    /// Parses and fully validates `bytes` as a model artifact.
    ///
    /// Validation is exhaustive up front so the accessors never fail:
    /// magic, format version, declared length, footer checksum, section
    /// bounds, every layer record (name range and UTF-8, tag ranges,
    /// weight range) and every LUT segment entry.
    ///
    /// # Errors
    ///
    /// A typed [`ModelError`] naming the first malformation found; a
    /// truncated, bit-flipped or wrong-version buffer never panics.
    pub fn parse(bytes: &'a [u8]) -> Result<Self, ModelError> {
        if bytes.len() < format::HEADER_LEN + format::FOOTER_LEN {
            return Err(ModelError::Truncated {
                needed: format::HEADER_LEN + format::FOOTER_LEN,
                actual: bytes.len(),
            });
        }
        let mut magic = [0u8; 4];
        magic.copy_from_slice(&bytes[format::H_MAGIC..format::H_MAGIC + 4]);
        if magic != format::MAGIC {
            return Err(ModelError::BadMagic { found: magic });
        }
        let version = format::read_u16(bytes, format::H_VERSION);
        if version != format::FORMAT_VERSION {
            return Err(ModelError::UnsupportedVersion {
                found: version,
                supported: format::FORMAT_VERSION,
            });
        }
        let total_len = format::read_u64(bytes, format::H_TOTAL_LEN);
        if total_len != bytes.len() as u64 {
            return Err(ModelError::Truncated {
                needed: total_len as usize,
                actual: bytes.len(),
            });
        }
        let body = &bytes[..bytes.len() - format::FOOTER_LEN];
        let stored = format::read_u64(bytes, bytes.len() - format::FOOTER_LEN);
        let computed = format::fnv1a64(body);
        if stored != computed {
            return Err(ModelError::ChecksumMismatch { stored, computed });
        }

        let artifact = ModelArtifact { bytes };
        artifact.validate_sections()?;
        artifact.validate_layers()?;
        artifact.validate_luts()?;
        Ok(artifact)
    }

    /// One section's `(offset, length)` bounds-checked against the body.
    fn section(&self, field: &'static str, off: u64, len: u64) -> Result<(), ModelError> {
        let body_end = (self.bytes.len() - format::FOOTER_LEN) as u64;
        let end = off.checked_add(len).ok_or(ModelError::BadHeader {
            field,
            reason: "offset + length overflows".to_string(),
        })?;
        if off < format::HEADER_LEN as u64 || end > body_end {
            return Err(ModelError::BadHeader {
                field,
                reason: format!(
                    "range {off}..{end} outside body {}..{body_end}",
                    format::HEADER_LEN
                ),
            });
        }
        Ok(())
    }

    fn validate_sections(&self) -> Result<(), ModelError> {
        let b = self.bytes;
        self.section(
            "names",
            format::read_u64(b, format::H_NAMES_OFF),
            format::read_u64(b, format::H_NAMES_LEN),
        )?;
        let layer_count = format::read_u32(b, format::H_LAYER_COUNT) as u64;
        let layers_len = layer_count
            .checked_mul(format::LAYER_RECORD_LEN as u64)
            .ok_or(ModelError::BadHeader {
                field: "layer_count",
                reason: "layer table size overflows".to_string(),
            })?;
        self.section(
            "layers",
            format::read_u64(b, format::H_LAYERS_OFF),
            layers_len,
        )?;
        self.section(
            "weights",
            format::read_u64(b, format::H_WEIGHTS_OFF),
            format::read_u64(b, format::H_WEIGHTS_LEN),
        )?;
        self.section(
            "luts",
            format::read_u64(b, format::H_LUTS_OFF),
            format::read_u64(b, format::H_LUTS_LEN),
        )?;
        let names_len = format::read_u64(b, format::H_NAMES_LEN);
        let net_off = format::read_u32(b, format::H_NET_NAME_OFF) as u64;
        let net_len = format::read_u32(b, format::H_NET_NAME_LEN) as u64;
        if net_off + net_len > names_len {
            return Err(ModelError::BadHeader {
                field: "network_name",
                reason: format!(
                    "range {net_off}..{} outside names section",
                    net_off + net_len
                ),
            });
        }
        std::str::from_utf8(&self.names()[net_off as usize..(net_off + net_len) as usize])
            .map_err(|_| ModelError::BadHeader {
                field: "network_name",
                reason: "not utf-8".to_string(),
            })?;
        match format::read_u32(b, format::H_POLICY_TAG) {
            policy_tag::UNIFORM_INT8
            | policy_tag::UNIFORM_INT4
            | policy_tag::UNIFORM_INT16
            | policy_tag::MIXED_FOUR_EIGHT => Ok(()),
            other => Err(ModelError::BadHeader {
                field: "policy_tag",
                reason: format!("unknown precision policy tag {other}"),
            }),
        }
    }

    fn validate_layers(&self) -> Result<(), ModelError> {
        let names = self.names();
        let weights_len = format::read_u64(self.bytes, format::H_WEIGHTS_LEN);
        let inline = self.inline_weights();
        for i in 0..self.layer_count() {
            let r = self.record(i);
            let bad = |field: &'static str, reason: String| ModelError::BadRecord {
                layer: i,
                field,
                reason,
            };
            let name_off = format::read_u32(r, format::R_NAME_OFF) as usize;
            let name_len = format::read_u32(r, format::R_NAME_LEN) as usize;
            let name_end = name_off
                .checked_add(name_len)
                .ok_or_else(|| bad("name", "offset + length overflows".to_string()))?;
            if name_end > names.len() {
                return Err(bad(
                    "name",
                    format!("range {name_off}..{name_end} outside names section"),
                ));
            }
            std::str::from_utf8(&names[name_off..name_end])
                .map_err(|_| bad("name", "not utf-8".to_string()))?;
            let op = r[format::R_OP_TAG];
            if op as usize >= OP_NAMES.len() {
                return Err(bad("op_tag", format!("unknown operator tag {op}")));
            }
            match r[format::R_PRECISION_BITS] {
                4 | 8 | 16 => {}
                other => return Err(bad("precision_bits", format!("unsupported width {other}"))),
            }
            if r[format::R_MODE_TAG] > mode_tag::MATMUL {
                return Err(bad(
                    "mode_tag",
                    format!("unknown mode tag {}", r[format::R_MODE_TAG]),
                ));
            }
            let scale = format::read_f64(r, format::R_SCALE);
            if !scale.is_finite() || scale < 0.0 {
                return Err(bad(
                    "scale",
                    format!("non-finite or negative scale {scale}"),
                ));
            }
            let w_off = format::read_u64(r, format::R_WEIGHT_OFF);
            let w_len = format::read_u64(r, format::R_WEIGHT_LEN);
            if w_off == format::NO_WEIGHTS {
                if w_len != 0 {
                    return Err(bad(
                        "weight_len",
                        "weightless layer with non-zero length".to_string(),
                    ));
                }
            } else {
                // Seeded payloads record virtual offsets past the (empty)
                // weights section; only inline payloads must stay inside it.
                let end = w_off
                    .checked_add(w_len)
                    .ok_or_else(|| bad("weights", "offset + length overflows".to_string()))?;
                if inline && end > weights_len {
                    return Err(bad(
                        "weights",
                        format!(
                            "range {w_off}..{end} outside weights section ({weights_len} bytes)"
                        ),
                    ));
                }
            }
        }
        Ok(())
    }

    fn validate_luts(&self) -> Result<(), ModelError> {
        let luts = self.luts_section();
        if luts.is_empty() {
            return Ok(());
        }
        if luts.len() < 8 {
            return Err(ModelError::BadLutSegment {
                segment: 0,
                reason: format!("section of {} bytes cannot hold its count", luts.len()),
            });
        }
        let count = format::read_u32(luts, 0) as usize;
        let mut off = 8usize;
        for segment in 0..count {
            let bad = |reason: String| ModelError::BadLutSegment { segment, reason };
            if off + 8 > luts.len() {
                return Err(bad("entry header past section end".to_string()));
            }
            let kind = luts[off];
            if kind > 2 {
                return Err(bad(format!("unknown LUT kind tag {kind}")));
            }
            let len = format::read_u32(luts, off + 4) as usize;
            let end = off
                .checked_add(8)
                .and_then(|v| v.checked_add(format::pad8(len)))
                .ok_or_else(|| bad("entry size overflows".to_string()))?;
            if off + 8 + len > luts.len() || end > luts.len() {
                return Err(bad(format!("image of {len} bytes past section end")));
            }
            off = end;
        }
        Ok(())
    }

    /// The raw bytes this view borrows.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.bytes
    }

    /// The format version (always [`format::FORMAT_VERSION`] once
    /// parsed).
    pub fn format_version(&self) -> u16 {
        format::read_u16(self.bytes, format::H_VERSION)
    }

    /// The registry-assigned model version.
    pub fn model_version(&self) -> u64 {
        format::read_u64(self.bytes, format::H_MODEL_VERSION)
    }

    /// Whether the weights section carries the quantized bytes inline.
    pub fn inline_weights(&self) -> bool {
        format::read_u16(self.bytes, format::H_FLAGS) & format::FLAG_INLINE_WEIGHTS != 0
    }

    /// The synthetic-weight seed (meaningful for seeded payloads).
    pub fn weight_seed(&self) -> u64 {
        format::read_u64(self.bytes, format::H_WEIGHT_SEED)
    }

    /// Number of layer records.
    pub fn layer_count(&self) -> usize {
        format::read_u32(self.bytes, format::H_LAYER_COUNT) as usize
    }

    /// The network's name.
    pub fn network_name(&self) -> &'a str {
        let off = format::read_u32(self.bytes, format::H_NET_NAME_OFF) as usize;
        let len = format::read_u32(self.bytes, format::H_NET_NAME_LEN) as usize;
        std::str::from_utf8(&self.names()[off..off + len]).expect("validated at parse")
    }

    /// The precision-policy tag (see [`policy_tag`]).
    pub fn policy_tag(&self) -> u32 {
        format::read_u32(self.bytes, format::H_POLICY_TAG)
    }

    /// Reconstructs the [`PrecisionPolicy`] the artifact was written
    /// under. For the mixed 4/8 policy the pinned-layer list is
    /// recovered from the per-layer precision bits (interior weight
    /// layers recorded at 8 bits).
    pub fn precision_policy(&self) -> PrecisionPolicy {
        match self.policy_tag() {
            policy_tag::UNIFORM_INT4 => PrecisionPolicy::Uniform(Precision::Int4),
            policy_tag::UNIFORM_INT16 => PrecisionPolicy::Uniform(Precision::Int16),
            policy_tag::MIXED_FOUR_EIGHT => {
                let weight_layers: Vec<LayerView<'a>> =
                    self.layers().filter(|l| l.is_weight_layer()).collect();
                let keep_int8 = weight_layers
                    .iter()
                    .enumerate()
                    .filter(|(i, l)| {
                        // First/last are 8-bit by construction; only
                        // interior pins need recording.
                        *i != 0 && *i != weight_layers.len() - 1 && l.precision() == Precision::Int8
                    })
                    .map(|(_, l)| l.name().to_string())
                    .collect();
                PrecisionPolicy::MixedFourEight { keep_int8 }
            }
            _ => PrecisionPolicy::Uniform(Precision::Int8),
        }
    }

    /// The stored footer checksum.
    pub fn checksum(&self) -> u64 {
        format::read_u64(self.bytes, self.bytes.len() - format::FOOTER_LEN)
    }

    /// Total quantized weight bytes across all layers (inline or
    /// virtual).
    pub fn total_weight_bytes(&self) -> u64 {
        self.layers().map(|l| l.weight_len()).sum()
    }

    fn names(&self) -> &'a [u8] {
        let off = format::read_u64(self.bytes, format::H_NAMES_OFF) as usize;
        let len = format::read_u64(self.bytes, format::H_NAMES_LEN) as usize;
        &self.bytes[off..off + len]
    }

    fn weights_section(&self) -> &'a [u8] {
        let off = format::read_u64(self.bytes, format::H_WEIGHTS_OFF) as usize;
        let len = format::read_u64(self.bytes, format::H_WEIGHTS_LEN) as usize;
        &self.bytes[off..off + len]
    }

    fn luts_section(&self) -> &'a [u8] {
        let off = format::read_u64(self.bytes, format::H_LUTS_OFF) as usize;
        let len = format::read_u64(self.bytes, format::H_LUTS_LEN) as usize;
        &self.bytes[off..off + len]
    }

    fn record(&self, i: usize) -> &'a [u8] {
        let base = format::read_u64(self.bytes, format::H_LAYERS_OFF) as usize
            + i * format::LAYER_RECORD_LEN;
        &self.bytes[base..base + format::LAYER_RECORD_LEN]
    }

    /// The `i`-th layer record view.
    ///
    /// # Panics
    ///
    /// Panics if `i >= layer_count()`.
    pub fn layer(&self, i: usize) -> LayerView<'a> {
        assert!(i < self.layer_count(), "layer index {i} out of range");
        LayerView {
            record: self.record(i),
            names: self.names(),
            weights: self.weights_section(),
            inline: self.inline_weights(),
            seed: self.weight_seed(),
            index: i,
        }
    }

    /// Iterates over all layer records.
    pub fn layers(&self) -> impl Iterator<Item = LayerView<'a>> + '_ {
        let this = *self;
        (0..self.layer_count()).map(move |i| this.layer(i))
    }

    /// Iterates over the LUT segment table.
    pub fn lut_segments(&self) -> LutSegments<'a> {
        let section = self.luts_section();
        let count = if section.len() >= 8 {
            format::read_u32(section, 0) as usize
        } else {
            0
        };
        LutSegments {
            section,
            off: 8,
            remaining: count,
        }
    }
}

/// One layer record, viewed in place.
#[derive(Debug, Clone, Copy)]
pub struct LayerView<'a> {
    record: &'a [u8],
    names: &'a [u8],
    weights: &'a [u8],
    inline: bool,
    seed: u64,
    index: usize,
}

impl<'a> LayerView<'a> {
    /// The record's index in the layer table.
    pub fn index(&self) -> usize {
        self.index
    }

    /// The layer name.
    pub fn name(&self) -> &'a str {
        let off = format::read_u32(self.record, format::R_NAME_OFF) as usize;
        let len = format::read_u32(self.record, format::R_NAME_LEN) as usize;
        std::str::from_utf8(&self.names[off..off + len]).expect("validated at parse")
    }

    /// The operator tag (index into [`OP_NAMES`]).
    pub fn op_tag(&self) -> u8 {
        self.record[format::R_OP_TAG]
    }

    /// The operator tag's name.
    pub fn op_name(&self) -> &'static str {
        OP_NAMES[self.op_tag() as usize]
    }

    /// The layer's operand precision.
    pub fn precision(&self) -> Precision {
        match self.record[format::R_PRECISION_BITS] {
            4 => Precision::Int4,
            16 => Precision::Int16,
            _ => Precision::Int8,
        }
    }

    /// Whether the layer maps onto the mat-mul dataflow.
    pub fn is_matmul(&self) -> bool {
        self.record[format::R_MODE_TAG] == mode_tag::MATMUL
    }

    /// Quantization zero point.
    pub fn zero_point(&self) -> i32 {
        format::read_i32(self.record, format::R_ZERO_POINT)
    }

    /// Quantization scale.
    pub fn scale(&self) -> f64 {
        format::read_f64(self.record, format::R_SCALE)
    }

    /// Trainable parameter count.
    pub fn params(&self) -> u64 {
        format::read_u64(self.record, format::R_PARAMS)
    }

    /// Multiply count for one inference.
    pub fn macs(&self) -> u64 {
        format::read_u64(self.record, format::R_MACS)
    }

    /// Mapping metadata: subarrays one replica of this layer occupies.
    pub fn subarrays_per_replica(&self) -> u32 {
        format::read_u32(self.record, format::R_SUBARRAYS)
    }

    /// Mapping metadata: weight replicas resident.
    pub fn replicas(&self) -> u32 {
        format::read_u32(self.record, format::R_REPLICAS)
    }

    /// Whether the layer carries weights.
    pub fn is_weight_layer(&self) -> bool {
        format::read_u64(self.record, format::R_WEIGHT_OFF) != format::NO_WEIGHTS
    }

    /// Quantized weight storage bytes (0 for weightless layers).
    pub fn weight_len(&self) -> u64 {
        format::read_u64(self.record, format::R_WEIGHT_LEN)
    }

    /// The quantized weight bytes viewed in place as signed values —
    /// `Some` only for weight layers of inline-payload artifacts. For
    /// sub-byte precisions this is the packed storage image, exactly as
    /// staged into the cache.
    pub fn weights(&self) -> Option<&'a [i8]> {
        if !self.inline || !self.is_weight_layer() {
            return None;
        }
        let off = format::read_u64(self.record, format::R_WEIGHT_OFF) as usize;
        let len = self.weight_len() as usize;
        Some(as_i8(&self.weights[off..off + len]))
    }

    /// The quantized weight bytes as an owned vector: copied out of an
    /// inline payload, or regenerated from the weight seed for a seeded
    /// payload. Both modes yield identical bytes for the same artifact
    /// parameters. `None` for weightless layers.
    pub fn materialize_weights(&self) -> Option<Vec<u8>> {
        if !self.is_weight_layer() {
            return None;
        }
        if self.inline {
            let off = format::read_u64(self.record, format::R_WEIGHT_OFF) as usize;
            let len = self.weight_len() as usize;
            Some(self.weights[off..off + len].to_vec())
        } else {
            Some(format::synth_weight_bytes(
                self.seed,
                self.index,
                self.weight_len() as usize,
            ))
        }
    }
}

/// One LUT segment table entry, viewed in place.
#[derive(Debug, Clone, Copy)]
pub struct LutSegmentView<'a> {
    kind_tag: u8,
    act_tag: u8,
    bytes: &'a [u8],
}

impl<'a> LutSegmentView<'a> {
    /// What the segment's image contains.
    pub fn kind(&self) -> LutKind {
        match self.kind_tag {
            0 => LutKind::Multiply,
            1 => LutKind::Divide,
            _ => LutKind::Activation,
        }
    }

    /// The activation tag (index into the writer's activation order;
    /// 255 for non-activation segments).
    pub fn act_tag(&self) -> u8 {
        self.act_tag
    }

    /// The image bytes, in place.
    pub fn bytes(&self) -> &'a [u8] {
        self.bytes
    }
}

/// Iterator over an artifact's LUT segment table.
#[derive(Debug, Clone)]
pub struct LutSegments<'a> {
    section: &'a [u8],
    off: usize,
    remaining: usize,
}

impl<'a> Iterator for LutSegments<'a> {
    type Item = LutSegmentView<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let kind_tag = self.section[self.off];
        let act_tag = self.section[self.off + 1];
        let len = format::read_u32(self.section, self.off + 4) as usize;
        let bytes = &self.section[self.off + 8..self.off + 8 + len];
        self.off += 8 + format::pad8(len);
        Some(LutSegmentView {
            kind_tag,
            act_tag,
            bytes,
        })
    }
}

/// An artifact that owns its bytes (validated once at construction).
#[derive(Debug, Clone)]
pub struct OwnedArtifact {
    bytes: Vec<u8>,
}

impl OwnedArtifact {
    /// Validates and takes ownership of `bytes`.
    ///
    /// # Errors
    ///
    /// Same as [`ModelArtifact::parse`].
    pub fn new(bytes: Vec<u8>) -> Result<Self, ModelError> {
        ModelArtifact::parse(&bytes)?;
        Ok(OwnedArtifact { bytes })
    }

    /// A borrowing view (validation already done, so this cannot fail).
    pub fn artifact(&self) -> ModelArtifact<'_> {
        ModelArtifact { bytes: &self.bytes }
    }

    /// The owned bytes.
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Re-runs the full structural and checksum validation over the
    /// owned bytes — the registry's periodic integrity re-check. A bit
    /// flip anywhere in the resident copy (header, layer records,
    /// weight payloads, footer) surfaces here as the same typed error
    /// initial parsing would have raised.
    ///
    /// # Errors
    ///
    /// Same as [`ModelArtifact::parse`].
    pub fn reverify(&self) -> Result<(), ModelError> {
        ModelArtifact::parse(&self.bytes).map(|_| ())
    }

    /// The owned bytes with bit `bit` of byte `byte` flipped — the
    /// fault injector's model of a resident-copy upset, returned as a
    /// fresh buffer so the validated original stays untouched.
    #[must_use]
    pub fn with_flipped_bit(&self, byte: usize, bit: u32) -> Vec<u8> {
        let mut bytes = self.bytes.clone();
        bytes[byte % self.bytes.len()] ^= 1u8 << (bit % 8);
        bytes
    }
}

/// Reinterprets quantized weight storage as signed bytes, in place.
#[allow(unsafe_code)]
fn as_i8(bytes: &[u8]) -> &[i8] {
    // SAFETY: `i8` and `u8` have identical size (1) and alignment (1),
    // and every bit pattern is valid for both, so a byte slice of any
    // alignment is a valid `&[i8]` with the same pointer, length,
    // provenance and lifetime. This is the crate's only unsafe code.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<i8>(), bytes.len()) }
}
