//! The on-disk layout: offsets, tags and the footer checksum.
//!
//! Everything is little-endian and byte-addressed. The header and the
//! per-layer records are fixed-size (`#[repr(C)]`-style layouts spelled
//! out as explicit offsets), so a reader can index any record without a
//! deserialization pass; every multi-byte field is read through
//! `read_u64`-family stack copies, so a buffer at any alignment is safe.
//!
//! ```text
//! offset   size  field
//! header (104 bytes)
//!   0        4   magic "BFRM"
//!   4        2   format version (= 1)
//!   6        2   flags (bit 0: weights inline)
//!   8        8   model version (registry-assigned)
//!   16       8   weight seed (synthetic payload generator)
//!   24       4   layer count
//!   28       4   precision policy tag
//!   32       8   names section offset
//!   40       8   names section length
//!   48       8   layer table offset (layer count x 64-byte records)
//!   56       8   weights section offset
//!   64       8   weights section length
//!   72       8   LUT section offset
//!   80       8   LUT section length
//!   88       8   total artifact length (footer included)
//!   96       4   network name offset (into names section)
//!   100      4   network name length
//! layer record (64 bytes each)
//!   0        4   name offset (into names section)
//!   4        4   name length
//!   8        1   operator tag
//!   9        1   precision bits (4 / 8 / 16)
//!   10       1   mode tag (0 conv, 1 matmul)
//!   11       1   reserved (0)
//!   12       4   quantization zero point (i32)
//!   16       8   parameter count
//!   24       8   multiply count
//!   32       8   weight offset (into weights section; u64::MAX = none)
//!   40       8   weight length (quantized storage bytes)
//!   48       8   quantization scale (f64 bits)
//!   56       4   subarrays per replica (mapping metadata)
//!   60       4   replicas
//! LUT section
//!   0        4   segment count
//!   4        4   reserved (0)
//!   per segment: 1 kind tag, 1 activation tag (255 = none),
//!                2 reserved, 4 length, then the image bytes padded to
//!                an 8-byte boundary
//! footer (8 bytes)
//!   FNV-1a 64 checksum of every preceding byte
//! ```

/// The artifact magic.
pub const MAGIC: [u8; 4] = *b"BFRM";
/// The single format version this crate reads and writes.
pub const FORMAT_VERSION: u16 = 1;
/// Header flag: the weights section carries the quantized bytes inline
/// (clear: the payload is regenerated from the header's weight seed).
pub const FLAG_INLINE_WEIGHTS: u16 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 104;
/// Fixed per-layer record size in bytes.
pub const LAYER_RECORD_LEN: usize = 64;
/// Footer (checksum) size in bytes.
pub const FOOTER_LEN: usize = 8;
/// Sentinel weight offset for layers that carry no weights.
pub const NO_WEIGHTS: u64 = u64::MAX;

// Header field offsets.
pub(crate) const H_MAGIC: usize = 0;
pub(crate) const H_VERSION: usize = 4;
pub(crate) const H_FLAGS: usize = 6;
pub(crate) const H_MODEL_VERSION: usize = 8;
pub(crate) const H_WEIGHT_SEED: usize = 16;
pub(crate) const H_LAYER_COUNT: usize = 24;
pub(crate) const H_POLICY_TAG: usize = 28;
pub(crate) const H_NAMES_OFF: usize = 32;
pub(crate) const H_NAMES_LEN: usize = 40;
pub(crate) const H_LAYERS_OFF: usize = 48;
pub(crate) const H_WEIGHTS_OFF: usize = 56;
pub(crate) const H_WEIGHTS_LEN: usize = 64;
pub(crate) const H_LUTS_OFF: usize = 72;
pub(crate) const H_LUTS_LEN: usize = 80;
pub(crate) const H_TOTAL_LEN: usize = 88;
pub(crate) const H_NET_NAME_OFF: usize = 96;
pub(crate) const H_NET_NAME_LEN: usize = 100;

// Layer record field offsets (relative to the record start).
pub(crate) const R_NAME_OFF: usize = 0;
pub(crate) const R_NAME_LEN: usize = 4;
pub(crate) const R_OP_TAG: usize = 8;
pub(crate) const R_PRECISION_BITS: usize = 9;
pub(crate) const R_MODE_TAG: usize = 10;
pub(crate) const R_ZERO_POINT: usize = 12;
pub(crate) const R_PARAMS: usize = 16;
pub(crate) const R_MACS: usize = 24;
pub(crate) const R_WEIGHT_OFF: usize = 32;
pub(crate) const R_WEIGHT_LEN: usize = 40;
pub(crate) const R_SCALE: usize = 48;
pub(crate) const R_SUBARRAYS: usize = 56;
pub(crate) const R_REPLICAS: usize = 60;

/// Precision-policy tags (header field).
pub mod policy_tag {
    /// Uniform 8-bit.
    pub const UNIFORM_INT8: u32 = 0;
    /// Uniform 4-bit.
    pub const UNIFORM_INT4: u32 = 1;
    /// Uniform 16-bit.
    pub const UNIFORM_INT16: u32 = 2;
    /// The Fig. 14 mixed 4/8-bit policy; the per-layer precision bits
    /// record which layers stayed at 8 bits.
    pub const MIXED_FOUR_EIGHT: u32 = 3;
}

/// FNV-1a 64-bit checksum — a dependency-free integrity hash with a
/// stable, well-known definition (not a cryptographic signature).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// Alignment-safe little-endian field readers: each copies the field
// bytes into a stack array, so a buffer sliced at any offset reads
// correctly with no unaligned-access UB. Callers bounds-check first;
// these only assert.

pub(crate) fn read_u16(buf: &[u8], off: usize) -> u16 {
    let mut b = [0u8; 2];
    b.copy_from_slice(&buf[off..off + 2]);
    u16::from_le_bytes(b)
}

pub(crate) fn read_u32(buf: &[u8], off: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[off..off + 4]);
    u32::from_le_bytes(b)
}

pub(crate) fn read_u64(buf: &[u8], off: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[off..off + 8]);
    u64::from_le_bytes(b)
}

pub(crate) fn read_i32(buf: &[u8], off: usize) -> i32 {
    read_u32(buf, off) as i32
}

pub(crate) fn read_f64(buf: &[u8], off: usize) -> f64 {
    f64::from_bits(read_u64(buf, off))
}

pub(crate) fn write_u16(buf: &mut [u8], off: usize, v: u16) {
    buf[off..off + 2].copy_from_slice(&v.to_le_bytes());
}

pub(crate) fn write_u32(buf: &mut [u8], off: usize, v: u32) {
    buf[off..off + 4].copy_from_slice(&v.to_le_bytes());
}

pub(crate) fn write_u64(buf: &mut [u8], off: usize, v: u64) {
    buf[off..off + 8].copy_from_slice(&v.to_le_bytes());
}

/// Rounds `len` up to the next 8-byte boundary.
pub(crate) fn pad8(len: usize) -> usize {
    len.div_ceil(8) * 8
}

/// The deterministic synthetic-weight stream: splitmix64 over a state
/// derived from the artifact's weight seed and the layer index, emitting
/// one byte per step. Writer (inline payloads) and loader (seeded
/// payloads) call the same function, so the two payload modes describe
/// identical weights.
pub fn synth_weight_bytes(seed: u64, layer_index: usize, len: usize) -> Vec<u8> {
    let mut state = seed ^ (layer_index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        out.push(z as u8);
    }
    out
}

/// The deterministic per-layer quantization scale for synthetic
/// weights: a seed-and-index-derived absolute maximum in `[0.5, 2.0)`
/// divided by the precision's positive clamp.
pub fn synth_scale(seed: u64, layer_index: usize, bits: u8) -> f64 {
    let mut z = seed
        .wrapping_mul(0x2545_f491_4f6c_dd1d)
        .wrapping_add(layer_index as u64);
    z = (z ^ (z >> 33)).wrapping_mul(0xff51_afd7_ed55_8ccd);
    z ^= z >> 33;
    let amax = 0.5 + (z % 1500) as f64 / 1000.0;
    let clamp = ((1u32 << (bits - 1)) - 1) as f64;
    amax / clamp
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn field_readers_are_alignment_safe() {
        // Read the same u64 from an 8-aligned and a deliberately odd
        // offset; both must decode identically.
        let mut buf = vec![0u8; 32];
        write_u64(&mut buf, 0, 0x0123_4567_89ab_cdef);
        buf.copy_within(0..8, 1);
        assert_eq!(read_u64(&buf, 1), 0x0123_4567_89ab_cdef);
        write_u32(&mut buf, 13, 0xdead_beef);
        assert_eq!(read_u32(&buf, 13), 0xdead_beef);
        write_u16(&mut buf, 19, 0xbeef);
        assert_eq!(read_u16(&buf, 19), 0xbeef);
    }

    #[test]
    fn synth_streams_are_deterministic_and_layer_distinct() {
        let a = synth_weight_bytes(7, 0, 64);
        let b = synth_weight_bytes(7, 0, 64);
        let c = synth_weight_bytes(7, 1, 64);
        assert_eq!(a, b);
        assert_ne!(a, c, "layers must draw distinct streams");
        assert_ne!(a, synth_weight_bytes(8, 0, 64));
    }

    #[test]
    fn synth_scale_is_positive_and_shrinks_with_bits() {
        for layer in 0..16 {
            let s8 = synth_scale(42, layer, 8);
            let s4 = synth_scale(42, layer, 4);
            assert!(s8 > 0.0 && s8.is_finite());
            // Same amax over a smaller clamp → int4 scale is larger.
            assert!(s4 > s8);
        }
    }

    #[test]
    fn pad8_rounds_up() {
        assert_eq!(pad8(0), 0);
        assert_eq!(pad8(1), 8);
        assert_eq!(pad8(8), 8);
        assert_eq!(pad8(49), 56);
    }
}
