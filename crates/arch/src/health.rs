//! Slice health tracking for a degraded cache.
//!
//! The slice is BFree's failure domain: one slice controller, one
//! H-tree segment and one bank of sense amplifiers serve all of its
//! subarrays, so a hardware fault takes the whole slice out of the PIM
//! pool at once (the cache's normal way-disable machinery already
//! isolates it from conventional traffic). [`HealthMap`] is the
//! mechanism-level record of which slices are currently usable —
//! *policy* (who quarantines, when to retry) lives in the serving
//! layer.

use std::fmt;

/// Operational state of one cache slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SliceState {
    /// Fully operational.
    #[default]
    Healthy,
    /// Operational but chronically slow (marginal sense amps, process
    /// variation); dispatches including it pay a latency multiplier.
    Degraded,
    /// Failed and quarantined: excluded from allocation until repaired.
    Failed,
}

impl SliceState {
    /// Whether a slice in this state can be allocated.
    #[must_use]
    pub fn available(self) -> bool {
        !matches!(self, SliceState::Failed)
    }

    /// Stable machine-readable label for traces.
    pub fn label(self) -> &'static str {
        match self {
            SliceState::Healthy => "healthy",
            SliceState::Degraded => "degraded",
            SliceState::Failed => "failed",
        }
    }
}

impl fmt::Display for SliceState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-slice health over a whole cache.
///
/// ```
/// use pim_arch::{HealthMap, SliceState};
///
/// let mut health = HealthMap::new(14);
/// assert_eq!(health.available_slices(), 14);
/// health.mark_failed(3);
/// assert_eq!(health.state(3), SliceState::Failed);
/// assert!(!health.is_available(3));
/// assert_eq!(health.available_slices(), 13);
/// health.mark_recovered(3);
/// assert_eq!(health.available_slices(), 14);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthMap {
    states: Vec<SliceState>,
}

impl HealthMap {
    /// A map with every one of `slices` slices healthy.
    #[must_use]
    pub fn new(slices: usize) -> Self {
        HealthMap {
            states: vec![SliceState::Healthy; slices],
        }
    }

    /// Total slices tracked.
    #[must_use]
    pub fn slices(&self) -> usize {
        self.states.len()
    }

    /// The state of `slice` ([`SliceState::Failed`] for out-of-range
    /// indices — an unknown slice is not allocatable).
    #[must_use]
    pub fn state(&self, slice: usize) -> SliceState {
        self.states
            .get(slice)
            .copied()
            .unwrap_or(SliceState::Failed)
    }

    /// Whether `slice` can currently be allocated.
    #[must_use]
    pub fn is_available(&self, slice: usize) -> bool {
        self.state(slice).available()
    }

    /// Slices currently allocatable (healthy or degraded).
    #[must_use]
    pub fn available_slices(&self) -> usize {
        self.states.iter().filter(|s| s.available()).count()
    }

    /// Fraction of the pool currently allocatable (1.0 for an empty
    /// map — no capacity is also no deficit).
    #[must_use]
    pub fn available_fraction(&self) -> f64 {
        if self.states.is_empty() {
            return 1.0;
        }
        self.available_slices() as f64 / self.states.len() as f64
    }

    /// Marks `slice` failed; returns whether the state changed.
    pub fn mark_failed(&mut self, slice: usize) -> bool {
        self.transition(slice, SliceState::Failed)
    }

    /// Marks `slice` degraded (still allocatable); returns whether the
    /// state changed. A failed slice stays failed — recovery is
    /// explicit.
    pub fn mark_degraded(&mut self, slice: usize) -> bool {
        if self.state(slice) == SliceState::Failed {
            return false;
        }
        self.transition(slice, SliceState::Degraded)
    }

    /// Returns `slice` to [`SliceState::Healthy`]; returns whether the
    /// state changed.
    pub fn mark_recovered(&mut self, slice: usize) -> bool {
        self.transition(slice, SliceState::Healthy)
    }

    fn transition(&mut self, slice: usize, to: SliceState) -> bool {
        match self.states.get_mut(slice) {
            Some(state) if *state != to => {
                *state = to;
                true
            }
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_map_is_fully_available() {
        let h = HealthMap::new(14);
        assert_eq!(h.slices(), 14);
        assert_eq!(h.available_slices(), 14);
        assert!((h.available_fraction() - 1.0).abs() < 1e-15);
        assert!(h.is_available(13));
    }

    #[test]
    fn failure_and_recovery_round_trip() {
        let mut h = HealthMap::new(4);
        assert!(h.mark_failed(1));
        assert!(!h.mark_failed(1), "second failure is a no-op");
        assert_eq!(h.available_slices(), 3);
        assert!((h.available_fraction() - 0.75).abs() < 1e-15);
        assert!(h.mark_recovered(1));
        assert_eq!(h.state(1), SliceState::Healthy);
    }

    #[test]
    fn degraded_slices_stay_available() {
        let mut h = HealthMap::new(4);
        assert!(h.mark_degraded(2));
        assert!(h.is_available(2));
        assert_eq!(h.available_slices(), 4);
        // Degradation never resurrects a failed slice.
        h.mark_failed(3);
        assert!(!h.mark_degraded(3));
        assert_eq!(h.state(3), SliceState::Failed);
    }

    #[test]
    fn out_of_range_slices_read_as_failed() {
        let mut h = HealthMap::new(2);
        assert_eq!(h.state(99), SliceState::Failed);
        assert!(!h.is_available(99));
        assert!(!h.mark_failed(99));
        assert!(!h.mark_recovered(99));
    }

    #[test]
    fn empty_map_has_no_deficit() {
        let h = HealthMap::new(0);
        assert!((h.available_fraction() - 1.0).abs() < 1e-15);
    }
}
