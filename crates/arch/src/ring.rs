//! The slice ring interconnect (paper Fig. 1(a)).
//!
//! The L3 slices connect through a ring with NUCA access: a slice is
//! reached from a core (or from another slice) in a number of ring hops
//! proportional to their distance. BFree keeps kernel traffic inside
//! slices, but weight broadcast during configuration and final-result
//! collection cross the ring, so the simulator prices those transfers
//! here.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::units::{Bytes, Energy, Latency};

/// A bidirectional slice ring.
///
/// ```
/// use pim_arch::ring::RingInterconnect;
/// let ring = RingInterconnect::paper_default();
/// // 14 slices: the farthest slice is 7 hops away either direction.
/// assert_eq!(ring.hops_between(0, 7), 7);
/// assert_eq!(ring.hops_between(0, 13), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RingInterconnect {
    /// Ring stops (one per slice).
    pub slices: usize,
    /// Latency per hop, ns (one ring cycle at the uncore clock).
    pub hop_ns: f64,
    /// Energy per byte per hop, pJ.
    pub hop_pj_per_byte: f64,
    /// Link width in bytes per ring cycle.
    pub link_bytes: u64,
}

impl RingInterconnect {
    /// The paper platform: 14 stops, 32-byte links at a ~3 GHz uncore.
    pub fn paper_default() -> Self {
        RingInterconnect {
            slices: 14,
            hop_ns: 0.33,
            hop_pj_per_byte: 0.8,
            link_bytes: 32,
        }
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] for non-positive values.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.slices == 0 {
            return Err(ArchError::InvalidParameter {
                parameter: "slices",
                reason: "ring needs at least one stop".to_string(),
            });
        }
        for (name, v) in [
            ("hop_ns", self.hop_ns),
            ("hop_pj_per_byte", self.hop_pj_per_byte),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(ArchError::InvalidParameter {
                    parameter: name,
                    reason: format!("must be positive and finite, got {v}"),
                });
            }
        }
        if self.link_bytes == 0 {
            return Err(ArchError::InvalidParameter {
                parameter: "link_bytes",
                reason: "zero-width link".to_string(),
            });
        }
        Ok(())
    }

    /// Shortest hop count between two slices on the bidirectional ring.
    ///
    /// # Panics
    ///
    /// Panics when either index is out of range.
    pub fn hops_between(&self, from: usize, to: usize) -> usize {
        assert!(
            from < self.slices && to < self.slices,
            "slice index out of range"
        );
        let clockwise = (to + self.slices - from) % self.slices;
        clockwise.min(self.slices - clockwise)
    }

    /// Worst-case hop count from any slice to any other.
    pub fn diameter(&self) -> usize {
        self.slices / 2
    }

    /// Time to move `bytes` from one slice to another: serialization on
    /// the link plus the hop latency.
    pub fn transfer_time(&self, bytes: Bytes, from: usize, to: usize) -> Latency {
        let hops = self.hops_between(from, to) as f64;
        let flits = bytes.get().div_ceil(self.link_bytes) as f64;
        Latency::from_ns(hops * self.hop_ns + flits.max(1.0) * self.hop_ns)
    }

    /// Energy to move `bytes` across the ring between two slices.
    pub fn transfer_energy(&self, bytes: Bytes, from: usize, to: usize) -> Energy {
        let hops = self.hops_between(from, to) as f64;
        Energy::from_pj(bytes.get() as f64 * self.hop_pj_per_byte * hops.max(1.0))
    }

    /// Cost of broadcasting `bytes` from the port slice to every slice
    /// (the weight-distribution pattern of Fig. 11): the ring pipelines
    /// the broadcast, so time is bounded by the diameter plus
    /// serialization, while energy pays every link once.
    pub fn broadcast(&self, bytes: Bytes) -> (Latency, Energy) {
        let flits = bytes.get().div_ceil(self.link_bytes) as f64;
        let time = Latency::from_ns(self.diameter() as f64 * self.hop_ns + flits * self.hop_ns);
        let energy =
            Energy::from_pj(bytes.get() as f64 * self.hop_pj_per_byte * (self.slices - 1) as f64);
        (time, energy)
    }

    /// Cost of gathering per-slice partial results (`bytes` from each
    /// slice) to the port slice — the final-result collection at the end
    /// of a kernel.
    pub fn gather(&self, bytes_per_slice: Bytes) -> (Latency, Energy) {
        let total = Bytes::new(bytes_per_slice.get() * (self.slices as u64 - 1));
        let flits = total.get().div_ceil(self.link_bytes) as f64;
        let time = Latency::from_ns(self.diameter() as f64 * self.hop_ns + flits * self.hop_ns);
        // Average distance is ~diameter/2.
        let energy = Energy::from_pj(
            total.get() as f64 * self.hop_pj_per_byte * (self.diameter() as f64 / 2.0).max(1.0),
        );
        (time, energy)
    }
}

impl Default for RingInterconnect {
    fn default() -> Self {
        RingInterconnect::paper_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        RingInterconnect::paper_default().validate().unwrap();
    }

    #[test]
    fn hops_take_the_short_way_around() {
        let ring = RingInterconnect::paper_default();
        assert_eq!(ring.hops_between(0, 0), 0);
        assert_eq!(ring.hops_between(0, 1), 1);
        assert_eq!(ring.hops_between(1, 0), 1);
        assert_eq!(ring.hops_between(0, 13), 1);
        assert_eq!(ring.hops_between(3, 10), 7);
        assert_eq!(ring.diameter(), 7);
    }

    #[test]
    fn transfer_time_scales_with_distance_and_size() {
        let ring = RingInterconnect::paper_default();
        let small = ring.transfer_time(Bytes::new(64), 0, 1);
        let far = ring.transfer_time(Bytes::new(64), 0, 7);
        let big = ring.transfer_time(Bytes::from_kib(64), 0, 1);
        assert!(far > small);
        assert!(big > small);
    }

    #[test]
    fn broadcast_energy_pays_every_link() {
        let ring = RingInterconnect::paper_default();
        let (_, energy) = ring.broadcast(Bytes::new(1000));
        assert!((energy.picojoules() - 1000.0 * 0.8 * 13.0).abs() < 1e-9);
    }

    #[test]
    fn gather_collects_from_all_other_slices() {
        let ring = RingInterconnect::paper_default();
        let (time, energy) = ring.gather(Bytes::new(100));
        assert!(time.nanoseconds() > 0.0);
        assert!(energy.picojoules() > 0.0);
    }

    #[test]
    fn broadcast_is_pipelined_not_serial() {
        // Broadcasting a large payload takes ~serialization time, not
        // slices x serialization.
        let ring = RingInterconnect::paper_default();
        let bytes = Bytes::from_mib(1);
        let (time, _) = ring.broadcast(bytes);
        let serialization = bytes.get().div_ceil(ring.link_bytes) as f64 * ring.hop_ns;
        assert!(time.nanoseconds() < serialization * 1.5);
    }

    #[test]
    fn invalid_parameters_rejected() {
        let mut ring = RingInterconnect::paper_default();
        ring.slices = 0;
        assert!(ring.validate().is_err());
        let mut ring = RingInterconnect::paper_default();
        ring.hop_ns = -1.0;
        assert!(ring.validate().is_err());
        let mut ring = RingInterconnect::paper_default();
        ring.link_bytes = 0;
        assert!(ring.validate().is_err());
    }

    #[test]
    #[should_panic]
    fn out_of_range_slice_panics() {
        RingInterconnect::paper_default().hops_between(0, 14);
    }
}
