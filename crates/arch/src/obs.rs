//! Bridge from `pim-arch` aggregates to `bfree-obs` events.
//!
//! The cost models in this crate produce *aggregate* breakdowns
//! ([`EnergyBreakdown`], [`LatencyBreakdown`]). The observability layer
//! wants *events*. This module is the adapter: it maps the crate's
//! [`EnergyComponent`] taxonomy onto the obs-layer [`Component`] axis
//! and re-emits breakdowns as component-tagged counters, so an
//! [`bfree_obs::AggRecorder`] folding the event stream reproduces the
//! aggregates exactly — the invariant the `experiments attribution`
//! subcommand cross-checks.

use bfree_obs::{Component, Recorder, Subsystem, Unit};

use crate::energy::EnergyParams;
use crate::stats::{EnergyBreakdown, EnergyComponent, LatencyBreakdown, Phase};
use crate::timing::TimingParams;

/// The obs-layer component corresponding to a Fig. 12(d) energy
/// component.
pub fn obs_component(component: EnergyComponent) -> Component {
    match component {
        EnergyComponent::Dram => Component::Dram,
        EnergyComponent::SubarrayAccess => Component::Subarray,
        EnergyComponent::LutAccess => Component::Lut,
        EnergyComponent::Bce => Component::Bce,
        EnergyComponent::Interconnect => Component::Interconnect,
        EnergyComponent::Router => Component::Router,
        EnergyComponent::Controller => Component::Controller,
    }
}

/// Static event name for a phase's latency counter (`"phase/compute"`,
/// ...). Distinct from the bare phase label so phase counters can never
/// collide with other event names.
pub fn phase_event_name(phase: Phase) -> &'static str {
    match phase {
        Phase::Config => "phase/config",
        Phase::WeightLoad => "phase/weight-load",
        Phase::InputLoad => "phase/input-load",
        Phase::Compute => "phase/compute",
        Phase::Reduction => "phase/reduction",
        Phase::Quantize => "phase/quantize",
        Phase::Writeback => "phase/writeback",
    }
}

/// Event name carrying per-component energy counters.
pub const ENERGY_EVENT: &str = "component_energy";

/// Event name carrying the Fig. 2 slice-access decomposition.
pub const SLICE_ACCESS_EVENT: &str = "slice_access";

impl EnergyBreakdown {
    /// Emits this breakdown as one [`ENERGY_EVENT`] energy counter per
    /// non-zero component, attributed to `subsystem`.
    ///
    /// Folding the emitted events in an [`bfree_obs::AggRecorder`]
    /// recovers the breakdown: `energy_by_component()` sums equal
    /// [`EnergyBreakdown::get`] per mapped component.
    pub fn record_to<R: Recorder>(&self, recorder: &R, subsystem: Subsystem) {
        if !recorder.is_enabled() {
            return;
        }
        for (component, energy) in self.iter() {
            recorder.energy(
                subsystem,
                ENERGY_EVENT,
                obs_component(component),
                energy.picojoules(),
            );
        }
    }
}

impl LatencyBreakdown {
    /// Emits this breakdown as one latency counter per non-zero phase
    /// (named [`phase_event_name`]), attributed to `subsystem`.
    pub fn record_to<R: Recorder>(&self, recorder: &R, subsystem: Subsystem) {
        if !recorder.is_enabled() {
            return;
        }
        for (phase, latency) in self.iter() {
            recorder.counter(
                subsystem,
                phase_event_name(phase),
                latency.nanoseconds(),
                Unit::Nanoseconds,
            );
        }
    }
}

/// Emits the Fig. 2 decomposition of one full slice access: latency
/// split across interconnect / subarray / peripheral, and energy split
/// the same way. One call per modeled slice access (or one scaled call
/// per batch of accesses via `count`).
pub fn record_slice_access<R: Recorder>(
    timing: &TimingParams,
    energy: &EnergyParams,
    count: f64,
    recorder: &R,
) {
    if !recorder.is_enabled() || count <= 0.0 {
        return;
    }
    let lat = timing.slice_access_breakdown();
    let total_ns = lat.total.nanoseconds() * count;
    let e = energy.slice_access_breakdown();
    let total_pj = energy.slice_access().picojoules() * count;
    for (component, lat_frac, e_frac) in [
        (
            Component::Interconnect,
            lat.interconnect_fraction,
            e.interconnect_fraction,
        ),
        (
            Component::Subarray,
            lat.subarray_fraction,
            e.subarray_fraction,
        ),
        (
            Component::Peripheral,
            lat.peripheral_fraction,
            e.peripheral_fraction,
        ),
    ] {
        recorder.latency(
            Subsystem::Arch,
            SLICE_ACCESS_EVENT,
            component,
            total_ns * lat_frac,
        );
        recorder.energy(
            Subsystem::Arch,
            SLICE_ACCESS_EVENT,
            component,
            total_pj * e_frac,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::{Energy, Latency};
    use bfree_obs::AggRecorder;

    #[test]
    fn every_energy_component_maps_distinctly() {
        let mapped: Vec<Component> = EnergyComponent::ALL
            .iter()
            .map(|c| obs_component(*c))
            .collect();
        for (i, a) in mapped.iter().enumerate() {
            for b in &mapped[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }

    #[test]
    fn recorded_energy_breakdown_folds_back_exactly() {
        let mut b = EnergyBreakdown::new();
        b.add(EnergyComponent::Dram, Energy::from_pj(800.0));
        b.add(EnergyComponent::Interconnect, Energy::from_pj(150.0));
        b.add(EnergyComponent::Bce, Energy::from_pj(50.0));
        let rec = AggRecorder::new();
        b.record_to(&rec, Subsystem::Exec);
        let by = rec.energy_by_component();
        assert_eq!(by[&Component::Dram], 800.0);
        assert_eq!(by[&Component::Interconnect], 150.0);
        assert_eq!(by[&Component::Bce], 50.0);
        let total: f64 = by.values().sum();
        assert!((total - b.total().picojoules()).abs() < 1e-9);
    }

    #[test]
    fn recorded_latency_breakdown_sums_per_phase() {
        let mut b = LatencyBreakdown::new();
        b.add(Phase::Compute, Latency::from_ns(300.0));
        b.add(Phase::WeightLoad, Latency::from_ns(700.0));
        let rec = AggRecorder::new();
        b.record_to(&rec, Subsystem::Exec);
        assert_eq!(rec.sum(Subsystem::Exec, "phase/compute"), 300.0);
        assert_eq!(rec.sum(Subsystem::Exec, "phase/weight-load"), 700.0);
        assert_eq!(rec.sum(Subsystem::Exec, "phase/config"), 0.0);
    }

    #[test]
    fn slice_access_fractions_reproduce_fig2() {
        let timing = TimingParams::paper_default();
        let energy = EnergyParams::paper_default();
        let rec = AggRecorder::new();
        record_slice_access(&timing, &energy, 10.0, &rec);
        let lat = rec.latency_by_component();
        let total_ns: f64 = lat.values().sum();
        assert!((total_ns - 10.0 * timing.slice_access_ns).abs() < 1e-9);
        // Fig. 2: interconnect dominates both axes.
        assert!(lat[&Component::Interconnect] / total_ns > 0.85);
        let e = rec.energy_by_component();
        let total_pj: f64 = e.values().sum();
        assert!(e[&Component::Interconnect] / total_pj > 0.85);
    }

    #[test]
    fn disabled_recorder_skips_iteration() {
        let mut b = EnergyBreakdown::new();
        b.add(EnergyComponent::Dram, Energy::from_pj(1.0));
        // Just exercises the early-return path.
        b.record_to(&bfree_obs::NullRecorder, Subsystem::Exec);
        record_slice_access(
            &TimingParams::paper_default(),
            &EnergyParams::paper_default(),
            1.0,
            &bfree_obs::NullRecorder,
        );
    }
}
