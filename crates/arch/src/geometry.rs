//! Last-level-cache geometry.
//!
//! The paper's Fig. 1 organisation: an L3 cache made of *slices* connected
//! by a ring, each slice split into *banks*, banks into *sub-banks*,
//! sub-banks into 8 KB *subarrays*, and each subarray into four
//! *partitions* of 256 rows x 64 bit cells. Two rows of every partition are
//! reserved as reduced-access-cost LUT rows in the BFree design.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::units::Bytes;

/// Static geometry of a sliced last-level SRAM cache.
///
/// The default ([`CacheGeometry::xeon_l3_35mb`]) mirrors the paper's
/// evaluation platform: a 35 MB, 14-slice L3 similar to an Intel Xeon E5,
/// with 2.5 MB slices of 4 banks x 10 sub-banks x 8 subarrays of 8 KB.
///
/// ```
/// use pim_arch::CacheGeometry;
/// let g = CacheGeometry::xeon_l3_35mb();
/// assert_eq!(g.subarrays_per_slice(), 320);
/// assert_eq!(g.total_subarrays(), 4480);
/// assert_eq!(g.capacity().get(), 35 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheGeometry {
    slices: usize,
    banks_per_slice: usize,
    subbanks_per_bank: usize,
    subarrays_per_subbank: usize,
    partitions_per_subarray: usize,
    rows_per_partition: usize,
    bits_per_row: usize,
    lut_rows_per_partition: usize,
}

impl CacheGeometry {
    /// Creates a geometry after validating every parameter is non-zero and
    /// that the LUT rows fit inside a partition.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidGeometry`] if any count is zero or if
    /// `lut_rows_per_partition >= rows_per_partition`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        slices: usize,
        banks_per_slice: usize,
        subbanks_per_bank: usize,
        subarrays_per_subbank: usize,
        partitions_per_subarray: usize,
        rows_per_partition: usize,
        bits_per_row: usize,
        lut_rows_per_partition: usize,
    ) -> Result<Self, ArchError> {
        let check = |name: &'static str, v: usize| -> Result<(), ArchError> {
            if v == 0 {
                Err(ArchError::InvalidGeometry {
                    parameter: name,
                    reason: "must be non-zero".to_string(),
                })
            } else {
                Ok(())
            }
        };
        check("slices", slices)?;
        check("banks_per_slice", banks_per_slice)?;
        check("subbanks_per_bank", subbanks_per_bank)?;
        check("subarrays_per_subbank", subarrays_per_subbank)?;
        check("partitions_per_subarray", partitions_per_subarray)?;
        check("rows_per_partition", rows_per_partition)?;
        check("bits_per_row", bits_per_row)?;
        if lut_rows_per_partition >= rows_per_partition {
            return Err(ArchError::InvalidGeometry {
                parameter: "lut_rows_per_partition",
                reason: format!(
                    "{lut_rows_per_partition} LUT rows do not fit in a partition of \
                     {rows_per_partition} rows"
                ),
            });
        }
        Ok(CacheGeometry {
            slices,
            banks_per_slice,
            subbanks_per_bank,
            subarrays_per_subbank,
            partitions_per_subarray,
            rows_per_partition,
            bits_per_row,
            lut_rows_per_partition,
        })
    }

    /// The paper's evaluation platform (same as
    /// [`xeon_l3_35mb`](CacheGeometry::xeon_l3_35mb)): the
    /// workspace-wide canonical name for "the configuration the paper
    /// evaluates".
    #[doc(alias = "xeon_l3_35mb")]
    #[must_use]
    pub fn paper_default() -> Self {
        Self::xeon_l3_35mb()
    }

    /// The paper's evaluation platform: 35 MB L3 in 14 slices (Fig. 1).
    ///
    /// 14 slices x 4 banks x 10 sub-banks x 8 subarrays x 8 KB = 35 MB,
    /// with each 8 KB subarray organised as 4 partitions x 256 rows x
    /// 64 bits and 2 LUT rows per partition (8 LUT rows per subarray,
    /// 64 one-byte LUT entries).
    #[doc(alias = "paper_default")]
    pub fn xeon_l3_35mb() -> Self {
        // Invariant: these constants pass `CacheGeometry::new`'s checks
        // (non-zero dims, LUT rows < partition rows); covered by tests.
        CacheGeometry::new(14, 4, 10, 8, 4, 256, 64, 2).expect("static geometry is valid")
    }

    /// A single 2.5 MB slice, the iso-area unit used in the Eyeriss
    /// comparison (paper §V-D).
    pub fn single_slice_2_5mb() -> Self {
        // Invariant: same constants as `xeon_l3_35mb` with one slice.
        CacheGeometry::new(1, 4, 10, 8, 4, 256, 64, 2).expect("static geometry is valid")
    }

    /// The same slice organisation with a different slice count: the
    /// partial-cache geometry a tenant sees when a slice-pool allocator
    /// grants it `slices` of the cache's slices (serving layer).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidGeometry`] when `slices` is zero.
    pub fn with_slices(&self, slices: usize) -> Result<Self, ArchError> {
        CacheGeometry::new(
            slices,
            self.banks_per_slice,
            self.subbanks_per_bank,
            self.subarrays_per_subbank,
            self.partitions_per_subarray,
            self.rows_per_partition,
            self.bits_per_row,
            self.lut_rows_per_partition,
        )
    }

    /// Number of slices in the cache.
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// Banks per slice.
    pub fn banks_per_slice(&self) -> usize {
        self.banks_per_slice
    }

    /// Sub-banks per bank.
    pub fn subbanks_per_bank(&self) -> usize {
        self.subbanks_per_bank
    }

    /// Subarrays per sub-bank.
    pub fn subarrays_per_subbank(&self) -> usize {
        self.subarrays_per_subbank
    }

    /// Partitions per subarray.
    pub fn partitions_per_subarray(&self) -> usize {
        self.partitions_per_subarray
    }

    /// Rows per partition.
    pub fn rows_per_partition(&self) -> usize {
        self.rows_per_partition
    }

    /// Bit cells per row (also the subarray data-bus width in bits).
    pub fn bits_per_row(&self) -> usize {
        self.bits_per_row
    }

    /// Reduced-access-cost LUT rows per partition.
    pub fn lut_rows_per_partition(&self) -> usize {
        self.lut_rows_per_partition
    }

    /// Sub-banks per slice.
    pub fn subbanks_per_slice(&self) -> usize {
        self.banks_per_slice * self.subbanks_per_bank
    }

    /// Subarrays per slice.
    pub fn subarrays_per_slice(&self) -> usize {
        self.subbanks_per_slice() * self.subarrays_per_subbank
    }

    /// Total subarrays in the cache.
    pub fn total_subarrays(&self) -> usize {
        self.slices * self.subarrays_per_slice()
    }

    /// Rows per subarray across all partitions.
    pub fn rows_per_subarray(&self) -> usize {
        self.partitions_per_subarray * self.rows_per_partition
    }

    /// Capacity of one subarray.
    pub fn subarray_capacity(&self) -> Bytes {
        Bytes::new((self.rows_per_subarray() * self.bits_per_row / 8) as u64)
    }

    /// Capacity of one slice.
    pub fn slice_capacity(&self) -> Bytes {
        Bytes::new(self.subarray_capacity().get() * self.subarrays_per_slice() as u64)
    }

    /// Total cache capacity.
    pub fn capacity(&self) -> Bytes {
        Bytes::new(self.slice_capacity().get() * self.slices as u64)
    }

    /// LUT rows per subarray.
    pub fn lut_rows_per_subarray(&self) -> usize {
        self.lut_rows_per_partition * self.partitions_per_subarray
    }

    /// LUT capacity per subarray (the paper's 8 rows x 64 bits = 64 bytes,
    /// i.e. 64 one-byte LUT entries).
    pub fn lut_capacity_per_subarray(&self) -> Bytes {
        Bytes::new((self.lut_rows_per_subarray() * self.bits_per_row / 8) as u64)
    }

    /// Data capacity of a subarray available for weights and operands once
    /// LUT rows and the configuration block (one row per subarray) are
    /// reserved.
    pub fn usable_subarray_capacity(&self) -> Bytes {
        let reserved_rows = self.lut_rows_per_subarray() + 1;
        let rows = self.rows_per_subarray().saturating_sub(reserved_rows);
        Bytes::new((rows * self.bits_per_row / 8) as u64)
    }

    /// Usable PIM weight capacity over the whole cache.
    pub fn usable_capacity(&self) -> Bytes {
        Bytes::new(self.usable_subarray_capacity().get() * self.total_subarrays() as u64)
    }

    /// Bytes transferred by one full-row subarray access.
    pub fn row_bytes(&self) -> Bytes {
        Bytes::new((self.bits_per_row / 8) as u64)
    }
}

impl Default for CacheGeometry {
    fn default() -> Self {
        CacheGeometry::xeon_l3_35mb()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_geometry_matches_fig1() {
        let g = CacheGeometry::xeon_l3_35mb();
        assert_eq!(g.slices(), 14);
        assert_eq!(g.subarray_capacity(), Bytes::from_kib(8));
        assert_eq!(g.slice_capacity(), Bytes::from_kib(2560)); // 2.5 MB
        assert_eq!(g.capacity(), Bytes::from_mib(35));
        assert_eq!(g.rows_per_subarray(), 1024);
        assert_eq!(g.bits_per_row(), 64);
    }

    #[test]
    fn paper_total_subarray_count_is_4480() {
        // §V-D: "a total of 4480 sub-arrays".
        assert_eq!(CacheGeometry::xeon_l3_35mb().total_subarrays(), 4480);
    }

    #[test]
    fn lut_rows_match_paper() {
        // §III-B: 2 rows per partition => 8 per subarray => 64 entries.
        let g = CacheGeometry::xeon_l3_35mb();
        assert_eq!(g.lut_rows_per_subarray(), 8);
        assert_eq!(g.lut_capacity_per_subarray().get(), 64);
    }

    #[test]
    fn usable_capacity_excludes_lut_and_cb_rows() {
        let g = CacheGeometry::xeon_l3_35mb();
        // 1024 rows - 8 LUT rows - 1 CB row = 1015 rows of 8 bytes.
        assert_eq!(g.usable_subarray_capacity().get(), 1015 * 8);
        assert!(g.usable_capacity().get() < g.capacity().get());
    }

    #[test]
    fn single_slice_geometry() {
        let g = CacheGeometry::single_slice_2_5mb();
        assert_eq!(g.total_subarrays(), 320);
        assert_eq!(g.capacity().get(), 2560 * 1024);
    }

    #[test]
    fn zero_parameter_rejected() {
        let err = CacheGeometry::new(0, 4, 10, 8, 4, 256, 64, 2).unwrap_err();
        assert!(matches!(
            err,
            ArchError::InvalidGeometry {
                parameter: "slices",
                ..
            }
        ));
    }

    #[test]
    fn oversized_lut_rows_rejected() {
        let err = CacheGeometry::new(1, 1, 1, 1, 1, 4, 64, 4).unwrap_err();
        assert!(matches!(
            err,
            ArchError::InvalidGeometry {
                parameter: "lut_rows_per_partition",
                ..
            }
        ));
    }

    #[test]
    fn default_is_paper_geometry() {
        assert_eq!(CacheGeometry::default(), CacheGeometry::xeon_l3_35mb());
    }
}
