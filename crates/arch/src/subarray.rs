//! Byte-accurate subarray storage (paper Fig. 1(c-e), Fig. 4).
//!
//! Where the rest of this crate prices accesses, this module *stores
//! bytes*: an 8 KB subarray as four partitions of 256 rows x 8 bytes,
//! with the first [`CacheGeometry::lut_rows_per_partition`] rows of each
//! partition reserved as the reduced-access-cost LUT region and one row
//! of partition 0 as the configuration block. Reads and writes are
//! counted separately for data rows and LUT rows so the energy model can
//! price a storage-backed execution exactly.
//!
//! [`CacheGeometry::lut_rows_per_partition`]: crate::geometry::CacheGeometry::lut_rows_per_partition

use std::cell::Cell;

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::geometry::CacheGeometry;

/// One subarray's worth of actual storage.
///
/// ```
/// use pim_arch::{CacheGeometry, subarray::SubarrayStorage};
/// let geom = CacheGeometry::xeon_l3_35mb();
/// let mut sa = SubarrayStorage::new(&geom);
/// sa.write_row(0, 5, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
/// assert_eq!(sa.read_row(0, 5).unwrap(), [1, 2, 3, 4, 5, 6, 7, 8]);
/// assert_eq!(sa.data_reads(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubarrayStorage {
    partitions: usize,
    rows_per_partition: usize,
    row_bytes: usize,
    lut_rows_per_partition: usize,
    data: Vec<u8>,
    data_reads: Cell<u64>,
    data_writes: Cell<u64>,
    lut_reads: Cell<u64>,
    lut_writes: Cell<u64>,
}

impl SubarrayStorage {
    /// Allocates a zeroed subarray matching a geometry.
    pub fn new(geom: &CacheGeometry) -> Self {
        let partitions = geom.partitions_per_subarray();
        let rows = geom.rows_per_partition();
        let row_bytes = geom.row_bytes().get() as usize;
        SubarrayStorage {
            partitions,
            rows_per_partition: rows,
            row_bytes,
            lut_rows_per_partition: geom.lut_rows_per_partition(),
            data: vec![0u8; partitions * rows * row_bytes],
            data_reads: Cell::new(0),
            data_writes: Cell::new(0),
            lut_reads: Cell::new(0),
            lut_writes: Cell::new(0),
        }
    }

    /// Bytes per row.
    pub fn row_bytes(&self) -> usize {
        self.row_bytes
    }

    /// Data rows available per partition (rows minus the LUT region; the
    /// CB row is additionally reserved in partition 0 by convention).
    pub fn data_rows_per_partition(&self) -> usize {
        self.rows_per_partition - self.lut_rows_per_partition
    }

    /// Usable weight bytes in the whole subarray (LUT region and CB row
    /// excluded).
    pub fn usable_bytes(&self) -> usize {
        (self.partitions * self.data_rows_per_partition() - 1) * self.row_bytes
    }

    fn offset(&self, partition: usize, row: usize) -> Result<usize, ArchError> {
        if partition >= self.partitions {
            return Err(ArchError::InvalidCoordinate {
                field: "partition",
                value: partition,
                bound: self.partitions,
            });
        }
        if row >= self.rows_per_partition {
            return Err(ArchError::InvalidCoordinate {
                field: "row",
                value: row,
                bound: self.rows_per_partition,
            });
        }
        Ok((partition * self.rows_per_partition + row) * self.row_bytes)
    }

    /// Whether a row lies in the LUT region (the first rows of each
    /// partition have the decoupled bitlines, Fig. 4(b)).
    pub fn is_lut_row(&self, row: usize) -> bool {
        row < self.lut_rows_per_partition
    }

    /// Reads a full data row.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidCoordinate`] when the coordinate is
    /// out of range or addresses the LUT region (use
    /// [`SubarrayStorage::read_lut_row`]).
    pub fn read_row(&self, partition: usize, row: usize) -> Result<Vec<u8>, ArchError> {
        if self.is_lut_row(row) {
            return Err(ArchError::InvalidCoordinate {
                field: "row (lut region)",
                value: row,
                bound: self.lut_rows_per_partition,
            });
        }
        let off = self.offset(partition, row)?;
        self.data_reads.set(self.data_reads.get() + 1);
        Ok(self.data[off..off + self.row_bytes].to_vec())
    }

    /// Writes a full data row.
    ///
    /// # Errors
    ///
    /// As [`SubarrayStorage::read_row`], plus a length check.
    pub fn write_row(
        &mut self,
        partition: usize,
        row: usize,
        bytes: &[u8],
    ) -> Result<(), ArchError> {
        if self.is_lut_row(row) {
            return Err(ArchError::InvalidCoordinate {
                field: "row (lut region)",
                value: row,
                bound: self.lut_rows_per_partition,
            });
        }
        if bytes.len() != self.row_bytes {
            return Err(ArchError::InvalidParameter {
                parameter: "row bytes",
                reason: format!("expected {} bytes, got {}", self.row_bytes, bytes.len()),
            });
        }
        let off = self.offset(partition, row)?;
        self.data_writes.set(self.data_writes.get() + 1);
        self.data[off..off + self.row_bytes].copy_from_slice(bytes);
        Ok(())
    }

    /// Reads a LUT-region row (a decoupled-bitline access in PIM mode).
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidCoordinate`] when the row is outside
    /// the LUT region.
    pub fn read_lut_row(&self, partition: usize, row: usize) -> Result<Vec<u8>, ArchError> {
        if !self.is_lut_row(row) {
            return Err(ArchError::InvalidCoordinate {
                field: "lut row",
                value: row,
                bound: self.lut_rows_per_partition,
            });
        }
        let off = self.offset(partition, row)?;
        self.lut_reads.set(self.lut_reads.get() + 1);
        Ok(self.data[off..off + self.row_bytes].to_vec())
    }

    /// Writes a LUT-region row (configuration phase).
    ///
    /// # Errors
    ///
    /// As [`SubarrayStorage::read_lut_row`], plus a length check.
    pub fn write_lut_row(
        &mut self,
        partition: usize,
        row: usize,
        bytes: &[u8],
    ) -> Result<(), ArchError> {
        if !self.is_lut_row(row) {
            return Err(ArchError::InvalidCoordinate {
                field: "lut row",
                value: row,
                bound: self.lut_rows_per_partition,
            });
        }
        if bytes.len() != self.row_bytes {
            return Err(ArchError::InvalidParameter {
                parameter: "row bytes",
                reason: format!("expected {} bytes, got {}", self.row_bytes, bytes.len()),
            });
        }
        let off = self.offset(partition, row)?;
        self.lut_writes.set(self.lut_writes.get() + 1);
        self.data[off..off + self.row_bytes].copy_from_slice(bytes);
        Ok(())
    }

    /// Loads an image (e.g. the 49-entry multiply table) into the LUT
    /// region, spreading across partitions row by row.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when the image exceeds
    /// the LUT region capacity.
    pub fn load_lut_image(&mut self, image: &[u8]) -> Result<(), ArchError> {
        let capacity = self.partitions * self.lut_rows_per_partition * self.row_bytes;
        if image.len() > capacity {
            return Err(ArchError::InvalidParameter {
                parameter: "lut image",
                reason: format!(
                    "{} bytes exceed the {capacity}-byte LUT region",
                    image.len()
                ),
            });
        }
        for (i, chunk) in image.chunks(self.row_bytes).enumerate() {
            let partition = i / self.lut_rows_per_partition;
            let row = i % self.lut_rows_per_partition;
            let mut padded = vec![0u8; self.row_bytes];
            padded[..chunk.len()].copy_from_slice(chunk);
            self.write_lut_row(partition, row, &padded)?;
        }
        Ok(())
    }

    /// Reads the LUT region back as a flat byte image.
    pub fn dump_lut_image(&self, bytes: usize) -> Result<Vec<u8>, ArchError> {
        let mut out = Vec::with_capacity(bytes);
        let mut i = 0;
        while out.len() < bytes {
            let partition = i / self.lut_rows_per_partition;
            let row = i % self.lut_rows_per_partition;
            let data = self.read_lut_row(partition, row)?;
            let take = (bytes - out.len()).min(self.row_bytes);
            out.extend_from_slice(&data[..take]);
            i += 1;
        }
        Ok(out)
    }

    /// Data-row reads performed.
    pub fn data_reads(&self) -> u64 {
        self.data_reads.get()
    }

    /// Data-row writes performed.
    pub fn data_writes(&self) -> u64 {
        self.data_writes.get()
    }

    /// LUT-row reads performed (the cheap decoupled-bitline accesses).
    pub fn lut_row_reads(&self) -> u64 {
        self.lut_reads.get()
    }

    /// LUT-row writes performed.
    pub fn lut_row_writes(&self) -> u64 {
        self.lut_writes.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn storage() -> SubarrayStorage {
        SubarrayStorage::new(&CacheGeometry::xeon_l3_35mb())
    }

    #[test]
    fn geometry_derived_capacity() {
        let sa = storage();
        assert_eq!(sa.row_bytes(), 8);
        assert_eq!(sa.data_rows_per_partition(), 254);
        // 4 partitions x 254 rows - 1 CB row = 1015 rows of 8 bytes.
        assert_eq!(sa.usable_bytes(), 1015 * 8);
    }

    #[test]
    fn data_rows_round_trip_and_count() {
        let mut sa = storage();
        sa.write_row(3, 200, &[9; 8]).unwrap();
        assert_eq!(sa.read_row(3, 200).unwrap(), vec![9; 8]);
        assert_eq!(sa.data_writes(), 1);
        assert_eq!(sa.data_reads(), 1);
        assert_eq!(sa.lut_row_reads(), 0);
    }

    #[test]
    fn lut_region_is_protected_from_data_access() {
        let mut sa = storage();
        assert!(sa.read_row(0, 0).is_err());
        assert!(sa.write_row(0, 1, &[0; 8]).is_err());
        assert!(sa.read_lut_row(0, 2).is_err()); // past the LUT region
    }

    #[test]
    fn out_of_range_coordinates_rejected() {
        let mut sa = storage();
        assert!(sa.write_row(4, 10, &[0; 8]).is_err());
        assert!(sa.write_row(0, 256, &[0; 8]).is_err());
        assert!(sa.write_row(0, 10, &[0; 4]).is_err());
    }

    #[test]
    fn lut_image_round_trip() {
        let mut sa = storage();
        let image: Vec<u8> = (0..49u8).map(|i| i.wrapping_mul(37)).collect();
        sa.load_lut_image(&image).unwrap();
        let dumped = sa.dump_lut_image(49).unwrap();
        assert_eq!(dumped, image);
        // 49 bytes = 7 row writes.
        assert_eq!(sa.lut_row_writes(), 7);
    }

    #[test]
    fn oversized_lut_image_rejected() {
        let mut sa = storage();
        // LUT region: 4 partitions x 2 rows x 8 bytes = 64 bytes.
        assert!(sa.load_lut_image(&[0u8; 65]).is_err());
        assert!(sa.load_lut_image(&[0u8; 64]).is_ok());
    }

    #[test]
    fn independent_partitions() {
        let mut sa = storage();
        sa.write_row(0, 10, &[1; 8]).unwrap();
        sa.write_row(1, 10, &[2; 8]).unwrap();
        assert_eq!(sa.read_row(0, 10).unwrap(), vec![1; 8]);
        assert_eq!(sa.read_row(1, 10).unwrap(), vec![2; 8]);
    }
}
