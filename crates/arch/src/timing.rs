//! Access timing model.
//!
//! The paper's Fig. 2 shows that for a full slice data access the
//! interconnect between the subarray and the slice port contributes more
//! than 90% of latency, while the subarray access itself (dominated by the
//! bitlines) is only about 6%. BFree's whole premise is to keep PIM
//! operations inside the subarray at the subarray clock (1.5 GHz, §V-C)
//! and avoid that interconnect.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::units::{Cycles, Latency};

/// Latency parameters for the cache and its PIM extensions.
///
/// ```
/// use pim_arch::TimingParams;
/// let t = TimingParams::default();
/// // Fig. 2: a slice access is dominated by the interconnect.
/// let b = t.slice_access_breakdown();
/// assert!(b.interconnect_fraction > 0.85);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimingParams {
    /// Subarray (and therefore BFree PIM) clock in GHz. Paper §V-C: "the
    /// maximum frequency for BFree is same as the subarray access latency
    /// (1.5 GHz)".
    pub subarray_clock_ghz: f64,
    /// Full slice access latency in ns, port to subarray and back.
    pub slice_access_ns: f64,
    /// Fraction of the slice access latency spent on the interconnect
    /// (Fig. 2: > 90%).
    pub interconnect_latency_fraction: f64,
    /// Fraction spent inside the subarray (Fig. 2: ~6%).
    pub subarray_latency_fraction: f64,
    /// Speedup of a decoupled-bitline LUT-row read over a regular row read
    /// (§III-B: "3x faster").
    pub fast_lut_speedup: f64,
    /// Clock derate applied to a subarray performing multi-row-activation
    /// bitline computing. §II-B: wordline under-driving to two-thirds of
    /// the supply voltage "directly impacts the computation speed"; a
    /// bitline-computing cache such as Neural Cache therefore clocks its
    /// compute below the plain access clock.
    pub bitline_compute_clock_derate: f64,
}

impl TimingParams {
    /// The paper's calibration (same as [`Default`]): the workspace-wide
    /// canonical name for "the configuration the paper evaluates".
    #[doc(alias = "default")]
    #[must_use]
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when a frequency or
    /// fraction is out of range.
    pub fn validate(&self) -> Result<(), ArchError> {
        let positive = |name: &'static str, v: f64| {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(ArchError::InvalidParameter {
                    parameter: name,
                    reason: format!("must be positive and finite, got {v}"),
                })
            }
        };
        positive("subarray_clock_ghz", self.subarray_clock_ghz)?;
        positive("slice_access_ns", self.slice_access_ns)?;
        positive("fast_lut_speedup", self.fast_lut_speedup)?;
        positive(
            "bitline_compute_clock_derate",
            self.bitline_compute_clock_derate,
        )?;
        for (name, v) in [
            (
                "interconnect_latency_fraction",
                self.interconnect_latency_fraction,
            ),
            ("subarray_latency_fraction", self.subarray_latency_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ArchError::InvalidParameter {
                    parameter: name,
                    reason: format!("must be within [0, 1], got {v}"),
                });
            }
        }
        if self.interconnect_latency_fraction + self.subarray_latency_fraction > 1.0 {
            return Err(ArchError::InvalidParameter {
                parameter: "latency fractions",
                reason: "interconnect + subarray fractions exceed 1".to_string(),
            });
        }
        if self.bitline_compute_clock_derate > 1.0 {
            return Err(ArchError::InvalidParameter {
                parameter: "bitline_compute_clock_derate",
                reason: "derate must be <= 1".to_string(),
            });
        }
        Ok(())
    }

    /// Duration of one subarray clock cycle.
    pub fn subarray_cycle_ns(&self) -> f64 {
        1.0 / self.subarray_clock_ghz
    }

    /// Latency of a single row access inside the subarray (one PIM cycle).
    pub fn subarray_access(&self) -> Latency {
        Latency::from_ns(self.subarray_cycle_ns())
    }

    /// Latency of a decoupled-bitline LUT-row read.
    pub fn fast_lut_access(&self) -> Latency {
        Latency::from_ns(self.subarray_cycle_ns() / self.fast_lut_speedup)
    }

    /// Latency of a full slice access (CPU-visible cache access).
    pub fn slice_access(&self) -> Latency {
        Latency::from_ns(self.slice_access_ns)
    }

    /// Converts PIM cycles to wall-clock time at the subarray clock.
    pub fn pim_time(&self, cycles: Cycles) -> Latency {
        cycles.at_ghz(self.subarray_clock_ghz)
    }

    /// Converts bitline-computing (multi-row-activation) cycles to
    /// wall-clock time at the derated compute clock.
    pub fn bitline_compute_time(&self, cycles: Cycles) -> Latency {
        cycles.at_ghz(self.subarray_clock_ghz * self.bitline_compute_clock_derate)
    }

    /// The Fig. 2 latency breakdown of a full slice access.
    pub fn slice_access_breakdown(&self) -> AccessBreakdown {
        AccessBreakdown {
            total: self.slice_access(),
            interconnect_fraction: self.interconnect_latency_fraction,
            subarray_fraction: self.subarray_latency_fraction,
            peripheral_fraction: 1.0
                - self.interconnect_latency_fraction
                - self.subarray_latency_fraction,
        }
    }
}

impl Default for TimingParams {
    /// Paper values: 1.5 GHz subarray clock; a slice access sized so that
    /// the one-cycle subarray access is 6% of it (Fig. 2), interconnect
    /// 90%; decoupled LUT rows 3x faster (§III-B); bitline compute clock
    /// derated to 0.8 of the access clock (§II-B wordline under-driving,
    /// calibration note in DESIGN.md §4).
    fn default() -> Self {
        let subarray_clock_ghz = 1.5;
        let subarray_fraction = 0.06;
        TimingParams {
            subarray_clock_ghz,
            // One subarray cycle (0.667 ns) is 6% of the slice access.
            slice_access_ns: (1.0 / subarray_clock_ghz) / subarray_fraction,
            interconnect_latency_fraction: 0.90,
            subarray_latency_fraction: subarray_fraction,
            fast_lut_speedup: 3.0,
            bitline_compute_clock_derate: 0.8,
        }
    }
}

/// A latency or energy decomposition of one slice access (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessBreakdown {
    /// Total cost of the access.
    pub total: Latency,
    /// Fraction attributable to the interconnect.
    pub interconnect_fraction: f64,
    /// Fraction attributable to the subarray (bitlines).
    pub subarray_fraction: f64,
    /// Remaining peripheral fraction (decoders, muxes, port logic).
    pub peripheral_fraction: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        TimingParams::default().validate().unwrap();
    }

    #[test]
    fn subarray_cycle_at_1_5ghz() {
        let t = TimingParams::default();
        assert!((t.subarray_cycle_ns() - 0.6667).abs() < 1e-3);
        assert!((t.subarray_access().nanoseconds() - 0.6667).abs() < 1e-3);
    }

    #[test]
    fn fig2_subarray_is_6_percent_of_slice_access() {
        let t = TimingParams::default();
        let frac = t.subarray_access().nanoseconds() / t.slice_access().nanoseconds();
        assert!((frac - 0.06).abs() < 1e-9);
    }

    #[test]
    fn fast_lut_is_3x_faster_than_row_access() {
        let t = TimingParams::default();
        let ratio = t.subarray_access().ratio(t.fast_lut_access());
        assert!((ratio - 3.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let b = TimingParams::default().slice_access_breakdown();
        let sum = b.interconnect_fraction + b.subarray_fraction + b.peripheral_fraction;
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(b.interconnect_fraction >= 0.9);
    }

    #[test]
    fn bitline_compute_slower_than_pim() {
        let t = TimingParams::default();
        let c = Cycles::new(1000);
        assert!(t.bitline_compute_time(c) > t.pim_time(c));
    }

    #[test]
    fn invalid_fraction_rejected() {
        let mut t = TimingParams {
            interconnect_latency_fraction: 0.99,
            subarray_latency_fraction: 0.2,
            ..TimingParams::default()
        };
        assert!(t.validate().is_err());
        t.interconnect_latency_fraction = -0.1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn invalid_clock_rejected() {
        let t = TimingParams {
            subarray_clock_ghz: 0.0,
            ..TimingParams::default()
        };
        assert!(t.validate().is_err());
        let t = TimingParams {
            bitline_compute_clock_derate: 1.5,
            ..TimingParams::default()
        };
        assert!(t.validate().is_err());
    }
}
