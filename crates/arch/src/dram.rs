//! Main-memory technology models (paper Fig. 14).
//!
//! The paper identifies main-memory bandwidth as BFree's bottleneck and
//! sweeps three technologies: DDR4 DRAM at 20 GB/s, eDRAM at 64 GB/s and
//! HBM at 100 GB/s. Each technology is modelled as a bandwidth plus a
//! per-bit transfer energy (the dominant term for weight loading, which
//! §V-D attributes ~80% of BFree's total energy to).

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::units::{Bytes, Energy, Latency};

/// The memory technologies evaluated in Fig. 14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum MemoryTechKind {
    /// Conventional DDR4 DRAM, 20 GB/s.
    #[default]
    Dram,
    /// Embedded DRAM, 64 GB/s (paper cites a 22 nm 128 GB/s-class eDRAM).
    Edram,
    /// High-bandwidth memory, 100 GB/s.
    Hbm,
}

impl MemoryTechKind {
    /// All technologies, in Fig. 14 order.
    pub const ALL: [MemoryTechKind; 3] = [
        MemoryTechKind::Dram,
        MemoryTechKind::Edram,
        MemoryTechKind::Hbm,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            MemoryTechKind::Dram => "DRAM",
            MemoryTechKind::Edram => "eDRAM",
            MemoryTechKind::Hbm => "HBM",
        }
    }
}

/// A main-memory model: a sustained bandwidth and a per-bit energy.
///
/// ```
/// use pim_arch::{Bytes, MemoryTech};
/// let dram = MemoryTech::dram();
/// let t = dram.transfer_time(Bytes::from_mib(20));
/// // 20 MiB at 20 GB/s is about one millisecond.
/// assert!((t.milliseconds() - 1.048).abs() < 0.01);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemoryTech {
    /// Which technology this is.
    pub kind: MemoryTechKind,
    /// Sustained bandwidth in GB/s (decimal gigabytes).
    pub bandwidth_gbps: f64,
    /// Transfer energy per bit in pJ (device + I/O + controller).
    pub pj_per_bit: f64,
}

impl MemoryTech {
    /// The paper's baseline memory (same as [`dram`](MemoryTech::dram)):
    /// the workspace-wide canonical name for "the configuration the
    /// paper evaluates".
    #[doc(alias = "dram")]
    #[must_use]
    pub fn paper_default() -> Self {
        Self::dram()
    }

    /// DDR4-class DRAM: 20 GB/s (Fig. 14), 180 pJ/bit system energy
    /// (calibration note: chosen so DRAM weight loading is ~80% of BFree's
    /// Inception-v3 energy, §V-D; see DESIGN.md §4).
    pub fn dram() -> Self {
        MemoryTech {
            kind: MemoryTechKind::Dram,
            bandwidth_gbps: 20.0,
            pj_per_bit: 180.0,
        }
    }

    /// eDRAM: 64 GB/s (Fig. 14), on-package so roughly 3x cheaper per bit.
    pub fn edram() -> Self {
        MemoryTech {
            kind: MemoryTechKind::Edram,
            bandwidth_gbps: 64.0,
            pj_per_bit: 50.0,
        }
    }

    /// HBM: 100 GB/s (Fig. 14), ~4 pJ/bit-class I/O grossed up for device
    /// energy.
    pub fn hbm() -> Self {
        MemoryTech {
            kind: MemoryTechKind::Hbm,
            bandwidth_gbps: 100.0,
            pj_per_bit: 35.0,
        }
    }

    /// Builds the model for a [`MemoryTechKind`].
    pub fn from_kind(kind: MemoryTechKind) -> Self {
        match kind {
            MemoryTechKind::Dram => MemoryTech::dram(),
            MemoryTechKind::Edram => MemoryTech::edram(),
            MemoryTechKind::Hbm => MemoryTech::hbm(),
        }
    }

    /// Validates bandwidth and energy are positive.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] otherwise.
    pub fn validate(&self) -> Result<(), ArchError> {
        for (name, v) in [
            ("bandwidth_gbps", self.bandwidth_gbps),
            ("pj_per_bit", self.pj_per_bit),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(ArchError::InvalidParameter {
                    parameter: name,
                    reason: format!("must be positive and finite, got {v}"),
                });
            }
        }
        Ok(())
    }

    /// Time to transfer `bytes` at the sustained bandwidth.
    pub fn transfer_time(&self, bytes: Bytes) -> Latency {
        Latency::from_ns(bytes.get() as f64 / self.bandwidth_gbps)
    }

    /// Energy to transfer `bytes`.
    pub fn transfer_energy(&self, bytes: Bytes) -> Energy {
        Energy::from_pj(bytes.bits() as f64 * self.pj_per_bit)
    }
}

impl Default for MemoryTech {
    fn default() -> Self {
        MemoryTech::dram()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_bandwidths() {
        assert_eq!(MemoryTech::dram().bandwidth_gbps, 20.0);
        assert_eq!(MemoryTech::edram().bandwidth_gbps, 64.0);
        assert_eq!(MemoryTech::hbm().bandwidth_gbps, 100.0);
    }

    #[test]
    fn transfer_time_is_bytes_over_bandwidth() {
        let dram = MemoryTech::dram();
        // 20 GB/s = 20 bytes per ns.
        let t = dram.transfer_time(Bytes::new(20_000));
        assert!((t.nanoseconds() - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn hbm_is_5x_faster_than_dram() {
        let bytes = Bytes::from_mib(100);
        let ratio = MemoryTech::dram()
            .transfer_time(bytes)
            .ratio(MemoryTech::hbm().transfer_time(bytes));
        assert!((ratio - 5.0).abs() < 1e-9);
    }

    #[test]
    fn energy_ordering_dram_worst() {
        let bytes = Bytes::from_mib(1);
        let d = MemoryTech::dram().transfer_energy(bytes);
        let e = MemoryTech::edram().transfer_energy(bytes);
        let h = MemoryTech::hbm().transfer_energy(bytes);
        assert!(d > e && e > h);
    }

    #[test]
    fn from_kind_round_trips() {
        for kind in MemoryTechKind::ALL {
            assert_eq!(MemoryTech::from_kind(kind).kind, kind);
        }
    }

    #[test]
    fn invalid_bandwidth_rejected() {
        let m = MemoryTech {
            bandwidth_gbps: 0.0,
            ..MemoryTech::dram()
        };
        assert!(m.validate().is_err());
    }

    #[test]
    fn default_is_dram() {
        assert_eq!(MemoryTech::default().kind, MemoryTechKind::Dram);
    }
}
