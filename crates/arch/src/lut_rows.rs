//! The three LUT-row integration strategies (paper §III-B, Fig. 4).
//!
//! 1. **Standalone** — a separate LUT macro with its own peripherals.
//!    Fast, but "significantly impacts the sub-array area and performance".
//! 2. **Shared bitline** — dedicate two ordinary rows of each partition.
//!    Zero area cost, but every LUT read pays the full parasitic bitline:
//!    same 8.6 pJ / 1-cycle cost as any row access.
//! 3. **Decoupled bitline** — the BFree choice: a local precharge circuit
//!    segregates the bitline to just the LUT rows in PIM mode, making the
//!    lookup 3x faster and 231x more energy efficient for a 0.5% subarray
//!    area overhead.

use serde::{Deserialize, Serialize};

use crate::energy::EnergyParams;
use crate::timing::TimingParams;
use crate::units::{Energy, Latency};

/// The LUT-row design point used by a BFree configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum LutRowDesign {
    /// Standalone LUT macro with dedicated peripherals (Fig. 4 approach 1).
    Standalone,
    /// LUT entries in ordinary rows sharing the partition bitline
    /// (Fig. 4 approach 2).
    SharedBitline,
    /// Decoupled bitline with a local precharge circuit
    /// (Fig. 4 approach 3, the BFree design).
    #[default]
    DecoupledBitline,
}

impl LutRowDesign {
    /// All design points, in the paper's presentation order.
    pub const ALL: [LutRowDesign; 3] = [
        LutRowDesign::Standalone,
        LutRowDesign::SharedBitline,
        LutRowDesign::DecoupledBitline,
    ];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            LutRowDesign::Standalone => "standalone LUT",
            LutRowDesign::SharedBitline => "shared bitline",
            LutRowDesign::DecoupledBitline => "decoupled bitline",
        }
    }

    /// Latency, energy and area profile of one LUT read under this design.
    pub fn profile(self, timing: &TimingParams, energy: &EnergyParams) -> LutRowProfile {
        match self {
            // A standalone macro reads as fast as the decoupled design (it
            // is a small dedicated array) and its short bitlines cost a few
            // pJ, but it duplicates decoder/sense-amp/precharge peripherals
            // for 256 bytes of storage: a large relative area hit.
            LutRowDesign::Standalone => LutRowProfile {
                design: self,
                read_latency: timing.fast_lut_access(),
                read_energy: Energy::from_pj(energy.subarray_row_access_pj / 4.0),
                subarray_area_overhead: 0.08,
            },
            LutRowDesign::SharedBitline => LutRowProfile {
                design: self,
                read_latency: timing.subarray_access(),
                read_energy: energy.subarray_row_access(),
                subarray_area_overhead: 0.0,
            },
            LutRowDesign::DecoupledBitline => LutRowProfile {
                design: self,
                read_latency: timing.fast_lut_access(),
                read_energy: energy.fast_lut_access(),
                // §III-B: "increases the sub-array area by a meager 0.5%".
                subarray_area_overhead: 0.005,
            },
        }
    }
}

/// Cost profile of one LUT read for a [`LutRowDesign`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LutRowProfile {
    /// The design this profile describes.
    pub design: LutRowDesign,
    /// Latency of one LUT-row read.
    pub read_latency: Latency,
    /// Energy of one LUT-row read.
    pub read_energy: Energy,
    /// Fractional area added to each subarray.
    pub subarray_area_overhead: f64,
}

impl LutRowProfile {
    /// Speedup of this design's LUT read relative to `other`.
    pub fn speedup_over(&self, other: &LutRowProfile) -> f64 {
        other.read_latency.ratio(self.read_latency)
    }

    /// Energy-efficiency gain of this design's LUT read relative to
    /// `other`.
    pub fn energy_gain_over(&self, other: &LutRowProfile) -> f64 {
        other.read_energy.ratio(self.read_energy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn profiles() -> (LutRowProfile, LutRowProfile, LutRowProfile) {
        let t = TimingParams::default();
        let e = EnergyParams::default();
        (
            LutRowDesign::Standalone.profile(&t, &e),
            LutRowDesign::SharedBitline.profile(&t, &e),
            LutRowDesign::DecoupledBitline.profile(&t, &e),
        )
    }

    #[test]
    fn decoupled_is_3x_faster_than_shared() {
        let (_, shared, decoupled) = profiles();
        assert!((decoupled.speedup_over(&shared) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn decoupled_is_231x_more_efficient_than_shared() {
        let (_, shared, decoupled) = profiles();
        assert!((decoupled.energy_gain_over(&shared) - 231.0).abs() < 1e-6);
    }

    #[test]
    fn decoupled_area_overhead_is_half_percent() {
        let (_, _, decoupled) = profiles();
        assert!((decoupled.subarray_area_overhead - 0.005).abs() < 1e-12);
    }

    #[test]
    fn standalone_has_largest_area_overhead() {
        let (standalone, shared, decoupled) = profiles();
        assert!(standalone.subarray_area_overhead > decoupled.subarray_area_overhead);
        assert!(standalone.subarray_area_overhead > shared.subarray_area_overhead);
    }

    #[test]
    fn shared_bitline_costs_a_full_row_access() {
        let (_, shared, _) = profiles();
        let e = EnergyParams::default();
        assert_eq!(shared.read_energy, e.subarray_row_access());
    }

    #[test]
    fn default_design_is_decoupled() {
        assert_eq!(LutRowDesign::default(), LutRowDesign::DecoupledBitline);
    }

    #[test]
    fn all_designs_enumerated() {
        assert_eq!(LutRowDesign::ALL.len(), 3);
        for d in LutRowDesign::ALL {
            assert!(!d.name().is_empty());
        }
    }
}
