//! Access energy model.
//!
//! Constants come from the paper's §V: a subarray row access costs 8.6 pJ
//! and a multi-row-activation bitline compute operation 15.4 pJ (§V-D,
//! quoted for Neural Cache on the same arrays); the BCE's hardwired
//! multiply-LUT MAC costs about 0.5 pJ; the decoupled-bitline LUT rows are
//! 231x more energy efficient than a regular row access (§III-B); and the
//! interconnect dominates (>90%) the energy of a full slice access
//! (Fig. 2).

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::timing::AccessBreakdown;
use crate::units::{Energy, Latency};

/// Energy parameters for the cache and its PIM extensions.
///
/// ```
/// use pim_arch::EnergyParams;
/// let e = EnergyParams::default();
/// // §III-B: decoupled LUT rows are 231x more efficient than a row access.
/// let ratio = e.subarray_row_access().ratio(e.fast_lut_access());
/// assert!((ratio - 231.0).abs() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// One 64-bit subarray row read or write, in pJ (§V-D: 8.6 pJ).
    pub subarray_row_access_pj: f64,
    /// One multi-row-activation bitline compute operation, in pJ
    /// (§V-D: 15.4 pJ).
    pub bitline_compute_op_pj: f64,
    /// Energy-efficiency factor of a decoupled-bitline LUT-row read versus
    /// a regular row access (§III-B: 231x).
    pub fast_lut_efficiency: f64,
    /// One MAC through the BCE's hardwired multiply ROM, in pJ
    /// (§V-D: ~0.5 pJ).
    pub bce_rom_mac_pj: f64,
    /// Fraction of a full slice access energy spent on the interconnect
    /// (Fig. 2: > 90%).
    pub interconnect_energy_fraction: f64,
    /// Fraction of a full slice access energy spent in the subarray
    /// (Fig. 2: ~9%).
    pub subarray_energy_fraction: f64,
    /// Energy to move one byte across one router hop between adjacent
    /// subarrays during systolic flow, in pJ. Short, local wires; far
    /// cheaper than the slice H-tree.
    pub router_hop_pj_per_byte: f64,
    /// Static power of the cache-level controller, in mW (§V-B: 0.8 mW).
    pub cache_controller_mw: f64,
    /// Static power of each slice controller, in mW (§V-B: 1.4 mW).
    pub slice_controller_mw: f64,
    /// BCE power in convolution mode, in mW (§V-B: 0.4 mW).
    pub bce_conv_mode_mw: f64,
    /// BCE power in matrix-multiply mode, in mW (§V-B: 1.3 mW).
    pub bce_matmul_mode_mw: f64,
}

impl EnergyParams {
    /// The paper's §V constants (same as [`Default`]): the
    /// workspace-wide canonical name for "the configuration the paper
    /// evaluates".
    #[doc(alias = "default")]
    #[must_use]
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Validates that every constant is positive and fractions are sane.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] otherwise.
    pub fn validate(&self) -> Result<(), ArchError> {
        let fields = [
            ("subarray_row_access_pj", self.subarray_row_access_pj),
            ("bitline_compute_op_pj", self.bitline_compute_op_pj),
            ("fast_lut_efficiency", self.fast_lut_efficiency),
            ("bce_rom_mac_pj", self.bce_rom_mac_pj),
            ("router_hop_pj_per_byte", self.router_hop_pj_per_byte),
            ("cache_controller_mw", self.cache_controller_mw),
            ("slice_controller_mw", self.slice_controller_mw),
            ("bce_conv_mode_mw", self.bce_conv_mode_mw),
            ("bce_matmul_mode_mw", self.bce_matmul_mode_mw),
        ];
        for (name, v) in fields {
            if !(v > 0.0 && v.is_finite()) {
                return Err(ArchError::InvalidParameter {
                    parameter: name,
                    reason: format!("must be positive and finite, got {v}"),
                });
            }
        }
        for (name, v) in [
            (
                "interconnect_energy_fraction",
                self.interconnect_energy_fraction,
            ),
            ("subarray_energy_fraction", self.subarray_energy_fraction),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ArchError::InvalidParameter {
                    parameter: name,
                    reason: format!("must be within [0, 1], got {v}"),
                });
            }
        }
        if self.interconnect_energy_fraction + self.subarray_energy_fraction > 1.0 {
            return Err(ArchError::InvalidParameter {
                parameter: "energy fractions",
                reason: "interconnect + subarray fractions exceed 1".to_string(),
            });
        }
        Ok(())
    }

    /// Energy of one 64-bit subarray row access.
    pub fn subarray_row_access(&self) -> Energy {
        Energy::from_pj(self.subarray_row_access_pj)
    }

    /// Energy of one multi-row-activation bitline compute operation.
    pub fn bitline_compute_op(&self) -> Energy {
        Energy::from_pj(self.bitline_compute_op_pj)
    }

    /// Energy of one decoupled-bitline LUT-row read.
    pub fn fast_lut_access(&self) -> Energy {
        Energy::from_pj(self.subarray_row_access_pj / self.fast_lut_efficiency)
    }

    /// Energy of one MAC through the BCE's hardwired multiply ROM.
    pub fn bce_rom_mac(&self) -> Energy {
        Energy::from_pj(self.bce_rom_mac_pj)
    }

    /// Energy of a full slice access (subarray access grossed up by the
    /// Fig. 2 subarray fraction).
    pub fn slice_access(&self) -> Energy {
        Energy::from_pj(self.subarray_row_access_pj / self.subarray_energy_fraction)
    }

    /// Energy to move `bytes` across `hops` router hops.
    pub fn router_transfer(&self, bytes: u64, hops: u64) -> Energy {
        Energy::from_pj(self.router_hop_pj_per_byte * bytes as f64 * hops as f64)
    }

    /// Static controller energy over a runtime window for a cache with
    /// `slices` slices.
    pub fn controller_static(&self, runtime: Latency, slices: usize) -> Energy {
        let mw = self.cache_controller_mw + self.slice_controller_mw * slices as f64;
        // mW * ns = pJ.
        Energy::from_pj(mw * runtime.nanoseconds())
    }

    /// BCE static+dynamic energy over a runtime window at the given mode
    /// power, for `bces` engines.
    pub fn bce_power_energy(&self, mode_mw: f64, runtime: Latency, bces: usize) -> Energy {
        Energy::from_pj(mode_mw * runtime.nanoseconds() * bces as f64)
    }

    /// The Fig. 2 energy breakdown of a full slice access.
    pub fn slice_access_breakdown(&self) -> AccessBreakdown {
        AccessBreakdown {
            total: Latency::ZERO, // latency not applicable; fractions only
            interconnect_fraction: self.interconnect_energy_fraction,
            subarray_fraction: self.subarray_energy_fraction,
            peripheral_fraction: 1.0
                - self.interconnect_energy_fraction
                - self.subarray_energy_fraction,
        }
    }
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            subarray_row_access_pj: 8.6,
            bitline_compute_op_pj: 15.4,
            fast_lut_efficiency: 231.0,
            bce_rom_mac_pj: 0.5,
            interconnect_energy_fraction: 0.90,
            subarray_energy_fraction: 0.09,
            router_hop_pj_per_byte: 0.12,
            cache_controller_mw: 0.8,
            slice_controller_mw: 1.4,
            bce_conv_mode_mw: 0.4,
            bce_matmul_mode_mw: 1.3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        EnergyParams::default().validate().unwrap();
    }

    #[test]
    fn paper_constants_present() {
        let e = EnergyParams::default();
        assert!((e.subarray_row_access().picojoules() - 8.6).abs() < 1e-12);
        assert!((e.bitline_compute_op().picojoules() - 15.4).abs() < 1e-12);
        assert!((e.bce_rom_mac().picojoules() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fast_lut_231x_more_efficient() {
        let e = EnergyParams::default();
        let ratio = e.subarray_row_access().ratio(e.fast_lut_access());
        assert!((ratio - 231.0).abs() < 1e-9);
    }

    #[test]
    fn slice_access_dominated_by_interconnect() {
        let e = EnergyParams::default();
        // Subarray access should be ~9% of the slice access energy.
        let frac = e.subarray_row_access().ratio(e.slice_access());
        assert!((frac - 0.09).abs() < 1e-9);
        let b = e.slice_access_breakdown();
        assert!(b.interconnect_fraction >= 0.9);
        assert!(
            (b.interconnect_fraction + b.subarray_fraction + b.peripheral_fraction - 1.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn controller_static_energy_scales_with_time_and_slices() {
        let e = EnergyParams::default();
        let one_ms = Latency::from_ms(1.0);
        let cost14 = e.controller_static(one_ms, 14);
        let cost1 = e.controller_static(one_ms, 1);
        assert!(cost14 > cost1);
        // 0.8 mW + 14 * 1.4 mW = 20.4 mW for 1 ms = 20.4 uJ.
        assert!((cost14.millijoules() - 0.0204).abs() < 1e-6);
    }

    #[test]
    fn bce_power_energy_matmul_exceeds_conv() {
        let e = EnergyParams::default();
        let t = Latency::from_us(10.0);
        let conv = e.bce_power_energy(e.bce_conv_mode_mw, t, 320);
        let mm = e.bce_power_energy(e.bce_matmul_mode_mw, t, 320);
        assert!(mm > conv);
        assert!((mm.ratio(conv) - 1.3 / 0.4).abs() < 1e-9);
    }

    #[test]
    fn router_transfer_linear_in_bytes_and_hops() {
        let e = EnergyParams::default();
        let a = e.router_transfer(8, 1);
        let b = e.router_transfer(8, 4);
        let c = e.router_transfer(32, 1);
        assert!((b.ratio(a) - 4.0).abs() < 1e-12);
        assert!((c.ratio(a) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn negative_constant_rejected() {
        let e = EnergyParams {
            bce_rom_mac_pj: -1.0,
            ..EnergyParams::default()
        };
        assert!(e.validate().is_err());
    }

    #[test]
    fn fraction_over_one_rejected() {
        let e = EnergyParams {
            subarray_energy_fraction: 0.2,
            ..EnergyParams::default()
        };
        assert!(e.validate().is_err());
    }
}
