//! Strongly-typed physical quantities used throughout the simulator.
//!
//! All costs in the model are expressed with these newtypes so that a
//! latency can never be accidentally added to an energy, and so that every
//! number carries its unit through arithmetic ([`Energy`] is internally
//! picojoules, [`Latency`] nanoseconds, [`Bytes`] bytes, [`Cycles`] clock
//! cycles of a stated clock).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// An amount of energy, stored internally in picojoules.
///
/// ```
/// use pim_arch::Energy;
/// let e = Energy::from_pj(500.0) + Energy::from_nj(1.0);
/// assert!((e.picojoules() - 1500.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Energy(f64);

impl Energy {
    /// Zero energy.
    pub const ZERO: Energy = Energy(0.0);

    /// Creates an energy from picojoules.
    pub fn from_pj(pj: f64) -> Self {
        Energy(pj)
    }

    /// Creates an energy from nanojoules.
    pub fn from_nj(nj: f64) -> Self {
        Energy(nj * 1e3)
    }

    /// Creates an energy from microjoules.
    pub fn from_uj(uj: f64) -> Self {
        Energy(uj * 1e6)
    }

    /// Creates an energy from millijoules.
    pub fn from_mj(mj: f64) -> Self {
        Energy(mj * 1e9)
    }

    /// Creates an energy from joules.
    pub fn from_joules(j: f64) -> Self {
        Energy(j * 1e12)
    }

    /// Value in picojoules.
    pub fn picojoules(self) -> f64 {
        self.0
    }

    /// Value in nanojoules.
    pub fn nanojoules(self) -> f64 {
        self.0 * 1e-3
    }

    /// Value in millijoules.
    pub fn millijoules(self) -> f64 {
        self.0 * 1e-9
    }

    /// Value in joules.
    pub fn joules(self) -> f64 {
        self.0 * 1e-12
    }

    /// Ratio of `self` to `other`; `NaN` when `other` is zero.
    pub fn ratio(self, other: Energy) -> f64 {
        self.0 / other.0
    }
}

/// A span of time, stored internally in nanoseconds.
///
/// ```
/// use pim_arch::Latency;
/// let t = Latency::from_us(2.0);
/// assert!((t.milliseconds() - 0.002).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct Latency(f64);

impl Latency {
    /// Zero latency.
    pub const ZERO: Latency = Latency(0.0);

    /// Creates a latency from nanoseconds.
    pub fn from_ns(ns: f64) -> Self {
        Latency(ns)
    }

    /// Creates a latency from microseconds.
    pub fn from_us(us: f64) -> Self {
        Latency(us * 1e3)
    }

    /// Creates a latency from milliseconds.
    pub fn from_ms(ms: f64) -> Self {
        Latency(ms * 1e6)
    }

    /// Creates a latency from seconds.
    pub fn from_secs(s: f64) -> Self {
        Latency(s * 1e9)
    }

    /// Value in nanoseconds.
    pub fn nanoseconds(self) -> f64 {
        self.0
    }

    /// Value in microseconds.
    pub fn microseconds(self) -> f64 {
        self.0 * 1e-3
    }

    /// Value in milliseconds.
    pub fn milliseconds(self) -> f64 {
        self.0 * 1e-6
    }

    /// Value in seconds.
    pub fn seconds(self) -> f64 {
        self.0 * 1e-9
    }

    /// Ratio of `self` to `other`; `NaN` when `other` is zero.
    pub fn ratio(self, other: Latency) -> f64 {
        self.0 / other.0
    }

    /// The larger of two latencies (useful when phases overlap).
    pub fn max(self, other: Latency) -> Latency {
        Latency(self.0.max(other.0))
    }

    /// The smaller of two latencies.
    pub fn min(self, other: Latency) -> Latency {
        Latency(self.0.min(other.0))
    }
}

/// A number of clock cycles of some stated clock.
///
/// ```
/// use pim_arch::Cycles;
/// let c = Cycles::new(1_500_000);
/// // 1.5M cycles at 1.5 GHz is one millisecond.
/// assert!((c.at_ghz(1.5).milliseconds() - 1.0).abs() < 1e-9);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub fn new(count: u64) -> Self {
        Cycles(count)
    }

    /// The raw count.
    pub fn count(self) -> u64 {
        self.0
    }

    /// Converts to wall-clock latency at the given clock frequency.
    pub fn at_ghz(self, ghz: f64) -> Latency {
        Latency::from_ns(self.0 as f64 / ghz)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(other.0))
    }
}

/// A number of bytes.
///
/// ```
/// use pim_arch::Bytes;
/// assert_eq!(Bytes::from_mib(8).get(), 8 * 1024 * 1024);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(u64);

impl Bytes {
    /// Zero bytes.
    pub const ZERO: Bytes = Bytes(0);

    /// Creates a byte count.
    pub fn new(count: u64) -> Self {
        Bytes(count)
    }

    /// Creates a byte count from kibibytes.
    pub fn from_kib(kib: u64) -> Self {
        Bytes(kib * 1024)
    }

    /// Creates a byte count from mebibytes.
    pub fn from_mib(mib: u64) -> Self {
        Bytes(mib * 1024 * 1024)
    }

    /// The raw count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// The count in bits.
    pub fn bits(self) -> u64 {
        self.0 * 8
    }

    /// The count as mebibytes.
    pub fn mib(self) -> f64 {
        self.0 as f64 / (1024.0 * 1024.0)
    }
}

macro_rules! impl_f64_quantity_ops {
    ($ty:ident) => {
        impl Add for $ty {
            type Output = $ty;
            fn add(self, rhs: $ty) -> $ty {
                $ty(self.0 + rhs.0)
            }
        }
        impl AddAssign for $ty {
            fn add_assign(&mut self, rhs: $ty) {
                self.0 += rhs.0;
            }
        }
        impl Sub for $ty {
            type Output = $ty;
            fn sub(self, rhs: $ty) -> $ty {
                $ty(self.0 - rhs.0)
            }
        }
        impl Mul<f64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: f64) -> $ty {
                $ty(self.0 * rhs)
            }
        }
        impl Mul<u64> for $ty {
            type Output = $ty;
            fn mul(self, rhs: u64) -> $ty {
                $ty(self.0 * rhs as f64)
            }
        }
        impl Div<f64> for $ty {
            type Output = $ty;
            fn div(self, rhs: f64) -> $ty {
                $ty(self.0 / rhs)
            }
        }
        impl Sum for $ty {
            fn sum<I: Iterator<Item = $ty>>(iter: I) -> $ty {
                iter.fold($ty(0.0), |acc, x| acc + x)
            }
        }
    };
}

impl_f64_quantity_ops!(Energy);
impl_f64_quantity_ops!(Latency);

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles(0), |acc, x| acc + x)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes(0), |acc, x| acc + x)
    }
}

impl fmt::Display for Energy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let pj = self.0;
        if pj.abs() >= 1e12 {
            write!(f, "{:.3} J", pj * 1e-12)
        } else if pj.abs() >= 1e9 {
            write!(f, "{:.3} mJ", pj * 1e-9)
        } else if pj.abs() >= 1e6 {
            write!(f, "{:.3} uJ", pj * 1e-6)
        } else if pj.abs() >= 1e3 {
            write!(f, "{:.3} nJ", pj * 1e-3)
        } else {
            write!(f, "{:.3} pJ", pj)
        }
    }
}

impl fmt::Display for Latency {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns.abs() >= 1e9 {
            write!(f, "{:.3} s", ns * 1e-9)
        } else if ns.abs() >= 1e6 {
            write!(f, "{:.3} ms", ns * 1e-6)
        } else if ns.abs() >= 1e3 {
            write!(f, "{:.3} us", ns * 1e-3)
        } else {
            write!(f, "{:.3} ns", ns)
        }
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0 as f64;
        if b >= 1024.0 * 1024.0 * 1024.0 {
            write!(f, "{:.2} GiB", b / (1024.0 * 1024.0 * 1024.0))
        } else if b >= 1024.0 * 1024.0 {
            write!(f, "{:.2} MiB", b / (1024.0 * 1024.0))
        } else if b >= 1024.0 {
            write!(f, "{:.2} KiB", b / 1024.0)
        } else {
            write!(f, "{} B", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_unit_conversions_round_trip() {
        let e = Energy::from_mj(2.5);
        assert!((e.millijoules() - 2.5).abs() < 1e-12);
        assert!((e.joules() - 0.0025).abs() < 1e-15);
        assert!((e.nanojoules() - 2.5e6).abs() < 1e-6);
    }

    #[test]
    fn latency_unit_conversions_round_trip() {
        let t = Latency::from_ms(1.25);
        assert!((t.microseconds() - 1250.0).abs() < 1e-9);
        assert!((t.seconds() - 0.00125).abs() < 1e-15);
    }

    #[test]
    fn energy_arithmetic() {
        let a = Energy::from_pj(3.0);
        let b = Energy::from_pj(4.5);
        assert!(((a + b).picojoules() - 7.5).abs() < 1e-12);
        assert!(((b - a).picojoules() - 1.5).abs() < 1e-12);
        assert!(((a * 4.0).picojoules() - 12.0).abs() < 1e-12);
        assert!(((a * 4u64).picojoules() - 12.0).abs() < 1e-12);
        assert!(((b / 3.0).picojoules() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn energy_sum() {
        let total: Energy = (0..10).map(|_| Energy::from_pj(1.5)).sum();
        assert!((total.picojoules() - 15.0).abs() < 1e-12);
    }

    #[test]
    fn cycles_to_latency() {
        let c = Cycles::new(3_000);
        let t = c.at_ghz(1.5);
        assert!((t.microseconds() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(100);
        let b = Cycles::new(23);
        assert_eq!((a + b).count(), 123);
        assert_eq!((a * 3).count(), 300);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        let s: Cycles = vec![a, b].into_iter().sum();
        assert_eq!(s.count(), 123);
    }

    #[test]
    fn bytes_helpers() {
        assert_eq!(Bytes::from_kib(8).get(), 8192);
        assert_eq!(Bytes::from_mib(2).bits(), 2 * 1024 * 1024 * 8);
        assert!((Bytes::from_mib(35).mib() - 35.0).abs() < 1e-12);
        assert_eq!((Bytes::new(3) + Bytes::new(4)).get(), 7);
        assert_eq!((Bytes::new(3) * 4).get(), 12);
    }

    #[test]
    fn latency_max_min() {
        let a = Latency::from_ns(5.0);
        let b = Latency::from_ns(9.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_scales() {
        assert_eq!(format!("{}", Energy::from_pj(2.0)), "2.000 pJ");
        assert_eq!(format!("{}", Energy::from_mj(3.0)), "3.000 mJ");
        assert_eq!(format!("{}", Latency::from_ms(4.0)), "4.000 ms");
        assert_eq!(format!("{}", Bytes::from_mib(1)), "1.00 MiB");
    }

    #[test]
    fn ratios() {
        assert!((Energy::from_pj(10.0).ratio(Energy::from_pj(4.0)) - 2.5).abs() < 1e-12);
        assert!((Latency::from_ns(9.0).ratio(Latency::from_ns(3.0)) - 3.0).abs() < 1e-12);
    }
}
