//! # pim-arch
//!
//! Architectural substrate for the BFree LUT-based processing-in-cache
//! system (Ramanathan et al., MICRO 2020): the last-level-cache geometry,
//! access timing and energy models, the three LUT-row integration design
//! points, the area-overhead model, and the main-memory (DRAM / eDRAM /
//! HBM) bandwidth and energy models.
//!
//! Everything in this crate is an *event-level cost model*: callers count
//! architectural events (subarray row accesses, LUT reads, interconnect
//! traversals, DRAM bytes moved, BCE operations) and this crate prices them
//! in nanoseconds and picojoules using constants taken from the paper
//! (TSMC 16 nm design figures reported in its §V).
//!
//! ```
//! use pim_arch::{CacheGeometry, EnergyParams, TimingParams};
//!
//! let geom = CacheGeometry::xeon_l3_35mb();
//! assert_eq!(geom.total_subarrays(), 4480);
//!
//! let energy = EnergyParams::default();
//! let one_row = energy.subarray_row_access(); // 8.6 pJ per 64-bit row op
//! assert!(one_row.picojoules() > 8.0);
//!
//! let timing = TimingParams::default();
//! assert!((timing.subarray_cycle_ns() - 1.0 / 1.5).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod address;
pub mod area;
pub mod dram;
pub mod ecc;
pub mod energy;
pub mod error;
pub mod geometry;
pub mod health;
pub mod lut_rows;
pub mod obs;
pub mod ring;
pub mod stats;
pub mod subarray;
pub mod timing;
pub mod units;

pub use address::{CacheAddress, SubarrayId};
pub use area::AreaModel;
pub use dram::{MemoryTech, MemoryTechKind};
pub use ecc::{EccCostReport, EccModel, EccScheme};
pub use energy::EnergyParams;
pub use error::ArchError;
pub use geometry::CacheGeometry;
pub use health::{HealthMap, SliceState};
pub use lut_rows::{LutRowDesign, LutRowProfile};
pub use obs::{obs_component, phase_event_name, record_slice_access};
pub use ring::RingInterconnect;
pub use stats::{EnergyBreakdown, EnergyComponent, LatencyBreakdown, Phase};
pub use subarray::SubarrayStorage;
pub use timing::TimingParams;
pub use units::{Bytes, Cycles, Energy, Latency};
