//! Area-overhead model (paper §V-B).
//!
//! BFree adds four things to a conventional cache: the LUT precharge and
//! enable circuitry in each subarray partition (0.5% of the subarray), one
//! BCE per subarray at the edge of the subarray, the sub-bank routers, and
//! the cache/slice controllers (0.1% of the L3 together). The paper
//! reports a BCE overhead of 6% for a 2.5 MB slice and a total cache area
//! increase of 5.6%.
//!
//! We model slice area as: subarrays occupy [`AreaModel::subarray_area_fraction`]
//! of a conventional slice, the rest being the slice interconnect, port
//! and tag logic. Overheads are expressed against the conventional slice.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::geometry::CacheGeometry;
use crate::lut_rows::LutRowDesign;

/// Area model for the BFree additions.
///
/// ```
/// use pim_arch::{AreaModel, CacheGeometry};
/// let model = AreaModel::default();
/// let report = model.report(&CacheGeometry::xeon_l3_35mb());
/// // §V-B / abstract: total cache area increase ~5.6%.
/// assert!((report.total_overhead_fraction - 0.056).abs() < 0.004);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// Conventional slice area at 16 nm, mm^2 (CACTI-style estimate for a
    /// 2.5 MB slice).
    pub slice_area_mm2: f64,
    /// Fraction of the conventional slice occupied by the subarrays
    /// themselves.
    pub subarray_area_fraction: f64,
    /// Area of one BCE relative to the slice, aggregated over the slice's
    /// BCEs (§V-B: "the BCE area overhead is 6% for a cache slice of
    /// 2.5 MB" — quoted against the slice's compute-relevant area; against
    /// the full conventional slice the contribution is 5.0%).
    pub bce_slice_overhead: f64,
    /// Router area relative to the slice.
    pub router_slice_overhead: f64,
    /// Controller area relative to the whole cache (§V-B: 0.1%).
    pub controller_cache_overhead: f64,
    /// LUT-row design, which sets the per-subarray precharge overhead.
    pub lut_design: LutRowDesign,
    /// Relative area of an equivalently configurable specialized MAC unit
    /// versus the BCE (§V-B: BCE "occupies 3% lesser area").
    pub specialized_mac_relative_area: f64,
    /// Energy-efficiency edge of the BCE over the specialized MAC
    /// (§V-B: "offers 48% more energy efficiency").
    pub bce_vs_mac_energy_gain: f64,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            slice_area_mm2: 1.9,
            subarray_area_fraction: 0.85,
            bce_slice_overhead: 0.050,
            router_slice_overhead: 0.001,
            controller_cache_overhead: 0.001,
            lut_design: LutRowDesign::DecoupledBitline,
            specialized_mac_relative_area: 1.03,
            bce_vs_mac_energy_gain: 1.48,
        }
    }
}

impl AreaModel {
    /// The paper's §V-B area figures (same as [`Default`]): the
    /// workspace-wide canonical name for "the configuration the paper
    /// evaluates".
    #[doc(alias = "default")]
    #[must_use]
    pub fn paper_default() -> Self {
        Self::default()
    }

    /// Validates the model parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when a value is
    /// non-positive or a fraction is out of `[0, 1]`.
    pub fn validate(&self) -> Result<(), ArchError> {
        if self.slice_area_mm2.is_nan() || self.slice_area_mm2 <= 0.0 {
            return Err(ArchError::InvalidParameter {
                parameter: "slice_area_mm2",
                reason: "must be positive".to_string(),
            });
        }
        for (name, v) in [
            ("subarray_area_fraction", self.subarray_area_fraction),
            ("bce_slice_overhead", self.bce_slice_overhead),
            ("router_slice_overhead", self.router_slice_overhead),
            ("controller_cache_overhead", self.controller_cache_overhead),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ArchError::InvalidParameter {
                    parameter: name,
                    reason: format!("must be within [0, 1], got {v}"),
                });
            }
        }
        Ok(())
    }

    /// Computes the area report for a cache geometry.
    pub fn report(&self, geom: &CacheGeometry) -> AreaReport {
        let lut_subarray_overhead = match self.lut_design {
            LutRowDesign::Standalone => 0.08,
            LutRowDesign::SharedBitline => 0.0,
            LutRowDesign::DecoupledBitline => 0.005,
        };
        // LUT precharge circuitry scales with the subarray area share.
        let lut_slice_overhead = lut_subarray_overhead * self.subarray_area_fraction;
        let per_slice = lut_slice_overhead + self.bce_slice_overhead + self.router_slice_overhead;
        let total = per_slice + self.controller_cache_overhead;

        let conventional_cache_mm2 = self.slice_area_mm2 * geom.slices() as f64;
        AreaReport {
            conventional_slice_mm2: self.slice_area_mm2,
            conventional_cache_mm2,
            lut_subarray_overhead,
            lut_slice_overhead,
            bce_slice_overhead: self.bce_slice_overhead,
            router_slice_overhead: self.router_slice_overhead,
            controller_cache_overhead: self.controller_cache_overhead,
            total_overhead_fraction: total,
            bfree_cache_mm2: conventional_cache_mm2 * (1.0 + total),
        }
    }

    /// Area of a specialized-MAC alternative per subarray, relative to the
    /// BCE (> 1 means the MAC is bigger; §V-B reports 1.03).
    pub fn specialized_mac_area_ratio(&self) -> f64 {
        self.specialized_mac_relative_area
    }

    /// Energy-efficiency ratio of BCE versus specialized MAC (§V-B: 1.48).
    pub fn bce_vs_mac_energy_gain(&self) -> f64 {
        self.bce_vs_mac_energy_gain
    }
}

/// Output of [`AreaModel::report`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Conventional (pre-BFree) slice area.
    pub conventional_slice_mm2: f64,
    /// Conventional cache area.
    pub conventional_cache_mm2: f64,
    /// LUT circuitry overhead relative to one subarray (§V-B: 0.5%).
    pub lut_subarray_overhead: f64,
    /// LUT circuitry overhead relative to the slice.
    pub lut_slice_overhead: f64,
    /// BCE overhead relative to the slice.
    pub bce_slice_overhead: f64,
    /// Router overhead relative to the slice.
    pub router_slice_overhead: f64,
    /// Controller overhead relative to the cache (§V-B: 0.1%).
    pub controller_cache_overhead: f64,
    /// Total cache area increase (§V-B / abstract: 5.6%).
    pub total_overhead_fraction: f64,
    /// Resulting BFree cache area.
    pub bfree_cache_mm2: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates() {
        AreaModel::default().validate().unwrap();
    }

    #[test]
    fn total_overhead_near_paper_5_6_percent() {
        let report = AreaModel::default().report(&CacheGeometry::xeon_l3_35mb());
        assert!(
            (report.total_overhead_fraction - 0.056).abs() < 0.004,
            "got {}",
            report.total_overhead_fraction
        );
    }

    #[test]
    fn lut_overhead_is_half_percent_of_subarray() {
        let report = AreaModel::default().report(&CacheGeometry::xeon_l3_35mb());
        assert!((report.lut_subarray_overhead - 0.005).abs() < 1e-12);
    }

    #[test]
    fn controller_overhead_is_tenth_percent() {
        let report = AreaModel::default().report(&CacheGeometry::xeon_l3_35mb());
        assert!((report.controller_cache_overhead - 0.001).abs() < 1e-12);
    }

    #[test]
    fn bfree_cache_is_larger_than_conventional() {
        let report = AreaModel::default().report(&CacheGeometry::xeon_l3_35mb());
        assert!(report.bfree_cache_mm2 > report.conventional_cache_mm2);
    }

    #[test]
    fn shared_bitline_design_has_no_lut_area() {
        let model = AreaModel {
            lut_design: LutRowDesign::SharedBitline,
            ..AreaModel::default()
        };
        let report = model.report(&CacheGeometry::xeon_l3_35mb());
        assert_eq!(report.lut_subarray_overhead, 0.0);
    }

    #[test]
    fn bce_beats_specialized_mac_per_paper() {
        let model = AreaModel::default();
        assert!(model.specialized_mac_area_ratio() > 1.0);
        assert!((model.bce_vs_mac_energy_gain() - 1.48).abs() < 1e-12);
    }

    #[test]
    fn invalid_fraction_rejected() {
        let model = AreaModel {
            subarray_area_fraction: 1.2,
            ..AreaModel::default()
        };
        assert!(model.validate().is_err());
    }
}
