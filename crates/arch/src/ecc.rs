//! Parity / SECDED protection cost model for the in-subarray LUT rows.
//!
//! The paper stores its multiply LUTs in plain 6T SRAM cells (§III), so
//! a soft error in one LUT row silently corrupts every multiply that
//! indexes it. This module prices the three protection options a
//! deployment can choose between — no protection, a single parity bit
//! per 64-bit row (detect-only), and Hamming SECDED(72,64) (correct
//! single flips, detect doubles) — through the same component cost
//! model as every other architectural event, so protected and
//! unprotected configurations are comparable in run reports.
//!
//! The interesting tension: a decoupled-bitline LUT read is 231x
//! cheaper than a regular row access (§III-B, ~0.037 pJ), so even a
//! small syndrome XOR tree is a *multiple* of the raw read energy.
//! ECC on these rows is still ~100x cheaper than a regular row access,
//! but it is nothing like free — exactly the kind of trade-off the
//! `sdc` sweep exists to expose.

use serde::{Deserialize, Serialize};

use crate::energy::EnergyParams;
use crate::error::ArchError;
use crate::timing::TimingParams;
use crate::units::{Energy, Latency};

/// How (or whether) each 64-bit LUT row is protected against bit flips.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EccScheme {
    /// Bare 6T cells: flips are invisible and every one is silent
    /// corruption.
    None,
    /// One even-parity bit per row: detects any odd number of flips
    /// (recovery by seed-regeneration), silently misses doubles.
    Parity,
    /// Hamming SECDED(72,64): corrects any single flip in place,
    /// detects (but cannot correct) doubles.
    Secded,
}

impl EccScheme {
    /// Every scheme, in sweep order.
    pub const ALL: [EccScheme; 3] = [EccScheme::None, EccScheme::Parity, EccScheme::Secded];

    /// Stable lowercase label for CSV columns and event payloads.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            EccScheme::None => "none",
            EccScheme::Parity => "parity",
            EccScheme::Secded => "secded",
        }
    }

    /// Data bits per code word (one LUT row).
    #[must_use]
    pub fn data_bits(self) -> u32 {
        64
    }

    /// Check bits stored alongside each row.
    #[must_use]
    pub fn check_bits(self) -> u32 {
        match self {
            EccScheme::None => 0,
            EccScheme::Parity => 1,
            EccScheme::Secded => 8,
        }
    }

    /// Total coded word width — the space a fault can flip a bit in.
    #[must_use]
    pub fn word_bits(self) -> u32 {
        self.data_bits() + self.check_bits()
    }

    /// Extra LUT-row storage cells relative to the unprotected row.
    #[must_use]
    pub fn storage_overhead(self) -> f64 {
        f64::from(self.check_bits()) / f64::from(self.data_bits())
    }

    /// Two-input XOR gates evaluated per read to form the syndrome: a
    /// parity tree folds the whole word; each SECDED check bit covers
    /// about half of it.
    #[must_use]
    pub fn syndrome_xor_gates(self) -> u64 {
        match self {
            EccScheme::None => 0,
            EccScheme::Parity => u64::from(self.word_bits()) - 1,
            EccScheme::Secded => u64::from(self.check_bits()) * u64::from(self.word_bits()) / 2,
        }
    }

    /// Extra subarray cycles a checked read takes: one to fold the
    /// syndrome, plus one more for SECDED to decode and correct.
    #[must_use]
    pub fn check_cycles(self) -> u64 {
        match self {
            EccScheme::None => 0,
            EccScheme::Parity => 1,
            EccScheme::Secded => 2,
        }
    }
}

/// ECC cost parameters, priced per subarray.
///
/// ```
/// use pim_arch::{EccModel, EccScheme, EnergyParams, TimingParams};
/// let model = EccModel::paper_default(EccScheme::Secded);
/// let report = model.report(&EnergyParams::default(), &TimingParams::default());
/// // SECDED multiplies the ultra-cheap decoupled LUT read...
/// assert!(report.energy_overhead_fraction > 1.0);
/// // ...yet stays far cheaper than a regular row access.
/// assert!(report.protected_lut_read_pj < 8.6 / 50.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EccModel {
    /// The protection scheme being priced.
    pub scheme: EccScheme,
    /// Energy of one two-input XOR evaluation in the syndrome tree, pJ
    /// (~0.2 fJ per gate at 16 nm).
    pub xor_gate_pj: f64,
    /// Encoder/decoder logic area relative to one subarray.
    pub logic_subarray_overhead: f64,
    /// Share of the subarray's cell area occupied by its LUT rows (8 of
    /// 256 rows per partition carry the multiply table).
    pub lut_row_area_share: f64,
}

impl EccModel {
    /// The calibrated cost constants for `scheme`.
    #[must_use]
    pub fn paper_default(scheme: EccScheme) -> Self {
        EccModel {
            scheme,
            xor_gate_pj: 0.0002,
            logic_subarray_overhead: match scheme {
                EccScheme::None => 0.0,
                EccScheme::Parity => 0.0005,
                EccScheme::Secded => 0.002,
            },
            lut_row_area_share: 8.0 / 256.0,
        }
    }

    /// Validates the cost constants.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidParameter`] when a value is negative,
    /// non-finite, or a fraction leaves `[0, 1]`.
    pub fn validate(&self) -> Result<(), ArchError> {
        if !(self.xor_gate_pj >= 0.0 && self.xor_gate_pj.is_finite()) {
            return Err(ArchError::InvalidParameter {
                parameter: "xor_gate_pj",
                reason: format!("must be non-negative and finite, got {}", self.xor_gate_pj),
            });
        }
        for (name, v) in [
            ("logic_subarray_overhead", self.logic_subarray_overhead),
            ("lut_row_area_share", self.lut_row_area_share),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(ArchError::InvalidParameter {
                    parameter: name,
                    reason: format!("must be within [0, 1], got {v}"),
                });
            }
        }
        Ok(())
    }

    /// Energy of the syndrome computation alone.
    pub fn syndrome_energy(&self) -> Energy {
        Energy::from_pj(self.scheme.syndrome_xor_gates() as f64 * self.xor_gate_pj)
    }

    /// Energy of one parity/SECDED-checked decoupled-bitline LUT read:
    /// the wider code word through the cheap LUT path, plus the
    /// syndrome tree.
    pub fn protected_lut_read(&self, energy: &EnergyParams) -> Energy {
        let widen = f64::from(self.scheme.word_bits()) / f64::from(self.scheme.data_bits());
        Energy::from_pj(energy.fast_lut_access().picojoules() * widen) + self.syndrome_energy()
    }

    /// Energy of one scrubber visit to one row: a checked read; clean
    /// rows (the overwhelming majority) cost nothing further, and the
    /// rare rewrite is charged separately by the caller as a row write.
    pub fn scrub_row(&self, energy: &EnergyParams) -> Energy {
        self.protected_lut_read(energy)
    }

    /// Extra latency the check adds to a LUT read.
    pub fn check_latency(&self, timing: &TimingParams) -> Latency {
        Latency::from_ns(self.scheme.check_cycles() as f64 * timing.subarray_cycle_ns())
    }

    /// Total subarray area overhead: decoder logic plus the check-bit
    /// cells added to the LUT rows' share of the array.
    #[must_use]
    pub fn subarray_area_overhead(&self) -> f64 {
        self.logic_subarray_overhead + self.scheme.storage_overhead() * self.lut_row_area_share
    }

    /// The full per-scheme cost report.
    pub fn report(&self, energy: &EnergyParams, timing: &TimingParams) -> EccCostReport {
        let baseline = energy.fast_lut_access();
        let protected = self.protected_lut_read(energy);
        EccCostReport {
            scheme: self.scheme,
            word_bits: self.scheme.word_bits(),
            check_bits: self.scheme.check_bits(),
            storage_overhead_fraction: self.scheme.storage_overhead(),
            baseline_lut_read_pj: baseline.picojoules(),
            protected_lut_read_pj: protected.picojoules(),
            energy_overhead_fraction: (protected.picojoules() - baseline.picojoules())
                / baseline.picojoules(),
            check_latency_ns: self.check_latency(timing).nanoseconds(),
            subarray_area_overhead: self.subarray_area_overhead(),
        }
    }
}

/// Output of [`EccModel::report`]: one protection scheme priced against
/// the unprotected decoupled-bitline read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EccCostReport {
    /// The scheme priced.
    pub scheme: EccScheme,
    /// Coded word width.
    pub word_bits: u32,
    /// Check bits per row.
    pub check_bits: u32,
    /// Extra storage cells relative to the bare row.
    pub storage_overhead_fraction: f64,
    /// Unprotected decoupled-bitline LUT read, pJ.
    pub baseline_lut_read_pj: f64,
    /// Checked read (wider word + syndrome), pJ.
    pub protected_lut_read_pj: f64,
    /// `(protected - baseline) / baseline`.
    pub energy_overhead_fraction: f64,
    /// Latency the check adds to each read, ns.
    pub check_latency_ns: f64,
    /// Decoder logic + check-bit cells relative to one subarray.
    pub subarray_area_overhead: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate_for_every_scheme() {
        for scheme in EccScheme::ALL {
            EccModel::paper_default(scheme).validate().unwrap();
        }
    }

    #[test]
    fn geometry_constants() {
        assert_eq!(EccScheme::None.word_bits(), 64);
        assert_eq!(EccScheme::Parity.word_bits(), 65);
        assert_eq!(EccScheme::Secded.word_bits(), 72);
        assert_eq!(EccScheme::Secded.check_bits(), 8);
        assert!((EccScheme::Secded.storage_overhead() - 0.125).abs() < 1e-12);
    }

    #[test]
    fn none_scheme_is_free() {
        let model = EccModel::paper_default(EccScheme::None);
        let e = EnergyParams::default();
        let t = TimingParams::default();
        let report = model.report(&e, &t);
        assert_eq!(report.energy_overhead_fraction, 0.0);
        assert_eq!(report.check_latency_ns, 0.0);
        assert_eq!(report.subarray_area_overhead, 0.0);
        assert!((report.protected_lut_read_pj - e.fast_lut_access().picojoules()).abs() < 1e-15);
    }

    #[test]
    fn costs_order_none_parity_secded() {
        let e = EnergyParams::default();
        let t = TimingParams::default();
        let reports: Vec<_> = EccScheme::ALL
            .iter()
            .map(|&s| EccModel::paper_default(s).report(&e, &t))
            .collect();
        for pair in reports.windows(2) {
            assert!(pair[0].protected_lut_read_pj < pair[1].protected_lut_read_pj);
            assert!(pair[0].check_latency_ns < pair[1].check_latency_ns);
            assert!(pair[0].subarray_area_overhead < pair[1].subarray_area_overhead);
        }
    }

    #[test]
    fn secded_stays_far_cheaper_than_regular_row_access() {
        let e = EnergyParams::default();
        let t = TimingParams::default();
        let report = EccModel::paper_default(EccScheme::Secded).report(&e, &t);
        // The check tree is a multiple of the 231x-efficient read...
        assert!(report.energy_overhead_fraction > 1.0);
        // ...but protection still keeps two orders of magnitude on the
        // 8.6 pJ regular row access.
        assert!(report.protected_lut_read_pj * 50.0 < e.subarray_row_access().picojoules());
    }

    #[test]
    fn invalid_constants_rejected() {
        let mut model = EccModel::paper_default(EccScheme::Parity);
        model.xor_gate_pj = f64::NAN;
        assert!(model.validate().is_err());
        let mut model = EccModel::paper_default(EccScheme::Parity);
        model.lut_row_area_share = 1.5;
        assert!(model.validate().is_err());
    }
}
