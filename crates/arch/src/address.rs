//! Physical address decomposition onto the cache hierarchy.
//!
//! Data is striped across the subarrays of a sub-bank (paper §III-D): a
//! 64-byte line activates all eight subarrays of one sub-bank, each
//! contributing one 8-byte row segment. [`CacheAddress::decompose`] maps a
//! flat byte address to its (slice, bank, sub-bank, subarray, partition,
//! row, byte-in-row) coordinates, and [`SubarrayId`] names a subarray for
//! the mapping and systolic layers.

use serde::{Deserialize, Serialize};

use crate::error::ArchError;
use crate::geometry::CacheGeometry;

/// Globally unique coordinate of one subarray.
///
/// ```
/// use pim_arch::{CacheGeometry, SubarrayId};
/// let g = CacheGeometry::xeon_l3_35mb();
/// let id = SubarrayId::new(&g, 0, 1, 2, 3).unwrap();
/// assert_eq!(id.flat_index(&g), 0 * 320 + 1 * 80 + 2 * 8 + 3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SubarrayId {
    /// Slice index within the cache.
    pub slice: usize,
    /// Bank index within the slice.
    pub bank: usize,
    /// Sub-bank index within the bank.
    pub subbank: usize,
    /// Subarray index within the sub-bank.
    pub subarray: usize,
}

impl SubarrayId {
    /// Creates a subarray coordinate, validating each field against the
    /// geometry.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidCoordinate`] when any index exceeds the
    /// geometry's bounds.
    pub fn new(
        geom: &CacheGeometry,
        slice: usize,
        bank: usize,
        subbank: usize,
        subarray: usize,
    ) -> Result<Self, ArchError> {
        let bound = |field: &'static str, value: usize, bound: usize| {
            if value >= bound {
                Err(ArchError::InvalidCoordinate {
                    field,
                    value,
                    bound,
                })
            } else {
                Ok(())
            }
        };
        bound("slice", slice, geom.slices())?;
        bound("bank", bank, geom.banks_per_slice())?;
        bound("subbank", subbank, geom.subbanks_per_bank())?;
        bound("subarray", subarray, geom.subarrays_per_subbank())?;
        Ok(SubarrayId {
            slice,
            bank,
            subbank,
            subarray,
        })
    }

    /// Creates a coordinate from a flat index in `0..total_subarrays()`.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::InvalidCoordinate`] when the index is out of
    /// range.
    pub fn from_flat_index(geom: &CacheGeometry, index: usize) -> Result<Self, ArchError> {
        if index >= geom.total_subarrays() {
            return Err(ArchError::InvalidCoordinate {
                field: "flat_index",
                value: index,
                bound: geom.total_subarrays(),
            });
        }
        let per_slice = geom.subarrays_per_slice();
        let per_bank = geom.subbanks_per_bank() * geom.subarrays_per_subbank();
        let per_subbank = geom.subarrays_per_subbank();
        let slice = index / per_slice;
        let rem = index % per_slice;
        let bank = rem / per_bank;
        let rem = rem % per_bank;
        let subbank = rem / per_subbank;
        let subarray = rem % per_subbank;
        Ok(SubarrayId {
            slice,
            bank,
            subbank,
            subarray,
        })
    }

    /// Flat index of this subarray in `0..total_subarrays()`, ordering by
    /// slice, then bank, then sub-bank, then subarray.
    pub fn flat_index(&self, geom: &CacheGeometry) -> usize {
        ((self.slice * geom.banks_per_slice() + self.bank) * geom.subbanks_per_bank()
            + self.subbank)
            * geom.subarrays_per_subbank()
            + self.subarray
    }

    /// Flat index of the sub-bank this subarray belongs to, within its
    /// slice.
    pub fn subbank_in_slice(&self, geom: &CacheGeometry) -> usize {
        self.bank * geom.subbanks_per_bank() + self.subbank
    }
}

/// Full coordinates of one byte inside the cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheAddress {
    /// The subarray holding the byte.
    pub subarray: SubarrayId,
    /// Partition within the subarray.
    pub partition: usize,
    /// Row within the partition.
    pub row: usize,
    /// Byte offset within the 8-byte row segment.
    pub byte_in_row: usize,
}

impl CacheAddress {
    /// Decomposes a flat byte address into cache coordinates.
    ///
    /// Striping order (from the innermost): byte-in-row-segment, subarray
    /// within sub-bank (a 64 B line spreads across the 8 subarrays of one
    /// sub-bank), then consecutive lines walk rows, partitions, sub-banks,
    /// banks and slices.
    ///
    /// # Errors
    ///
    /// Returns [`ArchError::AddressOutOfRange`] when the address exceeds
    /// the cache capacity.
    pub fn decompose(geom: &CacheGeometry, address: u64) -> Result<Self, ArchError> {
        let capacity = geom.capacity().get();
        if address >= capacity {
            return Err(ArchError::AddressOutOfRange { address, capacity });
        }
        let row_seg = geom.row_bytes().get(); // bytes per subarray row segment
        let byte_in_row = (address % row_seg) as usize;
        let addr = address / row_seg;

        let n_sub = geom.subarrays_per_subbank() as u64;
        let subarray = (addr % n_sub) as usize;
        let addr = addr / n_sub;

        let n_rows = geom.rows_per_partition() as u64;
        let row = (addr % n_rows) as usize;
        let addr = addr / n_rows;

        let n_part = geom.partitions_per_subarray() as u64;
        let partition = (addr % n_part) as usize;
        let addr = addr / n_part;

        let n_subbank = geom.subbanks_per_bank() as u64;
        let subbank = (addr % n_subbank) as usize;
        let addr = addr / n_subbank;

        let n_bank = geom.banks_per_slice() as u64;
        let bank = (addr % n_bank) as usize;
        let slice = (addr / n_bank) as usize;

        Ok(CacheAddress {
            subarray: SubarrayId {
                slice,
                bank,
                subbank,
                subarray,
            },
            partition,
            row,
            byte_in_row,
        })
    }

    /// Recomposes coordinates back into the flat byte address, the inverse
    /// of [`CacheAddress::decompose`].
    pub fn recompose(&self, geom: &CacheGeometry) -> u64 {
        let mut addr = self.subarray.slice as u64;
        addr = addr * geom.banks_per_slice() as u64 + self.subarray.bank as u64;
        addr = addr * geom.subbanks_per_bank() as u64 + self.subarray.subbank as u64;
        addr = addr * geom.partitions_per_subarray() as u64 + self.partition as u64;
        addr = addr * geom.rows_per_partition() as u64 + self.row as u64;
        addr = addr * geom.subarrays_per_subbank() as u64 + self.subarray.subarray as u64;
        addr * geom.row_bytes().get() + self.byte_in_row as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::xeon_l3_35mb()
    }

    #[test]
    fn address_zero_is_origin() {
        let a = CacheAddress::decompose(&geom(), 0).unwrap();
        assert_eq!(
            a.subarray,
            SubarrayId {
                slice: 0,
                bank: 0,
                subbank: 0,
                subarray: 0
            }
        );
        assert_eq!((a.partition, a.row, a.byte_in_row), (0, 0, 0));
    }

    #[test]
    fn cache_line_stripes_across_subbank() {
        // Bytes 0..64 of a line touch all 8 subarrays of sub-bank 0.
        let g = geom();
        for i in 0..8u64 {
            let a = CacheAddress::decompose(&g, i * 8).unwrap();
            assert_eq!(a.subarray.subarray, i as usize);
            assert_eq!(a.subarray.subbank, 0);
            assert_eq!(a.row, 0);
        }
    }

    #[test]
    fn decompose_recompose_round_trip() {
        let g = geom();
        let cap = g.capacity().get();
        // Sample addresses across the whole range including the last byte.
        for addr in [0, 1, 63, 64, 8191, 8192, 1 << 20, cap / 2, cap - 1] {
            let c = CacheAddress::decompose(&g, addr).unwrap();
            assert_eq!(c.recompose(&g), addr, "round trip failed for {addr}");
        }
    }

    #[test]
    fn out_of_range_address_rejected() {
        let g = geom();
        let cap = g.capacity().get();
        assert!(matches!(
            CacheAddress::decompose(&g, cap),
            Err(ArchError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn subarray_id_bounds_checked() {
        let g = geom();
        assert!(SubarrayId::new(&g, 13, 3, 9, 7).is_ok());
        assert!(matches!(
            SubarrayId::new(&g, 14, 0, 0, 0),
            Err(ArchError::InvalidCoordinate { field: "slice", .. })
        ));
        assert!(matches!(
            SubarrayId::new(&g, 0, 4, 0, 0),
            Err(ArchError::InvalidCoordinate { field: "bank", .. })
        ));
    }

    #[test]
    fn flat_index_round_trip() {
        let g = geom();
        for idx in [0usize, 1, 7, 8, 79, 80, 319, 320, 4479] {
            let id = SubarrayId::from_flat_index(&g, idx).unwrap();
            assert_eq!(id.flat_index(&g), idx);
        }
        assert!(SubarrayId::from_flat_index(&g, 4480).is_err());
    }

    #[test]
    fn flat_index_orders_by_slice_first() {
        let g = geom();
        let a = SubarrayId::new(&g, 0, 3, 9, 7).unwrap();
        let b = SubarrayId::new(&g, 1, 0, 0, 0).unwrap();
        assert!(a.flat_index(&g) < b.flat_index(&g));
        assert_eq!(b.flat_index(&g), 320);
    }
}
