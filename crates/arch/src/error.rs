//! Error type for architectural model construction and address mapping.

use std::error::Error;
use std::fmt;

/// Errors produced by the architectural models.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ArchError {
    /// A geometry parameter was zero or otherwise out of range.
    InvalidGeometry {
        /// Which parameter was invalid.
        parameter: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
    /// An address was outside the cache capacity.
    AddressOutOfRange {
        /// The offending byte address.
        address: u64,
        /// The cache capacity in bytes.
        capacity: u64,
    },
    /// A subarray coordinate referred to a component that does not exist.
    InvalidCoordinate {
        /// Which coordinate field was out of range.
        field: &'static str,
        /// The value supplied.
        value: usize,
        /// The exclusive upper bound.
        bound: usize,
    },
    /// A model parameter (bandwidth, energy, fraction) was non-positive or
    /// otherwise nonsensical.
    InvalidParameter {
        /// Which parameter was invalid.
        parameter: &'static str,
        /// Human-readable explanation.
        reason: String,
    },
}

impl fmt::Display for ArchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArchError::InvalidGeometry { parameter, reason } => {
                write!(f, "invalid cache geometry: {parameter}: {reason}")
            }
            ArchError::AddressOutOfRange { address, capacity } => {
                write!(
                    f,
                    "address {address:#x} out of range for cache of {capacity} bytes"
                )
            }
            ArchError::InvalidCoordinate {
                field,
                value,
                bound,
            } => {
                write!(f, "coordinate {field}={value} out of range (< {bound})")
            }
            ArchError::InvalidParameter { parameter, reason } => {
                write!(f, "invalid model parameter: {parameter}: {reason}")
            }
        }
    }
}

impl Error for ArchError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = ArchError::AddressOutOfRange {
            address: 0x1000,
            capacity: 64,
        };
        let s = e.to_string();
        assert!(s.contains("0x1000"));
        assert!(s.contains("64"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ArchError>();
    }
}
