//! Phase- and component-tagged accumulators for latency and energy.
//!
//! Every experiment in the paper reports either a runtime breakdown by
//! execution *phase* (weight load, input load, compute, reduction, ...;
//! Figs. 12(b), 12(c), 14) or an energy breakdown by hardware *component*
//! (DRAM, subarray access, BCE, interconnect, ...; Fig. 12(d)). These
//! accumulators make those reports first-class values.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::units::{Energy, Latency};

/// Execution phases of a PIM kernel (paper Fig. 11 and Fig. 12(b,c)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Phase {
    /// Programming LUT rows and configuration blocks (configuration phase).
    Config,
    /// Loading weights from main memory into the cache.
    WeightLoad,
    /// Loading/streaming input features.
    InputLoad,
    /// The MAC/LUT computation itself.
    Compute,
    /// Accumulating partial products across subarrays.
    Reduction,
    /// Requantization (gemmlowp scale + bias + shift, §V-D).
    Quantize,
    /// Writing results back to the cache or main memory.
    Writeback,
}

impl Phase {
    /// All phases in canonical report order.
    pub const ALL: [Phase; 7] = [
        Phase::Config,
        Phase::WeightLoad,
        Phase::InputLoad,
        Phase::Compute,
        Phase::Reduction,
        Phase::Quantize,
        Phase::Writeback,
    ];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            Phase::Config => "config",
            Phase::WeightLoad => "weight-load",
            Phase::InputLoad => "input-load",
            Phase::Compute => "compute",
            Phase::Reduction => "reduction",
            Phase::Quantize => "quantize",
            Phase::Writeback => "writeback",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::Config => 0,
            Phase::WeightLoad => 1,
            Phase::InputLoad => 2,
            Phase::Compute => 3,
            Phase::Reduction => 4,
            Phase::Quantize => 5,
            Phase::Writeback => 6,
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Hardware components charged with energy (paper Fig. 12(d)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum EnergyComponent {
    /// Main memory (DRAM/eDRAM/HBM) transfer energy.
    Dram,
    /// Subarray row read/write accesses ("SA access" in Fig. 12(d)).
    SubarrayAccess,
    /// Decoupled-bitline LUT-row reads.
    LutAccess,
    /// BCE dynamic energy (ROM MACs, adders, shifters, registers).
    Bce,
    /// Slice-level H-tree interconnect traversals.
    Interconnect,
    /// Inter-subarray router hops (systolic flow).
    Router,
    /// Controllers (cache- and slice-level), static.
    Controller,
}

impl EnergyComponent {
    /// All components in canonical report order.
    pub const ALL: [EnergyComponent; 7] = [
        EnergyComponent::Dram,
        EnergyComponent::SubarrayAccess,
        EnergyComponent::LutAccess,
        EnergyComponent::Bce,
        EnergyComponent::Interconnect,
        EnergyComponent::Router,
        EnergyComponent::Controller,
    ];

    /// Short label used in experiment tables.
    pub fn label(self) -> &'static str {
        match self {
            EnergyComponent::Dram => "dram",
            EnergyComponent::SubarrayAccess => "sa-access",
            EnergyComponent::LutAccess => "lut-access",
            EnergyComponent::Bce => "bce",
            EnergyComponent::Interconnect => "interconnect",
            EnergyComponent::Router => "router",
            EnergyComponent::Controller => "controller",
        }
    }

    fn index(self) -> usize {
        match self {
            EnergyComponent::Dram => 0,
            EnergyComponent::SubarrayAccess => 1,
            EnergyComponent::LutAccess => 2,
            EnergyComponent::Bce => 3,
            EnergyComponent::Interconnect => 4,
            EnergyComponent::Router => 5,
            EnergyComponent::Controller => 6,
        }
    }
}

impl fmt::Display for EnergyComponent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Latency accumulated per execution phase.
///
/// ```
/// use pim_arch::{Latency, LatencyBreakdown, Phase};
/// let mut b = LatencyBreakdown::new();
/// b.add(Phase::WeightLoad, Latency::from_us(8.0));
/// b.add(Phase::Compute, Latency::from_us(2.0));
/// assert!((b.total().microseconds() - 10.0).abs() < 1e-9);
/// assert!((b.fraction(Phase::WeightLoad) - 0.8).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LatencyBreakdown {
    entries: [f64; 7], // ns per phase
}

impl LatencyBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds latency to a phase.
    pub fn add(&mut self, phase: Phase, latency: Latency) {
        self.entries[phase.index()] += latency.nanoseconds();
    }

    /// Latency recorded for one phase.
    pub fn get(&self, phase: Phase) -> Latency {
        Latency::from_ns(self.entries[phase.index()])
    }

    /// Total across phases.
    pub fn total(&self) -> Latency {
        Latency::from_ns(self.entries.iter().sum())
    }

    /// Fraction of the total in one phase (0 when the total is 0).
    pub fn fraction(&self, phase: Phase) -> f64 {
        let total: f64 = self.entries.iter().sum();
        if total == 0.0 {
            0.0
        } else {
            self.entries[phase.index()] / total
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        for (a, b) in self.entries.iter_mut().zip(other.entries.iter()) {
            *a += b;
        }
    }

    /// Iterates over `(phase, latency)` pairs with non-zero latency.
    pub fn iter(&self) -> impl Iterator<Item = (Phase, Latency)> + '_ {
        Phase::ALL
            .into_iter()
            .filter(|p| self.entries[p.index()] > 0.0)
            .map(|p| (p, self.get(p)))
    }

    /// Scales every phase by a constant (e.g. batch replication).
    pub fn scaled(&self, factor: f64) -> LatencyBreakdown {
        let mut out = self.clone();
        for e in out.entries.iter_mut() {
            *e *= factor;
        }
        out
    }
}

impl fmt::Display for LatencyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total {}", self.total())?;
        for (phase, lat) in self.iter() {
            write!(
                f,
                ", {} {} ({:.1}%)",
                phase,
                lat,
                self.fraction(phase) * 100.0
            )?;
        }
        Ok(())
    }
}

/// Energy accumulated per hardware component.
///
/// ```
/// use pim_arch::{Energy, EnergyBreakdown, EnergyComponent};
/// let mut b = EnergyBreakdown::new();
/// b.add(EnergyComponent::Dram, Energy::from_mj(4.0));
/// b.add(EnergyComponent::Bce, Energy::from_mj(1.0));
/// assert!((b.total().millijoules() - 5.0).abs() < 1e-9);
/// // Fig. 12(d) excludes DRAM energy:
/// assert!((b.total_excluding(EnergyComponent::Dram).millijoules() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    entries: [f64; 7], // pJ per component
}

impl EnergyBreakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds energy to a component.
    pub fn add(&mut self, component: EnergyComponent, energy: Energy) {
        self.entries[component.index()] += energy.picojoules();
    }

    /// Energy recorded for one component.
    pub fn get(&self, component: EnergyComponent) -> Energy {
        Energy::from_pj(self.entries[component.index()])
    }

    /// Total across components.
    pub fn total(&self) -> Energy {
        Energy::from_pj(self.entries.iter().sum())
    }

    /// Total excluding one component (Fig. 12(d) excludes DRAM).
    pub fn total_excluding(&self, component: EnergyComponent) -> Energy {
        Energy::from_pj(self.entries.iter().sum::<f64>() - self.entries[component.index()])
    }

    /// Fraction of the total in one component (0 when the total is 0).
    pub fn fraction(&self, component: EnergyComponent) -> f64 {
        let total: f64 = self.entries.iter().sum();
        if total == 0.0 {
            0.0
        } else {
            self.entries[component.index()] / total
        }
    }

    /// Fraction of the total excluding `excluded` held by `component`.
    pub fn fraction_excluding(&self, component: EnergyComponent, excluded: EnergyComponent) -> f64 {
        let total = self.total_excluding(excluded).picojoules();
        if total == 0.0 {
            0.0
        } else {
            self.entries[component.index()] / total
        }
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        for (a, b) in self.entries.iter_mut().zip(other.entries.iter()) {
            *a += b;
        }
    }

    /// Iterates over `(component, energy)` pairs with non-zero energy.
    pub fn iter(&self) -> impl Iterator<Item = (EnergyComponent, Energy)> + '_ {
        EnergyComponent::ALL
            .into_iter()
            .filter(|c| self.entries[c.index()] > 0.0)
            .map(|c| (c, self.get(c)))
    }

    /// Scales every component by a constant.
    pub fn scaled(&self, factor: f64) -> EnergyBreakdown {
        let mut out = self.clone();
        for e in out.entries.iter_mut() {
            *e *= factor;
        }
        out
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "total {}", self.total())?;
        for (c, e) in self.iter() {
            write!(f, ", {} {} ({:.1}%)", c, e, self.fraction(c) * 100.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_breakdown_accumulates() {
        let mut b = LatencyBreakdown::new();
        b.add(Phase::Compute, Latency::from_ns(100.0));
        b.add(Phase::Compute, Latency::from_ns(50.0));
        b.add(Phase::WeightLoad, Latency::from_ns(350.0));
        assert!((b.get(Phase::Compute).nanoseconds() - 150.0).abs() < 1e-12);
        assert!((b.total().nanoseconds() - 500.0).abs() < 1e-12);
        assert!((b.fraction(Phase::WeightLoad) - 0.7).abs() < 1e-12);
    }

    #[test]
    fn empty_breakdown_fractions_are_zero() {
        let b = LatencyBreakdown::new();
        assert_eq!(b.fraction(Phase::Compute), 0.0);
        assert_eq!(b.total(), Latency::ZERO);
        assert_eq!(b.iter().count(), 0);
    }

    #[test]
    fn latency_merge_and_scale() {
        let mut a = LatencyBreakdown::new();
        a.add(Phase::Compute, Latency::from_ns(10.0));
        let mut b = LatencyBreakdown::new();
        b.add(Phase::Compute, Latency::from_ns(5.0));
        b.add(Phase::Reduction, Latency::from_ns(5.0));
        a.merge(&b);
        assert!((a.total().nanoseconds() - 20.0).abs() < 1e-12);
        let doubled = a.scaled(2.0);
        assert!((doubled.total().nanoseconds() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn energy_breakdown_exclusion() {
        let mut b = EnergyBreakdown::new();
        b.add(EnergyComponent::Dram, Energy::from_pj(800.0));
        b.add(EnergyComponent::SubarrayAccess, Energy::from_pj(120.0));
        b.add(EnergyComponent::Bce, Energy::from_pj(80.0));
        assert!((b.total().picojoules() - 1000.0).abs() < 1e-12);
        assert!((b.total_excluding(EnergyComponent::Dram).picojoules() - 200.0).abs() < 1e-12);
        assert!(
            (b.fraction_excluding(EnergyComponent::SubarrayAccess, EnergyComponent::Dram) - 0.6)
                .abs()
                < 1e-12
        );
    }

    #[test]
    fn phase_all_is_exhaustive_and_ordered() {
        assert_eq!(Phase::ALL.len(), 7);
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(p.index(), i);
        }
    }

    #[test]
    fn component_all_is_exhaustive_and_ordered() {
        assert_eq!(EnergyComponent::ALL.len(), 7);
        for (i, c) in EnergyComponent::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn display_contains_total_and_phases() {
        let mut b = LatencyBreakdown::new();
        b.add(Phase::Compute, Latency::from_us(1.0));
        let s = b.to_string();
        assert!(s.contains("total"));
        assert!(s.contains("compute"));
    }
}
