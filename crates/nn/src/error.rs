//! Error type for the workload substrate.

use std::error::Error;
use std::fmt;

/// Errors produced by tensor and layer operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NnError {
    /// Two shapes that must agree did not.
    ShapeMismatch {
        /// What was being attempted.
        context: &'static str,
        /// The shapes involved, rendered for the message.
        detail: String,
    },
    /// A layer parameter was invalid (zero channels, kernel larger than
    /// padded input, ...).
    InvalidLayer {
        /// The layer name.
        layer: String,
        /// Why it is invalid.
        reason: String,
    },
    /// An index was out of bounds for a tensor.
    IndexOutOfBounds {
        /// The linearized index.
        index: usize,
        /// The tensor volume.
        len: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { context, detail } => {
                write!(f, "shape mismatch in {context}: {detail}")
            }
            NnError::InvalidLayer { layer, reason } => {
                write!(f, "invalid layer {layer}: {reason}")
            }
            NnError::IndexOutOfBounds { index, len } => {
                write!(
                    f,
                    "index {index} out of bounds for tensor of {len} elements"
                )
            }
        }
    }
}

impl Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_contains_detail() {
        let e = NnError::ShapeMismatch {
            context: "matmul",
            detail: "2x3 vs 4x5".to_string(),
        };
        assert!(e.to_string().contains("matmul"));
        assert!(e.to_string().contains("2x3"));
    }
}
