//! # pim-nn
//!
//! The neural-network workload substrate for the BFree reproduction
//! (Ramanathan et al., MICRO 2020). It provides everything the paper's
//! evaluation (§V, Table II) needs from the "workload" side:
//!
//! * a minimal dense [`Tensor`] with shape arithmetic;
//! * gemmlowp-style quantization ([`quant`]) with the exact
//!   rounding-doubling-high-multiply requantization the paper uses
//!   (§V-D cites gemmlowp);
//! * layer specifications with parameter/MAC/shape accounting
//!   ([`layers`]) and the im2col transformation of §IV-B ([`im2col`]);
//! * 32-bit float reference implementations of every kernel
//!   ([`mod@reference`]) used to validate the LUT datapath end to end;
//! * the five evaluation networks of Table II — Inception-v3, VGG-16,
//!   LSTM, BERT-base and BERT-large — transcribed layer by layer
//!   ([`networks`]).
//!
//! ```
//! use pim_nn::networks;
//!
//! let vgg = networks::vgg16();
//! // Table II: VGG-16 has 16 weight layers, 138M params, 15.5G mults.
//! assert_eq!(vgg.weight_layer_count(), 16);
//! assert!((vgg.total_params() as f64 / 138.36e6 - 1.0).abs() < 0.01);
//! assert!((vgg.total_macs() as f64 / 15.47e9 - 1.0).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod executor;
pub mod im2col;
pub mod layers;
pub mod networks;
pub mod quant;
pub mod reference;
pub mod request;
pub mod tensor;
pub mod workload;

pub use error::NnError;
pub use layers::{LayerOp, LayerSpec, Network, PoolKind};
pub use quant::{QuantParams, Requantizer};
pub use request::{InferenceRequest, NetworkKind};
pub use tensor::{Tensor, TensorShape};
