//! The im2col transformation (paper §IV-B, Fig. 9(c)).
//!
//! BFree converts convolutions into matrix multiplications when the
//! unrolled intermediate features fit in cache: the filter tensor
//! `(n, c, kh, kw)` flattens statically into an `(n, c*kh*kw)` matrix and
//! every convolution window of the input unrolls into one column of a
//! `(c*kh*kw, steps)` matrix. The unrolling duplicates overlapping input
//! elements — the *redundancy* this module also quantifies, since it
//! determines the dynamic storage cost the paper weighs against the
//! matmul-mode speedup.

use crate::error::NnError;
use crate::tensor::{Tensor, TensorShape};

/// Static geometry of an im2col transformation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Im2colDims {
    /// Rows of the unrolled input matrix: `c * kh * kw`.
    pub rows: usize,
    /// Columns: convolution steps (`out_h * out_w`).
    pub cols: usize,
    /// Original input element count.
    pub input_elements: usize,
}

impl Im2colDims {
    /// Computes the unrolled dimensions for a convolution.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] when the kernel does not fit the
    /// padded input.
    pub fn compute(
        input: &TensorShape,
        kernel: (usize, usize),
        stride: (usize, usize),
        padding: (usize, usize),
    ) -> Result<Self, NnError> {
        if input.rank() != 3 {
            return Err(NnError::InvalidLayer {
                layer: "im2col".to_string(),
                reason: format!("expected (C,H,W), got {input}"),
            });
        }
        let (c, h, w) = (input.dims()[0], input.dims()[1], input.dims()[2]);
        let oh = (h + 2 * padding.0)
            .checked_sub(kernel.0)
            .map(|v| v / stride.0 + 1);
        let ow = (w + 2 * padding.1)
            .checked_sub(kernel.1)
            .map(|v| v / stride.1 + 1);
        let (oh, ow) = match (oh, ow) {
            (Some(a), Some(b)) => (a, b),
            _ => {
                return Err(NnError::InvalidLayer {
                    layer: "im2col".to_string(),
                    reason: "kernel larger than padded input".to_string(),
                })
            }
        };
        Ok(Im2colDims {
            rows: c * kernel.0 * kernel.1,
            cols: oh * ow,
            input_elements: c * h * w,
        })
    }

    /// Elements in the unrolled matrix.
    pub fn unrolled_elements(&self) -> usize {
        self.rows * self.cols
    }

    /// Storage blow-up of the unrolled form versus the raw input
    /// (Fig. 9(c): "there could be redundant copies of elements based on
    /// the stride").
    pub fn redundancy(&self) -> f64 {
        self.unrolled_elements() as f64 / self.input_elements as f64
    }
}

/// Performs im2col on an input feature map, producing the `(rows, cols)`
/// unrolled matrix with zero padding applied.
///
/// # Errors
///
/// Returns [`NnError::InvalidLayer`] for incompatible shapes.
pub fn im2col(
    input: &Tensor<f32>,
    kernel: (usize, usize),
    stride: (usize, usize),
    padding: (usize, usize),
) -> Result<Tensor<f32>, NnError> {
    let dims = Im2colDims::compute(input.shape(), kernel, stride, padding)?;
    let (_c, h, w) = {
        let d = input.shape().dims();
        (d[0], d[1], d[2])
    };
    let out_w = (w + 2 * padding.1 - kernel.1) / stride.1 + 1;
    let mut out = Tensor::zeros(TensorShape::new(vec![dims.rows, dims.cols]));
    for row in 0..dims.rows {
        let ch = row / (kernel.0 * kernel.1);
        let within = row % (kernel.0 * kernel.1);
        let ky = within / kernel.1;
        let kx = within % kernel.1;
        for col in 0..dims.cols {
            let oy = col / out_w;
            let ox = col % out_w;
            let iy = (oy * stride.0 + ky) as isize - padding.0 as isize;
            let ix = (ox * stride.1 + kx) as isize - padding.1 as isize;
            let value = if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                input.get(&[ch, iy as usize, ix as usize])?
            } else {
                0.0
            };
            out.set(&[row, col], value)?;
        }
    }
    Ok(out)
}

/// Flattens a `(n, c, kh, kw)` filter tensor into the `(n, c*kh*kw)`
/// matrix of Fig. 9(c) (a pure reshape — weights are read-only during
/// inference and unrolled statically).
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] for a non-rank-4 filter tensor.
pub fn flatten_filters(filters: &Tensor<f32>) -> Result<Tensor<f32>, NnError> {
    let dims = filters.shape().dims();
    if dims.len() != 4 {
        return Err(NnError::ShapeMismatch {
            context: "filter flattening",
            detail: format!("expected (N,C,KH,KW), got {}", filters.shape()),
        });
    }
    let mut out = filters.clone();
    out.reshape(TensorShape::new(vec![dims[0], dims[1] * dims[2] * dims[3]]))?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dims_for_unit_stride() {
        let d = Im2colDims::compute(&TensorShape::chw(3, 5, 5), (3, 3), (1, 1), (0, 0)).unwrap();
        assert_eq!(d.rows, 27);
        assert_eq!(d.cols, 9);
        assert!(d.redundancy() > 1.0);
    }

    #[test]
    fn stride_equal_kernel_has_no_redundancy() {
        // Non-overlapping windows copy each input element exactly once.
        let d = Im2colDims::compute(&TensorShape::chw(2, 8, 8), (2, 2), (2, 2), (0, 0)).unwrap();
        assert_eq!(d.unrolled_elements(), d.input_elements);
        assert!((d.redundancy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn overlap_increases_redundancy() {
        let dense =
            Im2colDims::compute(&TensorShape::chw(1, 16, 16), (3, 3), (1, 1), (1, 1)).unwrap();
        let strided =
            Im2colDims::compute(&TensorShape::chw(1, 16, 16), (3, 3), (2, 2), (1, 1)).unwrap();
        assert!(dense.redundancy() > strided.redundancy());
        // Dense 3x3/1 im2col approaches 9x duplication.
        assert!(dense.redundancy() > 7.0);
    }

    #[test]
    fn im2col_then_matmul_equals_direct_convolution() {
        // 1 channel, 4x4 input, 2x2 kernel, stride 1: compare the matmul
        // formulation against a hand-computed convolution.
        let input = Tensor::from_fn(TensorShape::chw(1, 4, 4), |i| (i[1] * 4 + i[2]) as f32);
        let unrolled = im2col(&input, (2, 2), (1, 1), (0, 0)).unwrap();
        assert_eq!(unrolled.shape().dims(), &[4, 9]);
        let filter = [1.0f32, 2.0, 3.0, 4.0]; // (ky,kx) raster order
                                              // Output (0,0): 1*0 + 2*1 + 3*4 + 4*5 = 34.
        let col0: f32 = (0..4)
            .map(|r| filter[r] * unrolled.get(&[r, 0]).unwrap())
            .sum();
        assert_eq!(col0, 34.0);
        // Output (2,2) (last): windows at (2,2): 10,11,14,15.
        let col8: f32 = (0..4)
            .map(|r| filter[r] * unrolled.get(&[r, 8]).unwrap())
            .sum();
        assert_eq!(col8, 10.0 + 2.0 * 11.0 + 3.0 * 14.0 + 4.0 * 15.0);
    }

    #[test]
    fn padding_inserts_zeros() {
        let input = Tensor::from_fn(TensorShape::chw(1, 2, 2), |_| 1.0f32);
        let unrolled = im2col(&input, (3, 3), (1, 1), (1, 1)).unwrap();
        assert_eq!(unrolled.shape().dims(), &[9, 4]);
        // The corner window sees 5 zeros and 4 ones.
        let col0_sum: f32 = (0..9).map(|r| unrolled.get(&[r, 0]).unwrap()).sum();
        assert_eq!(col0_sum, 4.0);
    }

    #[test]
    fn flatten_filters_reshapes() {
        let f = Tensor::from_fn(TensorShape::new(vec![8, 3, 3, 3]), |_| 0.5f32);
        let m = flatten_filters(&f).unwrap();
        assert_eq!(m.shape().dims(), &[8, 27]);
        assert!(flatten_filters(&Tensor::from_fn(TensorShape::vector(5), |_| 0.0f32)).is_err());
    }

    #[test]
    fn oversized_kernel_rejected() {
        assert!(Im2colDims::compute(&TensorShape::chw(1, 2, 2), (5, 5), (1, 1), (0, 0)).is_err());
    }
}
