//! A minimal dense tensor.
//!
//! The reproduction only needs contiguous row-major tensors with shape
//! arithmetic — no broadcasting, no views — so this stays deliberately
//! small and obvious.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::NnError;

/// A tensor shape (row-major, outermost dimension first).
///
/// ```
/// use pim_nn::TensorShape;
/// let s = TensorShape::new(vec![3, 224, 224]);
/// assert_eq!(s.volume(), 3 * 224 * 224);
/// assert_eq!(s.rank(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TensorShape(Vec<usize>);

impl TensorShape {
    /// Creates a shape from dimensions.
    pub fn new(dims: Vec<usize>) -> Self {
        TensorShape(dims)
    }

    /// A rank-1 shape.
    pub fn vector(len: usize) -> Self {
        TensorShape(vec![len])
    }

    /// A `(channels, height, width)` feature-map shape.
    pub fn chw(c: usize, h: usize, w: usize) -> Self {
        TensorShape(vec![c, h, w])
    }

    /// The dimensions.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total element count.
    pub fn volume(&self) -> usize {
        self.0.iter().product()
    }

    /// The dimension at `axis`, or 1 when absent (scalar-extension
    /// convention used by the layer shape math).
    pub fn dim_or(&self, axis: usize, default: usize) -> usize {
        self.0.get(axis).copied().unwrap_or(default)
    }
}

impl fmt::Display for TensorShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for TensorShape {
    fn from(dims: Vec<usize>) -> Self {
        TensorShape(dims)
    }
}

/// A dense row-major tensor.
///
/// ```
/// use pim_nn::{Tensor, TensorShape};
/// let t = Tensor::from_fn(TensorShape::new(vec![2, 3]), |idx| (idx[0] * 3 + idx[1]) as f32);
/// assert_eq!(t.get(&[1, 2]).unwrap(), 5.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor<T> {
    shape: TensorShape,
    data: Vec<T>,
}

impl<T: Clone + Default> Tensor<T> {
    /// Creates a zero-initialized (default-initialized) tensor.
    pub fn zeros(shape: TensorShape) -> Self {
        let volume = shape.volume();
        Tensor {
            shape,
            data: vec![T::default(); volume],
        }
    }
}

impl<T> Tensor<T> {
    /// Creates a tensor from existing data.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when `data.len()` differs from
    /// the shape volume.
    pub fn from_vec(shape: TensorShape, data: Vec<T>) -> Result<Self, NnError> {
        if data.len() != shape.volume() {
            return Err(NnError::ShapeMismatch {
                context: "tensor construction",
                detail: format!(
                    "shape {shape} needs {} elements, got {}",
                    shape.volume(),
                    data.len()
                ),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every index.
    pub fn from_fn(shape: TensorShape, mut f: impl FnMut(&[usize]) -> T) -> Self {
        let volume = shape.volume();
        let mut idx = vec![0usize; shape.rank()];
        let mut data = Vec::with_capacity(volume);
        for _ in 0..volume {
            data.push(f(&idx));
            // Increment the multi-index, last axis fastest.
            for axis in (0..idx.len()).rev() {
                idx[axis] += 1;
                if idx[axis] < shape.dims()[axis] {
                    break;
                }
                idx[axis] = 0;
            }
        }
        Tensor { shape, data }
    }

    /// The shape.
    pub fn shape(&self) -> &TensorShape {
        &self.shape
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The flat data slice.
    pub fn data(&self) -> &[T] {
        &self.data
    }

    /// The flat data slice, mutably.
    pub fn data_mut(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the tensor, returning its data.
    pub fn into_data(self) -> Vec<T> {
        self.data
    }

    fn offset(&self, index: &[usize]) -> Result<usize, NnError> {
        if index.len() != self.shape.rank() {
            return Err(NnError::ShapeMismatch {
                context: "tensor indexing",
                detail: format!("index rank {} vs shape {}", index.len(), self.shape),
            });
        }
        let mut offset = 0usize;
        for (axis, (&i, &d)) in index.iter().zip(self.shape.dims()).enumerate() {
            if i >= d {
                return Err(NnError::IndexOutOfBounds {
                    index: i * (axis + 1),
                    len: self.len(),
                });
            }
            offset = offset * d + i;
        }
        Ok(offset)
    }

    /// Reshapes in place (volume must match).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] when volumes differ.
    pub fn reshape(&mut self, shape: TensorShape) -> Result<(), NnError> {
        if shape.volume() != self.len() {
            return Err(NnError::ShapeMismatch {
                context: "reshape",
                detail: format!("{} -> {shape}", self.shape),
            });
        }
        self.shape = shape;
        Ok(())
    }
}

impl<T: Copy> Tensor<T> {
    /// Element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IndexOutOfBounds`] / [`NnError::ShapeMismatch`]
    /// for bad indices.
    pub fn get(&self, index: &[usize]) -> Result<T, NnError> {
        Ok(self.data[self.offset(index)?])
    }

    /// Writes an element at a multi-index.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::IndexOutOfBounds`] / [`NnError::ShapeMismatch`]
    /// for bad indices.
    pub fn set(&mut self, index: &[usize], value: T) -> Result<(), NnError> {
        let o = self.offset(index)?;
        self.data[o] = value;
        Ok(())
    }

    /// Applies a function elementwise, producing a new tensor.
    pub fn map<U>(&self, f: impl Fn(T) -> U) -> Tensor<U> {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_volume_and_display() {
        let s = TensorShape::chw(3, 224, 224);
        assert_eq!(s.volume(), 150_528);
        assert_eq!(s.to_string(), "[3x224x224]");
        assert_eq!(s.dim_or(5, 1), 1);
    }

    #[test]
    fn from_vec_validates_volume() {
        assert!(Tensor::from_vec(TensorShape::vector(3), vec![1, 2, 3]).is_ok());
        assert!(Tensor::from_vec(TensorShape::vector(3), vec![1, 2]).is_err());
    }

    #[test]
    fn from_fn_row_major_order() {
        let t = Tensor::from_fn(TensorShape::new(vec![2, 3]), |i| i[0] * 10 + i[1]);
        assert_eq!(t.data(), &[0, 1, 2, 10, 11, 12]);
    }

    #[test]
    fn get_set_round_trip() {
        let mut t: Tensor<i32> = Tensor::zeros(TensorShape::new(vec![2, 2, 2]));
        t.set(&[1, 0, 1], 42).unwrap();
        assert_eq!(t.get(&[1, 0, 1]).unwrap(), 42);
        assert_eq!(t.get(&[0, 0, 0]).unwrap(), 0);
    }

    #[test]
    fn bad_indices_rejected() {
        let t: Tensor<i32> = Tensor::zeros(TensorShape::new(vec![2, 2]));
        assert!(t.get(&[2, 0]).is_err());
        assert!(t.get(&[0]).is_err());
        assert!(t.get(&[0, 0, 0]).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let mut t = Tensor::from_vec(TensorShape::new(vec![2, 3]), vec![1, 2, 3, 4, 5, 6]).unwrap();
        t.reshape(TensorShape::new(vec![3, 2])).unwrap();
        assert_eq!(t.get(&[2, 1]).unwrap(), 6);
        assert!(t.reshape(TensorShape::new(vec![4, 2])).is_err());
    }

    #[test]
    fn map_changes_type() {
        let t = Tensor::from_vec(TensorShape::vector(3), vec![1i8, -2, 3]).unwrap();
        let f = t.map(|v| v as f32 * 0.5);
        assert_eq!(f.data(), &[0.5, -1.0, 1.5]);
    }
}
