//! Seeded synthetic tensor generation.
//!
//! The paper evaluates on ImageNet/TIMIT/MRPC inputs, but inference
//! *cost* depends only on shapes, so synthetic tensors with the correct
//! shapes reproduce every performance experiment (DESIGN.md §4). Seeded
//! generation keeps functional tests deterministic.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::tensor::{Tensor, TensorShape};

/// A deterministic generator of synthetic workload tensors.
///
/// ```
/// use pim_nn::workload::WorkloadGen;
/// use pim_nn::TensorShape;
/// let mut gen = WorkloadGen::new(42);
/// let a = gen.uniform_f32(TensorShape::chw(3, 8, 8), -1.0, 1.0);
/// let mut gen2 = WorkloadGen::new(42);
/// let b = gen2.uniform_f32(TensorShape::chw(3, 8, 8), -1.0, 1.0);
/// assert_eq!(a.data(), b.data()); // same seed, same tensor
/// ```
#[derive(Debug)]
pub struct WorkloadGen {
    rng: StdRng,
}

impl WorkloadGen {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        WorkloadGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// A uniform random f32 tensor over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics when `lo >= hi`.
    pub fn uniform_f32(&mut self, shape: TensorShape, lo: f32, hi: f32) -> Tensor<f32> {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        let volume = shape.volume();
        let data = (0..volume).map(|_| self.rng.random_range(lo..hi)).collect();
        Tensor::from_vec(shape, data).expect("volume matches by construction")
    }

    /// A uniform random i8 tensor over the full range.
    pub fn random_i8(&mut self, shape: TensorShape) -> Tensor<i8> {
        let volume = shape.volume();
        let data = (0..volume).map(|_| self.rng.random::<i8>()).collect();
        Tensor::from_vec(shape, data).expect("volume matches by construction")
    }

    /// A uniform random i8 tensor bounded to `[-amax, amax]`.
    ///
    /// # Panics
    ///
    /// Panics when `amax` is not positive.
    pub fn bounded_i8(&mut self, shape: TensorShape, amax: i8) -> Tensor<i8> {
        assert!(amax > 0, "amax must be positive");
        let volume = shape.volume();
        let data = (0..volume)
            .map(|_| self.rng.random_range(-amax..=amax))
            .collect();
        Tensor::from_vec(shape, data).expect("volume matches by construction")
    }

    /// A random f32 vector.
    pub fn vector_f32(&mut self, len: usize, lo: f32, hi: f32) -> Vec<f32> {
        self.uniform_f32(TensorShape::vector(len), lo, hi)
            .into_data()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_by_seed() {
        let mut a = WorkloadGen::new(7);
        let mut b = WorkloadGen::new(7);
        assert_eq!(
            a.random_i8(TensorShape::vector(64)).data(),
            b.random_i8(TensorShape::vector(64)).data()
        );
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGen::new(1);
        let mut b = WorkloadGen::new(2);
        assert_ne!(
            a.random_i8(TensorShape::vector(64)).data(),
            b.random_i8(TensorShape::vector(64)).data()
        );
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut gen = WorkloadGen::new(3);
        let t = gen.uniform_f32(TensorShape::vector(1000), -0.5, 0.5);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn bounded_i8_respects_amax() {
        let mut gen = WorkloadGen::new(4);
        let t = gen.bounded_i8(TensorShape::vector(1000), 7);
        assert!(t.data().iter().all(|&v| (-7..=7).contains(&v)));
    }
}
