//! Layer specifications with shape, parameter and MAC accounting.
//!
//! A [`LayerSpec`] is a *static* description of one network layer: its
//! operator, its input shape and therefore its output shape, parameter
//! count and multiply count. The five evaluation networks of Table II
//! are lists of these specs; the BFree simulator and every baseline
//! consume them to derive work, traffic and storage.

use serde::{Deserialize, Serialize};

use crate::error::NnError;
use crate::tensor::TensorShape;

/// Pooling flavors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PoolKind {
    /// Max pooling (comparator chain in the BCE).
    Max,
    /// Average pooling (accumulate + LUT division, §III-C2).
    Avg,
}

/// Non-linearities appearing in the evaluation networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Act {
    /// Rectified linear unit.
    Relu,
    /// Logistic sigmoid (LSTM gates).
    Sigmoid,
    /// Hyperbolic tangent (LSTM cell state).
    Tanh,
    /// Softmax (classifier heads, attention).
    Softmax,
    /// Gaussian error linear unit (BERT feed-forward), computed with the
    /// tanh LUT.
    Gelu,
}

impl Act {
    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Act::Relu => "relu",
            Act::Sigmoid => "sigmoid",
            Act::Tanh => "tanh",
            Act::Softmax => "softmax",
            Act::Gelu => "gelu",
        }
    }

    /// Whether evaluation needs LUT lookups (everything except ReLU).
    pub fn needs_lut(self) -> bool {
        !matches!(self, Act::Relu)
    }
}

/// The operator of one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LayerOp {
    /// 2-D convolution over a `(C, H, W)` input.
    Conv2d {
        /// Output channels.
        out_channels: usize,
        /// Kernel `(kh, kw)`.
        kernel: (usize, usize),
        /// Stride `(sh, sw)`.
        stride: (usize, usize),
        /// Zero padding `(ph, pw)`.
        padding: (usize, usize),
    },
    /// Fully-connected layer over the trailing feature dimension.
    Linear {
        /// Output features.
        out_features: usize,
    },
    /// Spatial pooling over a `(C, H, W)` input.
    Pool {
        /// Max or average.
        kind: PoolKind,
        /// Window `(kh, kw)`.
        kernel: (usize, usize),
        /// Stride `(sh, sw)`.
        stride: (usize, usize),
        /// Zero padding `(ph, pw)`.
        padding: (usize, usize),
    },
    /// Global average pooling collapsing `(C, H, W)` to `(C)`.
    GlobalAvgPool,
    /// Element-wise activation.
    Activation(Act),
    /// One LSTM layer unrolled over a `(seq, input)` sequence.
    Lstm {
        /// Hidden state width.
        hidden: usize,
    },
    /// One GRU layer unrolled over a `(seq, input)` sequence (§IV-B1
    /// names GRUs alongside LSTMs as the widely used RNN variants).
    Gru {
        /// Hidden state width.
        hidden: usize,
    },
    /// Multi-head self-attention over a `(seq, hidden)` sequence
    /// (QKV + output projections plus the two score/context matmuls,
    /// Fig. 10).
    Attention {
        /// Attention heads.
        heads: usize,
    },
    /// Transformer feed-forward block: hidden -> inner -> hidden.
    FeedForward {
        /// Inner (expansion) width.
        inner: usize,
    },
    /// Layer normalization (element-wise scale/shift plus statistics).
    LayerNorm,
    /// Residual element-wise add.
    Add,
}

/// One layer of a network: operator plus its concrete input shape.
///
/// ```
/// use pim_nn::{LayerOp, LayerSpec, TensorShape};
/// let conv = LayerSpec::new(
///     "conv1",
///     LayerOp::Conv2d { out_channels: 64, kernel: (3, 3), stride: (1, 1), padding: (1, 1) },
///     TensorShape::chw(3, 224, 224),
/// ).unwrap();
/// assert_eq!(conv.output_shape().dims(), &[64, 224, 224]);
/// assert_eq!(conv.params(), 64 * (3 * 3 * 3 + 1));
/// assert_eq!(conv.macs(), 64 * 224 * 224 * 3 * 9);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSpec {
    name: String,
    op: LayerOp,
    input: TensorShape,
}

fn conv_out(extent: usize, kernel: usize, stride: usize, pad: usize) -> Option<usize> {
    (extent + 2 * pad)
        .checked_sub(kernel)
        .map(|v| v / stride + 1)
}

impl LayerSpec {
    /// Creates a layer spec, validating operator/shape compatibility.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidLayer`] when the operator cannot apply
    /// to the input shape (wrong rank, kernel larger than padded input,
    /// zero dimensions).
    pub fn new(name: impl Into<String>, op: LayerOp, input: TensorShape) -> Result<Self, NnError> {
        let name = name.into();
        let invalid = |reason: String| NnError::InvalidLayer {
            layer: name.clone(),
            reason,
        };
        if input.volume() == 0 {
            return Err(invalid("input shape has zero volume".to_string()));
        }
        match op {
            LayerOp::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
            } => {
                if input.rank() != 3 {
                    return Err(invalid(format!("conv needs (C,H,W) input, got {input}")));
                }
                if out_channels == 0
                    || kernel.0 == 0
                    || kernel.1 == 0
                    || stride.0 == 0
                    || stride.1 == 0
                {
                    return Err(invalid("zero channel/kernel/stride".to_string()));
                }
                let (h, w) = (input.dims()[1], input.dims()[2]);
                if conv_out(h, kernel.0, stride.0, padding.0).is_none()
                    || conv_out(w, kernel.1, stride.1, padding.1).is_none()
                {
                    return Err(invalid(format!(
                        "kernel {kernel:?} larger than padded input {h}x{w}"
                    )));
                }
            }
            LayerOp::Pool { kernel, stride, .. } => {
                if input.rank() != 3 {
                    return Err(invalid(format!("pool needs (C,H,W) input, got {input}")));
                }
                if kernel.0 == 0 || kernel.1 == 0 || stride.0 == 0 || stride.1 == 0 {
                    return Err(invalid("zero kernel/stride".to_string()));
                }
            }
            LayerOp::Linear { out_features } => {
                if out_features == 0 {
                    return Err(invalid("zero output features".to_string()));
                }
            }
            LayerOp::Lstm { hidden } | LayerOp::Gru { hidden } => {
                if input.rank() != 2 {
                    return Err(invalid(format!(
                        "recurrent layer needs (seq, input), got {input}"
                    )));
                }
                if hidden == 0 {
                    return Err(invalid("zero hidden width".to_string()));
                }
            }
            LayerOp::Attention { heads } => {
                if input.rank() != 2 {
                    return Err(invalid(format!(
                        "attention needs (seq, hidden), got {input}"
                    )));
                }
                let hidden = input.dims()[1];
                if heads == 0 || !hidden.is_multiple_of(heads) {
                    return Err(invalid(format!(
                        "hidden {hidden} not divisible by {heads} heads"
                    )));
                }
            }
            LayerOp::FeedForward { inner } => {
                if input.rank() != 2 {
                    return Err(invalid(format!(
                        "feed-forward needs (seq, hidden), got {input}"
                    )));
                }
                if inner == 0 {
                    return Err(invalid("zero inner width".to_string()));
                }
            }
            LayerOp::GlobalAvgPool => {
                if input.rank() != 3 {
                    return Err(invalid(format!("global pool needs (C,H,W), got {input}")));
                }
            }
            LayerOp::Activation(_) | LayerOp::LayerNorm | LayerOp::Add => {}
        }
        Ok(LayerSpec { name, op, input })
    }

    /// The layer name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The operator.
    pub fn op(&self) -> &LayerOp {
        &self.op
    }

    /// The input shape.
    pub fn input_shape(&self) -> &TensorShape {
        &self.input
    }

    /// The output shape implied by operator and input.
    pub fn output_shape(&self) -> TensorShape {
        match self.op {
            LayerOp::Conv2d {
                out_channels,
                kernel,
                stride,
                padding,
            } => {
                let (h, w) = (self.input.dims()[1], self.input.dims()[2]);
                let oh = conv_out(h, kernel.0, stride.0, padding.0).expect("validated");
                let ow = conv_out(w, kernel.1, stride.1, padding.1).expect("validated");
                TensorShape::chw(out_channels, oh, ow)
            }
            LayerOp::Pool {
                kernel,
                stride,
                padding,
                ..
            } => {
                let dims = self.input.dims();
                let oh = conv_out(dims[1], kernel.0, stride.0, padding.0)
                    .unwrap_or(1)
                    .max(1);
                let ow = conv_out(dims[2], kernel.1, stride.1, padding.1)
                    .unwrap_or(1)
                    .max(1);
                TensorShape::chw(dims[0], oh, ow)
            }
            LayerOp::GlobalAvgPool => TensorShape::vector(self.input.dims()[0]),
            LayerOp::Linear { out_features } => {
                let mut dims = self.input.dims().to_vec();
                *dims.last_mut().expect("non-empty shape") = out_features;
                TensorShape::new(dims)
            }
            LayerOp::Lstm { hidden } | LayerOp::Gru { hidden } => {
                TensorShape::new(vec![self.input.dims()[0], hidden])
            }
            LayerOp::Attention { .. } | LayerOp::FeedForward { .. } => self.input.clone(),
            LayerOp::Activation(_) | LayerOp::LayerNorm | LayerOp::Add => self.input.clone(),
        }
    }

    /// Trainable parameter count (weights + biases).
    pub fn params(&self) -> u64 {
        match self.op {
            LayerOp::Conv2d {
                out_channels,
                kernel,
                ..
            } => {
                let in_c = self.input.dims()[0] as u64;
                out_channels as u64 * (in_c * kernel.0 as u64 * kernel.1 as u64 + 1)
            }
            LayerOp::Linear { out_features } => {
                let in_f = *self.input.dims().last().expect("non-empty") as u64;
                out_features as u64 * (in_f + 1)
            }
            LayerOp::Lstm { hidden } => {
                let input = self.input.dims()[1] as u64;
                let h = hidden as u64;
                4 * (h * (input + h) + h)
            }
            LayerOp::Gru { hidden } => {
                let input = self.input.dims()[1] as u64;
                let h = hidden as u64;
                3 * (h * (input + h) + h)
            }
            LayerOp::Attention { .. } => {
                let h = self.input.dims()[1] as u64;
                4 * (h * h + h)
            }
            LayerOp::FeedForward { inner } => {
                let h = self.input.dims()[1] as u64;
                let i = inner as u64;
                h * i + i + i * h + h
            }
            LayerOp::LayerNorm => 2 * *self.input.dims().last().expect("non-empty") as u64,
            LayerOp::Pool { .. }
            | LayerOp::GlobalAvgPool
            | LayerOp::Activation(_)
            | LayerOp::Add => 0,
        }
    }

    /// Multiply count for one inference (batch 1).
    pub fn macs(&self) -> u64 {
        match self.op {
            LayerOp::Conv2d {
                out_channels,
                kernel,
                ..
            } => {
                let in_c = self.input.dims()[0] as u64;
                let out = self.output_shape();
                out_channels as u64
                    * out.dims()[1] as u64
                    * out.dims()[2] as u64
                    * in_c
                    * kernel.0 as u64
                    * kernel.1 as u64
            }
            LayerOp::Linear { out_features } => {
                let dims = self.input.dims();
                let in_f = *dims.last().expect("non-empty") as u64;
                let rows: u64 = dims[..dims.len() - 1].iter().map(|&d| d as u64).product();
                rows.max(1) * in_f * out_features as u64
            }
            LayerOp::Lstm { hidden } => {
                let seq = self.input.dims()[0] as u64;
                let input = self.input.dims()[1] as u64;
                let h = hidden as u64;
                // Four gates, each (input + hidden) x hidden, per step.
                seq * 4 * h * (input + h)
            }
            LayerOp::Gru { hidden } => {
                let seq = self.input.dims()[0] as u64;
                let input = self.input.dims()[1] as u64;
                let h = hidden as u64;
                // Three gates, each (input + hidden) x hidden, per step.
                seq * 3 * h * (input + h)
            }
            LayerOp::Attention { .. } => {
                let seq = self.input.dims()[0] as u64;
                let h = self.input.dims()[1] as u64;
                // QKV + output projections, plus scores and context.
                4 * seq * h * h + 2 * seq * seq * h
            }
            LayerOp::FeedForward { inner } => {
                let seq = self.input.dims()[0] as u64;
                let h = self.input.dims()[1] as u64;
                2 * seq * h * inner as u64
            }
            LayerOp::Pool { .. }
            | LayerOp::GlobalAvgPool
            | LayerOp::Activation(_)
            | LayerOp::LayerNorm
            | LayerOp::Add => 0,
        }
    }

    /// Non-MAC element operations (pool compares, activation lookups,
    /// normalization work) — the part the LUT path accelerates without
    /// the multiply ROM.
    pub fn element_ops(&self) -> u64 {
        match self.op {
            LayerOp::Pool { kernel, .. } => {
                self.output_shape().volume() as u64 * (kernel.0 * kernel.1) as u64
            }
            LayerOp::GlobalAvgPool => self.input.volume() as u64,
            LayerOp::Activation(_) => self.input.volume() as u64,
            LayerOp::LayerNorm => 2 * self.input.volume() as u64,
            LayerOp::Add => self.input.volume() as u64,
            LayerOp::Lstm { hidden } => {
                // Gate activations: 4 sigmoids/tanh + 2 elementwise per step.
                self.input.dims()[0] as u64 * 6 * hidden as u64
            }
            LayerOp::Gru { hidden } => {
                // Gate activations: 3 sigmoids/tanh + 3 elementwise per step.
                self.input.dims()[0] as u64 * 6 * hidden as u64
            }
            LayerOp::Attention { .. } => {
                // Softmax over each row of the score matrix.
                let seq = self.input.dims()[0] as u64;
                seq * seq
            }
            _ => 0,
        }
    }

    /// Whether this layer carries weights that must be loaded from main
    /// memory.
    pub fn is_weight_layer(&self) -> bool {
        matches!(
            self.op,
            LayerOp::Conv2d { .. }
                | LayerOp::Linear { .. }
                | LayerOp::Lstm { .. }
                | LayerOp::Gru { .. }
                | LayerOp::Attention { .. }
                | LayerOp::FeedForward { .. }
        )
    }

    /// Weight storage at `bits` per parameter, in bytes.
    pub fn weight_bytes(&self, bits: u32) -> u64 {
        (self.params() * bits as u64).div_ceil(8)
    }

    /// Input activation volume (elements).
    pub fn input_elements(&self) -> u64 {
        self.input.volume() as u64
    }

    /// Output activation volume (elements).
    pub fn output_elements(&self) -> u64 {
        self.output_shape().volume() as u64
    }
}

/// A whole network: a named, ordered list of layer specs.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Network {
    name: String,
    layers: Vec<LayerSpec>,
}

impl Network {
    /// Creates a network from its layers.
    pub fn new(name: impl Into<String>, layers: Vec<LayerSpec>) -> Self {
        Network {
            name: name.into(),
            layers,
        }
    }

    /// The network name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The layers in execution order.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// Total trainable parameters.
    pub fn total_params(&self) -> u64 {
        self.layers.iter().map(|l| l.params()).sum()
    }

    /// Total multiplies for one inference.
    pub fn total_macs(&self) -> u64 {
        self.layers.iter().map(|l| l.macs()).sum()
    }

    /// Total non-MAC element operations for one inference.
    pub fn total_element_ops(&self) -> u64 {
        self.layers.iter().map(|l| l.element_ops()).sum()
    }

    /// Number of weight-carrying layers.
    pub fn weight_layer_count(&self) -> usize {
        self.layers.iter().filter(|l| l.is_weight_layer()).count()
    }

    /// Total weight bytes at a uniform precision.
    pub fn weight_bytes(&self, bits: u32) -> u64 {
        self.layers.iter().map(|l| l.weight_bytes(bits)).sum()
    }

    /// The largest single layer's weight bytes (drives replication
    /// decisions).
    pub fn max_layer_weight_bytes(&self, bits: u32) -> u64 {
        self.layers
            .iter()
            .map(|l| l.weight_bytes(bits))
            .max()
            .unwrap_or(0)
    }

    /// Iterates over weight-carrying layers.
    pub fn weight_layers(&self) -> impl Iterator<Item = &LayerSpec> {
        self.layers.iter().filter(|l| l.is_weight_layer())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conv(
        name: &str,
        in_shape: (usize, usize, usize),
        out_c: usize,
        k: usize,
        s: usize,
        p: usize,
    ) -> LayerSpec {
        LayerSpec::new(
            name,
            LayerOp::Conv2d {
                out_channels: out_c,
                kernel: (k, k),
                stride: (s, s),
                padding: (p, p),
            },
            TensorShape::chw(in_shape.0, in_shape.1, in_shape.2),
        )
        .unwrap()
    }

    #[test]
    fn conv_shape_math() {
        let c = conv("c", (3, 224, 224), 64, 3, 1, 1);
        assert_eq!(c.output_shape().dims(), &[64, 224, 224]);
        let c = conv("c", (3, 299, 299), 32, 3, 2, 0);
        assert_eq!(c.output_shape().dims(), &[32, 149, 149]);
    }

    #[test]
    fn conv_macs_and_params() {
        let c = conv("c", (64, 56, 56), 128, 3, 1, 1);
        assert_eq!(c.params(), 128 * (64 * 9 + 1));
        assert_eq!(c.macs(), 128 * 56 * 56 * 64 * 9);
        assert!(c.is_weight_layer());
    }

    #[test]
    fn linear_macs_with_leading_dims() {
        let l = LayerSpec::new(
            "fc",
            LayerOp::Linear { out_features: 10 },
            TensorShape::new(vec![5, 20]),
        )
        .unwrap();
        assert_eq!(l.macs(), 5 * 20 * 10);
        assert_eq!(l.params(), 10 * 21);
        assert_eq!(l.output_shape().dims(), &[5, 10]);
    }

    #[test]
    fn lstm_params_match_closed_form() {
        // Paper Table II: LSTM with 4.3M params (TIMIT front end).
        let l = LayerSpec::new(
            "lstm",
            LayerOp::Lstm { hidden: 1024 },
            TensorShape::new(vec![300, 39]),
        )
        .unwrap();
        assert_eq!(l.params(), 4 * (1024 * (39 + 1024) + 1024));
        assert!((l.params() as f64 / 4.3e6 - 1.0).abs() < 0.02);
        assert_eq!(l.output_shape().dims(), &[300, 1024]);
    }

    #[test]
    fn attention_macs_breakdown() {
        let a = LayerSpec::new(
            "attn",
            LayerOp::Attention { heads: 12 },
            TensorShape::new(vec![128, 768]),
        )
        .unwrap();
        let expected = 4 * 128 * 768 * 768 + 2 * 128 * 128 * 768;
        assert_eq!(a.macs(), expected as u64);
        assert_eq!(a.params(), 4 * (768 * 768 + 768));
    }

    #[test]
    fn feed_forward_macs() {
        let f = LayerSpec::new(
            "ff",
            LayerOp::FeedForward { inner: 3072 },
            TensorShape::new(vec![128, 768]),
        )
        .unwrap();
        assert_eq!(f.macs(), 2 * 128 * 768 * 3072);
    }

    #[test]
    fn pool_has_no_params_but_element_ops() {
        let p = LayerSpec::new(
            "pool",
            LayerOp::Pool {
                kind: PoolKind::Max,
                kernel: (2, 2),
                stride: (2, 2),
                padding: (0, 0),
            },
            TensorShape::chw(64, 112, 112),
        )
        .unwrap();
        assert_eq!(p.params(), 0);
        assert_eq!(p.macs(), 0);
        assert_eq!(p.output_shape().dims(), &[64, 56, 56]);
        assert_eq!(p.element_ops(), 64 * 56 * 56 * 4);
        assert!(!p.is_weight_layer());
    }

    #[test]
    fn invalid_layers_rejected() {
        assert!(LayerSpec::new(
            "bad",
            LayerOp::Conv2d {
                out_channels: 8,
                kernel: (3, 3),
                stride: (1, 1),
                padding: (0, 0)
            },
            TensorShape::vector(10),
        )
        .is_err());
        assert!(LayerSpec::new(
            "bad",
            LayerOp::Conv2d {
                out_channels: 8,
                kernel: (7, 7),
                stride: (1, 1),
                padding: (0, 0)
            },
            TensorShape::chw(3, 5, 5),
        )
        .is_err());
        assert!(LayerSpec::new(
            "bad",
            LayerOp::Attention { heads: 5 },
            TensorShape::new(vec![16, 768]),
        )
        .is_err());
    }

    #[test]
    fn weight_bytes_scale_with_precision() {
        let c = conv("c", (3, 32, 32), 16, 3, 1, 1);
        assert_eq!(c.weight_bytes(8), c.params());
        assert_eq!(c.weight_bytes(4), c.params().div_ceil(2));
        assert_eq!(c.weight_bytes(16), c.params() * 2);
    }

    #[test]
    fn network_aggregates() {
        let layers = vec![
            conv("c1", (3, 8, 8), 4, 3, 1, 1),
            LayerSpec::new(
                "relu",
                LayerOp::Activation(Act::Relu),
                TensorShape::chw(4, 8, 8),
            )
            .unwrap(),
            LayerSpec::new(
                "fc",
                LayerOp::Linear { out_features: 10 },
                TensorShape::vector(256),
            )
            .unwrap(),
        ];
        let net = Network::new("tiny", layers);
        assert_eq!(net.weight_layer_count(), 2);
        assert_eq!(net.total_params(), 4 * (27 + 1) + 10 * 257);
        assert!(net.total_macs() > 0);
        assert_eq!(net.weight_layers().count(), 2);
        assert!(net.max_layer_weight_bytes(8) >= net.weight_bytes(8) / 3);
    }
}
