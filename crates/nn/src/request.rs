//! Inference request descriptors for the serving layer.
//!
//! A serving simulator (`bfree-serve`) routes traffic by *which* network
//! a request targets, not by a materialized [`Network`] — instantiating
//! Inception-v3 per request would dominate the event loop. This module
//! names the evaluation networks as a cheap, copyable [`NetworkKind`]
//! and bundles the per-request fields ([`InferenceRequest`]) the
//! scheduler needs: target network, requested batch and priority class.

use std::fmt;
use std::str::FromStr;

use crate::layers::Network;
use crate::networks;

/// A parse failure for a network name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownNetworkError {
    /// The name that did not match any evaluation network.
    pub name: String,
}

impl fmt::Display for UnknownNetworkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown network {:?}; expected one of: {}",
            self.name,
            NetworkKind::ALL
                .iter()
                .map(|k| k.label())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

impl std::error::Error for UnknownNetworkError {}

/// The evaluation networks, nameable without instantiation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NetworkKind {
    /// The paper's TIMIT LSTM (Table II).
    LstmTimit,
    /// The GRU extension workload.
    GruTimit,
    /// BERT-base (Table II).
    BertBase,
    /// BERT-large (Table II).
    BertLarge,
    /// VGG-16 (Table II).
    Vgg16,
    /// Inception-v3 (Table II).
    InceptionV3,
    /// The ResNet-18 extension workload.
    ResNet18,
}

impl NetworkKind {
    /// Every nameable network.
    pub const ALL: [NetworkKind; 7] = [
        NetworkKind::LstmTimit,
        NetworkKind::GruTimit,
        NetworkKind::BertBase,
        NetworkKind::BertLarge,
        NetworkKind::Vgg16,
        NetworkKind::InceptionV3,
        NetworkKind::ResNet18,
    ];

    /// The canonical display name (matches the paper's tables).
    pub fn label(self) -> &'static str {
        match self {
            NetworkKind::LstmTimit => "LSTM",
            NetworkKind::GruTimit => "GRU",
            NetworkKind::BertBase => "BERT-base",
            NetworkKind::BertLarge => "BERT-large",
            NetworkKind::Vgg16 => "VGG-16",
            NetworkKind::InceptionV3 => "Inception-v3",
            NetworkKind::ResNet18 => "ResNet-18",
        }
    }

    /// Parses a network name, accepting the canonical labels plus the
    /// lowercase/underscore spellings used on command lines.
    pub fn parse(name: &str) -> Result<Self, UnknownNetworkError> {
        let folded: String = name
            .chars()
            .filter(|c| c.is_ascii_alphanumeric())
            .collect::<String>()
            .to_ascii_lowercase();
        match folded.as_str() {
            "lstm" | "lstmtimit" => Ok(NetworkKind::LstmTimit),
            "gru" | "grutimit" => Ok(NetworkKind::GruTimit),
            "bertbase" | "bert" => Ok(NetworkKind::BertBase),
            "bertlarge" => Ok(NetworkKind::BertLarge),
            "vgg16" | "vgg" => Ok(NetworkKind::Vgg16),
            "inceptionv3" | "inception" => Ok(NetworkKind::InceptionV3),
            "resnet18" | "resnet" => Ok(NetworkKind::ResNet18),
            _ => Err(UnknownNetworkError {
                name: name.to_string(),
            }),
        }
    }

    /// Builds the network's layer graph (a thin wrapper over the
    /// canonical [`networks::CATALOG`] entry).
    pub fn instantiate(self) -> Network {
        networks::build(self)
    }
}

impl fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

impl FromStr for NetworkKind {
    type Err = UnknownNetworkError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        NetworkKind::parse(s)
    }
}

/// One inference request as a serving layer sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferenceRequest {
    /// The network this request targets.
    pub network: NetworkKind,
    /// Inferences bundled in the request (a client-side batch; the
    /// scheduler may coalesce further).
    pub batch: usize,
    /// Priority class: higher is more urgent (priority policies only).
    pub priority: u8,
}

impl InferenceRequest {
    /// A single-inference, default-priority request.
    pub fn new(network: NetworkKind) -> Self {
        InferenceRequest {
            network,
            batch: 1,
            priority: 0,
        }
    }

    /// Sets the client batch size (clamped to at least 1).
    pub fn with_batch(mut self, batch: usize) -> Self {
        self.batch = batch.max(1);
        self
    }

    /// Sets the priority class.
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_paper_labels_and_cli_spellings() {
        for kind in NetworkKind::ALL {
            assert_eq!(NetworkKind::parse(kind.label()).unwrap(), kind);
        }
        assert_eq!(
            NetworkKind::parse("bert_base").unwrap(),
            NetworkKind::BertBase
        );
        assert_eq!(NetworkKind::parse("LSTM").unwrap(), NetworkKind::LstmTimit);
        assert_eq!(
            "inception-v3".parse::<NetworkKind>().unwrap(),
            NetworkKind::InceptionV3
        );
    }

    #[test]
    fn parse_rejects_unknown_names_with_context() {
        let err = NetworkKind::parse("alexnet").unwrap_err();
        assert!(err.to_string().contains("alexnet"));
        assert!(err.to_string().contains("BERT-base"));
    }

    #[test]
    fn instantiate_matches_table2_shapes() {
        assert_eq!(NetworkKind::Vgg16.instantiate().weight_layer_count(), 16);
        assert!(NetworkKind::BertBase.instantiate().total_params() > 80_000_000);
    }

    #[test]
    fn request_builder_clamps_batch() {
        let r = InferenceRequest::new(NetworkKind::LstmTimit)
            .with_batch(0)
            .with_priority(3);
        assert_eq!(r.batch, 1);
        assert_eq!(r.priority, 3);
    }
}
