//! gemmlowp-style affine quantization (paper §V-D).
//!
//! The paper quantizes with the gemmlowp scheme: a real value `x` maps to
//! an integer `q` via `x = scale * (q - zero_point)`. Accumulators are
//! 32-bit; requantization back to 8 bits multiplies by a Q0.31
//! fixed-point multiplier with a rounding-doubling high multiply and a
//! rounding right shift — exactly the arithmetic the BCE performs with a
//! scaling factor, bias add and shift "performed by all the subarrays
//! hosting the data, eliminating the round trip to the processor".

use serde::{Deserialize, Serialize};

use crate::tensor::Tensor;

/// Affine quantization parameters for one tensor.
///
/// ```
/// use pim_nn::QuantParams;
/// let qp = QuantParams::from_range(-1.0, 1.0);
/// let q = qp.quantize(0.5);
/// assert!((qp.dequantize(q) - 0.5).abs() < qp.scale());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    scale: f64,
    zero_point: i32,
}

impl QuantParams {
    /// Builds parameters covering `[min, max]` with 8-bit signed
    /// quantization. The range is widened to include zero so that zero is
    /// exactly representable, as gemmlowp requires.
    ///
    /// # Panics
    ///
    /// Panics when `min > max` or either bound is non-finite.
    pub fn from_range(min: f64, max: f64) -> Self {
        assert!(min <= max, "inverted range [{min}, {max}]");
        assert!(min.is_finite() && max.is_finite(), "non-finite range");
        let min = min.min(0.0);
        let max = max.max(0.0);
        let scale = ((max - min) / 255.0).max(f64::MIN_POSITIVE);
        let zero_point = (-128.0 - min / scale).round().clamp(-128.0, 127.0) as i32;
        QuantParams { scale, zero_point }
    }

    /// Symmetric parameters (zero point 0) covering `[-amax, amax]`,
    /// the form used for weights.
    ///
    /// # Panics
    ///
    /// Panics when `amax` is negative or non-finite.
    pub fn symmetric(amax: f64) -> Self {
        assert!(amax >= 0.0 && amax.is_finite(), "bad amax {amax}");
        let scale = (amax / 127.0).max(f64::MIN_POSITIVE);
        QuantParams {
            scale,
            zero_point: 0,
        }
    }

    /// Symmetric 4-bit parameters covering `[-amax, amax]` (mixed
    /// precision, Fig. 14).
    ///
    /// # Panics
    ///
    /// Panics when `amax` is negative or non-finite.
    pub fn symmetric_int4(amax: f64) -> Self {
        assert!(amax >= 0.0 && amax.is_finite(), "bad amax {amax}");
        let scale = (amax / 7.0).max(f64::MIN_POSITIVE);
        QuantParams {
            scale,
            zero_point: 0,
        }
    }

    /// The scale.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// The zero point.
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// Quantizes a real value to i8.
    pub fn quantize(&self, x: f64) -> i8 {
        ((x / self.scale).round() as i32 + self.zero_point).clamp(-128, 127) as i8
    }

    /// Dequantizes an i8 back to a real value.
    pub fn dequantize(&self, q: i8) -> f64 {
        (q as i32 - self.zero_point) as f64 * self.scale
    }

    /// Quantizes a whole tensor.
    pub fn quantize_tensor(&self, t: &Tensor<f32>) -> Tensor<i8> {
        t.map(|v| self.quantize(v as f64))
    }

    /// Dequantizes a whole tensor.
    pub fn dequantize_tensor(&self, t: &Tensor<i8>) -> Tensor<f32> {
        t.map(|q| self.dequantize(q) as f32)
    }

    /// Parameters from the observed range of a tensor.
    pub fn observe(t: &Tensor<f32>) -> Self {
        let mut min = 0.0f64;
        let mut max = 0.0f64;
        for &v in t.data() {
            min = min.min(v as f64);
            max = max.max(v as f64);
        }
        QuantParams::from_range(min, max)
    }
}

/// Per-output-channel symmetric quantization for filter tensors — the
/// standard refinement over per-tensor scales: each output channel gets
/// its own scale matched to that channel's weight range, tightening the
/// quantization error on channels with small weights.
///
/// ```
/// use pim_nn::quant::ChannelQuantParams;
/// use pim_nn::tensor::{Tensor, TensorShape};
/// // Two output channels with very different ranges.
/// let filters = Tensor::from_vec(
///     TensorShape::new(vec![2, 1, 1, 2]),
///     vec![0.01f32, -0.02, 1.0, -2.0],
/// ).unwrap();
/// let qp = ChannelQuantParams::observe(&filters).unwrap();
/// assert!(qp.scale(0) < qp.scale(1) / 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChannelQuantParams {
    scales: Vec<f64>,
}

impl ChannelQuantParams {
    /// Observes per-channel ranges of a rank >= 2 tensor whose leading
    /// axis is the output channel.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::ShapeMismatch`] for rank < 2 tensors.
    pub fn observe(weights: &Tensor<f32>) -> Result<Self, crate::NnError> {
        let dims = weights.shape().dims();
        if dims.len() < 2 {
            return Err(crate::NnError::ShapeMismatch {
                context: "per-channel quantization",
                detail: format!("needs rank >= 2, got {}", weights.shape()),
            });
        }
        let channels = dims[0];
        let per_channel = weights.len() / channels;
        let scales = (0..channels)
            .map(|ch| {
                let slice = &weights.data()[ch * per_channel..(ch + 1) * per_channel];
                let amax = slice.iter().fold(0.0f64, |m, &v| m.max((v as f64).abs()));
                QuantParams::symmetric(amax).scale()
            })
            .collect();
        Ok(ChannelQuantParams { scales })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.scales.len()
    }

    /// The scale of one channel.
    ///
    /// # Panics
    ///
    /// Panics when the channel index is out of range.
    pub fn scale(&self, channel: usize) -> f64 {
        self.scales[channel]
    }

    /// Quantizes the weight tensor channel by channel.
    pub fn quantize_tensor(&self, weights: &Tensor<f32>) -> Tensor<i8> {
        let channels = self.scales.len();
        let per_channel = weights.len() / channels;
        let data = weights
            .data()
            .iter()
            .enumerate()
            .map(|(i, &v)| {
                let scale = self.scales[i / per_channel];
                (v as f64 / scale).round().clamp(-127.0, 127.0) as i8
            })
            .collect();
        Tensor::from_vec(weights.shape().clone(), data).expect("same shape")
    }

    /// Dequantizes channel by channel.
    pub fn dequantize_tensor(&self, q: &Tensor<i8>) -> Tensor<f32> {
        let channels = self.scales.len();
        let per_channel = q.len() / channels;
        let data = q
            .data()
            .iter()
            .enumerate()
            .map(|(i, &v)| (v as f64 * self.scales[i / per_channel]) as f32)
            .collect();
        Tensor::from_vec(q.shape().clone(), data).expect("same shape")
    }
}

/// The fixed-point requantizer: converts i32 accumulators back to i8
/// with the gemmlowp rounding-doubling high multiply.
///
/// ```
/// use pim_nn::Requantizer;
/// // Effective scale 0.004: accumulator 1000 -> 4.
/// let r = Requantizer::from_scale(0.004, 0);
/// assert_eq!(r.apply(1000), 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Requantizer {
    /// Q0.31 fixed-point multiplier in `[2^30, 2^31)`.
    multiplier: i32,
    /// Right shift applied after the high multiply.
    shift: i32,
    /// Output zero point.
    zero_point: i32,
}

impl Requantizer {
    /// Decomposes a positive real multiplier into the gemmlowp
    /// `(multiplier, shift)` pair and builds the requantizer.
    ///
    /// # Panics
    ///
    /// Panics when `real_multiplier` is not in `(0, 1]` — effective
    /// inference scales always are.
    pub fn from_scale(real_multiplier: f64, zero_point: i32) -> Self {
        assert!(
            real_multiplier > 0.0 && real_multiplier <= 1.0,
            "requant multiplier {real_multiplier} out of (0, 1]"
        );
        let mut shift = 0i32;
        let mut m = real_multiplier;
        while m < 0.5 {
            m *= 2.0;
            shift += 1;
        }
        let mut quantized = (m * (1i64 << 31) as f64).round() as i64;
        if quantized == 1i64 << 31 {
            quantized /= 2;
            shift -= 1;
        }
        Requantizer {
            multiplier: quantized as i32,
            shift,
            zero_point,
        }
    }

    /// The Q0.31 multiplier.
    pub fn multiplier(&self) -> i32 {
        self.multiplier
    }

    /// The right-shift amount.
    pub fn shift(&self) -> i32 {
        self.shift
    }

    /// The output zero point.
    pub fn zero_point(&self) -> i32 {
        self.zero_point
    }

    /// Requantizes one accumulator to i8.
    pub fn apply(&self, acc: i32) -> i8 {
        let product = acc as i64 * self.multiplier as i64;
        let nudge = if product >= 0 {
            1i64 << 30
        } else {
            1 - (1i64 << 30)
        };
        let high = ((product + nudge) >> 31) as i32;
        let shifted = rounding_shift_right(high, self.shift);
        (shifted + self.zero_point).clamp(i8::MIN as i32, i8::MAX as i32) as i8
    }

    /// Requantizes a slice of accumulators.
    pub fn apply_all(&self, accs: &[i32]) -> Vec<i8> {
        accs.iter().map(|&a| self.apply(a)).collect()
    }
}

/// Arithmetic right shift with round-to-nearest, ties away from zero
/// (gemmlowp `RoundingDivideByPOT`).
fn rounding_shift_right(value: i32, shift: i32) -> i32 {
    if shift <= 0 {
        return value << (-shift).min(31);
    }
    let mask = (1i64 << shift) - 1;
    let remainder = (value as i64) & mask;
    let threshold = (mask >> 1) + i64::from(value < 0);
    let base = (value as i64) >> shift;
    (base + i64::from(remainder > threshold)) as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::TensorShape;
    use proptest::prelude::*;

    #[test]
    fn zero_is_exactly_representable() {
        for (min, max) in [(-3.0, 5.0), (0.5, 9.0), (-7.0, -1.0)] {
            let qp = QuantParams::from_range(min, max);
            assert_eq!(qp.dequantize(qp.quantize(0.0)), 0.0);
        }
    }

    #[test]
    fn quantize_round_trips_within_half_step() {
        let qp = QuantParams::from_range(-2.0, 2.0);
        for i in -20..=20 {
            let x = i as f64 / 10.0;
            let err = (qp.dequantize(qp.quantize(x)) - x).abs();
            assert!(err <= qp.scale() / 2.0 + 1e-12, "x={x} err={err}");
        }
    }

    #[test]
    fn symmetric_has_zero_zero_point() {
        let qp = QuantParams::symmetric(1.5);
        assert_eq!(qp.zero_point(), 0);
        assert_eq!(qp.quantize(0.0), 0);
        assert_eq!(qp.quantize(1.5), 127);
        assert_eq!(qp.quantize(-1.5), -127);
    }

    #[test]
    fn int4_params_use_seven_levels() {
        let qp = QuantParams::symmetric_int4(7.0);
        assert_eq!(qp.quantize(7.0), 7);
        assert_eq!(qp.quantize(-7.0), -7);
        assert_eq!(qp.quantize(1.0), 1);
    }

    #[test]
    fn observe_covers_tensor_range() {
        let t = Tensor::from_vec(TensorShape::vector(4), vec![-1.5f32, 0.0, 2.0, 0.5]).unwrap();
        let qp = QuantParams::observe(&t);
        let q = qp.quantize_tensor(&t);
        let back = qp.dequantize_tensor(&q);
        for (a, b) in t.data().iter().zip(back.data()) {
            assert!((a - b).abs() as f64 <= qp.scale() / 2.0 + 1e-9);
        }
    }

    #[test]
    fn per_channel_beats_per_tensor_on_imbalanced_filters() {
        // Channel 0 has tiny weights, channel 1 large: a shared scale
        // destroys channel 0; per-channel scales preserve it.
        let filters = Tensor::from_vec(
            TensorShape::new(vec![2, 1, 2, 2]),
            vec![0.01f32, -0.015, 0.008, -0.012, 1.5, -1.2, 0.9, -1.4],
        )
        .unwrap();
        let per_tensor = QuantParams::symmetric(1.5);
        let per_channel = ChannelQuantParams::observe(&filters).unwrap();

        let pt_err: f32 = filters
            .data()
            .iter()
            .map(|&v| (per_tensor.dequantize(per_tensor.quantize(v as f64)) as f32 - v).abs())
            .take(4) // channel 0 only
            .sum();
        let q = per_channel.quantize_tensor(&filters);
        let back = per_channel.dequantize_tensor(&q);
        let pc_err: f32 = filters
            .data()
            .iter()
            .zip(back.data())
            .map(|(a, b)| (a - b).abs())
            .take(4)
            .sum();
        assert!(
            pc_err < pt_err / 10.0,
            "per-channel {pc_err} vs per-tensor {pt_err}"
        );
    }

    #[test]
    fn per_channel_round_trips_within_half_step() {
        let filters = Tensor::from_fn(TensorShape::new(vec![4, 3, 3, 3]), |i| {
            ((i[0] + 1) as f32) * 0.1 * (if i[3] % 2 == 0 { 1.0 } else { -1.0 })
        });
        let qp = ChannelQuantParams::observe(&filters).unwrap();
        assert_eq!(qp.channels(), 4);
        let back = qp.dequantize_tensor(&qp.quantize_tensor(&filters));
        for (ch, chunk) in filters.data().chunks(27).enumerate() {
            let half_step = qp.scale(ch) as f32 / 2.0;
            for (i, &v) in chunk.iter().enumerate() {
                let b = back.data()[ch * 27 + i];
                assert!((v - b).abs() <= half_step + 1e-7, "ch {ch}: {v} vs {b}");
            }
        }
    }

    #[test]
    fn per_channel_rejects_vectors() {
        let v = Tensor::from_vec(TensorShape::vector(4), vec![1.0f32; 4]).unwrap();
        assert!(ChannelQuantParams::observe(&v).is_err());
    }

    #[test]
    fn requantizer_decomposition_accurate() {
        for scale in [0.9, 0.5, 0.1, 0.004, 1e-4] {
            let r = Requantizer::from_scale(scale, 0);
            for acc in [1i32, 100, 10_000, 1_000_000, -12_345] {
                let exact = (acc as f64 * scale).round();
                let got = r.apply(acc) as f64;
                if exact.abs() <= 127.0 {
                    assert!(
                        (got - exact).abs() <= 1.0,
                        "scale={scale} acc={acc} {got} vs {exact}"
                    );
                }
            }
        }
    }

    #[test]
    fn requantizer_saturates() {
        let r = Requantizer::from_scale(0.5, 0);
        assert_eq!(r.apply(10_000), 127);
        assert_eq!(r.apply(-10_000), -128);
    }

    #[test]
    fn requantizer_zero_point_offsets_output() {
        let r = Requantizer::from_scale(0.01, 5);
        assert_eq!(r.apply(0), 5);
        assert_eq!(r.apply(100), 6);
    }

    #[test]
    #[should_panic]
    fn oversized_multiplier_panics() {
        let _ = Requantizer::from_scale(1.5, 0);
    }

    proptest! {
        #[test]
        fn prop_quantize_within_range(x in -100.0f64..100.0) {
            let qp = QuantParams::from_range(-50.0, 50.0);
            let q = qp.quantize(x);
            prop_assert!((-128..=127).contains(&(q as i32)));
        }

        #[test]
        fn prop_requant_monotone(a in -100_000i32..100_000, b in -100_000i32..100_000) {
            let r = Requantizer::from_scale(0.001, 0);
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(r.apply(lo) <= r.apply(hi));
        }

        #[test]
        fn prop_requant_matches_float_reference(acc in -1_000_000i32..1_000_000) {
            let scale = 0.00037;
            let r = Requantizer::from_scale(scale, 0);
            let exact = (acc as f64 * scale).round().clamp(-128.0, 127.0);
            prop_assert!((r.apply(acc) as f64 - exact).abs() <= 1.0);
        }
    }
}
