//! BERT encoders (Devlin et al., 2018) as evaluated in Table III on
//! MRPC: BERT-base (12 layers, hidden 768, 12 heads, FF 3072) and
//! BERT-large (24 layers, hidden 1024, 16 heads, FF 4096), at the
//! standard sequence length of 128.
//!
//! Parameter counts cover the encoder stack the accelerator executes
//! (embedding lookups are memory reads, not multiplies): 85M for base
//! and 302M for large, against the paper's 87M / 324M Table II rows.

use crate::layers::{Act, LayerOp, LayerSpec, Network};
use crate::tensor::TensorShape;

/// Configuration of a BERT encoder stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BertConfig {
    /// Encoder blocks.
    pub blocks: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward inner width.
    pub feed_forward: usize,
    /// Sequence length.
    pub seq_len: usize,
}

impl BertConfig {
    /// BERT-base at sequence length 128.
    pub fn base() -> Self {
        BertConfig {
            blocks: 12,
            hidden: 768,
            heads: 12,
            feed_forward: 3072,
            seq_len: 128,
        }
    }

    /// BERT-large at sequence length 128.
    pub fn large() -> Self {
        BertConfig {
            blocks: 24,
            hidden: 1024,
            heads: 16,
            feed_forward: 4096,
            seq_len: 128,
        }
    }
}

/// Builds a BERT encoder from a configuration.
pub fn bert(name: &str, config: BertConfig) -> Network {
    let seq_hidden = TensorShape::new(vec![config.seq_len, config.hidden]);
    let mut layers = Vec::new();
    for block in 0..config.blocks {
        let valid = "static BERT table is valid";
        layers.push(
            LayerSpec::new(
                format!("block{block}_attention"),
                LayerOp::Attention {
                    heads: config.heads,
                },
                seq_hidden.clone(),
            )
            .expect(valid),
        );
        layers.push(
            LayerSpec::new(
                format!("block{block}_attn_add"),
                LayerOp::Add,
                seq_hidden.clone(),
            )
            .expect(valid),
        );
        layers.push(
            LayerSpec::new(
                format!("block{block}_attn_ln"),
                LayerOp::LayerNorm,
                seq_hidden.clone(),
            )
            .expect(valid),
        );
        layers.push(
            LayerSpec::new(
                format!("block{block}_ffn"),
                LayerOp::FeedForward {
                    inner: config.feed_forward,
                },
                seq_hidden.clone(),
            )
            .expect(valid),
        );
        layers.push(
            LayerSpec::new(
                format!("block{block}_ffn_gelu"),
                LayerOp::Activation(Act::Gelu),
                TensorShape::new(vec![config.seq_len, config.feed_forward]),
            )
            .expect(valid),
        );
        layers.push(
            LayerSpec::new(
                format!("block{block}_ffn_add"),
                LayerOp::Add,
                seq_hidden.clone(),
            )
            .expect(valid),
        );
        layers.push(
            LayerSpec::new(
                format!("block{block}_ffn_ln"),
                LayerOp::LayerNorm,
                seq_hidden.clone(),
            )
            .expect(valid),
        );
    }
    Network::new(name, layers)
}

/// BERT-base at sequence length 128 (Table II: 87M params, 11.1G mults).
pub fn bert_base() -> Network {
    bert("BERT-base", BertConfig::base())
}

/// BERT-large at sequence length 128 (Table II: 324M params, 39.5G
/// mults).
pub fn bert_large() -> Network {
    bert("BERT-large", BertConfig::large())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_macs_match_table2_11_1g() {
        let m = bert_base().total_macs() as f64;
        assert!((m / 11.1e9 - 1.0).abs() < 0.03, "got {m:.4e}");
    }

    #[test]
    fn large_macs_match_table2_39_5g() {
        let m = bert_large().total_macs() as f64;
        assert!((m / 39.5e9 - 1.0).abs() < 0.03, "got {m:.4e}");
    }

    #[test]
    fn base_params_near_87m() {
        let p = bert_base().total_params() as f64;
        assert!((p / 87.0e6 - 1.0).abs() < 0.05, "got {p:.4e}");
    }

    #[test]
    fn large_params_near_324m() {
        let p = bert_large().total_params() as f64;
        assert!((p / 324.0e6 - 1.0).abs() < 0.10, "got {p:.4e}");
    }

    #[test]
    fn block_counts() {
        assert_eq!(bert_base().weight_layer_count(), 24); // attention + ffn per block
        assert_eq!(bert_large().weight_layer_count(), 48);
    }

    #[test]
    fn base_layer_weights_fit_cache_many_times() {
        // §V-D: BERT-base "has more replicas of the layer" — one block's
        // weights are ~7 MB at int8, so a 35 MB cache fits several.
        let net = bert_base();
        let block_bytes: u64 = net.layers().iter().take(7).map(|l| l.weight_bytes(8)).sum();
        assert!(block_bytes < 8 * 1024 * 1024);
        assert!(35 * 1024 * 1024 / block_bytes >= 4);
    }

    #[test]
    fn macs_scale_linearly_with_sequence_for_projections() {
        let short = bert(
            "short",
            BertConfig {
                seq_len: 64,
                ..BertConfig::base()
            },
        );
        let long = bert(
            "long",
            BertConfig {
                seq_len: 128,
                ..BertConfig::base()
            },
        );
        // Attention scores grow quadratically, so the ratio is a bit
        // above 2 but far below 4.
        let ratio = long.total_macs() as f64 / short.total_macs() as f64;
        assert!((2.0..2.5).contains(&ratio), "ratio {ratio}");
    }
}
